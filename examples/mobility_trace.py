#!/usr/bin/env python3
"""Rateless spinal codes versus SNR-threshold rate adaptation under mobility.

Section 1 of the paper argues that explicit bit-rate adaptation is reactive
and therefore fragile when the channel changes quickly.  This example makes
that concrete:

* a random-walk SNR trace models a walking user (the channel drifts several
  dB over a packet's timescale);
* the *rate adaptation* baseline calibrates SNR thresholds for the eight
  fixed-rate LDPC configurations and picks one per packet from a stale SNR
  observation;
* the *spinal* sender just transmits ratelessly; it needs no SNR estimate at
  all and implicitly rides every fade.

Run with:  python examples/mobility_trace.py          (a couple of minutes)
           python examples/mobility_trace.py --fast   (coarser, < 1 minute)
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import BubbleDecoder, Framer, RatelessSession, SpinalEncoder, SpinalParams
from repro.baselines import ThresholdRateAdapter
from repro.channels import TimeVaryingAWGNChannel
from repro.channels.traces import random_walk_trace
from repro.core.puncturing import TailFirstPuncturing
from repro.theory import awgn_capacity_db
from repro.utils.rng import spawn_rng


def spinal_over_trace(packet_snrs_db, symbols_per_packet: int, rng) -> float:
    """Mean achieved rate of the rateless spinal code over the SNR trace."""
    params = SpinalParams(k=8, c=10)
    encoder = SpinalEncoder(params, puncturing=TailFirstPuncturing())
    framer = Framer(payload_bits=24, k=params.k)
    rates = []
    for snr_db in packet_snrs_db:
        # Within one packet the SNR still wiggles by +/- 1 dB symbol to symbol.
        within = snr_db + rng.normal(0.0, 1.0, size=symbols_per_packet)
        channel = TimeVaryingAWGNChannel(within, adc_bits=14)
        session = RatelessSession(
            encoder,
            decoder_factory=lambda enc: BubbleDecoder(enc, beam_width=16),
            channel=channel,
            framer=framer,
            max_symbols=symbols_per_packet,
            search="bisect",
        )
        payload = rng.integers(0, 2, size=24, dtype=np.uint8)
        trial = session.run(payload, rng)
        rates.append(trial.rate if trial.success else 0.0)
    return float(np.mean(rates))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="fewer packets and frames")
    args = parser.parse_args()

    n_packets = 10 if args.fast else 30
    calibration_frames = 20 if args.fast else 40
    frames_per_packet = 5 if args.fast else 10
    rng = spawn_rng(99, "mobility")

    # A pedestrian-speed random walk between 2 and 28 dB.
    packet_snrs_db = random_walk_trace(
        start_snr_db=15.0,
        length=n_packets,
        step_db=3.0,
        rng=rng,
        min_snr_db=2.0,
        max_snr_db=28.0,
    )
    mean_capacity = float(np.mean([awgn_capacity_db(s) for s in packet_snrs_db]))
    print(f"SNR trace over {n_packets} packets: "
          f"min {packet_snrs_db.min():.1f} dB, max {packet_snrs_db.max():.1f} dB, "
          f"mean capacity {mean_capacity:.2f} bits/symbol")

    print("\nCalibrating SNR thresholds for the LDPC rate-adaptation baseline ...")
    adapter = ThresholdRateAdapter(algorithm="min-sum")
    policy = adapter.calibrate(
        snr_grid_db=np.arange(-2.0, 30.0, 2.0), n_frames=calibration_frames, rng=rng
    )
    for config in adapter.configs:
        print(f"  {config.label:28s} usable above {policy.thresholds[config]:5.1f} dB")

    print("\nRunning rate adaptation with a stale (2-packet-old) SNR estimate ...")
    adapted = adapter.simulate_adaptive_transfer(
        policy,
        true_snr_per_packet_db=packet_snrs_db,
        observation_lag_packets=2,
        n_frames_per_packet=frames_per_packet,
        rng=rng,
    )

    print("Running the rateless spinal sender (no SNR estimate at all) ...")
    spinal_rate = spinal_over_trace(packet_snrs_db, symbols_per_packet=2048, rng=rng)

    print("\n=== Results (payload bits per channel use) ===")
    print(f"  mean channel capacity        : {mean_capacity:.2f}")
    print(f"  LDPC + threshold adaptation  : {adapted['mean_rate']:.2f}")
    print(f"  rateless spinal code         : {spinal_rate:.2f}")
    print(
        "\nThe adaptation baseline loses throughput both when it under-shoots "
        "(picks too slow a rate)\nand when it over-shoots (stale estimate, frame "
        "lost); the rateless code pays neither cost."
    )


if __name__ == "__main__":
    main()
