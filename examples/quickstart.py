#!/usr/bin/env python3
"""Quickstart: encode, transmit, and decode one message with a spinal code.

This walks through the paper's Figure 1 step by step:

1. split the message into k-bit segments and hash them into the *spine*;
2. expand each spine value into symbols, pass by pass;
3. push symbols through an AWGN channel;
4. decode with the practical bubble decoder by replaying the encoder;
5. run the full rateless loop and report the achieved rate.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AWGNChannel,
    BubbleDecoder,
    Framer,
    RatelessSession,
    SpinalEncoder,
    SpinalParams,
)
from repro.core.encoder import ReceivedObservations
from repro.theory import awgn_capacity_db


def main() -> None:
    rng = np.random.default_rng(42)

    # The paper's Figure 2 parameters: 24-bit messages, k=8, c=10, B=16.
    params = SpinalParams(k=8, c=10)
    encoder = SpinalEncoder(params)
    message = rng.integers(0, 2, size=24, dtype=np.uint8)

    print("=== 1. Message and spine (Figure 1) ===")
    print("message bits :", "".join(map(str, message)))
    segments = encoder.spine_generator.segment_values(message)
    spine = encoder.spine(message)
    for t, (segment, value) in enumerate(zip(segments, spine), start=1):
        print(f"  segment M_{t} = {int(segment):3d} (0b{int(segment):08b})  ->  "
              f"spine s_{t} = 0x{int(value):016x}")

    print("\n=== 2. Symbols, pass by pass ===")
    symbols = encoder.encode_passes(message, n_passes=3)
    for pass_index, row in enumerate(symbols, start=1):
        rendered = ", ".join(f"{s.real:+.2f}{s.imag:+.2f}j" for s in row)
        print(f"  pass {pass_index}: {rendered}")

    print("\n=== 3. One noisy pass through an AWGN channel at 10 dB ===")
    channel = AWGNChannel(snr_db=10.0, adc_bits=14)
    received_pass = channel.transmit(symbols[0], rng)
    print("  received:", ", ".join(f"{s.real:+.2f}{s.imag:+.2f}j" for s in received_pass))

    print("\n=== 4. Decode by replaying the encoder over a pruned tree ===")
    observations = ReceivedObservations(n_segments=spine.size)
    for position, value in enumerate(received_pass):
        observations.add(position, pass_index=0, value=value)
    # Two more passes make the single-shot decode reliable at 10 dB
    # (3 passes = 9 symbols for 24 bits, i.e. 2.7 bits/symbol, comfortably
    # below the 3.46 bits/symbol capacity of the channel).
    for extra_pass in (1, 2):
        received_extra = channel.transmit(symbols[extra_pass], rng)
        for position, value in enumerate(received_extra):
            observations.add(position, pass_index=extra_pass, value=value)
    decoder = BubbleDecoder(encoder, beam_width=16)
    result = decoder.decode(n_message_bits=24, observations=observations)
    print("  decoded bits :", "".join(map(str, result.message_bits)))
    print("  correct      :", bool(np.array_equal(result.message_bits, message)))
    print("  path cost    :", f"{result.path_cost:.3f}")
    print("  tree nodes   :", result.candidates_explored)

    print("\n=== 5. The full rateless loop ===")
    framer = Framer(payload_bits=24, k=params.k)
    session = RatelessSession(
        encoder,
        decoder_factory=lambda enc: BubbleDecoder(enc, beam_width=16),
        channel=channel,
        framer=framer,
    ).codec_session()  # the code-agnostic session API (repro.phy)
    rates = []
    for _ in range(20):
        payload = rng.integers(0, 2, size=24, dtype=np.uint8)
        trial = session.run(payload, rng)
        assert trial.payload_correct
        rates.append(trial.rate)
    print(f"  mean achieved rate over 20 messages: {np.mean(rates):.2f} bits/symbol")
    print(f"  Shannon capacity at 10 dB          : {awgn_capacity_db(10.0):.2f} bits/symbol")


if __name__ == "__main__":
    main()
