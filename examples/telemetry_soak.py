#!/usr/bin/env python3
"""Bit-transparent telemetry end to end: instrument a soak, export, report.

The telemetry layer (``repro.obs``) watches every layer of the stack —
decoder cache behaviour, the paper's symbols-to-decode statistic at the
PHY, ARQ accounting at the link, scheduler grants at the MAC, and queue /
batch dynamics in the serve engine — without changing a single bit of any
run.  This walkthrough shows the full loop:

1. install the sink (*before* building the engine: instrumented classes
   capture it once at construction), soak 96 concurrent sessions, and
   prove bit-transparency by re-running with the sink disabled;
2. read metrics in process: counters, the symbols-to-decode histogram,
   and the decode-batch spans;
3. export the JSONL / Chrome-trace / Prometheus files and render the
   ASCII report the ``repro obs report`` CLI command produces.

Run with:  python examples/telemetry_soak.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.obs import (
    Telemetry,
    render_report,
    set_current,
    validate_directory,
    write_all,
)
from repro.serve import SoakConfig, SoakEngine

CONFIG = SoakConfig(n_sessions=96, max_in_flight=24, snr_db=8.0, seed=20111114)


def main() -> None:
    # -- 1. an observed soak, and the bit-transparency contract ---------------
    telemetry = Telemetry()
    previous = set_current(telemetry)  # install BEFORE constructing the engine
    try:
        observed = SoakEngine(CONFIG).run()
    finally:
        set_current(previous)
    plain = SoakEngine(CONFIG).run()
    assert observed.delivery_log_json() == plain.delivery_log_json()
    print(
        f"soaked {CONFIG.n_sessions} sessions; delivery log byte-identical "
        f"with telemetry on and off\n"
    )

    # -- 2. in-process reads --------------------------------------------------
    delivered = telemetry.counter_value("serve.sessions", outcome="delivered")
    batches = telemetry.counter_value("decoder.batch_decodes")
    print(f"sessions delivered : {delivered:.0f}")
    print(f"decode batches     : {batches:.0f}")

    # The paper's core statistic: channel uses needed to decode, as a
    # power-of-two histogram (upper edge -> count).
    histogram = telemetry.histogram_counts("phy.symbols_to_decode")
    print("symbols-to-decode  :", {
        int(le): n for le, n in histogram.items() if n and le != float("inf")
    })

    spans = [s for s in telemetry.spans if s["name"] == "serve.decode_batch"]
    busiest = max(spans, key=lambda s: s["dur_us"])
    print(
        f"decode-batch spans : {len(spans)}, busiest {busiest['dur_us']:.0f} us "
        f"(width {busiest['labels']['width']}, "
        f"ticks {busiest['t_sym']}-{busiest['t_sym_end']})\n"
    )

    # -- 3. export and report -------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp) / "telemetry"
        paths = write_all(telemetry, out)
        problems = validate_directory(out)
        assert problems == [], problems
        print(f"exported {sorted(p.name for p in paths.values())}, schemas ok\n")
        # The same renderer backs `repro obs report <file>`; trace.json loads
        # in chrome://tracing or ui.perfetto.dev.
        print(render_report(paths["jsonl"]))


if __name__ == "__main__":
    main()
