#!/usr/bin/env python3
"""A multi-user uplink cell: MAC schedulers over shared-medium spinal sessions.

The paper's closing argument is network-level — a rateless PHY removes the
rate-adaptation loop, and the benefit shows up across *many* users with
different, time-varying SNRs.  This example builds that cell three ways:

1. a static-SNR cell (near / mid / far users) under all three MAC
   schedulers, showing the work-conserving null result: aggregate goodput
   is scheduler-invariant on static channels, only waiting time moves;
2. the same cell with wall-clock sinusoidal SNR traces, where opportunistic
   (max-SNR) and proportional-fair scheduling extract real multi-user
   diversity gain over round-robin;
3. a rateless vs rate-adaptation shoot-out: the same users, the same
   channels, but every packet sent as a threshold-adapted fixed-rate spinal
   frame — the status quo the paper argues against.

Run with:  python examples/cell_simulation.py
"""

from __future__ import annotations

import numpy as np

from repro.channels.awgn import AWGNChannel, TimeVaryingAWGNChannel
from repro.channels.traces import sinusoidal_trace
from repro.core.params import SpinalParams
from repro.experiments.runner import SpinalRunConfig
from repro.mac import CellUser, MacCell, RatelessLink, simulate_cell
from repro.mac.adaptive import AdaptiveSpinalLink, calibrate_spinal_rate_policy
from repro.mac.cell import spread_snrs
from repro.utils.asciiplot import ascii_plot
from repro.utils.bitops import random_message_bits
from repro.utils.rng import spawn_rng

PAYLOAD_BITS = 16
PARAMS = SpinalParams(k=4, c=6)
CONFIG = SpinalRunConfig(
    payload_bits=PAYLOAD_BITS,
    params=PARAMS,
    beam_width=8,
    search="sequential",
    max_symbols=1024,
)
SCHEDULERS = ("round-robin", "max-snr", "proportional-fair")
SEED = 20111114


def payloads(user: int, n_packets: int):
    return [
        random_message_bits(PAYLOAD_BITS, spawn_rng(SEED, "cell-example", user, i))
        for i in range(n_packets)
    ]


def static_cell_users(snrs_db, n_packets=6):
    return [
        CellUser(
            RatelessLink(
                CONFIG.build_session(
                    AWGNChannel(snr, adc_bits=14), 1024, search="sequential"
                )
            ),
            payloads(user, n_packets),
        )
        for user, snr in enumerate(snrs_db)
    ]


def time_varying_users(n_users=4, n_packets=80):
    users = []
    for user in range(n_users):
        trace = sinusoidal_trace(
            10.0, 9.0, 64, 64, phase=2 * np.pi * user / n_users
        )
        channel = TimeVaryingAWGNChannel(trace, adc_bits=14)
        session = CONFIG.build_session(channel, 1024, search="sequential")
        users.append(CellUser(RatelessLink(session), payloads(user, n_packets)))
    return users


def main() -> None:
    snrs = spread_snrs(12.0, 12.0, 4)  # 6 .. 18 dB: far, mid, mid, near
    print("== 1. Static cell: 4 rateless users at", [f"{s:.0f} dB" for s in snrs])
    print(f"{'scheduler':<20} {'goodput':>8} {'fairness':>9} {'mean lat':>9} {'p90 lat':>8}")
    for name in SCHEDULERS:
        result = simulate_cell(static_cell_users(snrs), name, seed=SEED)
        print(
            f"{name:<20} {result.aggregate_goodput:>8.3f} {result.jain_fairness:>9.3f} "
            f"{result.mean_latency:>9.1f} {result.latency_percentile(90):>8.1f}"
        )
    print(
        "(static channels: goodput is scheduler-invariant by construction —\n"
        " per-packet symbol counts don't depend on service order; latency does)\n"
    )

    horizon = 600
    print(f"== 2. Time-varying cell: anti-phase fades, full-buffer horizon {horizon}")
    throughput = {}
    for name in SCHEDULERS:
        cell = MacCell(time_varying_users(), name, seed=SEED)
        result = cell.run_until(horizon)
        throughput[name] = result.delivered_bits / horizon
        print(f"{name:<20} {throughput[name]:>8.3f} bits/symbol-time")
    gain = 100.0 * (throughput["max-snr"] / throughput["round-robin"] - 1.0)
    print(f"(opportunistic gain of max-SNR over round-robin: {gain:+.0f}%)\n")

    print("== 3. Rateless vs threshold rate adaptation, cell level")
    policy = calibrate_spinal_rate_policy(
        payload_bits=PAYLOAD_BITS,
        params=PARAMS,
        beam_width=8,
        adc_bits=14,
        pass_choices=(1, 2, 4, 8),
        snr_grid_db=(0.0, 4.0, 8.0, 12.0, 16.0, 20.0),
        n_frames=8,
        target_frame_error_rate=0.1,
        rng=spawn_rng(SEED, "cell-example-calibration"),
    )
    print("calibrated menu (passes -> min SNR dB):", {
        option.n_passes: round(threshold, 1) if np.isfinite(threshold) else "never"
        for option, threshold in sorted(
            policy.thresholds.items(), key=lambda item: item[0].n_passes
        )
    })
    spreads = (0.0, 6.0, 12.0, 18.0)
    curves = {"rateless": [], "adaptive": []}
    for spread in spreads:
        cell_snrs = spread_snrs(12.0, spread, 4)
        rateless = simulate_cell(static_cell_users(cell_snrs), "round-robin", seed=SEED)
        adaptive_users = [
            CellUser(
                AdaptiveSpinalLink(
                    policy,
                    AWGNChannel(snr, adc_bits=14),
                    PAYLOAD_BITS,
                    PARAMS,
                    beam_width=8,
                    max_symbols=1024,
                ),
                payloads(user, 6),
            )
            for user, snr in enumerate(cell_snrs)
        ]
        adaptive = simulate_cell(adaptive_users, "round-robin", seed=SEED)
        curves["rateless"].append(rateless.aggregate_goodput)
        curves["adaptive"].append(adaptive.aggregate_goodput)
        print(
            f"spread {spread:>4.0f} dB: rateless {rateless.aggregate_goodput:.3f} vs "
            f"adaptive {adaptive.aggregate_goodput:.3f} bits/symbol-time "
            f"({rateless.n_delivered}/{rateless.n_packets} vs "
            f"{adaptive.n_delivered}/{adaptive.n_packets} delivered)"
        )
    print()
    print(
        ascii_plot(
            list(spreads),
            curves,
            x_label="SNR spread across users (dB)",
            y_label="aggregate goodput",
            connect=True,
        )
    )
    print(
        "\nThe rateless cell needs no calibration, no CSI, no menu — and still "
        "dominates the\nadapted fixed-rate cell at every spread: the paper's "
        "network-level claim, reproduced."
    )


if __name__ == "__main__":
    main()
