#!/usr/bin/env python3
"""Network coding over rateless links: butterfly, two-way relay, multicast.

Section 6 of the paper argues rateless codes suit links whose quality the
sender cannot know in advance; this example shows they also compose with
*network coding*, where intermediate nodes combine packets instead of just
forwarding them.  Three demonstrations:

* the classic **butterfly**: two sources, two sinks that each want both
  payloads, and one shared bottleneck edge.  Plain forwarding pushes two
  packets per round through the bottleneck; letting the relay XOR them
  pushes one, and each sink resolves the combination with its direct copy;
* **two-way XOR relaying**: A and B exchange payloads through a relay in
  three rateless phases instead of four — the relay broadcasts one stream
  carrying ``A XOR B`` that both endpoints decode and un-XOR;
* **multicast over rateless codes**: one broadcast stream reaches every
  child for the cost of the *slowest* child (``max``), versus one unicast
  stream per child (``sum``).

Run with:  python examples/butterfly_multicast.py
"""

from __future__ import annotations

import numpy as np

from repro import MulticastTreeConfig, TwoWayConfig, run_multicast_tree, run_two_way_exchange
from repro.link import (
    TransportConfig,
    build_dag_sessions,
    butterfly,
    simulate_dag_transport,
)
from repro.utils.results import render_table
from repro.utils.rng import spawn_rng

SEED = 20111114


def butterfly_demo() -> None:
    """XOR at the relay halves the bottleneck edge's airtime."""
    print("== butterfly: XOR coding on the shared bottleneck ==")
    print(
        """
        src-a ----------------> sink-a        src-b ----------------> sink-b
           \\                      ^              /                      ^
            +--> relay            |  <----------+                       |
                   | (bottleneck) |                                     |
                   v              |                                     |
                 spread ----------+----------------> ... --------------+
        """
    )
    topology = butterfly(snr_db=12.0)
    rounds = 2
    payloads = {
        src: [
            spawn_rng(SEED, "bfly-payload", src, rnd)
            .integers(0, 2, size=16)
            .astype(np.uint8)
            for rnd in range(rounds)
        ]
        for src in topology.sources
    }

    results = {}
    for label, xor_nodes in (("plain", ()), ("xor", ("relay",))):
        sessions = build_dag_sessions("spinal", topology, seed=SEED, smoke=True)
        results[label] = simulate_dag_transport(
            topology, sessions, payloads, TransportConfig(seed=7), xor_nodes=xor_nodes
        )

    rows = []
    for label, result in results.items():
        sinks_ok = all(
            np.array_equal(result.recovered(sink)[(rnd, src)], payloads[src][rnd])
            for sink in topology.sinks
            for rnd in range(rounds)
            for src in topology.sources
        )
        rows.append(
            (
                label,
                result.symbols_on_edge("relay", "spread"),
                result.total_symbols_sent,
                result.makespan,
                "yes" if sinks_ok else "NO",
            )
        )
    print(render_table(["scheme", "bottleneck", "total symbols", "makespan", "both sinks ok"], rows))


def two_way_demo() -> None:
    """Three rateless phases instead of four for a full exchange."""
    print("\n== two-way relay: A <-> B through R with an XOR broadcast ==")
    result = run_two_way_exchange(
        TwoWayConfig(
            family="spinal", snr_a_db=33.0, snr_b_db=33.0, rounds=4, seed=SEED, smoke=True
        )
    )
    rows = [
        ("xor (3 phases)", result.xor_total_uses, f"{result.xor_delivery_rate:.2f}"),
        (
            "one-way x2 (4 phases)",
            result.baseline_total_uses,
            f"{result.baseline_delivery_rate:.2f}",
        ),
    ]
    print(render_table(["scheme", "medium uses", "delivery"], rows))
    print(
        f"saving: {result.medium_use_saving:.1%} of total medium uses "
        f"({result.downlink_saving:.1%} of the downlink)"
    )


def multicast_demo() -> None:
    """One stream per node serves all children for max (not sum) symbols."""
    print("\n== multicast tree: broadcast (max) vs per-child unicast (sum) ==")
    result = run_multicast_tree(
        MulticastTreeConfig(
            family="spinal", depth=2, branching=2, snr_db=33.0, rounds=2, seed=SEED, smoke=True
        )
    )
    print(
        f"{result.n_leaves} leaves: broadcast={result.broadcast_total} symbols, "
        f"unicast={result.unicast_total} symbols "
        f"(saving {result.medium_use_saving:.1%}, "
        f"delivery {result.delivery_rate:.2f})"
    )


if __name__ == "__main__":
    butterfly_demo()
    two_way_demo()
    multicast_demo()
