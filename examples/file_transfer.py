#!/usr/bin/env python3
"""Packetised file transfer with CRC termination and realistic feedback.

The paper's evaluation uses genie termination ("the receiver informs the
sender as soon as it is able to fully decode") to isolate the code's
performance.  A real link needs two extra ingredients, both exercised here:

* a CRC inside each framed packet so the receiver can detect success by
  itself (Section 3.2 suggests exactly this);
* a feedback protocol so the sender knows when to stop; we compare perfect,
  delayed and per-block feedback (Section 6 lists this as future work).

The "file" is a pseudo-random byte string split into 3-byte payloads
(24 bits, the paper's message size).

Run with:  python examples/file_transfer.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AWGNChannel,
    BubbleDecoder,
    CRC16_CCITT,
    Framer,
    RatelessSession,
    SpinalEncoder,
    SpinalParams,
)
from repro.core.puncturing import TailFirstPuncturing
from repro.link import BlockFeedback, DelayedFeedback, PerfectFeedback, simulate_link_session
from repro.theory import awgn_capacity_db
from repro.utils.bitops import bits_to_bytes, bytes_to_bits
from repro.utils.rng import spawn_rng


def main() -> None:
    rng = spawn_rng(1234, "file-transfer")
    snr_db = 12.0
    payload_bits = 24

    file_bytes = rng.integers(0, 256, size=60, dtype=np.uint8).tobytes()
    file_bits = bytes_to_bits(file_bytes)
    n_packets = file_bits.size // payload_bits
    print(f"Transferring {len(file_bytes)} bytes as {n_packets} packets of "
          f"{payload_bits} bits over AWGN at {snr_db:.0f} dB "
          f"(capacity {awgn_capacity_db(snr_db):.2f} bits/symbol)")

    params = SpinalParams(k=8, c=10)
    encoder = SpinalEncoder(params, puncturing=TailFirstPuncturing())
    # CRC-16 keeps the false-accept probability negligible even though the
    # receiver attempts a decode after every symbol; CRC-8 would save 8 bits
    # of overhead per packet at the cost of roughly a 0.4% false-accept rate
    # per decode attempt.
    framer = Framer(payload_bits=payload_bits, k=params.k, crc=CRC16_CCITT)
    channel = AWGNChannel(snr_db=snr_db, adc_bits=14)
    session = RatelessSession(
        encoder,
        decoder_factory=lambda enc: BubbleDecoder(enc, beam_width=16),
        channel=channel,
        framer=framer,
        termination="crc",
        count_overhead=True,
        max_symbols=2048,
        search="sequential",
    )

    received_payloads = []
    symbols_needed = []
    decode_attempts = 0
    for packet_index in range(n_packets):
        payload = file_bits[packet_index * payload_bits : (packet_index + 1) * payload_bits]
        trial = session.run(payload, rng)
        if not trial.payload_correct:
            print(f"  packet {packet_index}: CRC passed on a wrong payload "
                  "(rare false positive) — a real link would catch it end-to-end")
        received_payloads.append(trial.decoded_payload)
        symbols_needed.append(trial.symbols_sent)
        decode_attempts += trial.decode_attempts

    received_bits = np.concatenate(received_payloads)
    ok = bits_to_bytes(received_bits) == file_bytes
    print(f"File reassembled correctly: {ok}")
    print(f"Mean symbols per packet    : {np.mean(symbols_needed):.1f} "
          f"(CRC adds {framer.overhead_bits} overhead bits per packet)")
    print(f"Total decode attempts      : {decode_attempts}")

    print("\n=== Throughput under different feedback protocols ===")
    models = [
        PerfectFeedback(),
        DelayedFeedback(delay_symbols=4),
        BlockFeedback(block_symbols=8, overhead_symbols=1),
        BlockFeedback(block_symbols=24, overhead_symbols=1),
    ]
    for model in models:
        link = simulate_link_session(symbols_needed, payload_bits, model)
        print(f"  {model.describe():38s} throughput {link.throughput_bits_per_symbol:5.2f} "
              f"bits/symbol (efficiency {link.feedback_efficiency:4.2f})")


if __name__ == "__main__":
    main()
