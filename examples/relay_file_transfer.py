#!/usr/bin/env python3
"""Two-hop decode-and-forward file transfer over the ARQ transport.

`examples/file_transfer.py` moves a file over one link with closed-form
feedback accounting.  This example upgrades both halves of that story:

* the feedback is *simulated*, not assumed — a selective-repeat sliding
  window with a delayed, lossy reverse channel, so the printed overhead is
  what the protocol actually spent;
* the path is a two-hop relay (source -> relay -> destination) whose second
  hop is noisier; the relay fully decodes each packet and re-encodes it
  with a fresh hash seed, and the two hops pipeline under one event clock.

Run with:  python examples/relay_file_transfer.py
"""

from __future__ import annotations

import numpy as np

from repro.experiments.runner import SpinalRunConfig
from repro.link import TransportConfig, build_relay_sessions, simulate_relay_transport
from repro.theory import awgn_capacity_db
from repro.utils.bitops import bits_to_bytes, bytes_to_bits
from repro.utils.rng import spawn_rng


def main() -> None:
    payload_bits = 24
    hop_snrs_db = [12.0, 6.0]  # the relay's outbound hop is 6 dB worse
    window = 4
    ack_delay = 16
    ack_loss = 0.1

    rng = spawn_rng(4242, "relay-file")
    file_bytes = rng.integers(0, 256, size=45, dtype=np.uint8).tobytes()
    file_bits = bytes_to_bits(file_bytes)
    n_packets = file_bits.size // payload_bits
    payloads = [
        file_bits[i * payload_bits : (i + 1) * payload_bits] for i in range(n_packets)
    ]
    print(
        f"Transferring {len(file_bytes)} bytes as {n_packets} packets of "
        f"{payload_bits} bits over a {len(hop_snrs_db)}-hop relay"
    )
    for hop, snr in enumerate(hop_snrs_db):
        print(
            f"  hop {hop}: AWGN {snr:.0f} dB "
            f"(capacity {awgn_capacity_db(snr):.2f} bits/symbol)"
        )

    run_config = SpinalRunConfig(payload_bits=payload_bits, max_symbols=2048)
    sessions = build_relay_sessions(run_config, hop_snrs_db)
    transport = TransportConfig(
        protocol="selective-repeat",
        window=window,
        ack_delay=ack_delay,
        ack_loss=ack_loss,
        seed=4242,
    )
    print(
        f"Protocol: selective-repeat, window {window}, ACK delay {ack_delay} "
        f"symbol-times, ACK loss {ack_loss:.0%}"
    )

    result = simulate_relay_transport(sessions, payloads, transport)

    final_hop = result.hops[-1]
    received = {
        int(final_hop.orig_indices[i]): final_hop.decoded_payloads[i]
        for i in range(final_hop.n_packets)
        if final_hop.delivered[i]
    }
    received_bits = np.concatenate([received[i] for i in sorted(received)])
    ok = bits_to_bytes(received_bits) == file_bytes
    print(f"\nFile reassembled correctly : {ok} "
          f"({result.n_delivered}/{result.n_packets} packets delivered)")
    print(f"End-to-end makespan        : {result.makespan} symbol-times")
    print(f"End-to-end goodput         : {result.end_to_end_goodput:.2f} bits/symbol-time")
    print(f"Symbol efficiency          : {result.symbol_efficiency:.2f} "
          "(needed/spent; 1.00 = perfect feedback)")

    print("\nPer-hop accounting:")
    for hop_index, hop in enumerate(result.hops):
        print(
            f"  hop {hop_index}: {hop.total_symbols_sent:5d} symbols for "
            f"{int(hop.symbols_needed.sum()):5d} needed "
            f"(efficiency {hop.symbol_efficiency:.2f}), "
            f"{hop.acks_sent} ACKs sent, {hop.acks_lost} lost"
        )
    link = final_hop.link_session_result()
    print(
        f"\nFinal hop in link-session terms: throughput "
        f"{link.throughput_bits_per_symbol:.2f} bits/symbol, "
        f"feedback efficiency {link.feedback_efficiency:.2f}"
    )


if __name__ == "__main__":
    main()
