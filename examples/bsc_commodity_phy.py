#!/usr/bin/env python3
"""Spinal codes over a commodity PHY: the binary-symmetric-channel mode.

Section 1 and 3 of the paper point out that when the physical layer cannot
be modified, spinal codes can still emit *coded bits* that ride on whatever
modulation the hardware provides; the end-to-end link then looks like a
binary symmetric channel.  This example:

* runs the bit-mode spinal code over BSCs of varying crossover probability
  and compares the achieved rate with the BSC capacity ``1 - H2(p)``
  (Theorem 2 says ML decoding achieves it; the bubble decoder gets close);
* shows the same code surviving a burst-error channel (a Gilbert–Elliott
  trace mapped onto per-bit flip probabilities) without any reconfiguration.

Run with:  python examples/bsc_commodity_phy.py
"""

from __future__ import annotations

import numpy as np

from repro import BSCChannel, BubbleDecoder, Framer, RatelessSession, SpinalEncoder, SpinalParams
from repro.channels.base import BitChannel
from repro.core.puncturing import TailFirstPuncturing
from repro.theory import bsc_capacity
from repro.utils.results import render_table
from repro.utils.rng import spawn_rng


class BurstyBitChannel(BitChannel):
    """Two-state (Gilbert-Elliott) bit-flipping channel for the burst demo."""

    def __init__(self, p_good: float, p_bad: float, p_enter_bad: float, p_leave_bad: float):
        self.p_good = p_good
        self.p_bad = p_bad
        self.p_enter_bad = p_enter_bad
        self.p_leave_bad = p_leave_bad
        self._in_bad = False

    def reset(self) -> None:
        self._in_bad = False

    def transmit(self, values, rng):
        values = np.asarray(values, dtype=np.uint8)
        out = values.copy()
        for i in range(values.size):
            p = self.p_bad if self._in_bad else self.p_good
            if rng.random() < p:
                out[i] ^= 1
            if self._in_bad:
                if rng.random() < self.p_leave_bad:
                    self._in_bad = False
            elif rng.random() < self.p_enter_bad:
                self._in_bad = True
        return out


def run_bsc_sweep() -> None:
    params = SpinalParams(k=4, bit_mode=True)
    framer = Framer(payload_bits=32, k=params.k)
    rows = []
    for p in (0.01, 0.05, 0.1, 0.2, 0.3):
        encoder = SpinalEncoder(params, puncturing=TailFirstPuncturing())
        session = RatelessSession(
            encoder,
            decoder_factory=lambda enc: BubbleDecoder(enc, beam_width=16),
            channel=BSCChannel(p),
            framer=framer,
            max_symbols=16384,
            search="bisect",
        )
        rng = spawn_rng(5, "bsc-example", p)
        rates = []
        for _ in range(15):
            payload = rng.integers(0, 2, size=32, dtype=np.uint8)
            trial = session.run(payload, rng)
            rates.append(trial.rate)
        rows.append((p, bsc_capacity(p), float(np.mean(rates))))
    print("=== Bit-mode spinal code over a BSC (k=4, B=16, 32-bit messages) ===")
    print(render_table(["crossover p", "BSC capacity", "achieved rate"], rows))


def run_burst_demo() -> None:
    params = SpinalParams(k=4, bit_mode=True)
    framer = Framer(payload_bits=32, k=params.k)
    encoder = SpinalEncoder(params, puncturing=TailFirstPuncturing())
    channel = BurstyBitChannel(p_good=0.02, p_bad=0.35, p_enter_bad=0.02, p_leave_bad=0.1)
    session = RatelessSession(
        encoder,
        decoder_factory=lambda enc: BubbleDecoder(enc, beam_width=16),
        channel=channel,
        framer=framer,
        max_symbols=16384,
        search="bisect",
    )
    rng = spawn_rng(5, "burst-example")
    rates, successes = [], 0
    for _ in range(15):
        payload = rng.integers(0, 2, size=32, dtype=np.uint8)
        trial = session.run(payload, rng)
        successes += int(trial.payload_correct)
        rates.append(trial.rate)
    print("\n=== Same code over a bursty (Gilbert-Elliott) bit channel ===")
    print(f"  delivered {successes}/15 messages correctly, "
          f"mean rate {np.mean(rates):.3f} bits per channel bit")
    print("  (the sender never knew whether it was in the good or the bad state)")


def main() -> None:
    run_bsc_sweep()
    run_burst_demo()


if __name__ == "__main__":
    main()
