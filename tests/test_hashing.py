"""Unit and statistical tests for the hash-function family (repro.core.hashing).

The paper's construction assumes the hash family behaves like a uniform,
pairwise-independent random mapping (equations (1)-(2)); the statistical
tests here check those assumptions empirically at a coarse but meaningful
level (uniform output distribution, independence across salts, avalanche).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hashing import SaltedHashFamily, avalanche_score, popcount64, splitmix64


@pytest.fixture
def family() -> SaltedHashFamily:
    return SaltedHashFamily(seed=123, k=8)


class TestConstruction:
    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            SaltedHashFamily(seed=1, k=0)
        with pytest.raises(ValueError):
            SaltedHashFamily(seed=1, k=40)

    def test_rejects_oversized_seed(self):
        with pytest.raises(ValueError):
            SaltedHashFamily(seed=2**64, k=4)

    def test_initial_state_is_zero(self, family):
        assert int(family.initial_state) == 0


class TestSplitmix:
    def test_scalar_returns_int(self):
        assert isinstance(splitmix64(1), int)

    def test_array_returns_array(self):
        out = splitmix64(np.arange(4, dtype=np.uint64))
        assert isinstance(out, np.ndarray) and out.dtype == np.uint64

    def test_distinct_inputs_distinct_outputs(self):
        outputs = splitmix64(np.arange(1000, dtype=np.uint64))
        assert len(np.unique(outputs)) == 1000


class TestHashSpine:
    def test_deterministic(self, family):
        assert family.hash_spine_scalar(5, 17) == family.hash_spine_scalar(5, 17)

    def test_depends_on_state(self, family):
        assert family.hash_spine_scalar(5, 17) != family.hash_spine_scalar(6, 17)

    def test_depends_on_segment(self, family):
        assert family.hash_spine_scalar(5, 17) != family.hash_spine_scalar(5, 18)

    def test_depends_on_seed(self):
        a = SaltedHashFamily(seed=1, k=8).hash_spine_scalar(5, 17)
        b = SaltedHashFamily(seed=2, k=8).hash_spine_scalar(5, 17)
        assert a != b

    def test_broadcasting_matches_scalar(self, family):
        states = np.array([1, 2, 3], dtype=np.uint64)
        segments = np.array([10, 20], dtype=np.uint64)
        grid = family.hash_spine(states[:, None], segments[None, :])
        assert grid.shape == (3, 2)
        for i, s in enumerate(states):
            for j, m in enumerate(segments):
                assert int(grid[i, j]) == family.hash_spine_scalar(int(s), int(m))

    def test_rejects_segment_exceeding_k_bits(self, family):
        with pytest.raises(ValueError):
            family.hash_spine(np.uint64(1), np.uint64(256))

    def test_no_collisions_over_all_segments(self, family):
        """All 2^k children of one node must be distinct spine values."""
        children = family.hash_spine(np.uint64(42), np.arange(256, dtype=np.uint64))
        assert len(np.unique(children)) == 256

    def test_output_uniformity(self, family, rng):
        """Equation (1): hashed outputs should be uniform over the 64-bit range.

        Checked coarsely with a chi-square-style bound on 16 equal bins.
        """
        states = rng.integers(0, 2**63, size=8000, dtype=np.uint64)
        segments = rng.integers(0, 256, size=8000, dtype=np.uint64)
        outputs = family.hash_spine(states, segments)
        bins = (outputs >> np.uint64(60)).astype(np.int64)  # top 4 bits -> 16 bins
        counts = np.bincount(bins, minlength=16)
        expected = 8000 / 16
        chi_square = float(((counts - expected) ** 2 / expected).sum())
        # 15 degrees of freedom; 99.9th percentile is ~37.7.
        assert chi_square < 45.0

    def test_bit_balance(self, family, rng):
        """Every output bit should be set roughly half the time."""
        states = rng.integers(0, 2**63, size=4000, dtype=np.uint64)
        segments = rng.integers(0, 256, size=4000, dtype=np.uint64)
        outputs = family.hash_spine(states, segments)
        for bit in range(0, 64, 8):
            fraction = float(((outputs >> np.uint64(bit)) & np.uint64(1)).mean())
            assert 0.45 < fraction < 0.55


class TestSymbolWord:
    def test_different_passes_differ(self, family):
        a = family.symbol_word(np.uint64(99), 0)
        b = family.symbol_word(np.uint64(99), 1)
        assert int(a) != int(b)

    def test_rejects_negative_pass(self, family):
        with pytest.raises(ValueError):
            family.symbol_word(np.uint64(1), -1)

    def test_symbol_value_bit_width(self, family):
        values = family.symbol_value(np.arange(100, dtype=np.uint64), 0, 12)
        assert int(values.max()) < (1 << 12)

    def test_symbol_value_rejects_bad_width(self, family):
        with pytest.raises(ValueError):
            family.symbol_value(np.uint64(1), 0, 0)
        with pytest.raises(ValueError):
            family.symbol_value(np.uint64(1), 0, 65)

    def test_symbol_value_top_bits_of_word(self, family):
        word = family.symbol_word(np.uint64(7), 3)
        value = family.symbol_value(np.uint64(7), 3, 10)
        assert int(value) == int(word) >> 54

    def test_independence_across_passes(self, family, rng):
        """Equation (2): words salted with different passes look independent."""
        states = rng.integers(0, 2**63, size=4000, dtype=np.uint64)
        bits_a = (family.symbol_word(states, 0) >> np.uint64(63)).astype(np.int64)
        bits_b = (family.symbol_word(states, 1) >> np.uint64(63)).astype(np.int64)
        correlation = abs(np.corrcoef(bits_a, bits_b)[0, 1])
        assert correlation < 0.06

    def test_pass_array_broadcast(self, family):
        states = np.array([1, 2], dtype=np.uint64)
        passes = np.array([0, 1, 2], dtype=np.int64)
        grid = family.symbol_word(states[:, None], passes[None, :])
        assert grid.shape == (2, 3)
        assert int(grid[1, 2]) == int(family.symbol_word(np.uint64(2), 2))


class TestAvalanche:
    def test_avalanche_near_half(self, family, rng):
        """Section 4: one flipped message bit must scramble the output."""
        score = avalanche_score(family, 2000, rng)
        assert 0.45 < score < 0.55

    def test_avalanche_rejects_bad_sample_count(self, family, rng):
        with pytest.raises(ValueError):
            avalanche_score(family, 0, rng)

    def test_avalanche_near_half_at_scale(self, family):
        """The vectorised popcount makes large-sample sweeps affordable; the
        bigger sample also pins the score much more tightly around 0.5."""
        rng = np.random.default_rng(20111114)
        score = avalanche_score(family, 200_000, rng)
        assert 0.49 < score < 0.51


class TestPopcount64:
    def test_known_values(self):
        values = np.array([0, 1, 3, 0xFF, 2**64 - 1, 0x8000000000000001], dtype=np.uint64)
        assert popcount64(values).tolist() == [0, 1, 2, 8, 64, 2]

    def test_matches_python_popcount_on_random_words(self):
        rng = np.random.default_rng(7)
        values = rng.integers(0, 2**63, size=500, dtype=np.uint64)
        expected = [bin(int(v)).count("1") for v in values]
        assert popcount64(values).tolist() == expected

    def test_preserves_shape(self):
        values = np.arange(12, dtype=np.uint64).reshape(3, 4)
        counts = popcount64(values)
        assert counts.shape == (3, 4)
        assert counts[0, 3] == 2  # popcount(3)

    def test_unpackbits_fallback_agrees(self):
        values = np.random.default_rng(9).integers(0, 2**63, size=64, dtype=np.uint64)
        as_bytes = np.ascontiguousarray(values).view(np.uint8).reshape(values.size, 8)
        fallback = np.unpackbits(as_bytes, axis=1).sum(axis=1)
        assert popcount64(values).tolist() == fallback.tolist()
