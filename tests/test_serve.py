"""The serve engine's contracts: determinism, backpressure, and parity.

Three claims carry the serving-at-scale layer:

* **Byte-identical delivery logs** — same seed and admission schedule must
  produce the identical log string regardless of how the batched decode is
  chunked (``max_stack_elements``) and regardless of batching at all
  (``batching=False`` is the one-session-at-a-time driver);
* **Backpressure** — the in-flight session count never exceeds the
  admission bound, admission is FIFO, and the preallocated symbol-buffer
  pool can never be over-acquired;
* **Parity with the plain session loop** — every per-session outcome
  (symbols, attempts, success, correctness) equals a solo
  ``CodecSession.run`` of the same packet with the same derived streams.
"""

from __future__ import annotations

import json

import pytest

from repro.serve import (
    SoakConfig,
    SoakEngine,
    run_sequential_baseline,
    run_soak,
)

SEED = 20111114

#: Small but non-trivial: backlog deeper than the window, several flushes.
_BASE = SoakConfig(n_sessions=24, max_in_flight=6, seed=SEED)


def _replace(config: SoakConfig, **kw) -> SoakConfig:
    from dataclasses import replace

    return replace(config, **kw)


class TestDeliveryLogDeterminism:
    def test_rerun_is_byte_identical(self):
        engine = SoakEngine(_BASE)
        assert engine.run().delivery_log_json() == engine.run().delivery_log_json()

    def test_fresh_engine_is_byte_identical(self):
        assert (
            SoakEngine(_BASE).run().delivery_log_json()
            == SoakEngine(_BASE).run().delivery_log_json()
        )

    @pytest.mark.parametrize("max_stack_elements", [1, 64, 4096])
    def test_chunking_never_changes_the_log(self, max_stack_elements):
        reference = run_soak(_BASE).delivery_log_json()
        chunked = run_soak(
            _replace(_BASE, max_stack_elements=max_stack_elements)
        ).delivery_log_json()
        assert chunked == reference

    def test_sequential_driver_matches_batched_log(self):
        batched = run_soak(_BASE)
        sequential = run_soak(_replace(_BASE, batching=False))
        assert batched.delivery_log_json() == sequential.delivery_log_json()
        # The drivers really did differ in batching, not just in name.
        assert batched.max_batch_sessions > 1
        assert sequential.max_batch_sessions == 1

    def test_log_round_trips_as_json(self):
        log = json.loads(run_soak(_BASE).delivery_log_json())
        assert len(log) == _BASE.n_sessions
        assert {d["session"] for d in log} == set(range(_BASE.n_sessions))


class TestBaselineParity:
    def test_outcomes_match_solo_codec_sessions(self):
        result = run_soak(_BASE)
        solo = run_sequential_baseline(_BASE)
        assert result.outcomes() == [
            (r.symbols_sent, r.symbols_sent, r.decode_attempts, r.success,
             r.payload_correct)
            for r in solo
        ]

    def test_outcomes_independent_of_admission_window(self):
        """The window changes *when* sessions run, never how they decode."""
        narrow = run_soak(_replace(_BASE, max_in_flight=2))
        wide = run_soak(_replace(_BASE, max_in_flight=24))
        assert narrow.outcomes() == wide.outcomes()


class TestBackpressure:
    @pytest.mark.parametrize(
        "n_sessions,max_in_flight,arrival_spacing",
        [(24, 1, 0), (24, 5, 0), (24, 24, 0), (16, 3, 4), (9, 2, 11)],
    )
    def test_in_flight_never_exceeds_bound(
        self, n_sessions, max_in_flight, arrival_spacing
    ):
        config = _replace(
            _BASE,
            n_sessions=n_sessions,
            max_in_flight=max_in_flight,
            arrival_spacing=arrival_spacing,
        )
        result = run_soak(config)
        assert result.peak_in_flight <= max_in_flight
        assert result.peak_queue_depth <= n_sessions
        assert len(result.deliveries) == n_sessions
        for d in result.deliveries:
            assert d.arrival <= d.admitted <= d.completed
            assert d.queue_wait >= 0

    @pytest.mark.parametrize(
        "n_sessions,max_in_flight,arrival_spacing",
        [(24, 1, 0), (24, 5, 0), (16, 3, 4)],
    )
    def test_queue_depth_series_peak_matches_scalar(
        self, n_sessions, max_in_flight, arrival_spacing
    ):
        """The time series is the scalar's provenance: peak == max(series)."""
        result = run_soak(
            _replace(
                _BASE,
                n_sessions=n_sessions,
                max_in_flight=max_in_flight,
                arrival_spacing=arrival_spacing,
            )
        )
        series = result.queue_depth_series
        assert series, "every soak with queued arrivals records samples"
        assert result.peak_queue_depth == max(d for _, d in series)
        ticks = [t for t, _ in series]
        assert ticks == sorted(ticks)
        assert all(0 <= depth <= n_sessions for _, depth in series)
        # The queue always drains by the end of the soak.
        assert series[-1][1] == 0

    def test_admission_is_fifo(self):
        """Arrival order (session index at spacing 0) is admission order."""
        result = run_soak(_replace(_BASE, max_in_flight=3))
        by_session = sorted(result.deliveries, key=lambda d: d.session)
        admitted = [d.admitted for d in by_session]
        assert admitted == sorted(admitted)

    def test_arrivals_follow_the_spacing(self):
        result = run_soak(_replace(_BASE, arrival_spacing=7))
        by_session = sorted(result.deliveries, key=lambda d: d.session)
        assert [d.arrival for d in by_session] == [
            7 * i for i in range(_BASE.n_sessions)
        ]

    def test_batch_size_never_exceeds_the_window(self):
        result = run_soak(_replace(_BASE, max_in_flight=4))
        assert result.max_batch_sessions <= 4


class TestExhaustionPath:
    def test_starved_sessions_fail_cleanly(self):
        """Hopeless SNR: every session exhausts, accounting stays coherent."""
        config = _replace(_BASE, n_sessions=6, snr_db=-25.0, max_symbols=24)
        result = run_soak(config)
        assert len(result.deliveries) == 6
        for d in result.deliveries:
            assert not d.success
            assert d.symbols_sent >= config.max_symbols
            assert d.symbols_delivered == d.symbols_sent
            assert d.decode_attempts >= 1  # the best-effort decode ran
        # The latency sentinels follow the cell-metrics convention.
        assert result.n_delivered == 0
        assert result.mean_latency == 0.0
        assert result.latency_percentile(99.0) == 0.0
        # Exhaustion outcomes match the solo loop too.
        solo = run_sequential_baseline(config)
        assert result.outcomes() == [
            (r.symbols_sent, r.symbols_sent, r.decode_attempts, r.success,
             r.payload_correct)
            for r in solo
        ]


class TestConfigAndSummary:
    @pytest.mark.parametrize(
        "kw",
        [
            {"n_sessions": 0},
            {"max_in_flight": 0},
            {"arrival_spacing": -1},
            {"max_symbols": 0},
        ],
    )
    def test_invalid_config_rejected(self, kw):
        with pytest.raises(ValueError):
            _replace(_BASE, **kw)

    def test_summary_is_json_ready_and_consistent(self):
        result = run_soak(_BASE)
        summary = json.loads(json.dumps(result.summary(elapsed_s=1.0)))
        assert summary["delivered"] == result.n_delivered
        assert summary["total_symbols"] == result.total_symbols
        assert summary["symbols_per_second"] == result.total_symbols
        assert summary["peak_in_flight"] <= _BASE.max_in_flight
        deterministic = result.summary()
        assert "elapsed_s" not in deterministic
        assert "symbols_per_second" not in deterministic
