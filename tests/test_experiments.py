"""Tests of the experiment harness (runner, metrics, figure/ablation modules).

These use drastically reduced trial counts and small codes — the goal is to
verify that every experiment assembles, runs end to end, and produces
numbers with the qualitative shape the paper reports, not to regenerate the
full figures (that is what the benchmark harness does).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import SpinalParams
from repro.experiments import (
    SpinalRunConfig,
    make_puncturing,
    run_spinal_bsc_point,
    run_spinal_curve,
    run_spinal_point,
)
from repro.experiments.blocklength import blocklength_experiment, blocklength_table
from repro.experiments.constellation_maps import constellation_experiment, constellation_table
from repro.experiments.distance import distance_experiment, distance_table
from repro.experiments.feedback import feedback_experiment, feedback_table
from repro.experiments.fixed_vs_rateless import (
    fixed_vs_rateless_experiment,
    fixed_vs_rateless_table,
)
from repro.experiments.figure2 import (
    DEFAULT_SNR_GRID_DB,
    Figure2Data,
    fixed_block_bound_curve,
    figure2_table,
    ldpc_figure2_curves,
    shannon_curve,
)
from repro.experiments.metrics import bit_error_rate, crossover_snr, fraction_of_capacity
from repro.experiments.puncturing import puncturing_experiment, puncturing_table
from repro.experiments.quantization import quantization_experiment, quantization_table
from repro.experiments.scale_down import (
    monotonicity_violations,
    scale_down_experiment,
    scale_down_table,
)
from repro.experiments.theorems import (
    theorem1_gap_experiment,
    theorem1_table,
    theorem2_bsc_experiment,
    theorem2_table,
)
from repro.theory.capacity import awgn_capacity_db

# A tiny configuration reused across the fast experiment tests.
FAST = SpinalRunConfig(
    payload_bits=16,
    params=SpinalParams(k=4, c=6),
    beam_width=8,
    n_trials=5,
    adc_bits=14,
)


class TestRunner:
    def test_make_puncturing_names(self):
        for name in ("none", "symbol", "strided", "tail-first"):
            assert make_puncturing(name) is not None
        with pytest.raises(ValueError):
            make_puncturing("adaptive")

    def test_run_spinal_point_basic(self):
        measurement = run_spinal_point(FAST, snr_db=10.0)
        assert measurement.n_trials == 5
        assert measurement.success_fraction == 1.0
        assert 0.0 < measurement.mean_rate <= 2 * awgn_capacity_db(10.0)

    def test_run_spinal_point_rejects_bit_mode(self):
        config = FAST.with_(params=SpinalParams(k=4, bit_mode=True))
        with pytest.raises(ValueError):
            run_spinal_point(config, 10.0)

    def test_run_spinal_bsc_point(self):
        config = FAST.with_(params=SpinalParams(k=4, bit_mode=True))
        measurement = run_spinal_bsc_point(config, 0.05)
        assert measurement.success_fraction == 1.0
        assert 0.0 < measurement.mean_rate <= 1.0

    def test_run_spinal_bsc_rejects_symbol_mode(self):
        with pytest.raises(ValueError):
            run_spinal_bsc_point(FAST, 0.05)

    def test_run_spinal_curve(self):
        sweep = run_spinal_curve(FAST, [0.0, 10.0], name="tiny")
        assert sweep.name == "tiny"
        assert sweep.x_values() == [0.0, 10.0]
        # Higher SNR must give a higher rate.
        assert sweep.points[1].mean_rate > sweep.points[0].mean_rate

    def test_results_reproducible_for_same_seed(self):
        a = run_spinal_point(FAST, 5.0)
        b = run_spinal_point(FAST, 5.0)
        assert a.rates == b.rates

    def test_symbol_budget_adaptive(self):
        config = FAST.with_(max_symbols=None)
        assert config.symbol_budget(ideal_rate=1.0) >= 16
        assert config.symbol_budget(ideal_rate=0.0) > 1000
        explicit = FAST.with_(max_symbols=99)
        assert explicit.symbol_budget(ideal_rate=1.0) == 99


class TestMetrics:
    def test_bit_error_rate(self):
        assert bit_error_rate([0, 1, 1, 0], [0, 1, 0, 0]) == pytest.approx(0.25)
        with pytest.raises(ValueError):
            bit_error_rate([0], [0, 1])
        with pytest.raises(ValueError):
            bit_error_rate([], [])

    def test_fraction_of_capacity(self):
        assert fraction_of_capacity(2.0, 4.0) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            fraction_of_capacity(1.0, 0.0)

    def test_crossover_detection(self):
        snrs = np.array([0.0, 10.0, 20.0, 30.0])
        a = np.array([1.0, 2.0, 3.0, 3.5])
        b = np.array([0.5, 1.0, 2.5, 4.0])
        crossover = crossover_snr(snrs, a, b)
        assert 20.0 < crossover < 30.0

    def test_crossover_none_when_always_above(self):
        snrs = np.array([0.0, 10.0])
        assert crossover_snr(snrs, np.array([2.0, 3.0]), np.array([1.0, 1.0])) is None

    def test_crossover_first_point_when_always_below(self):
        snrs = np.array([0.0, 10.0])
        assert crossover_snr(snrs, np.array([0.5, 0.5]), np.array([1.0, 1.0])) == 0.0


class TestFigure2:
    def test_bound_curves_cover_grid(self):
        shannon = shannon_curve(DEFAULT_SNR_GRID_DB)
        ppv = fixed_block_bound_curve(DEFAULT_SNR_GRID_DB)
        assert len(shannon.points) == len(DEFAULT_SNR_GRID_DB)
        assert all(
            s >= p for s, p in zip(shannon.mean_rates(), ppv.mean_rates())
        )

    def test_figure2_spinal_only_small_grid(self):
        data = figure2_table(
            snr_values_db=[0.0, 10.0], spinal_config=FAST, include_ldpc=False
        )
        assert isinstance(data, Figure2Data)
        table = data.as_table()
        assert "Shannon" in table and "Spinal" in table
        fractions = data.spinal_fraction_of_capacity()
        assert np.all(fractions > 0.5)

    def test_ldpc_curves_structure(self):
        from repro.baselines.ldpc_system import LdpcConfig
        from fractions import Fraction

        curves = ldpc_figure2_curves(
            snr_values_db=[-5.0, 8.0],
            configs=(LdpcConfig(Fraction(1, 2), "BPSK"),),
            n_frames=5,
            max_iterations=15,
            algorithm="min-sum",
        )
        assert len(curves) == 1
        curve = next(iter(curves.values()))
        # Below the waterfall the rate is ~0, above it ~nominal.
        assert curve.points[0].mean_rate < 0.1
        assert curve.points[1].mean_rate > 0.4


class TestExperimentModules:
    def test_theorem1(self):
        rows = theorem1_gap_experiment(snr_values_db=(5.0, 15.0), config=FAST)
        assert len(rows) == 2
        assert all(row.capacity > row.theorem_rate for row in rows)
        assert "Δ" in theorem1_table(rows) or "gap" in theorem1_table(rows)

    def test_theorem2(self):
        config = FAST.with_(params=SpinalParams(k=4, bit_mode=True))
        rows = theorem2_bsc_experiment(crossover_probabilities=(0.05,), config=config)
        assert rows[0].fraction_of_capacity > 0.5
        assert "C_bsc" in theorem2_table(rows)

    def test_scale_down(self):
        rows = scale_down_experiment(
            snr_values_db=(10.0,), beam_widths=(1, 4, 16), base_config=FAST
        )
        assert len(rows) == 3
        # Wider beams should not be dramatically worse.
        assert monotonicity_violations(rows, tolerance=0.5) == 0
        assert "B=16" in scale_down_table(rows)

    def test_puncturing(self):
        rows = puncturing_experiment(
            snr_values_db=(25.0,), schedules=("none", "tail-first"), base_config=FAST
        )
        table = puncturing_table(rows)
        assert "tail-first" in table
        by_schedule = {row.schedule: row for row in rows}
        assert by_schedule["tail-first"].mean_rate >= by_schedule["none"].mean_rate - 0.5

    def test_distance(self):
        profile = distance_experiment(n_samples=40, n_message_bits=16, k=4, c=6)
        assert 0.8 < profile.distance_ratio < 1.2
        assert profile.min_one_bit_distance > 0.0
        assert "avalanche" in distance_table(profile)

    def test_blocklength(self):
        rows = blocklength_experiment(
            payload_lengths=(16, 32), snr_values_db=(10.0,), base_config=FAST
        )
        assert len(rows) == 2
        assert "PPV bound" in blocklength_table(rows)

    def test_quantization(self):
        rows = quantization_experiment(
            adc_bit_depths=(6, 14, None), snr_values_db=(10.0,), base_config=FAST
        )
        assert len(rows) == 3
        by_depth = {row.adc_bits: row.mean_rate for row in rows}
        # 14-bit ADC should be essentially as good as no quantiser.
        assert by_depth[14] >= 0.8 * by_depth[None]
        assert "inf" in quantization_table(rows)

    def test_constellations(self):
        rows = constellation_experiment(
            constellation_kinds=("linear", "offset-linear"),
            snr_values_db=(10.0,),
            base_config=FAST,
        )
        assert len(rows) == 2
        assert "offset-linear" in constellation_table(rows)

    def test_fixed_vs_rateless(self):
        rows = fixed_vs_rateless_experiment(
            snr_values_db=(12.0,),
            config=FAST,
            pass_choices=(1, 2, 4),
            n_fixed_frames=5,
        )
        assert len(rows) == 1
        row = rows[0]
        assert row.best_fixed_passes in (1, 2, 4)
        assert row.rateless_rate > 0 and row.best_fixed_rate > 0
        assert "rateless gain" in fixed_vs_rateless_table(rows)

    def test_feedback(self):
        rows = feedback_experiment(snr_values_db=(10.0,), config=FAST)
        assert any(row.model == "PerfectFeedback" for row in rows)
        perfect = next(row for row in rows if row.model == "PerfectFeedback")
        assert perfect.efficiency == pytest.approx(1.0)
        others = [row for row in rows if row.model != "PerfectFeedback"]
        assert all(row.efficiency <= 1.0 + 1e-9 for row in others)
        assert "efficiency" in feedback_table(rows)
