"""Golden-vector regression tests for the framing layer and its CRCs.

The link transport delivers *framed* packets end to end (and relays re-frame
at every hop), so the exact bit layout produced by :class:`Framer` and the
exact CRC values are now wire-format identity: a silent change makes every
previously framed transmission undecodable and breaks CRC termination
between peers built at different versions.  Like
``tests/test_golden_vectors.py`` does for the hash/encoder, these vectors
pin that identity at fixed inputs.

The CRC-8 and CRC-16-CCITT values over the ASCII string ``"123456789"`` are
the published check values for those polynomial configurations, so they
also cross-validate the implementation against the standards.  The CRC-32
configuration here is bitwise MSB-first without reflection or final XOR, so
its vectors pin this library's convention (they intentionally differ from
the reflected IEEE 802.3 check value).  All remaining values were generated
by the implementation at the time this suite was introduced.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.core.crc import CRC8, CRC16_CCITT, CRC32, Crc
from repro.core.framing import Framer
from repro.utils.bitops import bytes_to_bits, random_message_bits
from repro.utils.rng import spawn_rng


def _bits_to_int(bits: np.ndarray) -> int:
    value = 0
    for bit in bits:
        value = (value << 1) | int(bit)
    return value


class TestCrcGoldenVectors:
    check_bits = bytes_to_bits(b"123456789")

    @pytest.mark.parametrize(
        "crc,expected",
        [
            (CRC8, 0xF4),  # published CRC-8-ATM check value
            (CRC16_CCITT, 0x29B1),  # published CRC-16-CCITT-FALSE check value
            (CRC32, 0x0376E6E7),  # this library's unreflected convention
        ],
    )
    def test_standard_check_string(self, crc: Crc, expected: int):
        assert _bits_to_int(crc.compute(self.check_bits)) == expected

    @pytest.mark.parametrize(
        "crc,zeros_value,ones_value",
        [
            (CRC8, 0x00, 0x24),
            (CRC16_CCITT, 0x1D0F, 0x0000),
            (CRC32, 0x00B7647D, 0xFFFF0000),
        ],
    )
    def test_pinned_extremes(self, crc: Crc, zeros_value: int, ones_value: int):
        assert _bits_to_int(crc.compute(np.zeros(16, dtype=np.uint8))) == zeros_value
        assert _bits_to_int(crc.compute(np.ones(16, dtype=np.uint8))) == ones_value

    def test_append_and_check_round_trip_on_check_string(self):
        with_crc = CRC16_CCITT.append(self.check_bits)
        assert CRC16_CCITT.check(with_crc)
        corrupted = with_crc.copy()
        corrupted[3] ^= 1
        assert not CRC16_CCITT.check(corrupted)


class TestFramerGoldenVectors:
    """A full frame at a pinned seed, checked bit-for-bit."""

    payload = np.array(
        [int(b) for b in "001001110011000010011101"], dtype=np.uint8
    )

    def test_pinned_payload_reproduces(self):
        rng = spawn_rng(20111114, "golden-framing")
        assert np.array_equal(random_message_bits(24, rng), self.payload)

    def test_crc_framer_layout_and_bits(self):
        framer = Framer(payload_bits=24, k=8, crc=CRC16_CCITT, tail_segments=1)
        assert framer.framed_bits == 48
        assert framer.pad_bits == 0
        assert framer.n_segments == 6
        assert framer.overhead_bits == 24
        framed = framer.frame(self.payload)
        expected = "001001110011000010011101" "1001100001001011" "00000000"
        assert "".join(map(str, framed)) == expected
        digest = hashlib.sha256(framed.tobytes()).hexdigest()
        assert digest == (
            "24ba53a8493867dc8df51808eca0a7f48a2891b963128e7db0016db8258d618d"
        )

    def test_pad_only_framer_bits(self):
        framer = Framer(payload_bits=24, k=5)
        assert framer.framed_bits == 25
        assert framer.pad_bits == 1
        framed = framer.frame(self.payload)
        assert "".join(map(str, framed)) == "0010011100110000100111010"

    def test_round_trip_and_check(self):
        framer = Framer(payload_bits=24, k=8, crc=CRC16_CCITT, tail_segments=1)
        framed = framer.frame(self.payload)
        assert np.array_equal(framer.extract_payload(framed), self.payload)
        assert framer.check(framed)
        corrupted = framed.copy()
        corrupted[0] ^= 1
        assert not framer.check(corrupted)
