"""Unit tests for the spinal encoder and the observation store."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.encoder import ReceivedObservations, SpinalEncoder
from repro.core.params import SpinalParams
from repro.core.puncturing import SymbolBySymbol, TailFirstPuncturing
from repro.utils.bitops import random_message_bits


class TestEncodePasses:
    def test_shape_symbol_mode(self, small_encoder, rng):
        message = random_message_bits(16, rng)
        symbols = small_encoder.encode_passes(message, n_passes=3)
        assert symbols.shape == (3, 4)
        assert symbols.dtype == np.complex128

    def test_shape_bit_mode(self, bit_mode_encoder, rng):
        message = random_message_bits(12, rng)
        bits = bit_mode_encoder.encode_passes(message, n_passes=5)
        assert bits.shape == (5, 4)
        assert bits.dtype == np.uint8
        assert set(np.unique(bits)).issubset({0, 1})

    def test_deterministic(self, small_encoder, rng):
        message = random_message_bits(16, rng)
        a = small_encoder.encode_passes(message, 2)
        b = small_encoder.encode_passes(message, 2)
        assert np.array_equal(a, b)

    def test_passes_differ(self, small_encoder, rng):
        """Each pass draws fresh pseudo-random bits, so symbols differ."""
        message = random_message_bits(16, rng)
        symbols = small_encoder.encode_passes(message, 2)
        assert not np.array_equal(symbols[0], symbols[1])

    def test_rejects_non_positive_passes(self, small_encoder, rng):
        with pytest.raises(ValueError):
            small_encoder.encode_passes(random_message_bits(16, rng), 0)

    def test_prefix_property(self, small_encoder, rng):
        """Symbols at position t do not depend on later message segments."""
        message = random_message_bits(16, rng)
        other = message.copy()
        other[-4:] ^= 1  # change only the last segment
        symbols_a = small_encoder.encode_passes(message, 2)
        symbols_b = small_encoder.encode_passes(other, 2)
        assert np.array_equal(symbols_a[:, :-1], symbols_b[:, :-1])
        assert not np.array_equal(symbols_a[:, -1], symbols_b[:, -1])

    def test_average_symbol_energy_near_unity(self, rng):
        """Unit-power constellation: the empirical symbol energy is ~1."""
        encoder = SpinalEncoder(SpinalParams(k=4, c=8))
        message = random_message_bits(64, rng)
        symbols = encoder.encode_passes(message, n_passes=64).reshape(-1)
        assert float(np.mean(np.abs(symbols) ** 2)) == pytest.approx(1.0, abs=0.1)


class TestSymbolStream:
    def test_follows_schedule_order(self, small_params, rng):
        encoder = SpinalEncoder(small_params, puncturing=TailFirstPuncturing())
        message = random_message_bits(16, rng)
        stream = encoder.symbol_stream(message)
        first = next(stream)
        second = next(stream)
        assert first.positions.tolist() == [3]
        assert second.positions.tolist() == [2]

    def test_pass_indices_increment_per_position(self, small_params, rng):
        encoder = SpinalEncoder(small_params, puncturing=SymbolBySymbol())
        message = random_message_bits(16, rng)
        stream = encoder.symbol_stream(message)
        blocks = [next(stream) for _ in range(8)]
        # Position 0 appears in blocks 0 and 4 with pass indices 0 and 1.
        assert blocks[0].pass_indices.tolist() == [0]
        assert blocks[4].positions.tolist() == [0]
        assert blocks[4].pass_indices.tolist() == [1]

    def test_stream_matches_encode_passes(self, small_encoder, rng):
        """The default (un-punctured) stream reproduces encode_passes exactly."""
        message = random_message_bits(16, rng)
        reference = small_encoder.encode_passes(message, 2)
        stream = small_encoder.symbol_stream(message)
        first = next(stream)
        second = next(stream)
        assert np.allclose(first.values, reference[0])
        assert np.allclose(second.values, reference[1])

    def test_block_symbol_count(self, small_encoder, rng):
        block = next(small_encoder.symbol_stream(random_message_bits(16, rng)))
        assert block.n_symbols == 4


class TestReceivedObservations:
    def test_add_and_query(self):
        obs = ReceivedObservations(3)
        obs.add(0, 0, 1 + 1j)
        obs.add(0, 1, 2 + 0j)
        obs.add(2, 0, -1j)
        passes, values = obs.for_position(0)
        assert passes.tolist() == [0, 1]
        assert values.tolist() == [1 + 1j, 2 + 0j]
        assert obs.count_at(1) == 0
        assert obs.total_symbols == 3

    def test_add_block(self, small_encoder, rng):
        message = random_message_bits(16, rng)
        block = next(small_encoder.symbol_stream(message))
        obs = ReceivedObservations(4)
        obs.add_block(block, block.values)
        assert obs.total_symbols == 4

    def test_add_block_shape_mismatch(self, small_encoder, rng):
        message = random_message_bits(16, rng)
        block = next(small_encoder.symbol_stream(message))
        obs = ReceivedObservations(4)
        with pytest.raises(ValueError):
            obs.add_block(block, block.values[:2])

    def test_position_bounds(self):
        obs = ReceivedObservations(2)
        with pytest.raises(ValueError):
            obs.add(2, 0, 0j)
        with pytest.raises(ValueError):
            obs.for_position(5)

    def test_rejects_negative_pass(self):
        obs = ReceivedObservations(2)
        with pytest.raises(ValueError):
            obs.add(0, -1, 0j)

    def test_rejects_bad_segment_count(self):
        with pytest.raises(ValueError):
            ReceivedObservations(0)

    def test_truncated_keeps_prefix(self, small_encoder, rng):
        message = random_message_bits(16, rng)
        stream = small_encoder.symbol_stream(message)
        blocks, received = [], []
        for _ in range(3):
            block = next(stream)
            blocks.append(block)
            received.append(block.values)
        obs = ReceivedObservations(4)
        truncated = obs.truncated(6, blocks, received)
        assert truncated.total_symbols == 6


class TestBranchCosts:
    def test_true_spine_has_zero_cost_noiseless(self, small_encoder, make_observations, rng):
        message = random_message_bits(16, rng)
        observations = make_observations(small_encoder, message, n_passes=2)
        spine = small_encoder.spine(message)
        for position in range(4):
            cost = small_encoder.branch_costs(
                spine[position : position + 1], position, observations
            )
            assert cost[0] == pytest.approx(0.0, abs=1e-18)

    def test_wrong_spine_has_positive_cost(self, small_encoder, make_observations, rng):
        message = random_message_bits(16, rng)
        observations = make_observations(small_encoder, message, n_passes=2)
        wrong = np.array([0xDEADBEEF], dtype=np.uint64)
        cost = small_encoder.branch_costs(wrong, 0, observations)
        assert cost[0] > 0.0

    def test_no_observations_gives_zero(self, small_encoder):
        obs = ReceivedObservations(4)
        costs = small_encoder.branch_costs(np.arange(5, dtype=np.uint64), 2, obs)
        assert np.all(costs == 0.0)

    def test_shape_preserved(self, small_encoder, make_observations, rng):
        message = random_message_bits(16, rng)
        observations = make_observations(small_encoder, message, n_passes=1)
        spines = np.arange(12, dtype=np.uint64).reshape(3, 4)
        costs = small_encoder.branch_costs(spines, 0, observations)
        assert costs.shape == (3, 4)

    def test_bit_mode_uses_hamming_distance(self, bit_mode_encoder, rng):
        message = random_message_bits(12, rng)
        coded = bit_mode_encoder.encode_passes(message, 1)
        obs = ReceivedObservations(4)
        # Feed the *flipped* bit at position 0, pass 0.
        obs.add(0, 0, int(coded[0, 0]) ^ 1)
        spine = bit_mode_encoder.spine(message)
        cost = bit_mode_encoder.branch_costs(spine[:1], 0, obs)
        assert cost[0] == pytest.approx(1.0)

    def test_total_cost_matches_sum_of_branches(self, small_encoder, make_observations, rng):
        message = random_message_bits(16, rng)
        noise = 0.1 * (rng.standard_normal((2, 4)) + 1j * rng.standard_normal((2, 4)))
        observations = make_observations(small_encoder, message, n_passes=2, noise=noise)
        total = small_encoder.total_cost(message, observations)
        assert total == pytest.approx(float(np.sum(np.abs(noise) ** 2)), rel=1e-9)
