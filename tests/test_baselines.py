"""Unit tests for the baseline transmission systems."""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest

from repro.baselines import (
    FIGURE2_LDPC_CONFIGS,
    FixedRateLdpcSystem,
    HybridArqLdpcSystem,
    LdpcConfig,
    RateAdaptationPolicy,
    RepetitionQpskSystem,
    ThresholdRateAdapter,
)
from repro.ldpc import make_wifi_like_code
from repro.modulation import make_modulation
from repro.utils.deprecation import reset_warnings


@pytest.fixture(scope="module")
def bpsk_half_system() -> FixedRateLdpcSystem:
    """Rate-1/2 + BPSK system shared across tests (construction is cached)."""
    config = LdpcConfig(Fraction(1, 2), "BPSK")
    return FixedRateLdpcSystem(config, max_iterations=25, algorithm="min-sum")


class TestLdpcConfig:
    def test_figure2_configs_match_paper(self):
        labels = {config.label for config in FIGURE2_LDPC_CONFIGS}
        assert "LDPC rate 1/2 BPSK" in labels
        assert "LDPC rate 5/6 QAM-64" in labels
        assert len(FIGURE2_LDPC_CONFIGS) == 8

    def test_nominal_rates(self):
        assert LdpcConfig(Fraction(1, 2), "BPSK").nominal_rate == pytest.approx(0.5)
        assert LdpcConfig(Fraction(3, 4), "QAM-16").nominal_rate == pytest.approx(3.0)
        assert LdpcConfig(Fraction(5, 6), "QAM-64").nominal_rate == pytest.approx(5.0)


class TestFixedRateLdpcSystem:
    def test_symbols_per_frame(self, bpsk_half_system):
        assert bpsk_half_system.symbols_per_frame == 648

    def test_high_snr_rate_equals_nominal(self, bpsk_half_system, rng):
        rate = bpsk_half_system.achieved_rate(8.0, n_frames=10, rng=rng)
        assert rate == pytest.approx(bpsk_half_system.nominal_rate)

    def test_low_snr_rate_is_zero(self, bpsk_half_system, rng):
        rate = bpsk_half_system.achieved_rate(-8.0, n_frames=5, rng=rng)
        assert rate == pytest.approx(0.0)

    def test_fer_between_zero_and_one(self, bpsk_half_system, rng):
        fer = bpsk_half_system.frame_error_rate(0.0, n_frames=10, rng=rng)
        assert 0.0 <= fer <= 1.0

    def test_rejects_incompatible_modulation(self):
        # 648 is not a multiple of 5, so a hypothetical 5-bit modulation fails;
        # simulate by pairing a rate-1/2 code with a modulation of 5 bits/sym.
        class FiveBit:
            bits_per_symbol = 5

        config = LdpcConfig(Fraction(1, 2), "BPSK")
        code = make_wifi_like_code(Fraction(1, 2))
        with pytest.raises(ValueError):
            FixedRateLdpcSystem(config, code=code, modulation=FiveBit())  # type: ignore[arg-type]

    def test_rejects_bad_frame_count(self, bpsk_half_system, rng):
        with pytest.raises(ValueError):
            bpsk_half_system.transmit_frames(0.0, 0, rng)

    def test_describe_mentions_config(self, bpsk_half_system):
        assert "rate 1/2" in bpsk_half_system.describe()


class TestHybridArq:
    def test_good_snr_single_attempt(self, rng):
        system = HybridArqLdpcSystem(
            LdpcConfig(Fraction(1, 2), "BPSK"), max_attempts=4, max_iterations=25,
            algorithm="min-sum",
        )
        # run_trial is a deliberate exercise of the deprecated shim (the
        # battery documents legacy behaviour); make its warning explicit.
        reset_warnings()
        with pytest.warns(DeprecationWarning, match="codec API"):
            trial = system.run_trial(snr_db=6.0, rng=rng)
        assert trial.success and trial.attempts == 1
        assert trial.rate == pytest.approx(0.5)

    def test_moderate_snr_uses_retransmissions(self, rng):
        system = HybridArqLdpcSystem(
            LdpcConfig(Fraction(1, 2), "BPSK"), max_attempts=6, max_iterations=25,
            algorithm="min-sum",
        )
        # At -4 dB a single rate-1/2 BPSK frame fails, but chase combining of a
        # few repeats succeeds (combined SNR grows by 3 dB per doubling).
        trial = system.run_trial(snr_db=-4.0, rng=rng)
        assert trial.success
        assert trial.attempts > 1

    def test_failure_reports_zero_rate(self, rng):
        system = HybridArqLdpcSystem(
            LdpcConfig(Fraction(1, 2), "BPSK"), max_attempts=1, max_iterations=10,
            algorithm="min-sum",
        )
        trial = system.run_trial(snr_db=-15.0, rng=rng)
        assert not trial.success
        assert trial.rate == 0.0

    def test_mean_rate_monotone_in_snr(self, rng):
        system = HybridArqLdpcSystem(
            LdpcConfig(Fraction(1, 2), "BPSK"), max_attempts=4, max_iterations=20,
            algorithm="min-sum",
        )
        low = system.mean_rate(-6.0, n_trials=4, rng=rng)
        high = system.mean_rate(6.0, n_trials=4, rng=rng)
        assert high >= low

    def test_validation(self):
        with pytest.raises(ValueError):
            HybridArqLdpcSystem(LdpcConfig(Fraction(1, 2), "BPSK"), max_attempts=0)


class TestRateAdaptation:
    def test_policy_selects_fastest_usable(self):
        configs = (
            LdpcConfig(Fraction(1, 2), "BPSK"),
            LdpcConfig(Fraction(3, 4), "QAM-16"),
            LdpcConfig(Fraction(5, 6), "QAM-64"),
        )
        thresholds = {configs[0]: 0.0, configs[1]: 12.0, configs[2]: 20.0}
        policy = RateAdaptationPolicy(configs=configs, thresholds=thresholds)
        assert policy.select(25.0) == configs[2]
        assert policy.select(15.0) == configs[1]
        assert policy.select(5.0) == configs[0]

    def test_policy_falls_back_to_most_robust(self):
        configs = (LdpcConfig(Fraction(1, 2), "BPSK"), LdpcConfig(Fraction(3, 4), "QAM-16"))
        thresholds = {configs[0]: 2.0, configs[1]: 12.0}
        policy = RateAdaptationPolicy(configs=configs, thresholds=thresholds)
        assert policy.select(-10.0) == configs[0]

    def test_policy_rejects_missing_thresholds(self):
        configs = (LdpcConfig(Fraction(1, 2), "BPSK"),)
        with pytest.raises(ValueError):
            RateAdaptationPolicy(configs=configs, thresholds={})

    def test_calibrate_orders_thresholds_sensibly(self, rng):
        configs = (
            LdpcConfig(Fraction(1, 2), "BPSK"),
            LdpcConfig(Fraction(3, 4), "QAM-16"),
        )
        adapter = ThresholdRateAdapter(
            configs=configs, max_iterations=15, algorithm="min-sum"
        )
        policy = adapter.calibrate(np.array([-2.0, 4.0, 10.0, 16.0]), n_frames=8, rng=rng)
        assert policy.thresholds[configs[0]] < policy.thresholds[configs[1]]

    def test_adaptive_transfer_outputs(self, rng):
        configs = (LdpcConfig(Fraction(1, 2), "BPSK"),)
        adapter = ThresholdRateAdapter(configs=configs, max_iterations=10, algorithm="min-sum")
        policy = RateAdaptationPolicy(configs=configs, thresholds={configs[0]: 0.0})
        outcome = adapter.simulate_adaptive_transfer(
            policy,
            true_snr_per_packet_db=np.array([5.0, 6.0, 7.0]),
            observation_lag_packets=1,
            n_frames_per_packet=3,
            rng=rng,
        )
        assert len(outcome["selected"]) == 3
        assert outcome["rates"].shape == (3,)
        assert outcome["mean_rate"] >= 0.0

    def test_adapter_validation(self):
        with pytest.raises(ValueError):
            ThresholdRateAdapter(target_frame_error_rate=0.0)


class TestRepetition:
    def test_nominal_rate(self):
        assert RepetitionQpskSystem(repetitions=4).nominal_rate == pytest.approx(0.5)

    def test_ber_improves_with_repetitions(self, rng):
        single = RepetitionQpskSystem(repetitions=1).bit_error_rate(-2.0, 4000, rng)
        repeated = RepetitionQpskSystem(repetitions=4).bit_error_rate(-2.0, 4000, rng)
        assert repeated < single

    def test_noiseless_transmission(self, rng):
        system = RepetitionQpskSystem(repetitions=1)
        bits = rng.integers(0, 2, size=200, dtype=np.uint8)
        assert np.array_equal(system.transmit_bits(bits, 40.0, rng), bits)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            RepetitionQpskSystem(repetitions=0)
        with pytest.raises(ValueError):
            RepetitionQpskSystem().transmit_bits(np.ones(3, dtype=np.uint8), 10.0, rng)
