"""Unit tests for the information-theoretic reference curves."""

from __future__ import annotations

import math

import pytest

from repro.theory import (
    awgn_capacity,
    awgn_capacity_db,
    awgn_dispersion,
    binary_entropy,
    bsc_capacity,
    normal_approximation_rate,
    ppv_fixed_block_bound_db,
    shannon_limit_snr_db,
    spinal_awgn_rate_bound,
    spinal_bsc_rate_bound,
    spinal_gap_constant,
)
from repro.theory.bounds import min_passes_awgn, min_passes_bsc
from repro.theory.capacity import bec_capacity


class TestAwgnCapacity:
    def test_known_values(self):
        assert awgn_capacity(1.0) == pytest.approx(1.0)
        assert awgn_capacity(0.0) == 0.0
        # Paper, Section 4: ~10 bits/s/Hz at 30 dB.
        assert awgn_capacity_db(30.0) == pytest.approx(9.967, abs=0.01)

    def test_monotone_in_snr(self):
        values = [awgn_capacity_db(snr) for snr in range(-10, 41, 5)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_rejects_negative_snr(self):
        with pytest.raises(ValueError):
            awgn_capacity(-0.1)

    def test_shannon_limit_is_inverse(self):
        for rate in (0.5, 2.0, 6.0):
            assert awgn_capacity_db(shannon_limit_snr_db(rate)) == pytest.approx(rate)

    def test_shannon_limit_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            shannon_limit_snr_db(0.0)


class TestBinaryChannels:
    def test_entropy_extremes(self):
        assert binary_entropy(0.0) == 0.0
        assert binary_entropy(1.0) == 0.0
        assert binary_entropy(0.5) == pytest.approx(1.0)

    def test_entropy_symmetry(self):
        assert binary_entropy(0.1) == pytest.approx(binary_entropy(0.9))

    def test_bsc_capacity(self):
        assert bsc_capacity(0.0) == pytest.approx(1.0)
        assert bsc_capacity(0.5) == pytest.approx(0.0)
        assert bsc_capacity(0.11) == pytest.approx(1 - binary_entropy(0.11))

    def test_bec_capacity(self):
        assert bec_capacity(0.25) == pytest.approx(0.75)

    def test_validation(self):
        with pytest.raises(ValueError):
            binary_entropy(1.5)
        with pytest.raises(ValueError):
            bsc_capacity(-0.1)
        with pytest.raises(ValueError):
            bec_capacity(2.0)


class TestFiniteBlocklength:
    def test_dispersion_limits(self):
        assert awgn_dispersion(0.0) == 0.0
        # V -> log2(e)^2 as SNR -> infinity.
        assert awgn_dispersion(1e9) == pytest.approx(math.log2(math.e) ** 2, rel=1e-3)

    def test_dispersion_rejects_negative(self):
        with pytest.raises(ValueError):
            awgn_dispersion(-1.0)

    def test_rate_below_capacity(self):
        for snr_db in (0.0, 10.0, 25.0):
            assert ppv_fixed_block_bound_db(snr_db) < awgn_capacity_db(snr_db)

    def test_rate_increases_with_block_length(self):
        short = normal_approximation_rate(10.0, 24, 1e-4)
        longer = normal_approximation_rate(10.0, 648, 1e-4)
        assert longer > short

    def test_rate_increases_with_error_probability(self):
        strict = normal_approximation_rate(10.0, 24, 1e-6)
        loose = normal_approximation_rate(10.0, 24, 1e-2)
        assert loose > strict

    def test_clipped_at_zero_for_low_snr(self):
        assert ppv_fixed_block_bound_db(-10.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            normal_approximation_rate(1.0, 0, 1e-4)
        with pytest.raises(ValueError):
            normal_approximation_rate(1.0, 24, 0.0)


class TestSpinalBounds:
    def test_gap_constant_value(self):
        # ½ log2(πe/6) ≈ 0.2546 (the paper quotes ≈ 0.25).
        assert spinal_gap_constant() == pytest.approx(0.2546, abs=1e-3)

    def test_awgn_bound_below_capacity(self):
        for snr_db in (0.0, 10.0, 30.0):
            assert spinal_awgn_rate_bound(snr_db) == pytest.approx(
                awgn_capacity_db(snr_db) - spinal_gap_constant()
            )

    def test_awgn_bound_clipped_at_zero(self):
        assert spinal_awgn_rate_bound(-20.0) == 0.0

    def test_bsc_bound_equals_capacity(self):
        assert spinal_bsc_rate_bound(0.1) == pytest.approx(bsc_capacity(0.1))

    def test_paper_capacity_fraction_at_30db(self):
        """Paper: 'for SNR = 30 dB ... approximately 97.5% of the Shannon capacity'."""
        fraction = spinal_awgn_rate_bound(30.0) / awgn_capacity_db(30.0)
        assert fraction == pytest.approx(0.975, abs=0.003)

    def test_min_passes_formulas(self):
        # Theorem 1: L > k / (C - Δ).
        snr_db, k = 10.0, 8
        bound = awgn_capacity_db(snr_db) - spinal_gap_constant()
        assert min_passes_awgn(snr_db, k) == int(k / bound) + 1
        assert min_passes_bsc(0.1, 4) == int(4 / bsc_capacity(0.1)) + 1

    def test_min_passes_sentinel_when_impossible(self):
        assert min_passes_awgn(-30.0, 8) == 2**31

    def test_min_passes_validation(self):
        with pytest.raises(ValueError):
            min_passes_awgn(10.0, 0)
        with pytest.raises(ValueError):
            min_passes_bsc(0.1, 0)
