"""Unit tests for repro.utils.bitops."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.bitops import (
    bits_to_bytes,
    bits_to_int,
    bytes_to_bits,
    hamming_distance,
    int_to_bits,
    pack_segments,
    parity,
    random_message_bits,
    unpack_segments,
)


class TestBitsToInt:
    def test_msb_first_convention(self):
        assert bits_to_int([1, 0, 1]) == 5

    def test_all_zeros(self):
        assert bits_to_int([0, 0, 0, 0]) == 0

    def test_all_ones(self):
        assert bits_to_int([1] * 8) == 255

    def test_single_bit(self):
        assert bits_to_int([1]) == 1

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError):
            bits_to_int(np.zeros((2, 2), dtype=np.uint8))


class TestIntToBits:
    def test_roundtrip_with_bits_to_int(self):
        for value in (0, 1, 5, 170, 255):
            assert bits_to_int(int_to_bits(value, 8)) == value

    def test_width_is_respected(self):
        assert int_to_bits(3, 5).tolist() == [0, 0, 0, 1, 1]

    def test_rejects_value_too_large(self):
        with pytest.raises(ValueError):
            int_to_bits(16, 4)

    def test_rejects_negative_value(self):
        with pytest.raises(ValueError):
            int_to_bits(-1, 4)

    def test_rejects_non_positive_width(self):
        with pytest.raises(ValueError):
            int_to_bits(0, 0)


class TestBytesConversion:
    def test_roundtrip(self):
        data = bytes([0, 1, 127, 128, 255])
        assert bits_to_bytes(bytes_to_bits(data)) == data

    def test_bit_order_msb_first(self):
        assert bytes_to_bits(b"\x80")[0] == 1
        assert bytes_to_bits(b"\x01")[7] == 1

    def test_rejects_non_multiple_of_eight(self):
        with pytest.raises(ValueError):
            bits_to_bytes(np.ones(7, dtype=np.uint8))


class TestSegments:
    def test_pack_simple(self):
        bits = np.array([1, 0, 1, 1, 0, 0, 0, 1], dtype=np.uint8)
        segments = pack_segments(bits, 4)
        assert segments.tolist() == [0b1011, 0b0001]

    def test_pack_unpack_roundtrip(self, rng):
        bits = random_message_bits(24, rng)
        assert np.array_equal(unpack_segments(pack_segments(bits, 8), 8), bits)

    def test_pack_rejects_bad_length(self):
        with pytest.raises(ValueError):
            pack_segments(np.ones(10, dtype=np.uint8), 4)

    def test_pack_rejects_bad_k(self):
        with pytest.raises(ValueError):
            pack_segments(np.ones(8, dtype=np.uint8), 0)

    def test_unpack_rejects_oversized_value(self):
        with pytest.raises(ValueError):
            unpack_segments(np.array([16], dtype=np.uint64), 4)

    def test_pack_dtype_is_uint64(self, rng):
        segments = pack_segments(random_message_bits(16, rng), 4)
        assert segments.dtype == np.uint64


class TestRandomMessageBits:
    def test_length_and_values(self, rng):
        bits = random_message_bits(100, rng)
        assert bits.shape == (100,)
        assert set(np.unique(bits)).issubset({0, 1})

    def test_rejects_non_positive_length(self, rng):
        with pytest.raises(ValueError):
            random_message_bits(0, rng)

    def test_deterministic_given_seed(self):
        a = random_message_bits(64, np.random.default_rng(3))
        b = random_message_bits(64, np.random.default_rng(3))
        assert np.array_equal(a, b)


class TestHammingAndParity:
    def test_hamming_distance(self):
        assert hamming_distance([0, 1, 1], [1, 1, 0]) == 2

    def test_hamming_zero_for_equal(self, rng):
        bits = random_message_bits(32, rng)
        assert hamming_distance(bits, bits) == 0

    def test_hamming_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            hamming_distance([0, 1], [0, 1, 1])

    def test_parity(self):
        assert parity([1, 1, 0]) == 0
        assert parity([1, 0, 0]) == 1
