"""Unit tests for repro.utils.rng, repro.utils.units and repro.utils.results."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.utils.results import RateMeasurement, SweepResult, mean, render_table, std_error
from repro.utils.rng import derive_seed, spawn_rng
from repro.utils.units import db_to_linear, ebn0_to_snr_db, linear_to_db, snr_db_to_ebn0


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_different_labels_differ(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_different_base_seeds_differ(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_fits_in_63_bits(self):
        assert 0 <= derive_seed(123456789, "x", "y") < 2**63

    def test_spawn_rng_streams_are_independent(self):
        a = spawn_rng(5, "one").integers(0, 1000, size=20)
        b = spawn_rng(5, "two").integers(0, 1000, size=20)
        assert not np.array_equal(a, b)


class TestUnits:
    def test_db_roundtrip(self):
        for value in (0.01, 1.0, 10.0, 123.4):
            assert linear_to_db(db_to_linear(linear_to_db(value))) == pytest.approx(
                linear_to_db(value)
            )

    def test_known_values(self):
        assert db_to_linear(10.0) == pytest.approx(10.0)
        assert db_to_linear(0.0) == pytest.approx(1.0)
        assert linear_to_db(100.0) == pytest.approx(20.0)

    def test_linear_to_db_rejects_non_positive(self):
        with pytest.raises(ValueError):
            linear_to_db(0.0)

    def test_ebn0_roundtrip(self):
        snr = 12.0
        assert ebn0_to_snr_db(snr_db_to_ebn0(snr, 4.0), 4.0) == pytest.approx(snr)

    def test_ebn0_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            snr_db_to_ebn0(10.0, 0.0)


class TestStatsHelpers:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_mean_rejects_empty(self):
        with pytest.raises(ValueError):
            mean([])

    def test_std_error_single_sample_is_zero(self):
        assert std_error([4.2]) == 0.0

    def test_std_error_matches_formula(self):
        values = [1.0, 2.0, 3.0, 4.0]
        expected = math.sqrt(np.var(values, ddof=1) / len(values))
        assert std_error(values) == pytest.approx(expected)


class TestRateMeasurement:
    def test_add_and_aggregate(self):
        m = RateMeasurement(snr_db=10.0)
        m.add_trial(2.0, symbols=12, ok=True)
        m.add_trial(4.0, symbols=6, ok=True)
        assert m.n_trials == 2
        assert m.mean_rate == pytest.approx(3.0)
        assert m.success_fraction == 1.0
        # Aggregate rate = (2*12 + 4*6) / 18 = 48/18.
        assert m.aggregate_rate == pytest.approx(48 / 18)

    def test_mean_rate_requires_trials(self):
        with pytest.raises(ValueError):
            RateMeasurement(snr_db=0.0).mean_rate

    def test_success_fraction_counts_failures(self):
        m = RateMeasurement(snr_db=0.0)
        m.add_trial(1.0, 10, True)
        m.add_trial(0.5, 20, False)
        assert m.success_fraction == pytest.approx(0.5)


class TestSweepResult:
    def _measurement(self, snr, rate):
        m = RateMeasurement(snr_db=snr)
        m.add_trial(rate, 10, True)
        return m

    def test_x_values_and_rates(self):
        sweep = SweepResult(name="demo")
        sweep.add_point(self._measurement(0.0, 1.0))
        sweep.add_point(self._measurement(5.0, 2.0))
        assert sweep.x_values() == [0.0, 5.0]
        assert sweep.mean_rates() == [1.0, 2.0]

    def test_as_rows_shape(self):
        sweep = SweepResult(name="demo")
        sweep.add_point(self._measurement(0.0, 1.0))
        rows = sweep.as_rows()
        assert len(rows) == 1 and len(rows[0]) == 3


class TestRenderTable:
    def test_contains_headers_and_values(self):
        text = render_table(["a", "b"], [(1, 2.5), (3, 4.25)])
        assert "a" in text and "b" in text
        assert "2.500" in text and "4.250" in text

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [(1,)])

    def test_bools_render_as_text(self):
        text = render_table(["flag"], [(True,)])
        assert "True" in text
