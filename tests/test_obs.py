"""The telemetry layer's contracts: bit-transparency, exporters, acceptance.

Three claims carry the observability layer:

* **Bit-transparency** — enabling telemetry changes *nothing* about a run:
  serve delivery logs, cell results, city summaries, and persisted
  experiment store files are byte-identical with the sink on and off,
  because the registry never draws randomness, never schedules events, and
  only reads the scheduler clock through its read-only accessor;
* **Deterministic exporters** — given an injected wall clock, the JSONL,
  Chrome-trace and Prometheus outputs are reproducible byte for byte and
  pass their own validators;
* **Acceptance against the result dataclasses** — the
  ``phy.symbols_to_decode`` histogram at the paper's Figure 2 operating
  point (24-bit payload, k=8, c=10, B=16, tail-first puncturing) is
  exactly recoverable from the per-trial ``CodecResult`` values, so the
  telemetry path reports the same statistic the experiments already
  measure.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.obs import (
    JSONL_SCHEMA,
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    current,
    default_buckets,
    export_jsonl,
    load_jsonl,
    render_report,
    set_current,
    span_line,
    validate_directory,
    write_all,
)

SEED = 20111114


@pytest.fixture(autouse=True)
def _restore_sink():
    """No test may leak an enabled process-global sink."""
    yield
    set_current(None)


class _FakeWall:
    """Deterministic wall clock: advances 1 ms per reading."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        self.t += 1e-3
        return self.t


# -- registry ------------------------------------------------------------------


class TestRegistry:
    def test_counters_accumulate_per_label_set(self):
        tel = Telemetry(wall_clock=_FakeWall())
        tel.counter("link.blocks_sent", hop=0)
        tel.counter("link.blocks_sent", hop=0)
        tel.counter("link.blocks_sent", hop=1)
        tel.counter("link.blocks_sent", 5, hop=1)
        assert tel.counter_value("link.blocks_sent", hop=0) == 2
        assert tel.counter_value("link.blocks_sent", hop=1) == 6
        assert tel.counter_value("link.blocks_sent", hop=2) == 0

    def test_gauge_keeps_last_value(self):
        tel = Telemetry(wall_clock=_FakeWall())
        tel.gauge("serve.queue_depth", 3)
        tel.gauge("serve.queue_depth", 7)
        ((key, value),) = tel.gauges.items()
        assert key == ("serve.queue_depth", ())
        assert value == 7

    def test_histogram_le_semantics(self):
        # A value exactly on an upper edge lands in that edge's bucket
        # (Prometheus ``le``), and every value lands somewhere (+inf top).
        tel = Telemetry(wall_clock=_FakeWall())
        tel.set_buckets("x", (1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 4.0, 100.0):
            tel.observe("x", value)
        counts = tel.histogram_counts("x")
        assert counts == {1.0: 2, 2.0: 1, 4.0: 1, float("inf"): 1}
        hist = tel.histograms[("x", ())]
        assert hist.count == 5
        assert hist.min == 0.5 and hist.max == 100.0

    def test_set_buckets_rejects_non_increasing(self):
        tel = Telemetry(wall_clock=_FakeWall())
        with pytest.raises(ValueError, match="increasing"):
            tel.set_buckets("x", (1.0, 1.0, 2.0))

    def test_default_buckets_by_unit_suffix(self):
        assert default_buckets("decoder.decode_s")[0] == pytest.approx(1e-6)
        assert -30.0 in default_buckets("net.sinr_db")
        assert 65536.0 in default_buckets("phy.symbols_to_decode")
        for name in ("a_s", "b_db", "c"):
            bounds = default_buckets(name)
            assert bounds[-1] == float("inf")
            assert all(b2 > b1 for b1, b2 in zip(bounds, bounds[1:]))

    def test_span_records_wall_and_symbol_time(self):
        tel = Telemetry(wall_clock=_FakeWall())

        class Clock:
            now = 17

        tel.bind_clock(Clock())
        with tel.span("serve.decode_batch", width=4):
            pass
        (span,) = tel.spans
        assert span["name"] == "serve.decode_batch"
        assert span["labels"] == {"width": "4"}
        assert span["dur_us"] == pytest.approx(1e3)
        assert span["t_sym"] == 17 and span["t_sym_end"] == 17

    def test_unbound_clock_stamps_minus_one(self):
        tel = Telemetry(wall_clock=_FakeWall())
        assert tel.symbol_time() == -1
        with tel.span("x"):
            pass
        assert tel.spans[0]["t_sym"] == -1

    def test_null_sink_is_inert_and_shared(self):
        assert current() is NULL_TELEMETRY
        assert not NULL_TELEMETRY.enabled
        NULL_TELEMETRY.counter("x")
        NULL_TELEMETRY.gauge("x", 1)
        NULL_TELEMETRY.observe("x", 1)
        with NULL_TELEMETRY.span("x"):
            pass
        assert NULL_TELEMETRY.symbol_time() == -1
        assert NULL_TELEMETRY.now_s() == 0.0
        assert not hasattr(NULL_TELEMETRY, "__dict__")  # __slots__: no state

    def test_set_current_returns_previous(self):
        tel = Telemetry(wall_clock=_FakeWall())
        previous = set_current(tel)
        assert previous is NULL_TELEMETRY
        assert current() is tel
        assert set_current(None) is tel
        assert current() is NULL_TELEMETRY

    def test_snapshot_is_deterministically_ordered(self):
        tel = Telemetry(wall_clock=_FakeWall())
        tel.counter("b.second", hop=1)
        tel.counter("a.first")
        tel.counter("b.second", hop=0)
        snap = tel.snapshot()
        names = [(c["name"], tuple(c["labels"].items())) for c in snap["counters"]]
        assert names == sorted(names)


# -- exporters -----------------------------------------------------------------


def _populated_telemetry() -> Telemetry:
    tel = Telemetry(wall_clock=_FakeWall())

    class Clock:
        now = 3

    tel.bind_clock(Clock())
    tel.counter("link.blocks_sent", 4, hop=0)
    tel.gauge("serve.queue_depth", 2)
    tel.observe("phy.symbols_to_decode", 48)
    tel.observe("decoder.decode_s", 3.2e-4)
    with tel.span("serve.decode_batch", width=2):
        pass
    return tel


class TestExporters:
    def test_write_all_passes_validation(self, tmp_path):
        write_all(_populated_telemetry(), tmp_path)
        assert validate_directory(tmp_path) == []

    def test_outputs_are_deterministic_given_the_clock(self, tmp_path):
        write_all(_populated_telemetry(), tmp_path / "a")
        write_all(_populated_telemetry(), tmp_path / "b")
        for name in ("telemetry.jsonl", "trace.json", "metrics.prom"):
            assert (tmp_path / "a" / name).read_bytes() == (
                tmp_path / "b" / name
            ).read_bytes()

    def test_jsonl_header_and_kinds(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        export_jsonl(_populated_telemetry(), path)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0] == {"kind": "meta", "schema": JSONL_SCHEMA}
        assert {line["kind"] for line in lines[1:]} == {
            "counter", "gauge", "histogram", "span",
        }

    def test_load_round_trips_the_stream(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        export_jsonl(_populated_telemetry(), path)
        records = load_jsonl(path)
        (counter,) = records["counter"]
        assert counter["name"] == "link.blocks_sent"
        assert counter["value"] == 4
        hist_names = {h["name"] for h in records["histogram"]}
        assert hist_names == {"phy.symbols_to_decode", "decoder.decode_s"}

    def test_chrome_trace_shape(self, tmp_path):
        paths = write_all(_populated_telemetry(), tmp_path)
        trace = json.loads(paths["trace"].read_text())
        (event,) = trace["traceEvents"]
        assert event["ph"] == "X"
        assert event["name"] == "serve.decode_batch"
        assert event["args"]["width"] == "2"
        assert event["dur"] > 0

    def test_prometheus_page_has_types_and_buckets(self, tmp_path):
        paths = write_all(_populated_telemetry(), tmp_path)
        page = paths["prom"].read_text()
        assert '# TYPE link_blocks_sent counter' in page
        assert 'link_blocks_sent{hop="0"} 4' in page
        assert 'le="+Inf"' in page
        assert "phy_symbols_to_decode_count 1" in page

    def test_validators_flag_corruption(self, tmp_path):
        paths = write_all(_populated_telemetry(), tmp_path)
        paths["jsonl"].write_text('{"kind": "mystery"}\n')
        paths["trace"].write_text('{"not": "a trace"}')
        paths["prom"].write_text("??? not prometheus\n")
        problems = validate_directory(tmp_path)
        assert len(problems) >= 3

    def test_report_renders_counters_and_histograms(self, tmp_path):
        paths = write_all(_populated_telemetry(), tmp_path)
        text = render_report(paths["jsonl"])
        assert "link.blocks_sent" in text
        assert "phy.symbols_to_decode" in text
        assert "serve.decode_batch" in text


# -- bit-transparency ----------------------------------------------------------


def _with_telemetry(fn):
    """Run ``fn`` with a live sink installed; return (result, telemetry)."""
    tel = Telemetry()
    previous = set_current(tel)
    try:
        return fn(), tel
    finally:
        set_current(previous)


class TestBitTransparency:
    def test_serve_delivery_log_is_byte_identical(self):
        from repro.serve import SoakConfig, run_soak

        config = SoakConfig(n_sessions=24, max_in_flight=6, seed=SEED)
        off = run_soak(config)
        on, tel = _with_telemetry(lambda: run_soak(config))
        assert off.delivery_log_json() == on.delivery_log_json()
        assert off.queue_depth_series == on.queue_depth_series
        assert off.summary(elapsed_s=1.0) == on.summary(elapsed_s=1.0)
        # ... and the run really was observed.
        assert tel.counter_value("serve.sessions", outcome="delivered") == 24
        assert tel.counter_value("decoder.batch_decodes") > 0

    def test_cell_result_is_identical(self):
        from repro.link.topology import build_relay_sessions
        from repro.experiments.runner import SpinalRunConfig
        from repro.core.params import SpinalParams
        from repro.mac.cell import CellUser, RatelessLink, simulate_cell, spread_snrs
        from repro.utils.bitops import random_message_bits
        from repro.utils.rng import spawn_rng

        run_config = SpinalRunConfig(
            payload_bits=16,
            params=SpinalParams(k=4, c=6, seed=31),
            beam_width=8,
            search="sequential",
            max_symbols=512,
        )

        def build_users():
            return [
                CellUser(
                    RatelessLink(build_relay_sessions(run_config, [snr])[0]),
                    [random_message_bits(16, spawn_rng(901, "cell", u, i)) for i in range(2)],
                )
                for u, snr in enumerate(spread_snrs(12.0, 8.0, 3))
            ]

        off = simulate_cell(build_users(), "max-snr", seed=3)
        on, tel = _with_telemetry(lambda: simulate_cell(build_users(), "max-snr", seed=3))
        assert off == on
        assert tel.counter_value("mac.grants", scheduler="max-snr") > 0
        assert tel.counter_value("mac.packets", outcome="delivered") == off.n_delivered

    def test_network_summary_is_identical(self):
        from repro.net import NetworkConfig, simulate_network

        config = NetworkConfig(
            n_cells=2,
            n_users=4,
            packets_per_user=1,
            tier="exact",
            max_symbols=256,
            epoch_symbols=64,
            seed=SEED,
        )
        off = simulate_network(config)
        on, tel = _with_telemetry(lambda: simulate_network(config))
        assert off.summary() == on.summary()
        assert tel.counter_value("net.epochs") > 0

    def test_persisted_store_files_are_byte_identical(self, tmp_path):
        from repro.experiments import registry
        from repro.experiments.registry import run_experiment
        from repro.utils.store import RunStore

        registry.load_all()
        experiment = registry.get("rate")

        def run(directory):
            outcome = run_experiment(
                experiment,
                overrides={"snr_db": (10.0,)},
                n_trials=3,
                seed=SEED,
                store=RunStore(directory),
                smoke=True,
            )
            return outcome.path.read_bytes()

        off_bytes = run(tmp_path / "off")
        on_bytes, _tel = _with_telemetry(lambda: run(tmp_path / "on"))
        assert off_bytes == on_bytes


# -- acceptance against the result dataclasses ---------------------------------


class TestFigure2Histogram:
    def test_symbols_to_decode_matches_codec_results(self):
        """The paper's core statistic, cross-checked against CodecResult.

        At the Figure 2 operating point every sent symbol is delivered
        (single hop, no erasures) and transmission stops at decode, so the
        ``phy.symbols_to_decode`` histogram must be exactly the histogram
        of ``CodecResult.symbols_sent`` over the successful trials.
        """
        from repro.phy import make_codec_session
        from repro.utils.rng import spawn_rng

        n_trials = 25
        def run_trials():
            results = []
            for trial in range(n_trials):
                session = make_codec_session("spinal", snr_db=10.0, seed=SEED)
                rng = spawn_rng(SEED, "fig2-obs", trial)
                payload = rng.integers(0, 2, size=session.payload_bits, dtype=np.uint8)
                results.append(session.run(payload, rng))
            return results

        results, tel = _with_telemetry(run_trials)
        successes = [r for r in results if r.success]
        assert successes, "smoke config must decode at least once"

        bounds = default_buckets("phy.symbols_to_decode")
        expected = {bound: 0 for bound in bounds}
        for result in successes:
            expected[min(b for b in bounds if result.symbols_sent <= b)] += 1
        assert tel.histogram_counts("phy.symbols_to_decode") == expected

        hist = tel.histograms[("phy.symbols_to_decode", ())]
        assert hist.count == len(successes)
        assert hist.sum == sum(r.symbols_sent for r in successes)
        assert tel.counter_value("phy.decode_attempts") == sum(
            r.decode_attempts for r in results
        )


# -- streaming span spill -------------------------------------------------------


def _exercise(tel: Telemetry) -> Telemetry:
    """The same workload for a buffered and a streaming sink."""

    class Clock:
        now = 3

    tel.bind_clock(Clock())
    tel.counter("link.blocks_sent", 4, hop=0)
    tel.gauge("serve.queue_depth", 2)
    tel.observe("phy.symbols_to_decode", 48)
    with tel.span("serve.decode_batch", width=2):
        pass
    with tel.span("netcode.exchange", round=0):
        with tel.span("netcode.broadcast"):
            pass
    return tel


class TestStreamingSpill:
    def test_streaming_export_is_byte_identical_to_buffered(self, tmp_path):
        buffered = _exercise(Telemetry(wall_clock=_FakeWall()))
        streaming = _exercise(
            Telemetry(
                wall_clock=_FakeWall(), span_spill=tmp_path / "s" / "spans.part.jsonl"
            )
        )
        write_all(buffered, tmp_path / "b")
        write_all(streaming, tmp_path / "s")
        streaming.close()
        for name in ("telemetry.jsonl", "trace.json", "metrics.prom"):
            assert (tmp_path / "s" / name).read_bytes() == (
                tmp_path / "b" / name
            ).read_bytes()
        assert validate_directory(tmp_path / "s") == []

    def test_spans_spill_incrementally_not_in_memory(self, tmp_path):
        spill = tmp_path / "spans.part.jsonl"
        tel = Telemetry(wall_clock=_FakeWall(), span_spill=spill)
        with tel.span("serve.decode_batch", width=2):
            pass
        # Already on disk before any export, and not held in memory.
        assert tel.spans == []
        lines = spill.read_text().splitlines()
        assert len(lines) == 1
        record = dict(json.loads(lines[0]))
        assert record.pop("kind") == "span"
        assert span_line(record) == lines[0]
        with tel.span("netcode.exchange", round=1):
            pass
        assert len(spill.read_text().splitlines()) == 2
        tel.close()

    def test_iter_spans_round_trips_the_spill(self, tmp_path):
        buffered = _exercise(Telemetry(wall_clock=_FakeWall()))
        streaming = _exercise(
            Telemetry(wall_clock=_FakeWall(), span_spill=tmp_path / "spans.part.jsonl")
        )
        streaming.close()
        assert list(streaming.iter_spans()) == list(buffered.iter_spans())
        assert streaming.snapshot() == buffered.snapshot()
        # close() is idempotent and iter_spans still re-reads the file.
        streaming.close()
        assert list(streaming.iter_spans()) == buffered.spans

    def test_cli_stream_flag_requires_a_directory(self):
        from repro.cli import _TelemetryScope

        with pytest.raises(ValueError, match="--telemetry-stream"):
            _TelemetryScope(None, stream=True)

    def test_cli_scope_streaming_matches_buffered(self, tmp_path):
        from repro.cli import _TelemetryScope

        def run(directory, stream):
            with _TelemetryScope(directory, stream=stream) as scope:
                _exercise(scope.telemetry)
            return directory

        buffered = run(tmp_path / "b", False)
        streaming = run(tmp_path / "s", True)
        assert (streaming / "spans.part.jsonl").exists()
        assert validate_directory(streaming) == []
        # Wall-clock durations differ across runs; the span *stream* shape
        # (header, kinds, names) and the aggregates must match exactly.
        kinds_b = [json.loads(l)["kind"] for l in (buffered / "telemetry.jsonl").read_text().splitlines()]
        kinds_s = [json.loads(l)["kind"] for l in (streaming / "telemetry.jsonl").read_text().splitlines()]
        assert kinds_b == kinds_s
