"""Unit tests for the bubble (beam) decoder and the exhaustive ML decoder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.decoder_bubble import BubbleDecoder
from repro.core.decoder_ml import MLDecoder
from repro.core.encoder import ReceivedObservations, SpinalEncoder
from repro.core.params import SpinalParams
from repro.utils.bitops import random_message_bits


def noisy_observations(encoder, message, n_passes, sigma, rng):
    """Clean passes plus complex Gaussian noise of per-dimension std ``sigma``."""
    values = encoder.encode_passes(message, n_passes)
    noise = sigma * (rng.standard_normal(values.shape) + 1j * rng.standard_normal(values.shape))
    observations = ReceivedObservations(values.shape[1])
    for pass_index in range(n_passes):
        for position in range(values.shape[1]):
            observations.add(position, pass_index, values[pass_index, position] + noise[pass_index, position])
    return observations


class TestBubbleDecoderNoiseless:
    def test_recovers_message_from_one_pass(self, small_encoder, make_observations, rng):
        message = random_message_bits(16, rng)
        observations = make_observations(small_encoder, message, n_passes=1)
        decoder = BubbleDecoder(small_encoder, beam_width=4)
        result = decoder.decode(16, observations)
        assert np.array_equal(result.message_bits, message)
        assert result.path_cost == pytest.approx(0.0, abs=1e-15)

    def test_recovers_with_beam_width_one(self, small_encoder, make_observations, rng):
        """Noiselessly, even B=1 greedy decoding follows the true path."""
        message = random_message_bits(16, rng)
        observations = make_observations(small_encoder, message, n_passes=1)
        result = BubbleDecoder(small_encoder, beam_width=1).decode(16, observations)
        assert np.array_equal(result.message_bits, message)

    def test_bit_mode_noiseless(self, bit_mode_encoder, rng):
        message = random_message_bits(12, rng)
        coded = bit_mode_encoder.encode_passes(message, n_passes=16)
        observations = ReceivedObservations(4)
        for pass_index in range(coded.shape[0]):
            for position in range(4):
                observations.add(position, pass_index, int(coded[pass_index, position]))
        result = BubbleDecoder(bit_mode_encoder, beam_width=8).decode(12, observations)
        assert np.array_equal(result.message_bits, message)

    def test_many_random_messages(self, small_encoder, make_observations, rng):
        decoder = BubbleDecoder(small_encoder, beam_width=4)
        for _ in range(10):
            message = random_message_bits(16, rng)
            observations = make_observations(small_encoder, message, n_passes=1)
            assert np.array_equal(decoder.decode(16, observations).message_bits, message)


class TestBubbleDecoderNoisy:
    def test_recovers_at_moderate_noise(self, small_encoder, rng):
        message = random_message_bits(16, rng)
        # 3 passes of a k=4, c=6 code at sigma=0.1 (SNR ~ 17 dB) is easy.
        observations = noisy_observations(small_encoder, message, 3, 0.1, rng)
        result = BubbleDecoder(small_encoder, beam_width=16).decode(16, observations)
        assert np.array_equal(result.message_bits, message)

    def test_wider_beam_never_worse_cost(self, small_encoder, rng):
        """The minimum path cost found is non-increasing in the beam width."""
        message = random_message_bits(16, rng)
        observations = noisy_observations(small_encoder, message, 2, 0.4, rng)
        costs = []
        for beam_width in (1, 4, 16, 64):
            result = BubbleDecoder(small_encoder, beam_width=beam_width).decode(16, observations)
            costs.append(result.path_cost)
        assert all(costs[i + 1] <= costs[i] + 1e-12 for i in range(len(costs) - 1))

    def test_result_metadata(self, small_encoder, make_observations, rng):
        message = random_message_bits(16, rng)
        observations = make_observations(small_encoder, message, n_passes=1)
        result = BubbleDecoder(small_encoder, beam_width=4).decode(16, observations)
        assert result.n_bits == 16
        assert len(result.beam_trace) == 4
        assert result.candidates_explored >= 4 * 16  # at least 2^k per level


class TestBubbleDecoderValidation:
    def test_rejects_bad_beam_width(self, small_encoder):
        with pytest.raises(ValueError):
            BubbleDecoder(small_encoder, beam_width=0)

    def test_rejects_unpruned_cap_below_beam(self, small_encoder):
        with pytest.raises(ValueError):
            BubbleDecoder(small_encoder, beam_width=16, max_unpruned_width=4)

    def test_rejects_mismatched_observations(self, small_encoder, make_observations, rng):
        message = random_message_bits(16, rng)
        observations = make_observations(small_encoder, message, n_passes=1)
        decoder = BubbleDecoder(small_encoder, beam_width=4)
        with pytest.raises(ValueError):
            decoder.decode(20, observations)  # 5 segments vs 4 in observations

    def test_rejects_indivisible_message_length(self, small_encoder, make_observations, rng):
        message = random_message_bits(16, rng)
        observations = make_observations(small_encoder, message, n_passes=1)
        with pytest.raises(ValueError):
            BubbleDecoder(small_encoder, beam_width=4).decode(15, observations)


class TestUnprunedLevels:
    def test_decodes_with_missing_early_observations(self, rng):
        """Aggressive puncturing: no symbols at level 0, still decodable."""
        params = SpinalParams(k=4, c=8, seed=3)
        encoder = SpinalEncoder(params)
        message = random_message_bits(8, rng)  # two segments
        values = encoder.encode_passes(message, n_passes=3)
        observations = ReceivedObservations(2)
        # Only the *last* position ever gets symbols (3 of them, almost
        # noiseless): the decoder must defer pruning at level 0.
        for pass_index in range(3):
            observations.add(1, pass_index, values[pass_index, 1])
        result = BubbleDecoder(encoder, beam_width=2).decode(8, observations)
        assert np.array_equal(result.message_bits, message)


class TestMLDecoder:
    def test_matches_bubble_with_wide_beam(self, small_encoder, rng):
        message = random_message_bits(12, rng)
        observations = noisy_observations(
            SpinalEncoder(SpinalParams(k=4, c=6, seed=77)), message, 2, 0.5, rng
        )
        ml = MLDecoder(small_encoder).decode(12, observations)
        wide = BubbleDecoder(small_encoder, beam_width=1 << 12).decode(12, observations)
        assert np.array_equal(ml.message_bits, wide.message_bits)
        assert ml.path_cost == pytest.approx(wide.path_cost, rel=1e-9)

    def test_ml_cost_is_global_minimum(self, small_encoder, rng):
        """No message has a smaller total cost than the ML estimate."""
        message = random_message_bits(8, rng)
        encoder = SpinalEncoder(SpinalParams(k=4, c=6, seed=77))
        observations = noisy_observations(encoder, message, 1, 0.8, rng)
        ml = MLDecoder(encoder).decode(8, observations)
        for candidate_value in range(256):
            bits = np.array([(candidate_value >> (7 - i)) & 1 for i in range(8)], dtype=np.uint8)
            assert encoder.total_cost(bits, observations) >= ml.path_cost - 1e-9

    def test_noiseless_recovery(self, small_encoder, make_observations, rng):
        message = random_message_bits(12, rng)
        observations = make_observations(small_encoder, message, n_passes=1)
        result = MLDecoder(small_encoder).decode(12, observations)
        assert np.array_equal(result.message_bits, message)

    def test_refuses_huge_messages(self, small_encoder, make_observations, rng):
        message = random_message_bits(16, rng)
        observations = make_observations(small_encoder, message, n_passes=1)
        decoder = MLDecoder(small_encoder, max_message_bits=8)
        with pytest.raises(ValueError):
            decoder.decode(16, observations)

    def test_rejects_mismatched_observations(self, small_encoder, make_observations, rng):
        message = random_message_bits(16, rng)
        observations = make_observations(small_encoder, message, n_passes=1)
        with pytest.raises(ValueError):
            MLDecoder(small_encoder).decode(12, observations)

    def test_bit_mode_ml(self, bit_mode_encoder, rng):
        message = random_message_bits(9, rng)
        coded = bit_mode_encoder.encode_passes(message, n_passes=12)
        observations = ReceivedObservations(3)
        for pass_index in range(12):
            for position in range(3):
                observations.add(position, pass_index, int(coded[pass_index, position]))
        result = MLDecoder(bit_mode_encoder).decode(9, observations)
        assert np.array_equal(result.message_bits, message)
