"""Conformance suite: every registered code family through one shared battery.

The point of the ``repro.phy`` protocol is that the session loop, transport,
relay and cell treat all code families identically — so the families must
actually honour the contract.  Each test here is parametrized over the full
registry; registering a new family automatically subjects it to the battery.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.code_family_matrix import code_family_matrix_point
from repro.phy.families import (
    CODE_FAMILY_NAMES,
    channel_for_code,
    code_family,
    make_code,
    make_codec_session,
)
from repro.phy.protocol import RatelessCode
from repro.phy.session import CodecSession
from repro.utils.bitops import random_message_bits
from repro.utils.rng import spawn_rng

SNR_DB = 10.0
SEED = 20111114


def _session(name: str, max_symbols: int = 4096) -> CodecSession:
    return make_codec_session(
        name, snr_db=SNR_DB, seed=SEED, smoke=True, max_symbols=max_symbols
    )


def _payload(session: CodecSession, label: str) -> np.ndarray:
    return random_message_bits(
        session.payload_bits, spawn_rng(SEED, "codec-payload", label)
    )


class TestRegistry:
    def test_names_cover_the_registry(self):
        assert set(CODE_FAMILY_NAMES) == {
            "spinal",
            "lt",
            "ldpc-ir",
            "fixed-spinal",
            "repetition",
        }
        for name in CODE_FAMILY_NAMES:
            assert code_family(name).name == name

    def test_unknown_family_raises(self):
        with pytest.raises(KeyError, match="unknown code family"):
            code_family("turbo")

    @pytest.mark.parametrize("name", CODE_FAMILY_NAMES)
    def test_codes_satisfy_the_protocol(self, name):
        code = make_code(name, seed=SEED, snr_db=SNR_DB, smoke=True)
        assert isinstance(code, RatelessCode)
        info = code.info
        assert info.family == name
        assert info.payload_bits > 0
        assert info.domain in ("symbol", "bit")
        assert code.min_symbols_to_attempt() >= 1

    @pytest.mark.parametrize("name", CODE_FAMILY_NAMES)
    def test_channel_matches_the_code_domain(self, name):
        code = make_code(name, seed=SEED, snr_db=SNR_DB, smoke=True)
        channel = channel_for_code(code, SNR_DB)
        assert channel.domain == code.info.domain


class TestSessionBattery:
    @pytest.mark.parametrize("name", CODE_FAMILY_NAMES)
    def test_decodes_correctly_at_healthy_snr(self, name):
        session = _session(name)
        result = session.run(_payload(session, name), spawn_rng(SEED, "run", name))
        assert result.success
        assert result.payload_correct
        assert 0 < result.symbols_sent <= session.max_symbols
        assert result.decode_attempts >= 1
        assert result.rate > 0

    @pytest.mark.parametrize("name", CODE_FAMILY_NAMES)
    def test_no_attempt_before_the_symbol_gate(self, name):
        session = _session(name)
        tx = session.open_transmission(
            _payload(session, name), spawn_rng(SEED, "gate", name)
        )
        gate = session.code.min_symbols_to_attempt()
        while tx.symbols_delivered + 1 < gate and not tx.decoded:
            block, received = tx.send_next_block()
            if tx.symbols_delivered + block.n_symbols >= gate:
                break  # this delivery would open the gate
            tx.deliver(block, received)
            assert tx.decode_attempts == 0

    @pytest.mark.parametrize("name", CODE_FAMILY_NAMES)
    def test_absorb_order_invariance(self, name):
        session = _session(name)
        code = session.code
        if not code.info.order_invariant:
            pytest.skip(f"{name} declares order-dependent decoding")
        tx = session.open_transmission(
            _payload(session, name), spawn_rng(SEED, "order", name)
        )
        blocks: list = []
        while True:
            block, received = tx.send_next_block()
            blocks.append((block, received))
            if tx.deliver(block, received) or tx.exhausted:
                break
        assert tx.decoded, "battery needs a decodable trace; raise the SNR"

        def final_estimate(order):
            decoder = code.new_decoder()
            for block, received in order:
                decoder.absorb(block, received, attempt=False)
            return decoder.decode_now().estimate

        in_order = final_estimate(blocks)
        shuffled = list(blocks)
        spawn_rng(SEED, "order-shuffle", name).shuffle(shuffled)
        assert in_order is not None
        assert np.array_equal(in_order, final_estimate(shuffled))
        assert np.array_equal(in_order, final_estimate(list(reversed(blocks))))

    @pytest.mark.parametrize("name", CODE_FAMILY_NAMES)
    def test_pause_resume_matches_back_to_back(self, name):
        """Interleaving two packets changes nothing about either (pause/resume)."""
        session = _session(name)
        payloads = [_payload(session, f"{name}-a"), _payload(session, f"{name}-b")]

        def rngs():
            return [spawn_rng(SEED, "interleave", name, i) for i in range(2)]

        solo = []
        for payload, rng in zip(payloads, rngs()):
            tx = session.open_transmission(payload, rng)
            while not tx.decoded and not tx.exhausted:
                block, received = tx.send_next_block()
                tx.deliver(block, received)
            solo.append((tx.symbols_sent, tx.decoded))

        txs = [
            session.open_transmission(payload, rng)
            for payload, rng in zip(payloads, rngs())
        ]
        while any(not tx.decoded and not tx.exhausted for tx in txs):
            for tx in txs:  # round-robin, one block each: pause/resume per block
                if not tx.decoded and not tx.exhausted:
                    block, received = tx.send_next_block()
                    tx.deliver(block, received)
        interleaved = [(tx.symbols_sent, tx.decoded) for tx in txs]
        assert interleaved == solo

    @pytest.mark.parametrize("name", CODE_FAMILY_NAMES)
    def test_zero_symbol_best_effort(self, name):
        """A fresh decoder's forced decode must not crash (zero-symbol edge)."""
        code = make_code(name, seed=SEED, snr_db=SNR_DB, smoke=True)
        status = code.new_decoder().decode_now()
        assert status.attempted
        # The estimate may be anything (or absent), but the fields must agree.
        assert (status.estimate is None) == (status.payload is None)

    @pytest.mark.parametrize("name", CODE_FAMILY_NAMES)
    def test_budget_exhaustion_is_contained(self, name):
        """A starved session fails cleanly: no crash, budget respected."""
        session = make_codec_session(
            name, snr_db=-15.0, seed=SEED, smoke=True, max_symbols=2
        )
        result = session.run(
            _payload(session, name), spawn_rng(SEED, "starve", name)
        )
        assert not result.success
        # The sender may overshoot a tiny budget by at most one block.
        largest_block = max(
            session.code.new_encoder(_payload(session, name)).next_block().n_symbols, 1
        )
        assert result.symbols_sent <= session.max_symbols + largest_block
        assert result.decode_attempts >= 1  # the best-effort decode ran

    @pytest.mark.parametrize("name", CODE_FAMILY_NAMES)
    def test_seed_determinism(self, name):
        session = _session(name)
        payload = _payload(session, name)
        results = [
            session.run(payload, spawn_rng(SEED, "det", name)) for _ in range(2)
        ]
        a, b = results
        assert a.symbols_sent == b.symbols_sent
        assert a.decode_attempts == b.decode_attempts
        assert a.work == b.work
        assert a.success == b.success
        if a.decoded_payload is None:
            assert b.decoded_payload is None
        else:
            assert np.array_equal(a.decoded_payload, b.decoded_payload)


class TestMatrixKernel:
    """The experiment kernel is deterministic — what worker-invariance needs."""

    @pytest.mark.parametrize("scenario", ("single-hop", "relay-3", "cell-8"))
    def test_kernel_is_deterministic(self, scenario):
        params = {
            "code": "spinal",
            "scenario": scenario,
            "snr_db": 8.0,
            "seed": SEED,
            "scale": "smoke",
            "packets": 2,
            "cell_packets_per_user": 1,
            "cell_snr_spread_db": 6.0,
            "budget_factor": 8.0,
        }
        first = code_family_matrix_point(params, spawn_rng(SEED, "kernel", 0))
        second = code_family_matrix_point(params, spawn_rng(SEED, "kernel", 1))
        assert first == second
        assert first["goodput"] > 0

    @pytest.mark.parametrize("name", CODE_FAMILY_NAMES)
    def test_every_family_completes_every_scenario(self, name):
        for scenario in ("single-hop", "relay-3", "cell-8"):
            params = {
                "code": name,
                "scenario": scenario,
                "snr_db": 8.0,
                "seed": SEED,
                "scale": "smoke",
                "packets": 2,
                "cell_packets_per_user": 1,
                "cell_snr_spread_db": 6.0,
                "budget_factor": 8.0,
            }
            metrics = code_family_matrix_point(params, spawn_rng(SEED, "all", name))
            assert metrics["n_packets"] > 0
            assert 0.0 <= metrics["delivered_fraction"] <= 1.0
            assert metrics["symbols_sent"] > 0


class TestSessionSeamEdgeCases:
    """PR-7 bugfix sweep: zero-symbol deliveries and exhausted accounting."""

    def _spinal(self, snr_db=SNR_DB, max_symbols=4096):
        return make_codec_session(
            "spinal", snr_db=snr_db, seed=SEED, smoke=True, max_symbols=max_symbols
        )

    def _empty_block(self):
        from repro.core.encoder import SubpassBlock

        return SubpassBlock(
            subpass_index=0,
            positions=np.array([], dtype=np.int64),
            pass_indices=np.array([], dtype=np.int64),
            values=np.array([], dtype=np.complex128),
        )

    def test_empty_block_never_triggers_an_attempt(self):
        """A zero-symbol delivery must not count a decode attempt — before
        the gate (nothing to decode) nor after it (the observations did not
        change, so an attempt would double-count work)."""
        session = self._spinal()
        tx = session.open_transmission(
            _payload(session, "empty-block"), spawn_rng(SEED, "empty-block")
        )
        nothing = np.array([], dtype=np.complex128)
        assert not tx.deliver(self._empty_block(), nothing)
        assert tx.decode_attempts == 0
        assert tx.symbols_delivered == 0
        # Open the gate without decoding, then deliver another empty block.
        while not tx.attempt_ready:
            block, received = tx.send_next_block()
            tx.deliver(block, received, attempt=False)
        assert tx.deliver(self._empty_block(), nothing) == tx.decoded
        assert tx.decode_attempts == 0
        # A real block past the open gate does attempt.
        block, received = tx.send_next_block()
        tx.deliver(block, received)
        assert tx.decode_attempts == 1

    def test_attempt_ready_tracks_the_gate(self):
        session = self._spinal()
        tx = session.open_transmission(
            _payload(session, "gate-prop"), spawn_rng(SEED, "gate-prop")
        )
        gate = session.code.min_symbols_to_attempt()
        while tx.symbols_delivered < gate:
            assert tx.attempt_ready == (tx.symbols_delivered >= gate)
            block, received = tx.send_next_block()
            tx.deliver(block, received, attempt=False)
        assert tx.attempt_ready

    def test_best_effort_after_exhaustion_is_idempotent(self):
        """Repeated best-effort decodes never double-count attempts/work."""
        session = self._spinal(snr_db=-25.0, max_symbols=8)
        tx = session.open_transmission(
            _payload(session, "exhaust"), spawn_rng(SEED, "exhaust")
        )
        while not tx.decoded and not tx.exhausted:
            block, received = tx.send_next_block()
            tx.deliver(block, received)
        assert tx.exhausted and not tx.decoded
        tx.best_effort_decode()
        attempts, work = tx.decode_attempts, tx.work
        assert attempts >= 1
        tx.best_effort_decode()
        tx.best_effort_decode()
        assert (tx.decode_attempts, tx.work) == (attempts, work)
        tx.decoded_payload()  # must not raise after a best-effort

    def test_best_effort_records_exactly_one_attempt_when_none_made(self):
        """An exhausted absorb-only transmission gets exactly one forced
        attempt, however many times the caller asks."""
        session = self._spinal(snr_db=-25.0, max_symbols=8)
        tx = session.open_transmission(
            _payload(session, "exhaust-absorb"), spawn_rng(SEED, "exhaust-absorb")
        )
        while not tx.exhausted:
            block, received = tx.send_next_block()
            tx.deliver(block, received, attempt=False)
        assert tx.decode_attempts == 0
        tx.best_effort_decode()
        assert tx.decode_attempts == 1
        work = tx.work
        tx.best_effort_decode()
        assert (tx.decode_attempts, tx.work) == (1, work)

    def test_record_status_after_decode_never_recounts(self):
        session = self._spinal()
        tx = session.open_transmission(
            _payload(session, "recount"), spawn_rng(SEED, "recount")
        )
        while not tx.decoded and not tx.exhausted:
            block, received = tx.send_next_block()
            tx.deliver(block, received)
        assert tx.decoded, "battery needs a decodable trace; raise the SNR"
        attempts, work = tx.decode_attempts, tx.work
        assert tx.record_status(tx.last_status)
        assert (tx.decode_attempts, tx.work) == (attempts, work)
