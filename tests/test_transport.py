"""Property tests for the event-driven sliding-window link transport.

The transport's contract, exercised over randomized loss/delay schedules:

* every delivered packet is delivered exactly once, in order, with the
  correct payload;
* the sender never holds more than ``window`` packets in flight;
* the sender never spends fewer symbols than the receiver needed;
* a fixed seed is bit-deterministic — rerunning a simulation, or fanning
  the E15 sweep over any number of worker processes, reproduces identical
  results (the same contract the Monte-Carlo trial runner honours).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.channels.erasure import PacketErasureChannel
from repro.core.params import SpinalParams
from repro.experiments.runner import SpinalRunConfig
from repro.experiments.transport_sweep import (
    TransportSweepConfig,
    run_transport_sweep,
)
from repro.link.events import (
    PRIORITY_ACK,
    PRIORITY_BLOCK,
    PRIORITY_SEND,
    EventScheduler,
)
from repro.link.topology import build_relay_sessions, simulate_relay_transport
from repro.link.transport import TransportConfig, run_link_transport
from repro.utils.bitops import random_message_bits
from repro.utils.rng import spawn_rng

_RUN_CONFIG = SpinalRunConfig(
    payload_bits=16,
    params=SpinalParams(k=4, c=6, seed=31),
    beam_width=8,
    search="sequential",
    max_symbols=512,
)


def _payloads(n, seed=501):
    return [random_message_bits(16, spawn_rng(seed, "payload", i)) for i in range(n)]


def _session(snr_db=10.0):
    return build_relay_sessions(_RUN_CONFIG, [snr_db])[0]


class TestEventScheduler:
    def test_priority_order_within_a_tick(self):
        scheduler = EventScheduler()
        order = []
        scheduler.schedule(3, PRIORITY_SEND, lambda: order.append("send"))
        scheduler.schedule(3, PRIORITY_BLOCK, lambda: order.append("block"))
        scheduler.schedule(3, PRIORITY_ACK, lambda: order.append("ack"))
        scheduler.schedule(1, PRIORITY_SEND, lambda: order.append("early"))
        scheduler.run()
        assert order == ["early", "block", "ack", "send"]

    def test_fifo_within_priority(self):
        scheduler = EventScheduler()
        order = []
        for tag in ("a", "b", "c"):
            scheduler.schedule(2, PRIORITY_BLOCK, lambda tag=tag: order.append(tag))
        scheduler.run()
        assert order == ["a", "b", "c"]

    def test_rejects_past_events(self):
        scheduler = EventScheduler()
        scheduler.schedule(5, PRIORITY_SEND, lambda: None)
        scheduler.run()
        assert scheduler.now == 5
        with pytest.raises(ValueError):
            scheduler.schedule(4, PRIORITY_SEND, lambda: None)

    def test_event_budget_guards_liveness(self):
        scheduler = EventScheduler()

        def respawn():
            scheduler.schedule(scheduler.now + 1, PRIORITY_SEND, respawn)

        scheduler.schedule(0, PRIORITY_SEND, respawn)
        with pytest.raises(RuntimeError, match="event budget"):
            scheduler.run(max_events=100)


class TestPacketErasureChannel:
    def test_extremes_consume_no_randomness(self):
        rng = spawn_rng(1, "erasure")
        before = rng.bit_generator.state
        assert PacketErasureChannel(0.0).survives(rng)
        assert not PacketErasureChannel(1.0).survives(rng)
        assert rng.bit_generator.state == before

    def test_loss_rate_is_roughly_respected(self):
        rng = spawn_rng(2, "erasure")
        channel = PacketErasureChannel(0.25)
        survived = sum(channel.survives(rng) for _ in range(2000))
        assert 0.70 < survived / 2000 < 0.80

    def test_validation(self):
        with pytest.raises(ValueError):
            PacketErasureChannel(-0.1)
        with pytest.raises(ValueError):
            PacketErasureChannel(1.5)


class TestTransportConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError, match="protocol"):
            TransportConfig(protocol="stop-and-wait")
        with pytest.raises(ValueError, match="window"):
            TransportConfig(window=0)
        with pytest.raises(ValueError, match="ack_delay"):
            TransportConfig(ack_delay=-1)
        with pytest.raises(ValueError, match="ack_loss"):
            TransportConfig(ack_loss=1.5)


class TestSlidingWindowInvariants:
    """Randomized loss/delay schedules against the protocol's core promises."""

    SCHEDULES = [
        ("go-back-n", 1, 0, 0.0),
        ("go-back-n", 3, 7, 0.3),
        ("go-back-n", 2, 19, 0.5),
        ("selective-repeat", 1, 5, 0.2),
        ("selective-repeat", 3, 0, 0.0),
        ("selective-repeat", 3, 13, 0.4),
        ("selective-repeat", 5, 23, 0.6),
    ]

    @pytest.mark.parametrize("protocol,window,ack_delay,ack_loss", SCHEDULES)
    def test_in_order_exactly_once_delivery(self, protocol, window, ack_delay, ack_loss):
        payloads = _payloads(6)
        deliveries = []
        config = TransportConfig(
            protocol=protocol,
            window=window,
            ack_delay=ack_delay,
            ack_loss=ack_loss,
            seed=777,
        )
        result = run_link_transport(_session(), payloads, config)

        # Generous budget at 10 dB: everything must get through.
        assert result.delivered.all()
        # The delivery order recorded by the hop is the sequence order, and
        # delivery times are non-decreasing in that order (in-order).
        times = result.delivery_times
        assert (times >= 0).all()
        assert (np.diff(times) >= 0).all()
        # Exactly-once with the right bits.
        for seq, payload in enumerate(payloads):
            assert np.array_equal(result.decoded_payloads[seq], payload)

    @pytest.mark.parametrize("protocol,window,ack_delay,ack_loss", SCHEDULES)
    def test_window_never_exceeded(self, protocol, window, ack_delay, ack_loss):
        config = TransportConfig(
            protocol=protocol,
            window=window,
            ack_delay=ack_delay,
            ack_loss=ack_loss,
            seed=778,
        )
        result = run_link_transport(_session(), _payloads(6), config)
        assert 1 <= result.max_outstanding <= window

    @pytest.mark.parametrize("protocol,window,ack_delay,ack_loss", SCHEDULES)
    def test_sender_never_spends_less_than_needed(
        self, protocol, window, ack_delay, ack_loss
    ):
        config = TransportConfig(
            protocol=protocol,
            window=window,
            ack_delay=ack_delay,
            ack_loss=ack_loss,
            seed=779,
        )
        result = run_link_transport(_session(), _payloads(5), config)
        assert (result.symbols_spent >= result.symbols_needed).all()
        assert result.makespan >= int(result.symbols_needed.max())

    def test_empty_packet_sequence(self):
        result = run_link_transport(_session(), [], TransportConfig())
        assert result.n_packets == 0
        assert result.makespan == 0
        assert result.goodput_bits_per_symbol_time == 0.0
        assert result.link_session_result().throughput_bits_per_symbol == 0.0

    def test_budget_exhaustion_aborts_but_terminates(self):
        # 16 payload bits over a 0 dB channel with a 12-symbol budget: some
        # packets cannot decode; the simulation must still drain, mark them
        # undelivered, and deliver the rest in order.
        config = _RUN_CONFIG.with_(max_symbols=12)
        session = build_relay_sessions(config, [0.0])[0]
        result = run_link_transport(
            session,
            _payloads(6),
            TransportConfig(protocol="go-back-n", window=2, ack_delay=4, seed=11),
        )
        assert not result.delivered.all()
        assert (result.symbols_spent[~result.delivered] >= 12).all()
        delivered_times = result.delivery_times[result.delivered]
        assert (np.diff(delivered_times) >= 0).all()

    @pytest.mark.parametrize("seed", [1, 2, 9, 15, 16])
    def test_sr_abort_flushes_buffered_packets(self, seed):
        # Regression: a packet decoded and buffered behind an undecoded
        # head-of-line packet used to be stranded (never delivered) when the
        # head packet exhausted its budget and aborted — the in-order flush
        # only ran on decode, not on abort.
        config = _RUN_CONFIG.with_(max_symbols=12)
        session = build_relay_sessions(config, [0.0])[0]
        result = run_link_transport(
            session,
            _payloads(6, seed=seed),
            TransportConfig(protocol="selective-repeat", window=3, ack_delay=0, seed=seed),
        )
        for i in range(result.n_packets):
            if result.decoded_payloads[i] is not None:
                assert result.delivered[i], i

    @pytest.mark.parametrize("protocol", ["go-back-n", "selective-repeat"])
    def test_decoded_but_never_acked_packet_cannot_wedge_the_window(self, protocol):
        # Regression: a packet that decoded at the receiver but lost every
        # ACK before its budget ran out used to block the sender window
        # permanently (it was neither abortable nor ACKed), leaving later
        # packets untransmitted.
        config = _RUN_CONFIG.with_(max_symbols=24)
        session = build_relay_sessions(config, [15.0])[0]
        result = run_link_transport(
            session,
            _payloads(8, seed=0),
            TransportConfig(
                protocol=protocol, window=2, ack_delay=3, ack_loss=0.9, seed=0
            ),
        )
        # Every packet must at least have been transmitted; at 15 dB with
        # this budget every one of them also decodes and must be delivered.
        assert (result.symbols_spent > 0).all()
        assert result.delivered.all()

    def test_gbn_discards_cost_symbols_sr_does_not(self):
        # With instant feedback, selective-repeat wastes nothing at any
        # window; go-back-N pays for every out-of-order block it discards.
        payloads = _payloads(5)
        sr = run_link_transport(
            _session(),
            payloads,
            TransportConfig(protocol="selective-repeat", window=3, ack_delay=0),
        )
        gbn = run_link_transport(
            _session(),
            payloads,
            TransportConfig(protocol="go-back-n", window=3, ack_delay=0),
        )
        assert sr.symbol_efficiency == 1.0
        assert gbn.symbol_efficiency < 1.0
        assert gbn.total_symbols_sent > sr.total_symbols_sent


class TestDeterminism:
    def test_rerun_is_bit_identical(self):
        config = TransportConfig(
            protocol="selective-repeat", window=3, ack_delay=9, ack_loss=0.35, seed=321
        )
        first = run_link_transport(_session(), _payloads(5), config)
        second = run_link_transport(_session(), _payloads(5), config)
        assert np.array_equal(first.symbols_spent, second.symbols_spent)
        assert np.array_equal(first.symbols_needed, second.symbols_needed)
        assert np.array_equal(first.delivery_times, second.delivery_times)
        assert first.acks_sent == second.acks_sent
        assert first.acks_lost == second.acks_lost
        assert first.makespan == second.makespan

    def test_relay_rerun_is_bit_identical(self):
        config = TransportConfig(window=2, ack_delay=6, ack_loss=0.2, seed=5)
        results = [
            simulate_relay_transport(
                build_relay_sessions(_RUN_CONFIG, [10.0, 8.0]), _payloads(4), config
            )
            for _ in range(2)
        ]
        assert np.array_equal(results[0].delivered, results[1].delivered)
        assert np.array_equal(results[0].delivery_times, results[1].delivery_times)
        for hop_a, hop_b in zip(results[0].hops, results[1].hops):
            assert np.array_equal(hop_a.symbols_spent, hop_b.symbols_spent)
            assert hop_a.acks_lost == hop_b.acks_lost

    def test_sweep_identical_for_any_worker_count(self):
        config = TransportSweepConfig(
            payload_bits=16,
            params=SpinalParams(k=4, c=6, seed=31),
            beam_width=8,
            snr_db=10.0,
            n_packets=3,
            windows=(1, 2),
            ack_delays=(0, 6),
            hop_counts=(1, 2),
            ack_loss=0.25,
            max_symbols=512,
        )
        reference = run_transport_sweep(config)
        for n_workers in (2, 3):
            rows = run_transport_sweep(config.with_(n_workers=n_workers))
            assert rows == reference

    def test_sweep_config_validation(self):
        with pytest.raises(ValueError, match="n_workers"):
            TransportSweepConfig(n_workers=0)
        with pytest.raises(ValueError, match="hop counts"):
            TransportSweepConfig(hop_counts=(0,))
