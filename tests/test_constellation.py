"""Unit tests for the constellation mapping functions (repro.core.constellation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.constellation import (
    LinearConstellation,
    OffsetLinearConstellation,
    TruncatedGaussianConstellation,
    make_constellation,
)

ALL_KINDS = ["linear", "offset-linear", "truncated-gaussian"]


@pytest.mark.parametrize("kind", ALL_KINDS)
class TestCommonProperties:
    def test_unit_average_energy(self, kind):
        mapper = make_constellation(kind, c=6)
        assert mapper.average_energy == pytest.approx(1.0, rel=1e-9)

    def test_custom_average_energy(self, kind):
        mapper = make_constellation(kind, c=6, average_power=4.0)
        assert mapper.average_energy == pytest.approx(4.0, rel=1e-9)

    def test_bits_per_symbol(self, kind):
        assert make_constellation(kind, c=5).bits_per_symbol == 10

    def test_map_values_shape_and_type(self, kind):
        mapper = make_constellation(kind, c=4)
        out = mapper.map_values(np.arange(16, dtype=np.uint64))
        assert out.shape == (16,)
        assert np.iscomplexobj(out)

    def test_rejects_value_out_of_range(self, kind):
        mapper = make_constellation(kind, c=3)
        with pytest.raises(ValueError):
            mapper.map_values(np.array([1 << 6], dtype=np.uint64))

    def test_i_and_q_independent(self, kind):
        """The first c bits set I and the last c bits set Q."""
        mapper = make_constellation(kind, c=4)
        value_i = np.uint64(0b1010 << 4)
        value_q = np.uint64(0b1010)
        point_i = mapper.map_values(value_i)
        point_q = mapper.map_values(value_q)
        assert point_i.real == pytest.approx(point_q.imag)

    def test_enumerate_points_count(self, kind):
        mapper = make_constellation(kind, c=3)
        assert mapper.enumerate_points().shape == (64,)

    def test_axis_levels_count(self, kind):
        mapper = make_constellation(kind, c=5)
        assert mapper.axis_levels().shape == (32,)

    def test_peak_at_least_average(self, kind):
        mapper = make_constellation(kind, c=6)
        assert mapper.peak_energy >= mapper.average_energy


class TestLinearConstellation:
    def test_sign_magnitude_structure(self):
        mapper = LinearConstellation(c=4, average_power=1.0)
        levels = mapper.map_axis(np.arange(16))
        # First half (sign bit 0) non-negative, second half non-positive.
        assert np.all(levels[:8] >= 0)
        assert np.all(levels[8:] <= 0)

    def test_magnitude_linear_in_value(self):
        mapper = LinearConstellation(c=4, average_power=1.0)
        levels = mapper.map_axis(np.arange(8))
        spacing = np.diff(levels)
        assert np.allclose(spacing, spacing[0])

    def test_eq3_formula(self):
        """Check the exact Eq. (3) mapping for a hand-computed case."""
        mapper = LinearConstellation(c=3, average_power=1.0)
        p_star = mapper.peak_amplitude
        # Value 0b101: sign bit 1, magnitude 0b01 = 1 -> -(1/3) * P*.
        assert mapper.map_axis(np.array([0b101]))[0] == pytest.approx(-p_star / 3.0)

    def test_rejects_c_below_two(self):
        with pytest.raises(ValueError):
            LinearConstellation(c=1)


class TestOffsetLinearConstellation:
    def test_levels_are_symmetric(self):
        mapper = OffsetLinearConstellation(c=4)
        levels = mapper.axis_levels()
        assert np.allclose(np.sort(levels), -np.sort(levels)[::-1])

    def test_uniform_spacing(self):
        mapper = OffsetLinearConstellation(c=4)
        spacing = np.diff(np.sort(mapper.axis_levels()))
        assert np.allclose(spacing, spacing[0])


class TestTruncatedGaussianConstellation:
    def test_levels_monotone_in_value(self):
        mapper = TruncatedGaussianConstellation(c=5)
        levels = mapper.axis_levels()
        assert np.all(np.diff(levels) > 0)

    def test_levels_bounded_by_truncation(self):
        beta = 2.0
        mapper = TruncatedGaussianConstellation(c=6, beta=beta)
        # Scaling preserves the shape; the ratio max/std stays below beta-ish.
        levels = mapper.axis_levels()
        assert np.max(np.abs(levels)) < beta * 1.5

    def test_denser_near_origin_than_uniform(self):
        gaussian = TruncatedGaussianConstellation(c=6)
        uniform = OffsetLinearConstellation(c=6)
        g_levels = np.sort(np.abs(gaussian.axis_levels()))
        u_levels = np.sort(np.abs(uniform.axis_levels()))
        # The median |level| of the Gaussian map is smaller.
        assert np.median(g_levels) < np.median(u_levels)

    def test_rejects_bad_beta(self):
        with pytest.raises(ValueError):
            TruncatedGaussianConstellation(c=4, beta=0.0)


class TestFactory:
    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            make_constellation("hexagonal", c=4)

    def test_returns_requested_type(self):
        assert isinstance(make_constellation("linear", 4), LinearConstellation)
        assert isinstance(
            make_constellation("offset-linear", 4), OffsetLinearConstellation
        )
        assert isinstance(
            make_constellation("truncated-gaussian", 4), TruncatedGaussianConstellation
        )

    def test_enumerate_refuses_huge_constellations(self):
        with pytest.raises(ValueError):
            make_constellation("offset-linear", 16).enumerate_points()
