"""Equivalence suite locking the incremental decoder to the reference.

The incremental engine's whole value proposition is "same answers, less
work": after *every* subpass of a rateless session it must produce
bit-identical ``message_bits`` and an exactly equal ``path_cost`` to a fresh
:class:`BubbleDecoder` handed the same observations, while evaluating
strictly fewer tree nodes over the session.  These tests enforce that
contract over randomized (k, B, puncturing, channel) configurations, over
the bisection search's shrinking observation replays, and at the
session/runner level.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.channels.awgn import AWGNChannel
from repro.channels.bsc import BSCChannel
from repro.core.decoder_bubble import BubbleDecoder
from repro.core.decoder_incremental import IncrementalBubbleDecoder
from repro.core.encoder import ReceivedObservations, SpinalEncoder
from repro.core.framing import Framer
from repro.core.params import SpinalParams
from repro.core.puncturing import (
    NoPuncturing,
    StridedPuncturing,
    SymbolBySymbol,
    TailFirstPuncturing,
)
from repro.core.rateless import RatelessSession
from repro.utils.bitops import random_message_bits
from repro.utils.rng import spawn_rng

_SCHEDULES = {
    "none": NoPuncturing,
    "symbol": SymbolBySymbol,
    "strided": lambda: StridedPuncturing(stride=4),
    "tail-first": TailFirstPuncturing,
}


def _random_config(trial: int):
    """Draw one randomized (params, puncturing, channel, payload) setup."""
    rng = spawn_rng(808, "equiv-config", trial)
    k = int(rng.choice([2, 3, 4]))
    beam = int(rng.choice([2, 4, 8]))
    bit_mode = bool(rng.random() < 0.3)
    schedule = _SCHEDULES[rng.choice(list(_SCHEDULES))]()
    params = SpinalParams(
        k=k,
        c=int(rng.choice([4, 6])),
        seed=int(rng.integers(0, 2**32)),
        bit_mode=bit_mode,
    )
    if bit_mode:
        channel = BSCChannel(float(rng.uniform(0.01, 0.1)))
    else:
        channel = AWGNChannel(snr_db=float(rng.uniform(3.0, 15.0)), adc_bits=14)
    n_bits = k * int(rng.integers(3, 7))
    return params, schedule, channel, n_bits, rng


def _stream_blocks(encoder, message, channel, rng, n_subpasses):
    """Transmit ``n_subpasses`` subpasses, returning (block, received) pairs."""
    stream = encoder.symbol_stream(message)
    sent = []
    while len(sent) < n_subpasses:
        block = next(stream)
        sent.append((block, channel.transmit(block.values, rng)))
    return sent


class TestSubpassEquivalence:
    @pytest.mark.parametrize("trial", range(12))
    def test_bit_identical_after_every_subpass(self, trial):
        params, schedule, channel, n_bits, rng = _random_config(trial)
        encoder = SpinalEncoder(params, puncturing=schedule)
        message = random_message_bits(n_bits, rng)
        n_segments = params.n_segments(n_bits)
        n_subpasses = 3 * schedule.subpasses_per_cycle(n_segments)

        fresh = BubbleDecoder(encoder, beam_width=4)
        incremental = IncrementalBubbleDecoder(encoder, beam_width=4)
        observations = ReceivedObservations(n_segments)
        fresh_total = 0
        incr_total = 0
        for block, received in _stream_blocks(encoder, message, channel, rng, n_subpasses):
            observations.add_block(block, received)
            reference = fresh.decode(n_bits, observations)
            result = incremental.decode(n_bits, observations)
            assert np.array_equal(result.message_bits, reference.message_bits)
            assert result.path_cost == reference.path_cost
            assert result.beam_trace == reference.beam_trace
            assert result.candidates_explored <= reference.candidates_explored
            fresh_total += reference.candidates_explored
            incr_total += result.candidates_explored
        assert incr_total < fresh_total  # strictly less work over the session

    def test_equivalence_under_shrinking_observations(self):
        """The bisection strategy replays truncated prefixes in any order."""
        params = SpinalParams(k=3, c=6, seed=99)
        encoder = SpinalEncoder(params, puncturing=TailFirstPuncturing())
        rng = spawn_rng(808, "equiv-shrink")
        message = random_message_bits(12, rng)
        channel = AWGNChannel(snr_db=8.0, adc_bits=14)
        sent = _stream_blocks(encoder, message, channel, rng, 12)
        blocks = [block for block, _ in sent]
        received = [out for _, out in sent]
        total = sum(block.n_symbols for block in blocks)
        full = ReceivedObservations(params.n_segments(12))
        for block, out in sent:
            full.add_block(block, out)

        incremental = IncrementalBubbleDecoder(encoder, beam_width=4)
        fresh = BubbleDecoder(encoder, beam_width=4)
        # A bisection-like boundary walk: gallop up, then jump around.
        for boundary in [2, 4, 8, total, total // 2, total // 4, 3 * total // 4, total]:
            view = full.truncated(boundary, blocks, received)
            reference = fresh.decode(12, view)
            result = incremental.decode(12, view)
            assert np.array_equal(result.message_bits, reference.message_bits)
            assert result.path_cost == reference.path_cost

    def test_repeat_decode_is_free_and_identical(self):
        params = SpinalParams(k=2, c=4, seed=5)
        encoder = SpinalEncoder(params)
        rng = spawn_rng(808, "equiv-repeat")
        message = random_message_bits(8, rng)
        channel = AWGNChannel(snr_db=10.0, adc_bits=14)
        observations = ReceivedObservations(4)
        for block, out in _stream_blocks(encoder, message, channel, rng, 2):
            observations.add_block(block, out)
        incremental = IncrementalBubbleDecoder(encoder, beam_width=4)
        first = incremental.decode(8, observations)
        again = incremental.decode(8, observations)
        assert np.array_equal(again.message_bits, first.message_bits)
        assert again.path_cost == first.path_cost
        assert first.candidates_explored > 0
        assert again.candidates_explored == 0

    def test_message_length_change_resets_state(self):
        params = SpinalParams(k=2, c=4, seed=6)
        encoder = SpinalEncoder(params)
        rng = spawn_rng(808, "equiv-resize")
        channel = AWGNChannel(snr_db=12.0, adc_bits=14)
        incremental = IncrementalBubbleDecoder(encoder, beam_width=4)
        for n_bits in (8, 12):
            message = random_message_bits(n_bits, rng)
            observations = ReceivedObservations(params.n_segments(n_bits))
            for block, out in _stream_blocks(encoder, message, channel, rng, 3):
                observations.add_block(block, out)
            reference = BubbleDecoder(encoder, beam_width=4).decode(n_bits, observations)
            result = incremental.decode(n_bits, observations)
            assert np.array_equal(result.message_bits, reference.message_bits)
            assert result.path_cost == reference.path_cost

    def test_rejects_mismatched_observation_store(self):
        params = SpinalParams(k=2, c=4)
        encoder = SpinalEncoder(params)
        incremental = IncrementalBubbleDecoder(encoder, beam_width=4)
        with pytest.raises(ValueError, match="segments"):
            incremental.decode(8, ReceivedObservations(3))

    def test_constructor_validation_matches_bubble(self):
        encoder = SpinalEncoder(SpinalParams(k=2, c=4))
        with pytest.raises(ValueError):
            IncrementalBubbleDecoder(encoder, beam_width=0)
        with pytest.raises(ValueError):
            IncrementalBubbleDecoder(encoder, beam_width=8, max_unpruned_width=4)


class TestEmptyCacheRegression:
    def test_zero_width_cached_expansion_does_not_wrap_index(self):
        """Replay an observation history that leaves a level's cached
        expansion zero-width and then forces the row-lookup path.

        The row-reuse lookup clamps ``searchsorted`` misses with
        ``np.minimum(idx, sorted_states.size - 1)``.  On an empty cached
        expansion that clamp produces index ``-1``, which wraps to the *last*
        row of the (empty) sorted array and faulted with an ``IndexError``
        before the emptiness guard was added — and would silently alias the
        final row on any hypothetical non-empty miss.  The beam expansion of
        a live decode is never empty (it has ``beam x 2^k`` children), so the
        zero-width state is replayed here by editing the level cache the way
        a defensive reset could leave it: expansion arrays emptied, parent
        beam drifted.  The decoder must treat every probe as a miss,
        recompute the rows, and stay bit-identical to a fresh decode.
        """
        params = SpinalParams(k=2, c=4, seed=17)
        encoder = SpinalEncoder(params, puncturing=SymbolBySymbol())
        rng = spawn_rng(808, "equiv-empty-cache")
        message = random_message_bits(8, rng)
        channel = AWGNChannel(snr_db=6.0, adc_bits=14)
        sent = _stream_blocks(encoder, message, channel, rng, 8)

        incremental = IncrementalBubbleDecoder(encoder, beam_width=2)
        observations = ReceivedObservations(params.n_segments(8))
        for block, out in sent[:4]:
            observations.add_block(block, out)
        incremental.decode(8, observations)

        cache = incremental._levels[1]
        assert cache.obs_pass_indices.size > 0  # the overlap below is real
        cache.sorted_states = np.empty(0, dtype=np.uint64)
        cache.sort_order = np.empty(0, dtype=np.int64)
        # Drift the recorded parent beam so the wholesale-reuse fast path is
        # off and the decoder must go through the sorted-states row lookup.
        cache.parent_states = cache.parent_states + np.uint64(1)

        for block, out in sent[4:]:
            observations.add_block(block, out)
        reference = BubbleDecoder(encoder, beam_width=2).decode(8, observations)
        result = incremental.decode(8, observations)
        assert np.array_equal(result.message_bits, reference.message_bits)
        assert result.path_cost == reference.path_cost
        assert result.beam_trace == reference.beam_trace


class TestFigure2Acceptance:
    def test_three_fold_reduction_at_figure2_operating_point(self):
        """The PR's headline claim, pinned: >= 3x fewer tree-node evaluations
        per rateless trial at the Figure-2 AWGN configuration (24-bit
        messages, k=8, c=10, B=16, tail-first, 14-bit ADC) at -5 dB, for the
        on-line sequential receiver, with identical trial outcomes."""
        from repro.experiments.runner import SpinalRunConfig
        from repro.theory.capacity import awgn_capacity_db

        config = SpinalRunConfig()
        snr_db = -5.0
        work = {}
        outcomes = {}
        for name, cls in [("fresh", BubbleDecoder), ("incremental", IncrementalBubbleDecoder)]:
            session = RatelessSession(
                config.build_encoder(),
                decoder_factory=lambda enc, cls=cls: cls(enc, beam_width=config.beam_width),
                channel=AWGNChannel(snr_db=snr_db, signal_power=1.0, adc_bits=config.adc_bits),
                framer=config.build_framer(),
                termination="genie",
                max_symbols=config.symbol_budget(awgn_capacity_db(snr_db)),
                search="sequential",
            )
            candidates = 0
            trail = []
            for trial in range(2):
                rng = spawn_rng(config.seed, "trial", snr_db, trial)
                payload = random_message_bits(config.payload_bits, rng)
                result = session.run(payload, rng)
                candidates += result.candidates_explored
                trail.append(
                    (result.symbols_sent, result.decode_attempts, result.payload_correct)
                )
            work[name] = candidates
            outcomes[name] = trail
        assert outcomes["incremental"] == outcomes["fresh"]
        assert work["fresh"] >= 3 * work["incremental"], work


class TestSessionEquivalence:
    def _session(self, factory, search):
        params = SpinalParams(k=4, c=6, seed=21)
        encoder = SpinalEncoder(params, puncturing=TailFirstPuncturing())
        framer = Framer(payload_bits=16, k=params.k)
        return RatelessSession(
            encoder,
            decoder_factory=factory,
            channel=AWGNChannel(snr_db=10.0, adc_bits=14),
            framer=framer,
            termination="genie",
            max_symbols=512,
            search=search,
        )

    @pytest.mark.parametrize("search", ["sequential", "bisect"])
    def test_trials_identical_with_fewer_candidates(self, search):
        results = {}
        for name, factory in [
            ("fresh", lambda enc: BubbleDecoder(enc, beam_width=8)),
            ("incremental", lambda enc: IncrementalBubbleDecoder(enc, beam_width=8)),
        ]:
            session = self._session(factory, search)
            rng = spawn_rng(808, "equiv-session", search)
            payload = random_message_bits(16, rng)
            results[name] = session.run(payload, rng)
        fresh, incr = results["fresh"], results["incremental"]
        assert incr.success == fresh.success
        assert incr.symbols_sent == fresh.symbols_sent
        assert incr.decode_attempts == fresh.decode_attempts
        assert np.array_equal(incr.decoded_payload, fresh.decoded_payload)
        assert incr.candidates_explored < fresh.candidates_explored
