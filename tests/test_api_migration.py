"""Migration pins: the legacy entry points are byte-identical shims.

``tests/golden/api_migration.json`` was generated at the commit *before*
the ``repro.phy`` codec API landed (see ``make_api_migration_golden.py``),
so these tests prove the redesign's core promise: every old entry point —
``RatelessSession.run``, ``simulate_link_session``,
``HybridArqLdpcSystem.run_trial``, ``FixedRateSpinalSystem`` — still
produces exactly the bytes it produced at git HEAD, while now delegating to
the code-agnostic session underneath.  A second battery checks the
deprecation contract: each shim emits exactly one DeprecationWarning per
process, spelling out the new call.
"""

from __future__ import annotations

import json
import warnings
from fractions import Fraction
from pathlib import Path

import numpy as np
import pytest

from repro.baselines.fixed_rate_spinal import FixedRateSpinalSystem
from repro.baselines.hybrid_arq import HybridArqLdpcSystem
from repro.baselines.ldpc_system import LdpcConfig
from repro.channels.awgn import AWGNChannel
from repro.core.decoder_incremental import IncrementalBubbleDecoder
from repro.core.encoder import SpinalEncoder
from repro.core.framing import Framer
from repro.core.params import SpinalParams
from repro.core.rateless import RatelessSession
from repro.fountain.lt import LTDecoder, LTEncoder
from repro.link.feedback import DelayedFeedback, PerfectFeedback
from repro.link.session import simulate_link_session
from repro.utils.bitops import random_message_bits
from repro.utils.deprecation import reset_warnings
from repro.utils.rng import spawn_rng

GOLDEN = json.loads(
    (Path(__file__).parent / "golden" / "api_migration.json").read_text()
)
SEED = GOLDEN["seed"]


@pytest.fixture(autouse=True)
def _quiet_deprecations():
    """The shims under test warn by design; keep the run output clean."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        yield


def _spinal_session() -> RatelessSession:
    return RatelessSession(
        SpinalEncoder(SpinalParams(k=4, c=6)),
        decoder_factory=lambda enc: IncrementalBubbleDecoder(enc, beam_width=8),
        channel=AWGNChannel(snr_db=8.0, adc_bits=14),
        framer=Framer(payload_bits=16, k=4),
        max_symbols=512,
    )


class TestRatelessSessionShim:
    def test_run_matches_git_head_golden(self):
        session = _spinal_session()
        for trial, golden in enumerate(GOLDEN["rateless_session"]["trials"]):
            rng = spawn_rng(SEED, "api-golden", "rateless", trial)
            payload = random_message_bits(16, rng)
            result = session.run(payload, rng)
            assert result.success == golden["success"]
            assert result.payload_correct == golden["payload_correct"]
            assert result.symbols_sent == golden["symbols_sent"]
            assert result.payload_bits == golden["payload_bits"]
            assert result.decode_attempts == golden["decode_attempts"]
            assert result.candidates_explored == golden["candidates_explored"]
            assert [int(b) for b in result.decoded_payload] == golden["decoded_payload"]
            assert result.rate == golden["rate"]

    def test_codec_session_matches_the_same_golden(self):
        """The *new* spelling produces the same bytes as the old one."""
        codec = _spinal_session().codec_session()
        for trial, golden in enumerate(GOLDEN["rateless_session"]["trials"]):
            rng = spawn_rng(SEED, "api-golden", "rateless", trial)
            payload = random_message_bits(16, rng)
            result = codec.run(payload, rng)
            assert result.symbols_sent == golden["symbols_sent"]
            assert result.decode_attempts == golden["decode_attempts"]
            assert result.work == golden["candidates_explored"]
            assert [int(b) for b in result.decoded_payload] == golden["decoded_payload"]


class TestLinkSessionShim:
    def test_simulate_link_session_matches_golden(self):
        needed = [30, 41, 52, 28]
        for name, feedback in (
            ("perfect", PerfectFeedback()),
            ("delayed-8", DelayedFeedback(delay_symbols=8)),
        ):
            golden = GOLDEN["link_session"][name]
            result = simulate_link_session(needed, 16, feedback)
            assert result.throughput_bits_per_symbol == golden["throughput"]
            assert result.ideal_throughput_bits_per_symbol == golden["ideal"]
            assert result.feedback_efficiency == golden["efficiency"]
            assert result.mean_packet_symbols == golden["mean_packet_symbols"]


class TestBaselineShims:
    def test_hybrid_arq_matches_golden(self):
        system = HybridArqLdpcSystem(
            LdpcConfig(Fraction(1, 2), "BPSK"),
            max_attempts=4,
            codeword_bits=120,
            max_iterations=10,
        )
        for trial, golden in enumerate(GOLDEN["hybrid_arq"]["trials"]):
            rng = spawn_rng(SEED, "api-golden", "harq", trial)
            result = system.run_trial(-2.0, rng)
            assert result.success == golden["success"]
            assert result.attempts == golden["attempts"]
            assert result.symbols_sent == golden["symbols_sent"]
            assert result.message_bits == golden["message_bits"]

    def test_fixed_rate_spinal_matches_golden(self):
        system = FixedRateSpinalSystem(
            message_bits=16, n_passes=2, params=SpinalParams(k=4, c=6), beam_width=8
        )
        rng = spawn_rng(SEED, "api-golden", "fixed-rate")
        for golden in GOLDEN["fixed_rate_spinal"]["frames"]:
            ok, wrong_bits = system.transmit_frame(3.0, rng)
            assert ok == golden["ok"]
            assert wrong_bits == golden["wrong_bits"]
        measure_rng = spawn_rng(SEED, "api-golden", "fixed-rate-measure")
        measured = system.measure(3.0, 4, measure_rng)
        assert measured.frame_error_rate == GOLDEN["fixed_rate_spinal"]["frame_error_rate"]
        assert measured.bit_error_rate == GOLDEN["fixed_rate_spinal"]["bit_error_rate"]
        assert system.nominal_rate == GOLDEN["fixed_rate_spinal"]["nominal_rate"]


class TestLtGolden:
    def test_pre_success_decode_path_unchanged(self):
        """The post-success no-op fix must not move the success point."""
        rng = spawn_rng(SEED, "api-golden", "lt")
        data = rng.integers(0, 2, size=24, dtype=np.uint8)
        encoder = LTEncoder(data, block_bits=6, seed=7)
        decoder = LTDecoder(n_blocks=encoder.n_blocks, block_bits=6)
        consumed = 0
        for symbol in encoder.stream():
            decoder.add_symbol(symbol)
            consumed += 1
            if decoder.is_complete:
                break
        golden = GOLDEN["lt"]
        assert consumed == golden["symbols_consumed_to_complete"]
        assert [int(b) for b in decoder.data_bits()] == golden["decoded"]
        assert [int(b) for b in data] == golden["data"]


class TestDeprecationContract:
    def _one_warning(self, call):
        reset_warnings()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            call()
            call()
        messages = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(messages) == 1, "each shim must warn exactly once per process"
        return str(messages[0].message)

    def test_rateless_run_warns_once_and_spells_the_new_call(self):
        session = _spinal_session()
        rng = spawn_rng(SEED, "warn", "rateless")
        payload = random_message_bits(16, rng)
        message = self._one_warning(lambda: session.run(payload, spawn_rng(SEED, "w", 0)))
        assert "codec_session().run" in message

    def test_simulate_link_session_warns_once(self):
        message = self._one_warning(
            lambda: simulate_link_session([10, 20], 16, PerfectFeedback())
        )
        assert "run_link_transport" in message

    def test_hybrid_arq_warns_once(self):
        system = HybridArqLdpcSystem(
            LdpcConfig(Fraction(1, 2), "BPSK"), max_attempts=1,
            codeword_bits=120, max_iterations=4,
        )
        message = self._one_warning(
            lambda: system.run_trial(4.0, spawn_rng(SEED, "warn", "harq"))
        )
        assert "LdpcIrCode" in message

    def test_fixed_rate_spinal_warns_once(self):
        system = FixedRateSpinalSystem(
            message_bits=16, n_passes=1, params=SpinalParams(k=4, c=6), beam_width=4
        )
        message = self._one_warning(
            lambda: system.transmit_frame(10.0, spawn_rng(SEED, "warn", "fr"))
        )
        assert "FixedRateSpinalCode" in message
