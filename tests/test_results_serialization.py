"""Golden-file regression tests for the results serialization layer.

``RateMeasurement`` and ``SweepResult`` round-trip through versioned
JSON-native dictionaries.  The golden files under ``tests/golden/`` pin the
layout: if serialization changes shape, these tests fail until the schema
version is bumped and the goldens are regenerated deliberately.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.runner import SpinalRunConfig
from repro.utils.results import RESULTS_SCHEMA_VERSION, RateMeasurement, SweepResult

GOLDEN_DIR = Path(__file__).parent / "golden"


def _load_golden(name: str) -> dict:
    with open(GOLDEN_DIR / name, "r", encoding="utf-8") as handle:
        return json.load(handle)


class TestRateMeasurementSerialization:
    def _measurement(self) -> RateMeasurement:
        measurement = RateMeasurement(snr_db=10.0)
        measurement.add_trial(2.0, symbols=12, ok=True)
        measurement.add_trial(4.0, symbols=6, ok=True)
        measurement.add_trial(3.2, symbols=10, ok=False)
        return measurement

    def test_to_dict_matches_golden(self):
        assert self._measurement().to_dict() == _load_golden("rate_measurement_v1.json")

    def test_golden_round_trip(self):
        golden = _load_golden("rate_measurement_v1.json")
        measurement = RateMeasurement.from_dict(golden)
        assert measurement.to_dict() == golden
        assert measurement.n_trials == 3
        assert measurement.mean_rate == pytest.approx((2.0 + 4.0 + 3.2) / 3)
        assert measurement.decoded_ok == [True, True, False]

    def test_json_round_trip(self):
        measurement = self._measurement()
        rebuilt = RateMeasurement.from_dict(json.loads(json.dumps(measurement.to_dict())))
        assert rebuilt == measurement

    def test_bsc_param_round_trips(self):
        measurement = RateMeasurement(snr_db=None, param=0.05)
        measurement.add_trial(0.5, 48, True)
        rebuilt = RateMeasurement.from_dict(measurement.to_dict())
        assert rebuilt.snr_db is None
        assert rebuilt.param == 0.05

    def test_schema_version_is_checked(self):
        bad = self._measurement().to_dict()
        bad["schema_version"] = RESULTS_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema_version"):
            RateMeasurement.from_dict(bad)

    def test_ragged_lists_rejected(self):
        bad = self._measurement().to_dict()
        bad["rates"] = bad["rates"][:-1]
        with pytest.raises(ValueError, match="equal lengths"):
            RateMeasurement.from_dict(bad)


class TestSweepResultSerialization:
    def _sweep(self) -> SweepResult:
        sweep = SweepResult(name="Spinal demo curve")
        point_a = RateMeasurement(snr_db=0.0)
        point_a.add_trial(0.75, 32, True)
        point_b = RateMeasurement(snr_db=None, param=0.05)
        point_b.add_trial(0.5, 48, True)
        point_b.add_trial(0.625, 40, True)
        sweep.add_point(point_a)
        sweep.add_point(point_b)
        sweep.metadata = {
            "config": "SpinalRunConfig(payload_bits=24)",
            "note": "golden",
        }
        return sweep

    def test_to_dict_matches_golden(self):
        assert self._sweep().to_dict() == _load_golden("sweep_result_v1.json")

    def test_golden_round_trip(self):
        golden = _load_golden("sweep_result_v1.json")
        sweep = SweepResult.from_dict(golden)
        assert sweep.to_dict() == golden
        assert sweep.name == "Spinal demo curve"
        assert sweep.x_values() == [0.0, 0.05]
        assert sweep.mean_rates() == [0.75, pytest.approx(0.5625)]

    def test_non_jsonable_metadata_degrades_to_repr(self):
        sweep = SweepResult(name="curve", metadata={"config": SpinalRunConfig()})
        document = sweep.to_dict()
        json.dumps(document)  # must be serializable as a whole
        assert isinstance(document["metadata"]["config"], str)
        assert "SpinalRunConfig" in document["metadata"]["config"]

    def test_schema_version_is_checked(self):
        bad = self._sweep().to_dict()
        bad["schema_version"] = 99
        with pytest.raises(ValueError, match="schema_version"):
            SweepResult.from_dict(bad)
