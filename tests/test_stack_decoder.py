"""Unit tests for the stack (best-first sequential) decoder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.decoder_bubble import BubbleDecoder
from repro.core.decoder_stack import StackDecoder
from repro.core.encoder import ReceivedObservations, SpinalEncoder
from repro.core.params import SpinalParams
from repro.utils.bitops import random_message_bits


def noisy_observations(encoder, message, n_passes, sigma, rng):
    values = encoder.encode_passes(message, n_passes)
    noise = sigma * (rng.standard_normal(values.shape) + 1j * rng.standard_normal(values.shape))
    observations = ReceivedObservations(values.shape[1])
    for pass_index in range(n_passes):
        for position in range(values.shape[1]):
            observations.add(
                position, pass_index, values[pass_index, position] + noise[pass_index, position]
            )
    return observations


class TestStackDecoderCorrectness:
    def test_noiseless_recovery(self, small_encoder, make_observations, rng):
        message = random_message_bits(16, rng)
        observations = make_observations(small_encoder, message, n_passes=1)
        result = StackDecoder(small_encoder).decode(16, observations)
        assert np.array_equal(result.message_bits, message)

    def test_noisy_recovery(self, small_encoder, rng):
        message = random_message_bits(16, rng)
        observations = noisy_observations(small_encoder, message, 3, 0.1, rng)
        result = StackDecoder(small_encoder, max_expansions=4096).decode(16, observations)
        assert np.array_equal(result.message_bits, message)

    def test_bit_mode(self, bit_mode_encoder, rng):
        message = random_message_bits(12, rng)
        coded = bit_mode_encoder.encode_passes(message, n_passes=16)
        observations = ReceivedObservations(4)
        for pass_index in range(coded.shape[0]):
            for position in range(4):
                observations.add(position, pass_index, int(coded[pass_index, position]))
        result = StackDecoder(bit_mode_encoder).decode(12, observations)
        assert np.array_equal(result.message_bits, message)

    def test_matches_wide_beam_on_easy_channel(self, small_encoder, rng):
        for _ in range(5):
            message = random_message_bits(16, rng)
            observations = noisy_observations(small_encoder, message, 2, 0.15, rng)
            stack = StackDecoder(small_encoder, max_expansions=8192).decode(16, observations)
            beam = BubbleDecoder(small_encoder, beam_width=256).decode(16, observations)
            assert np.array_equal(stack.message_bits, beam.message_bits)

    def test_stats_recorded(self, small_encoder, make_observations, rng):
        message = random_message_bits(16, rng)
        observations = make_observations(small_encoder, message, n_passes=1)
        decoder = StackDecoder(small_encoder)
        decoder.decode(16, observations)
        assert decoder.last_stats is not None
        assert decoder.last_stats.nodes_expanded >= 4
        assert decoder.last_stats.max_stack_size >= 1
        assert not decoder.last_stats.budget_exhausted


class TestStackDecoderWorkAdaptivity:
    def test_clean_channel_expands_near_minimum(self, small_encoder, make_observations, rng):
        """On a noiseless channel the search expands roughly one node per level."""
        message = random_message_bits(16, rng)
        observations = make_observations(small_encoder, message, n_passes=2)
        decoder = StackDecoder(small_encoder, max_expansions=4096)
        decoder.decode(16, observations)
        assert decoder.last_stats.nodes_expanded <= 12  # 4 levels, small slack

    def test_noisier_channel_expands_more(self, small_encoder, rng):
        message = random_message_bits(16, rng)
        clean = noisy_observations(small_encoder, message, 2, 0.02, rng)
        noisy = noisy_observations(small_encoder, message, 2, 0.45, rng)
        decoder = StackDecoder(small_encoder, max_expansions=8192)
        decoder.decode(16, clean)
        clean_work = decoder.last_stats.nodes_expanded
        decoder.decode(16, noisy)
        noisy_work = decoder.last_stats.nodes_expanded
        assert noisy_work >= clean_work

    def test_budget_exhaustion_still_returns_full_message(self, small_encoder, rng):
        message = random_message_bits(16, rng)
        observations = noisy_observations(small_encoder, message, 1, 1.5, rng)
        decoder = StackDecoder(small_encoder, max_expansions=2)
        result = decoder.decode(16, observations)
        assert result.message_bits.size == 16
        assert decoder.last_stats.budget_exhausted


class TestStackDecoderValidation:
    def test_rejects_bad_budget(self, small_encoder):
        with pytest.raises(ValueError):
            StackDecoder(small_encoder, max_expansions=0)

    def test_rejects_bad_bias(self, small_encoder):
        with pytest.raises(ValueError):
            StackDecoder(small_encoder, bias_scale=0.0)

    def test_rejects_mismatched_observations(self, small_encoder, make_observations, rng):
        message = random_message_bits(16, rng)
        observations = make_observations(small_encoder, message, n_passes=1)
        with pytest.raises(ValueError):
            StackDecoder(small_encoder).decode(20, observations)

    def test_no_observations_bias_is_zero(self, small_encoder):
        decoder = StackDecoder(small_encoder)
        assert decoder._level_bias(ReceivedObservations(4)) == 0.0
