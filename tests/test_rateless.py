"""Unit tests for the rateless session (sender/channel/receiver loop)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channels.awgn import AWGNChannel
from repro.channels.bsc import BSCChannel
from repro.core.crc import CRC16_CCITT
from repro.core.decoder_bubble import BubbleDecoder
from repro.core.encoder import SpinalEncoder
from repro.core.framing import Framer
from repro.core.params import SpinalParams
from repro.core.puncturing import TailFirstPuncturing
from repro.core.rateless import RatelessReceiver, RatelessSession
from repro.utils.bitops import random_message_bits


def make_session(**overrides):
    """A small AWGN session used across this module."""
    params = overrides.pop("params", SpinalParams(k=4, c=6, seed=11))
    encoder = SpinalEncoder(params, puncturing=overrides.pop("puncturing", None))
    framer = overrides.pop("framer", Framer(payload_bits=16, k=params.k))
    defaults = dict(
        decoder_factory=lambda enc: BubbleDecoder(enc, beam_width=8),
        channel=AWGNChannel(snr_db=10.0, adc_bits=14),
        framer=framer,
        termination="genie",
        max_symbols=512,
        search="sequential",
    )
    defaults.update(overrides)
    return RatelessSession(encoder, **defaults)


class TestTrialResult:
    def test_rate_computation(self):
        session = make_session()
        rng = np.random.default_rng(0)
        trial = session.run(random_message_bits(16, rng), rng)
        assert trial.rate == pytest.approx(trial.payload_bits / trial.symbols_sent)

    def test_high_snr_trial_succeeds(self):
        session = make_session(channel=AWGNChannel(snr_db=20.0))
        rng = np.random.default_rng(1)
        trial = session.run(random_message_bits(16, rng), rng)
        assert trial.success and trial.payload_correct
        assert trial.decode_attempts >= 1
        assert trial.candidates_explored > 0

    def test_rate_undefined_without_symbols(self):
        from repro.core.rateless import TrialResult

        trial = TrialResult(
            success=False,
            payload_correct=False,
            symbols_sent=0,
            payload_bits=16,
            decode_attempts=0,
            candidates_explored=0,
            decoded_payload=np.zeros(16, dtype=np.uint8),
        )
        with pytest.raises(ValueError):
            trial.rate


class TestTermination:
    def test_genie_always_correct_when_successful(self):
        session = make_session()
        rng = np.random.default_rng(2)
        for _ in range(5):
            trial = session.run(random_message_bits(16, rng), rng)
            if trial.success:
                assert trial.payload_correct

    def test_crc_termination_with_overhead_accounting(self):
        framer = Framer(payload_bits=16, k=4, crc=CRC16_CCITT)
        session = make_session(
            framer=framer, termination="crc", count_overhead=True,
            channel=AWGNChannel(snr_db=15.0),
        )
        rng = np.random.default_rng(3)
        trial = session.run(random_message_bits(16, rng), rng)
        assert trial.success
        # Overhead counted: credited bits are only the 16 payload bits.
        assert trial.payload_bits == 16

    def test_without_overhead_accounting_credits_framed_bits(self):
        framer = Framer(payload_bits=16, k=4, crc=CRC16_CCITT)
        session = make_session(
            framer=framer, termination="crc", count_overhead=False,
            channel=AWGNChannel(snr_db=15.0),
        )
        rng = np.random.default_rng(4)
        trial = session.run(random_message_bits(16, rng), rng)
        assert trial.payload_bits == framer.framed_bits

    def test_budget_exhaustion_reports_failure(self):
        # At -15 dB with only 2 passes worth of budget, decoding must fail.
        session = make_session(channel=AWGNChannel(snr_db=-15.0), max_symbols=8)
        rng = np.random.default_rng(5)
        trial = session.run(random_message_bits(16, rng), rng)
        assert not trial.success
        assert trial.symbols_sent >= 8


class TestSearchStrategies:
    @pytest.mark.parametrize("search", ["sequential", "bisect"])
    def test_both_strategies_decode(self, search):
        session = make_session(search=search, channel=AWGNChannel(snr_db=12.0))
        rng = np.random.default_rng(6)
        trial = session.run(random_message_bits(16, rng), rng)
        assert trial.success and trial.payload_correct

    def test_bisect_and_sequential_agree_on_identical_noise(self):
        """With the same RNG stream, both searches see identical channel output
        and must stop at the same subpass boundary."""
        for seed in range(4):
            results = {}
            for search in ("sequential", "bisect"):
                session = make_session(search=search, channel=AWGNChannel(snr_db=14.0))
                rng = np.random.default_rng(100 + seed)
                payload_rng = np.random.default_rng(seed)
                payload = random_message_bits(16, payload_rng)
                results[search] = session.run(payload, rng).symbols_sent
            assert results["sequential"] == results["bisect"]

    def test_bisect_uses_fewer_attempts_at_low_snr(self):
        rng_a = np.random.default_rng(7)
        rng_b = np.random.default_rng(7)
        payload = random_message_bits(16, np.random.default_rng(0))
        sequential = make_session(search="sequential", channel=AWGNChannel(snr_db=-5.0),
                                  max_symbols=2048).run(payload, rng_a)
        bisect = make_session(search="bisect", channel=AWGNChannel(snr_db=-5.0),
                              max_symbols=2048).run(payload, rng_b)
        assert bisect.decode_attempts < sequential.decode_attempts


class TestPuncturedSessions:
    def test_tail_first_can_exceed_k(self):
        """At very high SNR, puncturing lifts the rate above k bits/symbol."""
        session = make_session(
            puncturing=TailFirstPuncturing(),
            channel=AWGNChannel(snr_db=35.0),
            search="bisect",
        )
        rng = np.random.default_rng(8)
        rates = [session.run(random_message_bits(16, rng), rng).rate for _ in range(10)]
        assert max(rates) > 4.0  # k = 4


class TestBscSessions:
    def test_bit_mode_over_bsc(self):
        params = SpinalParams(k=3, bit_mode=True, seed=21)
        encoder = SpinalEncoder(params)
        framer = Framer(payload_bits=12, k=3)
        session = RatelessSession(
            encoder,
            decoder_factory=lambda enc: BubbleDecoder(enc, beam_width=8),
            channel=BSCChannel(0.05),
            framer=framer,
            max_symbols=4096,
        )
        rng = np.random.default_rng(9)
        trial = session.run(random_message_bits(12, rng), rng)
        assert trial.success and trial.payload_correct


class TestValidation:
    def test_rejects_domain_mismatch(self):
        params = SpinalParams(k=4, c=6)
        encoder = SpinalEncoder(params)
        with pytest.raises(ValueError):
            RatelessSession(
                encoder,
                decoder_factory=lambda enc: BubbleDecoder(enc),
                channel=BSCChannel(0.1),
                framer=Framer(payload_bits=16, k=4),
            )

    def test_rejects_framer_k_mismatch(self):
        params = SpinalParams(k=4, c=6)
        with pytest.raises(ValueError):
            RatelessSession(
                SpinalEncoder(params),
                decoder_factory=lambda enc: BubbleDecoder(enc),
                channel=AWGNChannel(10.0),
                framer=Framer(payload_bits=16, k=8),
            )

    def test_rejects_bad_search_and_budget(self):
        params = SpinalParams(k=4, c=6)
        encoder = SpinalEncoder(params)
        framer = Framer(payload_bits=16, k=4)
        with pytest.raises(ValueError):
            RatelessSession(encoder, lambda e: BubbleDecoder(e), AWGNChannel(10.0), framer,
                            search="ternary")
        with pytest.raises(ValueError):
            RatelessSession(encoder, lambda e: BubbleDecoder(e), AWGNChannel(10.0), framer,
                            max_symbols=0)

    def test_receiver_requires_genie_bits(self):
        params = SpinalParams(k=4, c=6)
        encoder = SpinalEncoder(params)
        framer = Framer(payload_bits=16, k=4)
        with pytest.raises(ValueError):
            RatelessReceiver(BubbleDecoder(encoder), framer, termination="genie")

    def test_receiver_rejects_unknown_termination(self):
        params = SpinalParams(k=4, c=6)
        encoder = SpinalEncoder(params)
        framer = Framer(payload_bits=16, k=4)
        with pytest.raises(ValueError):
            RatelessReceiver(BubbleDecoder(encoder), framer, termination="oracle")
