"""Tests for the multi-user cell simulator and the adaptive baseline.

The load-bearing contract is the equivalence discipline extended one layer
up: a single-user round-robin cell must reproduce the single-hop transport
(and therefore the plain rateless session) symbol for symbol, because the
cell derives its per-(user, packet) noise streams from the transport's
per-hop convention with hop ≡ user.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.rate_adaptation import RateAdaptationPolicy
from repro.channels.awgn import AWGNChannel
from repro.core.params import SpinalParams
from repro.experiments.runner import SpinalRunConfig
from repro.link.topology import build_relay_sessions
from repro.link.transport import TransportConfig, packet_rng, run_link_transport
from repro.mac.adaptive import (
    AdaptiveSpinalLink,
    SpinalRateOption,
    calibrate_spinal_rate_policy,
    spinal_rate_options,
)
from repro.mac.cell import (
    CellUser,
    MacCell,
    RatelessLink,
    cell_packet_rng,
    default_csi,
    simulate_cell,
    spread_snrs,
)
from repro.mac.metrics import jain_fairness_index
from repro.utils.bitops import random_message_bits
from repro.utils.rng import spawn_rng

_RUN_CONFIG = SpinalRunConfig(
    payload_bits=16,
    params=SpinalParams(k=4, c=6, seed=31),
    beam_width=8,
    search="sequential",
    max_symbols=512,
)


def _payloads(n, label="payload", seed=901):
    return [random_message_bits(16, spawn_rng(seed, label, i)) for i in range(n)]


def _session(snr_db=10.0):
    """One rateless session wired exactly like the transport's hop 0."""
    return build_relay_sessions(_RUN_CONFIG, [snr_db])[0]


def _rateless_user(snr_db, payloads, **kwargs):
    return CellUser(RatelessLink(_session(snr_db)), payloads, **kwargs)


class TestSingleUserEquivalence:
    """1-user round-robin cell == single-hop transport == serial session."""

    def test_cell_reproduces_transport_symbol_counts_bit_exactly(self):
        payloads = _payloads(5)
        transport = run_link_transport(
            _session(),
            payloads,
            TransportConfig(protocol="selective-repeat", window=1, ack_delay=0, seed=41),
        )
        cell = simulate_cell(
            [_rateless_user(10.0, payloads)], "round-robin", seed=41
        )

        assert transport.delivered.all()
        assert all(p.delivered for p in cell.packets)
        assert [p.symbols_needed for p in cell.packets] == transport.symbols_needed.tolist()
        assert [p.symbols_sent for p in cell.packets] == transport.symbols_spent.tolist()
        assert [p.completed for p in cell.packets] == transport.delivery_times.tolist()
        assert cell.makespan == transport.makespan

    def test_cell_reproduces_serial_session_runs(self):
        payloads = _payloads(4)
        session = _session()
        serial = [
            session.run(payload, packet_rng(77, 0, index)).symbols_sent
            for index, payload in enumerate(payloads)
        ]
        cell = simulate_cell([_rateless_user(10.0, payloads)], "round-robin", seed=77)
        assert [p.symbols_sent for p in cell.packets] == serial

    def test_cell_packet_rng_is_the_transport_stream(self):
        a = cell_packet_rng(13, 2, 5).integers(1 << 30, size=4)
        b = packet_rng(13, 2, 5).integers(1 << 30, size=4)
        assert np.array_equal(a, b)


class TestDeterminism:
    def _cell(self, seed, scheduler="proportional-fair"):
        users = [
            _rateless_user(snr, _payloads(3, label=f"u{u}"))
            for u, snr in enumerate(spread_snrs(11.0, 8.0, 3))
        ]
        return simulate_cell(users, scheduler, seed=seed)

    def test_same_seed_is_bit_identical(self):
        first, second = self._cell(5), self._cell(5)
        assert first.packets == second.packets
        assert first.makespan == second.makespan

    def test_different_seed_differs(self):
        assert self._cell(5).packets != self._cell(6).packets


class TestMultiUserCell:
    def _users(self, n_users=4, packets=3, spread=10.0):
        return [
            _rateless_user(snr, _payloads(packets, label=f"user{u}"))
            for u, snr in enumerate(spread_snrs(12.0, spread, n_users))
        ]

    def test_all_packets_deliver_and_medium_never_idles(self):
        result = simulate_cell(self._users(), "round-robin", seed=3)
        assert result.n_delivered == result.n_packets == 12
        # Everyone is backlogged from t=0 and the medium is work-conserving,
        # so the cell ends exactly when the last symbol has been sent.
        assert result.makespan == result.total_symbols_sent
        assert 0.0 < result.aggregate_goodput
        assert result.mean_latency <= result.makespan

    def test_static_channels_make_aggregate_goodput_scheduler_invariant(self):
        # The null result the module docstring promises: with static SNRs
        # per-packet symbol counts are schedule-invariant, so every
        # work-conserving discipline drains the same backlog in the same
        # total time — only *who waits* changes.
        results = {
            name: simulate_cell(self._users(), name, seed=3)
            for name in ("round-robin", "max-snr", "proportional-fair")
        }
        goodputs = {round(r.aggregate_goodput, 12) for r in results.values()}
        assert len(goodputs) == 1
        # ... but *who waits* changes: the service order differs.
        assert results["max-snr"].packets != results["round-robin"].packets

    def test_fairness_index_bounds(self):
        result = simulate_cell(self._users(), "round-robin", seed=3)
        assert 1.0 / result.n_users <= result.jain_fairness <= 1.0

    def test_jain_fairness_index_values(self):
        assert jain_fairness_index([1.0, 1.0, 1.0]) == pytest.approx(1.0)
        assert jain_fairness_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)
        assert jain_fairness_index([0.0, 0.0]) == 1.0
        with pytest.raises(ValueError):
            jain_fairness_index([])
        with pytest.raises(ValueError):
            jain_fairness_index([-1.0, 1.0])

    def test_abort_on_budget_exhaustion_advances_the_queue(self):
        # A hopeless head-of-line packet must not wedge the user's queue.
        config = _RUN_CONFIG.with_(max_symbols=8)
        session = build_relay_sessions(config, [-15.0])[0]
        good = _rateless_user(15.0, _payloads(2, label="good"))
        bad = CellUser(RatelessLink(session), _payloads(2, label="bad"))
        result = simulate_cell([bad, good], "round-robin", seed=9)
        by_user = {
            user: [p for p in result.packets if p.user == user] for user in (0, 1)
        }
        assert all(p.delivered for p in by_user[1])
        assert all(not p.delivered for p in by_user[0])
        assert all(p.symbols_sent >= 8 for p in by_user[0])  # budget truly spent
        assert result.n_delivered == 2


class TestArrivalsAndDeadlines:
    def test_staggered_arrivals_idle_then_serve(self):
        user = _rateless_user(12.0, _payloads(2), arrivals=(100, 100))
        result = simulate_cell([user], "round-robin", seed=4)
        assert all(p.delivered for p in result.packets)
        assert all(p.completed > 100 for p in result.packets)
        assert all(p.latency < p.completed for p in result.packets)

    def test_arrival_wakes_an_idle_medium_alongside_busy_users(self):
        early = _rateless_user(12.0, _payloads(1, label="early"))
        late = _rateless_user(12.0, _payloads(1, label="late"), arrivals=(400,))
        result = simulate_cell([early, late], "round-robin", seed=4)
        assert result.n_delivered == 2
        first, second = sorted(result.packets, key=lambda p: p.completed)
        assert second.arrival == 400 and second.completed > 400

    def test_deadline_drops_undeliverable_packets_at_the_deadline(self):
        # At -15 dB the packet cannot decode within 40 symbol-times.
        session = build_relay_sessions(_RUN_CONFIG, [-15.0])[0]
        user = CellUser(RatelessLink(session), _payloads(1), deadline=40)
        result = simulate_cell([user], "round-robin", seed=6)
        (packet,) = result.packets
        assert not packet.delivered
        assert packet.completed == 40  # dropped exactly at the deadline
        assert packet.symbols_sent > 0  # it was mid-flight, not unstarted

    def test_deadline_timer_is_disarmed_by_delivery(self):
        user = _rateless_user(15.0, _payloads(2), deadline=400)
        cell = MacCell([user], "round-robin", seed=6)
        result = cell.run()
        assert all(p.delivered for p in result.packets)
        assert cell.clock.pending == 0  # cancelled timers do not linger

    def test_invalid_configs_are_rejected(self):
        with pytest.raises(ValueError, match="arrival times"):
            CellUser(RatelessLink(_session()), _payloads(2), arrivals=(0,))
        with pytest.raises(ValueError, match="deadline"):
            CellUser(RatelessLink(_session()), _payloads(1), deadline=0)
        with pytest.raises(ValueError, match="at least one user"):
            simulate_cell([], "round-robin")
        with pytest.raises(ValueError, match="non-negative"):
            simulate_cell(
                [CellUser(RatelessLink(_session()), _payloads(1), arrivals=(-1,))],
                "round-robin",
            )


class TestRunUntil:
    def test_stepping_matches_uninterrupted_run(self):
        def users():
            return [
                _rateless_user(snr, _payloads(3, label=f"s{u}"))
                for u, snr in enumerate(spread_snrs(12.0, 6.0, 2))
            ]

        straight = simulate_cell(users(), "round-robin", seed=8)
        stepped_cell = MacCell(users(), "round-robin", seed=8)
        partial = stepped_cell.run_until(20)
        assert partial.makespan <= 20
        assert any(p.completed == -1 for p in partial.packets) or all(
            p.finished for p in stepped_cell.packets
        )
        final = stepped_cell.run()
        assert final.packets == straight.packets
        assert final.makespan == straight.makespan


class TestDefaultCsi:
    def test_constant_for_awgn_and_mean_for_fading(self):
        from repro.channels.fading import RayleighBlockFadingChannel

        assert default_csi(AWGNChannel(7.5))(123) == 7.5
        assert default_csi(RayleighBlockFadingChannel(9.0))(0) == 9.0

    def test_trace_channels_report_by_cell_time(self):
        from repro.channels.awgn import TimeVaryingAWGNChannel

        channel = TimeVaryingAWGNChannel([0.0, 10.0, 20.0])
        csi = default_csi(channel)
        assert csi(1) == 10.0
        assert csi(5) == 20.0  # cyclic

    def test_unknown_channel_rejected(self):
        with pytest.raises(ValueError, match="cannot derive CSI"):
            default_csi(object())


class TestSpreadSnrs:
    def test_spans_the_spread_evenly(self):
        snrs = spread_snrs(10.0, 6.0, 4)
        assert snrs == [7.0, 9.0, 11.0, 13.0]
        assert spread_snrs(10.0, 6.0, 1) == [10.0]
        assert spread_snrs(10.0, 0.0, 3) == [10.0, 10.0, 10.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            spread_snrs(10.0, -1.0, 2)
        with pytest.raises(ValueError):
            spread_snrs(10.0, 5.0, 0)


# -- the adaptive (rate-adaptation) baseline ----------------------------------

_PARAMS = SpinalParams(k=4, c=6)


def _policy(thresholds: dict[int, float]) -> RateAdaptationPolicy:
    options = spinal_rate_options(4, tuple(thresholds))
    return RateAdaptationPolicy(
        configs=options,
        thresholds={o: thresholds[o.n_passes] for o in options},
    )


class TestSpinalRateOptions:
    def test_menu_is_sorted_and_deduplicated(self):
        options = spinal_rate_options(4, (8, 1, 2, 2))
        assert [o.n_passes for o in options] == [1, 2, 8]
        assert [o.nominal_rate for o in options] == [4.0, 2.0, 0.5]

    def test_validation(self):
        with pytest.raises(ValueError):
            spinal_rate_options(4, ())
        with pytest.raises(ValueError):
            SpinalRateOption(0, 1.0)


class TestCalibration:
    def test_thresholds_are_monotone_in_robustness(self):
        rng = spawn_rng(3, "calibration-test")
        policy = calibrate_spinal_rate_policy(
            payload_bits=16,
            params=_PARAMS,
            beam_width=8,
            adc_bits=14,
            pass_choices=(1, 4, 8),
            snr_grid_db=(0.0, 5.0, 10.0, 15.0, 20.0),
            n_frames=6,
            target_frame_error_rate=0.34,
            rng=rng,
        )
        by_passes = {o.n_passes: policy.thresholds[o] for o in policy.configs}
        # More passes (more robust) must never need a *higher* SNR.
        assert by_passes[8] <= by_passes[4] <= by_passes[1]
        # And the policy picks the fastest usable option.
        best_at_high = policy.select(25.0)
        assert best_at_high.nominal_rate == max(o.nominal_rate for o in policy.configs if policy.thresholds[o] <= 25.0)

    def test_validation(self):
        rng = spawn_rng(3, "calibration-test")
        with pytest.raises(ValueError, match="target FER"):
            calibrate_spinal_rate_policy(16, _PARAMS, 8, None, (1,), (10.0,), 2, 1.5, rng)
        with pytest.raises(ValueError, match="snr_grid_db"):
            calibrate_spinal_rate_policy(16, _PARAMS, 8, None, (1,), (), 2, 0.1, rng)


class TestAdaptiveTransmission:
    def _link(self, policy, snr_db, max_symbols=512):
        return AdaptiveSpinalLink(
            policy=policy,
            channel=AWGNChannel(snr_db, adc_bits=14),
            payload_bits=16,
            params=_PARAMS,
            beam_width=8,
            max_symbols=max_symbols,
        )

    def test_good_channel_delivers_at_the_selected_rate(self):
        policy = _policy({1: 18.0, 2: 10.0, 8: 0.0})
        link = self._link(policy, 25.0)
        user = CellUser(link, _payloads(3, label="adaptive"))
        result = simulate_cell([user], "round-robin", seed=21)
        assert all(p.delivered for p in result.packets)
        # 25 dB clears the 1-pass threshold: each frame is 4 segments.
        assert all(p.symbols_sent % 4 == 0 for p in result.packets)
        assert all(p.symbols_needed == p.symbols_sent for p in result.packets)

    def test_misconfigured_policy_retries_until_budget_then_aborts(self):
        # Only a rate-4 single-pass option, "usable" everywhere: at -5 dB it
        # essentially never decodes, so the sender retransmits whole frames
        # until the budget cannot fit another attempt.
        policy = _policy({1: float("-inf")})
        link = self._link(policy, -5.0, max_symbols=64)
        user = CellUser(link, _payloads(1, label="doomed"))
        result = simulate_cell([user], "round-robin", seed=22)
        (packet,) = result.packets
        assert not packet.delivered
        assert packet.symbols_sent == 64  # 16 whole attempts of 4 symbols
        assert packet.symbols_needed == 0

    def test_unfittable_frame_is_aborted_without_spending_symbols(self):
        # The most robust option needs 8*4 = 32 symbols; the budget is 16.
        policy = _policy({8: float("-inf")})
        link = self._link(policy, 10.0, max_symbols=16)
        good = _rateless_user(15.0, _payloads(1, label="ok"))
        doomed = CellUser(link, _payloads(1, label="nofit"))
        result = simulate_cell([doomed, good], "round-robin", seed=23)
        by_user = {p.user: p for p in result.packets}
        assert not by_user[0].delivered
        assert by_user[0].symbols_sent == 0
        assert by_user[1].delivered

    def test_policy_falls_back_to_most_robust_below_all_thresholds(self):
        policy = _policy({1: 20.0, 4: 10.0})
        assert policy.select(-3.0).n_passes == 4
        assert policy.select(15.0).n_passes == 4
        assert policy.select(20.0).n_passes == 1


class _FixedBlockTransmission:
    """Stub transmission: fixed-size blocks, decodes after a block count."""

    def __init__(self, block_symbols: int, blocks_needed: int) -> None:
        self.block_symbols = block_symbols
        self.blocks_needed = blocks_needed
        self.symbols_sent = 0
        self.symbols_delivered = 0
        self.decoded = False
        self.exhausted = False

    def send_next_block(self):
        self.symbols_sent += self.block_symbols

        class _Block:
            n_symbols = self.block_symbols

        return _Block(), None

    def deliver(self, block, received) -> bool:
        self.symbols_delivered += block.n_symbols
        if self.symbols_delivered >= self.blocks_needed * self.block_symbols:
            self.decoded = True
        return self.decoded


class _FixedBlockLink:
    """Stub link with exact, configurable block timing (for tick arithmetic)."""

    payload_bits = 16
    max_symbols = 10_000

    def __init__(self, block_symbols: int, blocks_needed: int, snr_db: float) -> None:
        self.block_symbols = block_symbols
        self.blocks_needed = blocks_needed
        self.channel = AWGNChannel(snr_db)

    def open(self, payload, rng, observe):
        return _FixedBlockTransmission(self.block_symbols, self.blocks_needed)


class TestDeadlineGrantRace:
    def test_packet_is_not_granted_at_its_expiry_tick(self):
        # Timeline: user 0's single 20-symbol block occupies [0, 20); the
        # next grant at t=20 was scheduled at t=0 (when the block went up).
        # User 1's packet arrives at t=5 with deadline 15, so it expires at
        # exactly t=20 — but its deadline timer was armed *after* the grant
        # event, so the grant fires first at that tick.  The grant must not
        # hand the medium to the expiring packet.
        user0 = CellUser(_FixedBlockLink(20, 1, snr_db=20.0), _payloads(1, label="a"))
        user1 = CellUser(
            _FixedBlockLink(20, 1, snr_db=10.0),
            _payloads(1, label="b"),
            arrivals=(5,),
            deadline=15,
        )
        result = simulate_cell([user0, user1], "round-robin", seed=1)
        by_user = {p.user: p for p in result.packets}
        assert by_user[0].delivered and by_user[0].completed == 20
        assert not by_user[1].delivered
        assert by_user[1].completed == 20  # expired exactly at the deadline
        assert by_user[1].symbols_sent == 0  # and never reached the air
        assert result.makespan == 20


class TestReportCsvPlotConflict:
    def test_csv_and_plot_are_mutually_exclusive(self, tmp_path):
        from repro.cli import main

        out_dir = str(tmp_path / "results")
        main(["run", "rate", "--smoke", "--out", out_dir])
        run_file = str(next((tmp_path / "results").glob("rate-*.json")))
        with pytest.raises(ValueError, match="--csv cannot be combined"):
            main(["report", run_file, "--csv", "--plot"])


class TestCalibrationMemo:
    def test_adaptive_cells_share_one_calibration(self, monkeypatch):
        import repro.experiments.cell_rateless_vs_adaptive as module
        import repro.mac.adaptive as adaptive_module

        calls = []
        original = adaptive_module.calibrate_spinal_rate_policy

        def counting(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        monkeypatch.setattr(module, "calibrate_spinal_rate_policy", counting)
        monkeypatch.setattr(module, "_POLICY_CACHE", {})
        from repro.experiments import registry
        from repro.experiments.registry import run_experiment

        outcome = run_experiment(
            registry.get("cell-rateless-vs-adaptive"),
            overrides={"mode": ("adaptive",), "snr_spread_db": (0.0, 4.0, 8.0)},
            smoke=True,
        )
        assert len(outcome.successful_cells()) == 3
        assert len(calls) == 1  # one calibration serves every adaptive cell


class TestEmptyCellMetrics:
    """PR-7 bugfix sweep: latency metrics of cells that delivered nothing.

    Both metrics document a 0.0 sentinel when no packet was delivered, and
    the empty guard must hold even with warnings escalated to errors (a bare
    ``np.mean``/``np.percentile`` of an empty array warns or raises).
    """

    def _empty_result(self):
        from repro.mac.metrics import CellResult

        return CellResult(scheduler="round-robin", n_users=2, packets=(), makespan=0)

    def _undelivered_result(self):
        from repro.mac.metrics import CellResult, PacketOutcome

        packet = PacketOutcome(
            user=0,
            index=0,
            arrival=0,
            completed=40,
            delivered=False,
            symbols_sent=40,
            symbols_needed=0,
            payload_bits=16,
        )
        return CellResult(
            scheduler="round-robin", n_users=1, packets=(packet,), makespan=40
        )

    def test_empty_cell_metrics_are_defined(self):
        import warnings

        result = self._empty_result()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert result.mean_latency == 0.0
            assert result.latency_percentile(99.0) == 0.0
        assert result.aggregate_goodput == 0.0
        assert result.delivered_fraction == 1.0
        assert result.jain_fairness == 1.0

    def test_all_undelivered_metrics_are_defined(self):
        import warnings

        result = self._undelivered_result()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert result.mean_latency == 0.0
            assert result.latency_percentile(50.0) == 0.0
        assert result.delivered_fraction == 0.0
        assert result.aggregate_goodput == 0.0
