"""Shared fixtures for the test suite.

Tests use deliberately small spinal-code configurations (small k, small c,
short messages) so the whole suite runs quickly; correctness does not depend
on the parameter sizes, and the benchmark harness exercises the paper's
full-size configuration separately.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.encoder import ReceivedObservations, SpinalEncoder
from repro.core.params import SpinalParams
from repro.utils import deprecation

#: Every compatibility shim's ``warn_once`` key.  Historical tests exercise
#: these entry points freely; pre-marking the keys keeps them warning-clean
#: under the ``error::DeprecationWarning`` filter no matter which test runs
#: first (``warn_once`` fires once per process, so without this the failure
#: would land on whichever caller a given test selection happens to order
#: first).  Tests that assert the warning itself call ``reset_warnings()``
#: and then ``pytest.warns`` — see ``test_api_migration.py``.
KNOWN_SHIM_KEYS = frozenset(
    {
        "RatelessSession.run",
        "simulate_link_session",
        "FixedRateSpinalSystem.transmit_frame",
        "HybridArqLdpcSystem.run_trial",
    }
)


@pytest.fixture(autouse=True)
def _shim_warning_guard():
    """Per-test save/restore of the once-per-process deprecation registry."""
    saved = set(deprecation._WARNED)
    deprecation._WARNED.update(KNOWN_SHIM_KEYS)
    yield
    deprecation._WARNED.clear()
    deprecation._WARNED.update(saved)


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG; tests that need independence derive their own."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_params() -> SpinalParams:
    """A small symbol-mode spinal code (k=4, c=6) used across the core tests."""
    return SpinalParams(k=4, c=6, seed=77)


@pytest.fixture
def small_encoder(small_params) -> SpinalEncoder:
    return SpinalEncoder(small_params)


@pytest.fixture
def bit_mode_params() -> SpinalParams:
    """A small bit-mode (BSC) spinal code."""
    return SpinalParams(k=3, bit_mode=True, seed=78)


@pytest.fixture
def bit_mode_encoder(bit_mode_params) -> SpinalEncoder:
    return SpinalEncoder(bit_mode_params)


def observations_from_passes(
    encoder: SpinalEncoder, message_bits: np.ndarray, n_passes: int, noise=None
) -> ReceivedObservations:
    """Build a ReceivedObservations holding ``n_passes`` clean (or noisy) passes."""
    values = encoder.encode_passes(message_bits, n_passes)
    n_segments = values.shape[1]
    observations = ReceivedObservations(n_segments)
    for pass_index in range(n_passes):
        for position in range(n_segments):
            value = values[pass_index, position]
            if noise is not None:
                value = value + noise[pass_index, position]
            observations.add(position, pass_index, value)
    return observations


@pytest.fixture
def make_observations():
    """Factory fixture exposing :func:`observations_from_passes` to tests."""
    return observations_from_passes
