"""Unit tests for CRC computation and message framing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.crc import CRC8, CRC16_CCITT, CRC32, Crc
from repro.core.framing import Framer
from repro.utils.bitops import bytes_to_bits, random_message_bits


class TestCrc:
    def test_width_matches(self):
        bits = np.ones(16, dtype=np.uint8)
        assert CRC8.compute(bits).size == 8
        assert CRC16_CCITT.compute(bits).size == 16
        assert CRC32.compute(bits).size == 32

    def test_append_then_check_passes(self, rng):
        payload = random_message_bits(40, rng)
        assert CRC16_CCITT.check(CRC16_CCITT.append(payload))

    def test_single_bit_error_detected(self, rng):
        payload = random_message_bits(40, rng)
        framed = CRC16_CCITT.append(payload)
        for position in range(framed.size):
            corrupted = framed.copy()
            corrupted[position] ^= 1
            assert not CRC16_CCITT.check(corrupted)

    def test_burst_error_detected(self, rng):
        payload = random_message_bits(64, rng)
        framed = CRC8.append(payload)
        corrupted = framed.copy()
        corrupted[10:16] ^= 1
        assert not CRC8.check(corrupted)

    def test_check_rejects_too_short_input(self):
        assert not CRC32.check(np.ones(8, dtype=np.uint8))

    def test_crc16_ccitt_known_vector(self):
        """CRC-16/CCITT-FALSE of ASCII '123456789' is 0x29B1."""
        message = bytes_to_bits(b"123456789")
        crc_bits = CRC16_CCITT.compute(message)
        value = int("".join(map(str, crc_bits)), 2)
        assert value == 0x29B1

    def test_rejects_invalid_width(self):
        with pytest.raises(ValueError):
            Crc(width=0, polynomial=0x3)

    def test_rejects_oversized_polynomial(self):
        with pytest.raises(ValueError):
            Crc(width=4, polynomial=0x1F)

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError):
            CRC8.compute(np.zeros((2, 4), dtype=np.uint8))

    def test_different_messages_usually_differ(self, rng):
        payload_a = random_message_bits(32, rng)
        payload_b = payload_a.copy()
        payload_b[0] ^= 1
        assert not np.array_equal(CRC32.compute(payload_a), CRC32.compute(payload_b))


class TestFramer:
    def test_lengths_without_crc(self):
        framer = Framer(payload_bits=24, k=8)
        assert framer.framed_bits == 24
        assert framer.pad_bits == 0
        assert framer.n_segments == 3
        assert framer.overhead_bits == 0

    def test_lengths_with_crc_and_padding(self):
        framer = Framer(payload_bits=20, k=8, crc=CRC8)
        # 20 + 8 = 28 -> pad 4 -> 32 bits, 4 segments.
        assert framer.pad_bits == 4
        assert framer.framed_bits == 32
        assert framer.n_segments == 4
        assert framer.overhead_bits == 12

    def test_tail_segments_add_known_zeros(self):
        framer = Framer(payload_bits=16, k=8, tail_segments=2)
        assert framer.framed_bits == 32
        framed = framer.frame(np.ones(16, dtype=np.uint8))
        assert np.all(framed[16:] == 0)

    def test_frame_extract_roundtrip(self, rng):
        framer = Framer(payload_bits=24, k=8, crc=CRC16_CCITT, tail_segments=1)
        payload = random_message_bits(24, rng)
        framed = framer.frame(payload)
        assert framed.size == framer.framed_bits
        assert np.array_equal(framer.extract_payload(framed), payload)

    def test_check_accepts_valid_frame(self, rng):
        framer = Framer(payload_bits=24, k=8, crc=CRC16_CCITT)
        assert framer.check(framer.frame(random_message_bits(24, rng)))

    def test_check_rejects_corrupted_payload(self, rng):
        framer = Framer(payload_bits=24, k=8, crc=CRC16_CCITT)
        framed = framer.frame(random_message_bits(24, rng))
        framed[3] ^= 1
        assert not framer.check(framed)

    def test_check_rejects_nonzero_tail(self, rng):
        framer = Framer(payload_bits=24, k=8, tail_segments=1)
        framed = framer.frame(random_message_bits(24, rng))
        framed[-1] = 1
        assert not framer.check(framed)

    def test_check_rejects_wrong_length(self):
        framer = Framer(payload_bits=24, k=8)
        assert not framer.check(np.zeros(16, dtype=np.uint8))

    def test_frame_rejects_wrong_payload_length(self):
        framer = Framer(payload_bits=24, k=8)
        with pytest.raises(ValueError):
            framer.frame(np.zeros(23, dtype=np.uint8))

    def test_extract_rejects_wrong_length(self):
        framer = Framer(payload_bits=24, k=8)
        with pytest.raises(ValueError):
            framer.extract_payload(np.zeros(25, dtype=np.uint8))

    def test_rejects_bad_constructor_args(self):
        with pytest.raises(ValueError):
            Framer(payload_bits=0, k=8)
        with pytest.raises(ValueError):
            Framer(payload_bits=8, k=0)
        with pytest.raises(ValueError):
            Framer(payload_bits=8, k=4, tail_segments=-1)

    def test_check_without_crc_accepts_any_payload(self, rng):
        """Without a CRC only the known bits are verified (documented weakness)."""
        framer = Framer(payload_bits=16, k=8)
        other_payload = random_message_bits(16, rng)
        assert framer.check(other_payload)
