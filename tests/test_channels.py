"""Unit tests for the channel models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channels import (
    AWGNChannel,
    BECChannel,
    BSCChannel,
    ERASURE,
    RayleighBlockFadingChannel,
    TimeVaryingAWGNChannel,
)
from repro.channels.quantize import AdcQuantizer
from repro.channels.traces import (
    constant_trace,
    gilbert_elliott_trace,
    random_walk_trace,
    sinusoidal_trace,
)
from repro.utils.rng import spawn_rng


class TestAWGNChannel:
    def test_noise_energy_matches_snr(self, rng):
        channel = AWGNChannel(snr_db=10.0)
        assert channel.noise_energy == pytest.approx(0.1)
        assert channel.snr_linear == pytest.approx(10.0)

    def test_empirical_noise_power(self, rng):
        channel = AWGNChannel(snr_db=3.0)
        clean = np.zeros(20000, dtype=np.complex128)
        received = channel.transmit(clean, rng)
        measured = float(np.mean(np.abs(received) ** 2))
        assert measured == pytest.approx(channel.noise_energy, rel=0.05)

    def test_noise_is_circular(self, rng):
        channel = AWGNChannel(snr_db=0.0)
        received = channel.transmit(np.zeros(20000, dtype=np.complex128), rng)
        assert float(np.mean(received.real**2)) == pytest.approx(0.5, rel=0.1)
        assert float(np.mean(received.imag**2)) == pytest.approx(0.5, rel=0.1)

    def test_adc_quantisation_applied(self, rng):
        channel = AWGNChannel(snr_db=10.0, adc_bits=4)
        received = channel.transmit(np.ones(100, dtype=np.complex128), rng)
        # With a 4-bit ADC there are at most 16 distinct values per dimension.
        assert len(np.unique(received.real)) <= 16

    def test_14_bit_adc_nearly_transparent(self, rng):
        # Stay well inside the ADC full scale so only quantisation error remains.
        values = 0.5 * (rng.standard_normal(1000) + 1j * rng.standard_normal(1000))
        values = np.clip(values.real, -1.5, 1.5) + 1j * np.clip(values.imag, -1.5, 1.5)
        coarse = AWGNChannel(snr_db=100.0, adc_bits=14)
        received = coarse.transmit(values, rng)
        assert np.max(np.abs(received - values)) < 1e-2

    def test_rejects_bad_signal_power(self):
        with pytest.raises(ValueError):
            AWGNChannel(snr_db=10.0, signal_power=0.0)

    def test_describe_mentions_snr(self):
        assert "10.0" in AWGNChannel(snr_db=10.0).describe()


class TestTimeVaryingAWGN:
    def test_trace_indexing_and_reset(self, rng):
        channel = TimeVaryingAWGNChannel([30.0, -10.0])
        channel.transmit(np.zeros(1, dtype=np.complex128), rng)
        assert channel._cursor == 1
        channel.reset()
        assert channel._cursor == 0

    def test_noise_follows_trace(self, rng):
        # First 2000 symbols at 30 dB, next 2000 at -10 dB.
        trace = [30.0] * 2000 + [-10.0] * 2000
        channel = TimeVaryingAWGNChannel(trace)
        quiet = channel.transmit(np.zeros(2000, dtype=np.complex128), rng)
        loud = channel.transmit(np.zeros(2000, dtype=np.complex128), rng)
        assert np.mean(np.abs(quiet) ** 2) < np.mean(np.abs(loud) ** 2) / 100

    def test_trace_wraps_around(self, rng):
        channel = TimeVaryingAWGNChannel([20.0, 20.0, 20.0])
        received = channel.transmit(np.zeros(10, dtype=np.complex128), rng)
        assert received.shape == (10,)

    def test_mean_snr(self):
        assert TimeVaryingAWGNChannel([0.0, 10.0]).mean_snr_db == pytest.approx(5.0)

    def test_rejects_empty_trace(self):
        with pytest.raises(ValueError):
            TimeVaryingAWGNChannel([])


class TestBSCChannel:
    def test_flip_probability(self, rng):
        channel = BSCChannel(0.2)
        bits = np.zeros(50000, dtype=np.uint8)
        flipped = channel.transmit(bits, rng)
        assert float(flipped.mean()) == pytest.approx(0.2, abs=0.02)

    def test_zero_probability_is_identity(self, rng):
        channel = BSCChannel(0.0)
        bits = rng.integers(0, 2, size=100, dtype=np.uint8)
        assert np.array_equal(channel.transmit(bits, rng), bits)

    def test_rejects_invalid_probability(self):
        with pytest.raises(ValueError):
            BSCChannel(0.7)
        with pytest.raises(ValueError):
            BSCChannel(-0.1)

    def test_rejects_non_binary_input(self, rng):
        with pytest.raises(ValueError):
            BSCChannel(0.1).transmit(np.array([0, 1, 2], dtype=np.uint8), rng)


class TestBECChannel:
    def test_erasure_probability(self, rng):
        channel = BECChannel(0.3)
        bits = np.zeros(50000, dtype=np.uint8)
        received = channel.transmit(bits, rng)
        assert float(np.mean(received == ERASURE)) == pytest.approx(0.3, abs=0.02)

    def test_non_erased_bits_unchanged(self, rng):
        channel = BECChannel(0.5)
        bits = rng.integers(0, 2, size=1000, dtype=np.uint8)
        received = channel.transmit(bits, rng)
        kept = received != ERASURE
        assert np.array_equal(received[kept], bits[kept])

    def test_rejects_invalid_probability(self):
        with pytest.raises(ValueError):
            BECChannel(1.0)


class TestFadingChannel:
    def test_reset_restores_block_state(self, rng):
        channel = RayleighBlockFadingChannel(average_snr_db=20.0, coherence_symbols=4)
        channel.transmit(np.ones(3, dtype=np.complex128), rng)
        channel.reset()
        assert channel._symbols_in_block == 0

    def test_mean_noise_enhancement_exceeds_awgn(self, rng):
        """Equalised fading noise is on average stronger than pure AWGN noise."""
        awgn = AWGNChannel(snr_db=10.0)
        fading = RayleighBlockFadingChannel(average_snr_db=10.0, coherence_symbols=8)
        clean = np.zeros(4000, dtype=np.complex128)
        awgn_power = np.mean(np.abs(awgn.transmit(clean, rng)) ** 2)
        fading_power = np.mean(np.abs(fading.transmit(clean, rng)) ** 2)
        assert fading_power > awgn_power

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RayleighBlockFadingChannel(10.0, coherence_symbols=0)
        with pytest.raises(ValueError):
            RayleighBlockFadingChannel(10.0, signal_power=-1.0)


class TestAdcQuantizer:
    def test_step_size(self):
        quantizer = AdcQuantizer(bits=3, full_scale=4.0)
        assert quantizer.step == pytest.approx(1.0)

    def test_quantisation_error_bounded_by_half_step(self, rng):
        quantizer = AdcQuantizer(bits=8, full_scale=2.0)
        values = rng.uniform(-1.9, 1.9, size=1000)
        error = np.abs(quantizer.quantize_real(values) - values)
        assert np.max(error) <= quantizer.step / 2 + 1e-12

    def test_saturation(self):
        quantizer = AdcQuantizer(bits=4, full_scale=1.0)
        assert quantizer.quantize_real(np.array([10.0]))[0] <= 1.0
        assert quantizer.quantize_real(np.array([-10.0]))[0] >= -1.0

    def test_complex_quantisation(self, rng):
        quantizer = AdcQuantizer(bits=6, full_scale=2.0)
        values = rng.standard_normal(100) + 1j * rng.standard_normal(100)
        out = quantizer.quantize(values)
        assert np.iscomplexobj(out)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            AdcQuantizer(bits=0, full_scale=1.0)
        with pytest.raises(ValueError):
            AdcQuantizer(bits=8, full_scale=0.0)


class TestTraces:
    def test_constant(self):
        assert np.all(constant_trace(5.0, 10) == 5.0)

    def test_random_walk_bounds(self, rng):
        trace = random_walk_trace(10.0, 5000, 2.0, rng, min_snr_db=0.0, max_snr_db=20.0)
        assert trace.min() >= 0.0 and trace.max() <= 20.0

    def test_random_walk_moves(self, rng):
        trace = random_walk_trace(10.0, 100, 1.0, rng)
        assert np.std(trace) > 0.0

    def test_gilbert_elliott_two_levels(self, rng):
        trace = gilbert_elliott_trace(20.0, 0.0, 2000, rng)
        assert set(np.unique(trace)).issubset({0.0, 20.0})
        assert 0.0 in trace and 20.0 in trace

    def test_sinusoidal_period(self):
        trace = sinusoidal_trace(10.0, 5.0, period_symbols=20, length=40)
        assert trace[0] == pytest.approx(trace[20])
        assert trace.max() <= 15.0 + 1e-9

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            constant_trace(0.0, 0)
        with pytest.raises(ValueError):
            random_walk_trace(0.0, 10, 1.0, rng, min_snr_db=5.0, max_snr_db=1.0)
        with pytest.raises(ValueError):
            gilbert_elliott_trace(10.0, 0.0, 10, rng, p_good_to_bad=1.5)
        with pytest.raises(ValueError):
            sinusoidal_trace(0.0, 1.0, 0, 10)


def _random_walk_reference(start_snr_db, length, step_db, rng, min_snr_db, max_snr_db):
    """The pre-vectorization one-step-at-a-time loop, kept as the oracle."""
    steps = rng.normal(0.0, step_db, size=length)
    trace = np.empty(length)
    current = float(np.clip(start_snr_db, min_snr_db, max_snr_db))
    for i, step in enumerate(steps):
        current += step
        if current > max_snr_db:
            current = 2 * max_snr_db - current
        if current < min_snr_db:
            current = 2 * min_snr_db - current
        current = float(np.clip(current, min_snr_db, max_snr_db))
        trace[i] = current
    return trace


def _gilbert_elliott_reference(good, bad, length, rng, p_gb, p_bg):
    """The pre-vectorization per-symbol loop, kept as the oracle."""
    trace = np.empty(length)
    in_good_state = True
    for i in range(length):
        trace[i] = good if in_good_state else bad
        if in_good_state and rng.random() < p_gb:
            in_good_state = False
        elif not in_good_state and rng.random() < p_bg:
            in_good_state = True
    return trace


class TestTraceVectorizationBitIdentity:
    """The vectorized trace generators are bit-identical to the old loops.

    The mobility layer of ``repro.net`` puts these on the per-user hot path
    at city scale; vectorization must not move a single bit, or every
    downstream seed-pinned result shifts.
    """

    @pytest.mark.parametrize("step_db", [0.05, 1.0, 25.0, 200.0])
    @pytest.mark.parametrize("start", [-10.0, 3.7, 40.0, 99.0])
    def test_random_walk_matches_reference_loop(self, step_db, start):
        # step_db spans "never reflects" to "reflects nearly every step"
        # (200 dB steps exceed the whole range, exercising the double
        # reflection); start values include both boundaries and an
        # out-of-range start that the initial clip pulls back.
        args = (start, 4097, step_db)
        kwargs = {"min_snr_db": -10.0, "max_snr_db": 40.0}
        expected = _random_walk_reference(*args, spawn_rng(11, "w"), **kwargs)
        actual = random_walk_trace(*args, spawn_rng(11, "w"), **kwargs)
        assert np.array_equal(actual, expected)

    def test_random_walk_consumes_identical_rng_stream(self):
        rng_a, rng_b = spawn_rng(12, "s"), spawn_rng(12, "s")
        _random_walk_reference(5.0, 777, 3.0, rng_a, -10.0, 40.0)
        random_walk_trace(5.0, 777, 3.0, rng_b)
        assert rng_a.bit_generator.state == rng_b.bit_generator.state

    @pytest.mark.parametrize(
        "p_gb,p_bg",
        [(0.05, 0.2), (0.0, 0.0), (1.0, 1.0), (0.5, 0.01), (0.0, 1.0)],
    )
    def test_gilbert_elliott_matches_reference_loop(self, p_gb, p_bg):
        expected = _gilbert_elliott_reference(
            20.0, -3.0, 3001, spawn_rng(13, "ge"), p_gb, p_bg
        )
        actual = gilbert_elliott_trace(
            20.0, -3.0, 3001, spawn_rng(13, "ge"), p_good_to_bad=p_gb, p_bad_to_good=p_bg
        )
        assert np.array_equal(actual, expected)

    def test_gilbert_elliott_consumes_identical_rng_stream(self):
        rng_a, rng_b = spawn_rng(14, "s"), spawn_rng(14, "s")
        _gilbert_elliott_reference(20.0, 0.0, 555, rng_a, 0.05, 0.2)
        gilbert_elliott_trace(20.0, 0.0, 555, rng_b)
        assert rng_a.bit_generator.state == rng_b.bit_generator.state


class TestPerUserSeedDiscipline:
    """Seed determinism and per-user independence (the MAC cell's contract).

    The multi-user cell gives every user a private channel instance and a
    private generator derived from (seed, user, packet) labels; these tests
    pin the properties that makes correct: the same seed reproduces a
    channel realisation bit-exactly, and different user seeds draw
    statistically independent realisations.
    """

    def test_fading_same_seed_is_bit_identical(self):
        symbols = np.ones(256, dtype=np.complex128)

        def realisation(seed):
            channel = RayleighBlockFadingChannel(10.0, coherence_symbols=8)
            return channel.transmit(symbols, spawn_rng(seed, "user", 0))

        assert np.array_equal(realisation(42), realisation(42))

    def test_fading_different_user_seeds_are_independent(self):
        symbols = np.ones(4096, dtype=np.complex128)

        def noise(user):
            channel = RayleighBlockFadingChannel(10.0, coherence_symbols=8)
            received = channel.transmit(symbols, spawn_rng(7, "user", user))
            return received - symbols

        a, b = noise(0), noise(1)
        assert not np.array_equal(a, b)
        # Effective noise across users is uncorrelated (independent fades
        # and independent AWGN draws): the normalised cross-correlation of
        # long realisations must be tiny.
        correlation = np.abs(np.vdot(a, b)) / (np.linalg.norm(a) * np.linalg.norm(b))
        assert correlation < 0.05

    def test_fading_channel_state_is_per_instance(self):
        # Two users transmitting alternately must see the same fades they
        # would have seen transmitting alone: channel state cannot bleed
        # across instances.
        symbols = np.ones(64, dtype=np.complex128)
        alone = RayleighBlockFadingChannel(10.0, coherence_symbols=8)
        alone_out = alone.transmit(symbols, spawn_rng(3, "user", 0))
        shared_a = RayleighBlockFadingChannel(10.0, coherence_symbols=8)
        shared_b = RayleighBlockFadingChannel(10.0, coherence_symbols=8)
        rng_a, rng_b = spawn_rng(3, "user", 0), spawn_rng(3, "user", 1)
        interleaved = []
        for start in range(0, 64, 8):
            interleaved.append(shared_a.transmit(symbols[start : start + 8], rng_a))
            shared_b.transmit(symbols[start : start + 8], rng_b)
        assert np.array_equal(np.concatenate(interleaved), alone_out)

    def test_random_walk_same_seed_identical_different_seed_independent(self):
        same_a = random_walk_trace(10.0, 500, 1.0, spawn_rng(5, "walk", 0))
        same_b = random_walk_trace(10.0, 500, 1.0, spawn_rng(5, "walk", 0))
        other = random_walk_trace(10.0, 500, 1.0, spawn_rng(5, "walk", 1))
        assert np.array_equal(same_a, same_b)
        assert not np.array_equal(same_a, other)
        # Walks themselves correlate spuriously (integrated noise); the
        # i.i.d. *increments* are what independence makes uncorrelated.
        correlation = np.corrcoef(np.diff(same_a), np.diff(other))[0, 1]
        assert abs(correlation) < 0.15

    def test_gilbert_elliott_same_seed_identical_different_seed_differs(self):
        same_a = gilbert_elliott_trace(20.0, 0.0, 500, spawn_rng(5, "ge", 0))
        same_b = gilbert_elliott_trace(20.0, 0.0, 500, spawn_rng(5, "ge", 0))
        other = gilbert_elliott_trace(20.0, 0.0, 500, spawn_rng(5, "ge", 1))
        assert np.array_equal(same_a, same_b)
        assert not np.array_equal(same_a, other)


class TestTimeVaryingExternalClock:
    def test_set_time_pins_the_trace_cursor(self, rng):
        # Trace: silent at even indices (40 dB), screaming at odd (-20 dB).
        trace = [40.0 if i % 2 == 0 else -20.0 for i in range(2)]
        quiet = TimeVaryingAWGNChannel(trace)
        loud = TimeVaryingAWGNChannel(trace)
        symbol = np.ones(1, dtype=np.complex128)
        quiet.set_time(0)
        loud.set_time(1)
        quiet_error = abs(quiet.transmit(symbol, np.random.default_rng(1))[0] - 1.0)
        loud_error = abs(loud.transmit(symbol, np.random.default_rng(1))[0] - 1.0)
        assert loud_error > 10.0 * quiet_error

    def test_set_time_matches_organically_advanced_cursor(self):
        trace = [0.0, 5.0, 10.0, 15.0]
        organic = TimeVaryingAWGNChannel(trace)
        pinned = TimeVaryingAWGNChannel(trace)
        organic.transmit(np.ones(2, dtype=np.complex128), spawn_rng(1, "warmup"))
        pinned.set_time(2)
        rng_a, rng_b = spawn_rng(2, "probe"), spawn_rng(2, "probe")
        a = organic.transmit(np.ones(4, dtype=np.complex128), rng_a)
        b = pinned.transmit(np.ones(4, dtype=np.complex128), rng_b)
        assert np.array_equal(a, b)

    def test_set_time_rejects_negative(self):
        channel = TimeVaryingAWGNChannel([0.0, 10.0])
        with pytest.raises(ValueError, match="non-negative"):
            channel.set_time(-1)
