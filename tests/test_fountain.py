"""Unit tests for the LT (fountain) code substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channels.bec import BECChannel, ERASURE
from repro.fountain import LTDecoder, LTEncoder, robust_soliton_distribution
from repro.utils.bitops import random_message_bits


class TestDegreeDistribution:
    def test_sums_to_one(self):
        for n_blocks in (1, 5, 32, 100):
            p = robust_soliton_distribution(n_blocks)
            assert p.sum() == pytest.approx(1.0)
            assert np.all(p >= 0)

    def test_degree_one_has_mass(self):
        p = robust_soliton_distribution(50)
        assert p[0] > 0.0

    def test_degree_two_dominates_ideal_part(self):
        # In the ideal soliton, degree 2 carries the largest probability.
        p = robust_soliton_distribution(100, c=0.01)
        assert p[1] == max(p[1:].max(), p[1])

    def test_validation(self):
        with pytest.raises(ValueError):
            robust_soliton_distribution(0)
        with pytest.raises(ValueError):
            robust_soliton_distribution(10, delta=1.5)
        with pytest.raises(ValueError):
            robust_soliton_distribution(10, c=0.0)


class TestEncoder:
    def test_symbol_is_xor_of_neighbours(self, rng):
        data = random_message_bits(64, rng)
        encoder = LTEncoder(data, block_bits=8, seed=1)
        symbol = encoder.symbol(5)
        expected = np.zeros(8, dtype=np.uint8)
        for block in symbol.neighbours:
            expected ^= encoder.blocks[block]
        assert np.array_equal(symbol.value, expected)

    def test_symbols_deterministic_per_seed(self, rng):
        data = random_message_bits(64, rng)
        a = LTEncoder(data, block_bits=8, seed=3).symbol(7)
        b = LTEncoder(data, block_bits=8, seed=3).symbol(7)
        assert a.neighbours == b.neighbours
        assert np.array_equal(a.value, b.value)

    def test_stream_is_rateless(self, rng):
        data = random_message_bits(32, rng)
        encoder = LTEncoder(data, block_bits=8, seed=0)
        stream = encoder.stream()
        symbols = [next(stream) for _ in range(20)]
        assert len({s.seed for s in symbols}) == 20

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            LTEncoder(np.array([], dtype=np.uint8), block_bits=8)
        with pytest.raises(ValueError):
            LTEncoder(random_message_bits(10, rng), block_bits=8)
        with pytest.raises(ValueError):
            LTEncoder(random_message_bits(16, rng), block_bits=0)


class TestDecoder:
    def test_roundtrip_without_erasures(self, rng):
        data = random_message_bits(128, rng)
        encoder = LTEncoder(data, block_bits=8, seed=11)
        decoder = LTDecoder(n_blocks=encoder.n_blocks, block_bits=8)
        stream = encoder.stream()
        while not decoder.is_complete:
            decoder.add_symbol(next(stream))
        assert np.array_equal(decoder.data_bits(), data)
        # Overhead of LT codes is small: a few extra symbols beyond n_blocks.
        assert decoder.symbols_consumed <= 4 * encoder.n_blocks

    def test_roundtrip_over_bec(self, rng):
        data = random_message_bits(96, rng)
        encoder = LTEncoder(data, block_bits=8, seed=13)
        decoder = LTDecoder(n_blocks=encoder.n_blocks, block_bits=8)
        channel = BECChannel(0.3)
        stream = encoder.stream()
        sent = 0
        while not decoder.is_complete and sent < 500:
            symbol = next(stream)
            sent += 1
            received = channel.transmit(symbol.value, rng)
            if np.any(received == ERASURE):
                # Model whole-symbol (packet) erasure: drop the symbol.
                continue
            decoder.add_symbol(symbol)
        assert decoder.is_complete
        assert np.array_equal(decoder.data_bits(), data)

    def test_incomplete_decode_raises(self, rng):
        data = random_message_bits(64, rng)
        encoder = LTEncoder(data, block_bits=8, seed=17)
        decoder = LTDecoder(n_blocks=encoder.n_blocks, block_bits=8)
        decoder.add_symbol(encoder.symbol(0))
        if not decoder.is_complete:
            with pytest.raises(ValueError):
                decoder.data_bits()

    def test_rejects_wrong_symbol_size(self, rng):
        decoder = LTDecoder(n_blocks=4, block_bits=8)
        from repro.fountain.lt import LTSymbol

        with pytest.raises(ValueError):
            decoder.add_symbol(LTSymbol(seed=0, neighbours=(0,), value=np.zeros(4, dtype=np.uint8)))

    def test_validation(self):
        with pytest.raises(ValueError):
            LTDecoder(n_blocks=0, block_bits=8)


class TestRedundantSymbolsAfterSuccess:
    """Regression: absorbing symbols after completion must be a strict no-op."""

    def _completed_decoder(self, rng):
        data = random_message_bits(48, rng)
        encoder = LTEncoder(data, block_bits=8, seed=23)
        decoder = LTDecoder(n_blocks=encoder.n_blocks, block_bits=8)
        stream = encoder.stream()
        while not decoder.is_complete:
            decoder.add_symbol(next(stream))
        return data, encoder, decoder

    def _snapshot(self, decoder):
        return (
            decoder.symbols_consumed,
            {k: v.copy() for k, v in decoder.recovered.items()},
            [(set(r), v.copy()) for r, v in decoder._pending],
        )

    def test_duplicate_symbol_after_success_is_noop(self, rng):
        data, encoder, decoder = self._completed_decoder(rng)
        consumed, recovered, pending = self._snapshot(decoder)
        decoder.add_symbol(encoder.symbol(0))  # duplicate of an absorbed symbol
        assert decoder.symbols_consumed == consumed
        assert len(decoder._pending) == len(pending)
        assert set(decoder.recovered) == set(recovered)
        for index, value in recovered.items():
            assert np.array_equal(decoder.recovered[index], value)
        assert np.array_equal(decoder.data_bits(), data)

    def test_degenerate_symbol_after_success_is_noop(self, rng):
        data, encoder, decoder = self._completed_decoder(rng)
        consumed, recovered, _ = self._snapshot(decoder)
        # A degenerate symbol: fully reduced by the recovered blocks — and
        # even a *corrupted* one (inconsistent value) must not mutate state.
        from repro.fountain.lt import LTSymbol

        corrupted = LTSymbol(
            seed=999,
            neighbours=(0,),
            value=(decoder.recovered[0] ^ 1).astype(np.uint8),
        )
        decoder.add_symbol(corrupted)
        assert decoder.symbols_consumed == consumed
        assert np.array_equal(decoder.data_bits(), data)
        for index, value in recovered.items():
            assert np.array_equal(decoder.recovered[index], value)

    def test_fresh_symbols_keep_streaming_harmlessly(self, rng):
        data, encoder, decoder = self._completed_decoder(rng)
        before = decoder.symbols_consumed
        for seed in range(100, 120):
            decoder.add_symbol(encoder.symbol(seed))
        assert decoder.symbols_consumed == before
        assert decoder.is_complete
        assert np.array_equal(decoder.data_bits(), data)
