"""Regenerate ``api_migration.json``: reference outputs of the legacy entry points.

Run from the repository root::

    PYTHONPATH=src python tests/golden/make_api_migration_golden.py

The file this produces was generated at the commit *before* the
``repro.phy`` codec API landed, so it captures the historical behaviour of
``RatelessSession.run``, ``simulate_link_session``,
``HybridArqLdpcSystem.run_trial`` and ``FixedRateSpinalSystem``.  The
migration test (``tests/test_api_migration.py``) pins the deprecation shims
byte-identical to these numbers; regenerating the file on a commit where the
shims already exist is only valid because the shims are byte-identical.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.baselines.fixed_rate_spinal import FixedRateSpinalSystem
from repro.baselines.hybrid_arq import HybridArqLdpcSystem
from repro.baselines.ldpc_system import LdpcConfig
from repro.core.decoder_incremental import IncrementalBubbleDecoder
from repro.core.encoder import SpinalEncoder
from repro.core.framing import Framer
from repro.core.params import SpinalParams
from repro.core.rateless import RatelessSession
from repro.channels.awgn import AWGNChannel
from repro.fountain.lt import LTDecoder, LTEncoder
from repro.link.feedback import DelayedFeedback, PerfectFeedback
from repro.link.session import simulate_link_session
from repro.utils.bitops import random_message_bits
from repro.utils.rng import spawn_rng

from fractions import Fraction

GOLDEN_PATH = Path(__file__).parent / "api_migration.json"
SEED = 20111114


def rateless_session_golden() -> dict:
    params = SpinalParams(k=4, c=6)
    encoder = SpinalEncoder(params)
    framer = Framer(payload_bits=16, k=4)
    session = RatelessSession(
        encoder,
        decoder_factory=lambda enc: IncrementalBubbleDecoder(enc, beam_width=8),
        channel=AWGNChannel(snr_db=8.0, adc_bits=14),
        framer=framer,
        max_symbols=512,
    )
    trials = []
    for trial in range(4):
        rng = spawn_rng(SEED, "api-golden", "rateless", trial)
        payload = random_message_bits(16, rng)
        result = session.run(payload, rng)
        trials.append(
            {
                "success": bool(result.success),
                "payload_correct": bool(result.payload_correct),
                "symbols_sent": int(result.symbols_sent),
                "payload_bits": int(result.payload_bits),
                "decode_attempts": int(result.decode_attempts),
                "candidates_explored": int(result.candidates_explored),
                "decoded_payload": [int(b) for b in result.decoded_payload],
                "rate": result.rate,
            }
        )
    return {"trials": trials}


def link_session_golden() -> dict:
    needed = [30, 41, 52, 28]
    out = {}
    for name, feedback in (
        ("perfect", PerfectFeedback()),
        ("delayed-8", DelayedFeedback(delay_symbols=8)),
    ):
        result = simulate_link_session(needed, 16, feedback)
        out[name] = {
            "throughput": result.throughput_bits_per_symbol,
            "ideal": result.ideal_throughput_bits_per_symbol,
            "efficiency": result.feedback_efficiency,
            "mean_packet_symbols": result.mean_packet_symbols,
        }
    return out


def hybrid_arq_golden() -> dict:
    system = HybridArqLdpcSystem(
        LdpcConfig(Fraction(1, 2), "BPSK"),
        max_attempts=4,
        codeword_bits=120,
        max_iterations=10,
    )
    trials = []
    for trial in range(3):
        rng = spawn_rng(SEED, "api-golden", "harq", trial)
        result = system.run_trial(-2.0, rng)
        trials.append(
            {
                "success": bool(result.success),
                "attempts": int(result.attempts),
                "symbols_sent": int(result.symbols_sent),
                "message_bits": int(result.message_bits),
            }
        )
    return {"trials": trials}


def fixed_rate_spinal_golden() -> dict:
    system = FixedRateSpinalSystem(
        message_bits=16, n_passes=2, params=SpinalParams(k=4, c=6), beam_width=8
    )
    rng = spawn_rng(SEED, "api-golden", "fixed-rate")
    frames = []
    for _ in range(4):
        ok, wrong_bits = system.transmit_frame(3.0, rng)
        frames.append({"ok": bool(ok), "wrong_bits": int(wrong_bits)})
    measure_rng = spawn_rng(SEED, "api-golden", "fixed-rate-measure")
    measured = system.measure(3.0, 4, measure_rng)
    return {
        "frames": frames,
        "frame_error_rate": measured.frame_error_rate,
        "bit_error_rate": measured.bit_error_rate,
        "nominal_rate": system.nominal_rate,
    }


def lt_golden() -> dict:
    rng = spawn_rng(SEED, "api-golden", "lt")
    data = rng.integers(0, 2, size=24, dtype=np.uint8)
    encoder = LTEncoder(data, block_bits=6, seed=7)
    decoder = LTDecoder(n_blocks=encoder.n_blocks, block_bits=6)
    consumed = 0
    for symbol in encoder.stream():
        decoder.add_symbol(symbol)
        consumed += 1
        if decoder.is_complete:
            break
    return {
        "symbols_consumed_to_complete": consumed,
        "decoded": [int(b) for b in decoder.data_bits()],
        "data": [int(b) for b in data],
    }


def main() -> None:
    golden = {
        "seed": SEED,
        "rateless_session": rateless_session_golden(),
        "link_session": link_session_golden(),
        "hybrid_arq": hybrid_arq_golden(),
        "fixed_rate_spinal": fixed_rate_spinal_golden(),
        "lt": lt_golden(),
    }
    GOLDEN_PATH.write_text(json.dumps(golden, indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
