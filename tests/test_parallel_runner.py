"""Determinism tests for the process-parallel Monte-Carlo runner.

The runner's contract is that ``n_workers`` is purely a wall-clock knob:
per-trial generators are spawned from ``(seed, "trial", label, trial)``
irrespective of worker assignment, and outcomes are re-assembled in trial
order, so any worker count must reproduce the serial measurement exactly
(which also exercises ``spawn_rng`` stability across process boundaries).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import SpinalParams
from repro.experiments.runner import (
    SpinalRunConfig,
    run_spinal_bsc_point,
    run_spinal_point,
)
from repro.utils.rng import derive_seed, spawn_rng

_FAST_AWGN = SpinalRunConfig(
    payload_bits=16,
    params=SpinalParams(k=4, c=6, seed=31),
    beam_width=8,
    n_trials=8,
    search="sequential",
)


class TestParallelDeterminism:
    def test_awgn_four_workers_match_serial(self):
        serial = run_spinal_point(_FAST_AWGN, 8.0)
        parallel = run_spinal_point(_FAST_AWGN.with_(n_workers=4), 8.0)
        assert parallel.rates == serial.rates
        assert parallel.symbols_sent == serial.symbols_sent
        assert parallel.decoded_ok == serial.decoded_ok

    def test_worker_count_does_not_matter(self):
        reference = run_spinal_point(_FAST_AWGN.with_(n_trials=5), 10.0)
        for n_workers in (2, 3, 5, 8):
            point = run_spinal_point(
                _FAST_AWGN.with_(n_trials=5, n_workers=n_workers), 10.0
            )
            assert point.rates == reference.rates
            assert point.symbols_sent == reference.symbols_sent

    def test_bsc_parallel_matches_serial(self):
        config = SpinalRunConfig(
            payload_bits=12,
            params=SpinalParams(k=3, seed=13, bit_mode=True),
            beam_width=8,
            n_trials=6,
        )
        serial = run_spinal_bsc_point(config, 0.05)
        parallel = run_spinal_bsc_point(config.with_(n_workers=4), 0.05)
        assert parallel.rates == serial.rates
        assert parallel.symbols_sent == serial.symbols_sent
        assert parallel.decoded_ok == serial.decoded_ok

    def test_decoder_choice_preserves_measurements(self):
        incremental = run_spinal_point(_FAST_AWGN.with_(n_trials=4), 8.0)
        bubble = run_spinal_point(_FAST_AWGN.with_(n_trials=4, decoder="bubble"), 8.0)
        assert bubble.rates == incremental.rates
        assert bubble.symbols_sent == incremental.symbols_sent

    def test_config_validation(self):
        with pytest.raises(ValueError, match="n_workers"):
            SpinalRunConfig(n_workers=0)
        with pytest.raises(ValueError, match="decoder"):
            SpinalRunConfig(decoder="turbo")


class TestSpawnRngStability:
    def test_derive_seed_is_stable(self):
        # Pinned: the derivation must never change silently, or parallel and
        # historical results stop being reproducible.
        assert derive_seed(20111114, "trial", 8.0, 0) == derive_seed(
            20111114, "trial", 8.0, 0
        )
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a", 2) != derive_seed(2, "a", 2)

    def test_spawn_rng_streams_are_reproducible(self):
        first = spawn_rng(7, "x", 1).integers(0, 2**32, size=4)
        second = spawn_rng(7, "x", 1).integers(0, 2**32, size=4)
        assert np.array_equal(first, second)
