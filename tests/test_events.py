"""Tests for the discrete-event scheduler: ordering, handles, run_until.

The transport equivalence suite pins that a run with no cancellations is
behaviourally identical to the pre-handle scheduler; this file covers the
new surface itself — cancellable handles and epoch stepping.
"""

from __future__ import annotations

import pytest

from repro.link.events import (
    PRIORITY_ACK,
    PRIORITY_BLOCK,
    PRIORITY_SEND,
    EventScheduler,
)


class TestOrdering:
    def test_time_then_priority_then_fifo(self):
        scheduler = EventScheduler()
        log = []
        scheduler.schedule(5, PRIORITY_SEND, lambda: log.append("send@5"))
        scheduler.schedule(5, PRIORITY_BLOCK, lambda: log.append("block@5"))
        scheduler.schedule(5, PRIORITY_ACK, lambda: log.append("ack@5"))
        scheduler.schedule(3, PRIORITY_SEND, lambda: log.append("send@3"))
        scheduler.schedule(5, PRIORITY_BLOCK, lambda: log.append("block2@5"))
        scheduler.run()
        assert log == ["send@3", "block@5", "block2@5", "ack@5", "send@5"]
        assert scheduler.now == 5

    def test_rejects_past_events(self):
        scheduler = EventScheduler()
        scheduler.schedule(4, PRIORITY_SEND, lambda: None)
        scheduler.run()
        with pytest.raises(ValueError, match="before current time"):
            scheduler.schedule(3, PRIORITY_SEND, lambda: None)

    def test_event_budget_guards_liveness(self):
        scheduler = EventScheduler()

        def respawn():
            scheduler.schedule(scheduler.now + 1, PRIORITY_SEND, respawn)

        respawn()
        with pytest.raises(RuntimeError, match="event budget"):
            scheduler.run(max_events=50)


class TestHandles:
    def test_cancelled_event_does_not_fire(self):
        scheduler = EventScheduler()
        log = []
        handle = scheduler.schedule(2, PRIORITY_SEND, lambda: log.append("cancelled"))
        scheduler.schedule(2, PRIORITY_SEND, lambda: log.append("kept"))
        assert not handle.cancelled
        handle.cancel()
        assert handle.cancelled
        processed = scheduler.run()
        assert log == ["kept"]
        assert processed == 1  # the cancelled event does not count

    def test_cancel_is_idempotent_and_tracks_pending(self):
        scheduler = EventScheduler()
        handle = scheduler.schedule(1, PRIORITY_SEND, lambda: None)
        scheduler.schedule(2, PRIORITY_SEND, lambda: None)
        assert scheduler.pending == 2
        handle.cancel()
        handle.cancel()
        assert scheduler.pending == 1
        scheduler.run()
        assert scheduler.pending == 0

    def test_cancel_after_fire_is_a_noop(self):
        scheduler = EventScheduler()
        log = []
        handle = scheduler.schedule(1, PRIORITY_SEND, lambda: log.append("ran"))
        scheduler.run()
        handle.cancel()  # must not corrupt the pending count
        assert log == ["ran"]
        assert scheduler.pending == 0
        scheduler.schedule(2, PRIORITY_SEND, lambda: None)
        assert scheduler.pending == 1

    def test_cancelling_mid_run_from_an_action(self):
        # An earlier event at a tick disarms a later one at the same tick:
        # the canonical deadline-timer pattern of the MAC cell.
        scheduler = EventScheduler()
        log = []
        timer = scheduler.schedule(7, PRIORITY_SEND, lambda: log.append("deadline"))
        scheduler.schedule(
            7, PRIORITY_BLOCK, lambda: (log.append("delivered"), timer.cancel())
        )
        scheduler.run()
        assert log == ["delivered"]

    def test_cancelled_events_do_not_perturb_clock(self):
        scheduler = EventScheduler()
        times = []
        handle = scheduler.schedule(3, PRIORITY_SEND, lambda: None)
        scheduler.schedule(8, PRIORITY_SEND, lambda: times.append(scheduler.now))
        handle.cancel()
        scheduler.run()
        assert times == [8]

    def test_handle_reports_scheduled_time(self):
        scheduler = EventScheduler()
        handle = scheduler.schedule(42, PRIORITY_ACK, lambda: None)
        assert handle.time == 42


class TestRunUntil:
    def test_processes_only_up_to_the_boundary_inclusive(self):
        scheduler = EventScheduler()
        log = []
        for t in (1, 5, 10, 15):
            scheduler.schedule(t, PRIORITY_SEND, lambda t=t: log.append(t))
        processed = scheduler.run_until(10)
        assert log == [1, 5, 10]
        assert processed == 3
        assert scheduler.now == 10
        assert scheduler.pending == 1

    def test_clock_lands_on_the_boundary_even_when_idle(self):
        scheduler = EventScheduler()
        scheduler.run_until(100)
        assert scheduler.now == 100
        # Scheduling into the stepped-over past must fail.
        with pytest.raises(ValueError, match="before current time"):
            scheduler.schedule(50, PRIORITY_SEND, lambda: None)

    def test_stepping_backwards_is_rejected(self):
        scheduler = EventScheduler()
        scheduler.run_until(10)
        with pytest.raises(ValueError, match="already at"):
            scheduler.run_until(5)

    def test_resume_after_step_matches_uninterrupted_run(self):
        def build():
            scheduler = EventScheduler()
            log = []

            def chain(t):
                log.append(t)
                if t < 20:
                    scheduler.schedule(t + 3, PRIORITY_SEND, lambda: chain(t + 3))

            scheduler.schedule(0, PRIORITY_SEND, lambda: chain(0))
            return scheduler, log

        straight, straight_log = build()
        straight.run()
        stepped, stepped_log = build()
        for boundary in (4, 9, 50):
            stepped.run_until(boundary)
        stepped.run()
        assert stepped_log == straight_log


class TestReadOnlyAccessors:
    """``now``/``n_processed`` are observation-only: telemetry reads them
    to stamp spans, so external writes must be impossible."""

    def test_now_is_read_only(self):
        scheduler = EventScheduler()
        with pytest.raises(AttributeError):
            scheduler.now = 99
        assert scheduler.now == 0

    def test_n_processed_is_read_only(self):
        scheduler = EventScheduler()
        with pytest.raises(AttributeError):
            scheduler.n_processed = 99
        assert scheduler.n_processed == 0

    def test_n_processed_counts_only_fired_events(self):
        scheduler = EventScheduler()
        cancelled = scheduler.schedule(1, PRIORITY_SEND, lambda: None)
        scheduler.schedule(2, PRIORITY_SEND, lambda: None)
        scheduler.schedule(3, PRIORITY_ACK, lambda: None)
        cancelled.cancel()
        scheduler.run()
        assert scheduler.n_processed == 2
        assert scheduler.now == 3

    def test_run_until_advances_clock_without_processing(self):
        scheduler = EventScheduler()
        scheduler.run_until(25)
        assert scheduler.now == 25
        assert scheduler.n_processed == 0


class TestNextTime:
    def test_empty_scheduler_has_no_next_time(self):
        assert EventScheduler().next_time() is None

    def test_peeks_the_earliest_live_event(self):
        clock = EventScheduler()
        clock.schedule(9, PRIORITY_SEND, lambda: None)
        clock.schedule(5, PRIORITY_BLOCK, lambda: None)
        assert clock.next_time() == 5
        assert clock.pending == 2  # peeking consumes nothing live

    def test_skips_cancelled_heads_with_correct_bookkeeping(self):
        clock = EventScheduler()
        first = clock.schedule(3, PRIORITY_SEND, lambda: None)
        second = clock.schedule(4, PRIORITY_SEND, lambda: None)
        clock.schedule(8, PRIORITY_SEND, lambda: None)
        first.cancel()
        second.cancel()
        assert clock.next_time() == 8
        # The cancelled heads were purged, and pending stayed consistent.
        assert clock.pending == 1
        assert clock.run() == 1
        assert clock.next_time() is None
