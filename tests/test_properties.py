"""Property-based tests (hypothesis) on the core data structures and invariants.

These cover the invariants the rest of the system silently relies on:
round-trips (bit packing, framing, segmentation, QAM mapping), determinism of
the hash/encoder layer, CRC error detection, GF(2) algebra, the noiseless
decode round-trip, and the ML-optimality of the exhaustive decoder.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core.constellation import make_constellation
from repro.core.crc import CRC8, CRC16_CCITT
from repro.core.decoder_bubble import BubbleDecoder
from repro.core.encoder import ReceivedObservations, SpinalEncoder
from repro.core.framing import Framer
from repro.core.hashing import SaltedHashFamily
from repro.core.params import SpinalParams
from repro.core.puncturing import NoPuncturing, StridedPuncturing, SymbolBySymbol, TailFirstPuncturing
from repro.ldpc.matrices import gf2_inverse, gf2_matmul_vec, gf2_rank
from repro.modulation import make_modulation
from repro.utils.bitops import (
    bits_to_int,
    int_to_bits,
    pack_segments,
    unpack_segments,
)

# Most properties run a bounded number of examples to keep the suite fast.
FAST_SETTINGS = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

bit_arrays = st.lists(st.integers(0, 1), min_size=1, max_size=96).map(
    lambda bits: np.array(bits, dtype=np.uint8)
)


class TestBitopsProperties:
    @FAST_SETTINGS
    @given(value=st.integers(0, 2**32 - 1), width=st.integers(33, 48))
    def test_int_bits_roundtrip(self, value, width):
        assert bits_to_int(int_to_bits(value, width)) == value

    @FAST_SETTINGS
    @given(bits=bit_arrays, k=st.sampled_from([1, 2, 3, 4, 6, 8]))
    def test_segment_roundtrip(self, bits, k):
        assume(bits.size % k == 0)
        assert np.array_equal(unpack_segments(pack_segments(bits, k), k), bits)

    @FAST_SETTINGS
    @given(bits=bit_arrays, k=st.sampled_from([2, 4, 8]))
    def test_segment_values_fit_k_bits(self, bits, k):
        assume(bits.size % k == 0)
        segments = pack_segments(bits, k)
        assert int(segments.max()) < (1 << k)


class TestCrcProperties:
    @FAST_SETTINGS
    @given(bits=bit_arrays)
    def test_append_check_roundtrip(self, bits):
        assert CRC16_CCITT.check(CRC16_CCITT.append(bits))

    @FAST_SETTINGS
    @given(bits=bit_arrays, data=st.data())
    def test_any_single_bit_flip_detected(self, bits, data):
        framed = CRC8.append(bits)
        position = data.draw(st.integers(0, framed.size - 1))
        framed[position] ^= 1
        assert not CRC8.check(framed)


class TestFramerProperties:
    @FAST_SETTINGS
    @given(
        payload_bits=st.integers(8, 64),
        k=st.sampled_from([2, 4, 8]),
        tail=st.integers(0, 2),
        use_crc=st.booleans(),
        data=st.data(),
    )
    def test_frame_roundtrip_and_alignment(self, payload_bits, k, tail, use_crc, data):
        framer = Framer(
            payload_bits=payload_bits,
            k=k,
            crc=CRC16_CCITT if use_crc else None,
            tail_segments=tail,
        )
        payload = np.array(
            data.draw(st.lists(st.integers(0, 1), min_size=payload_bits, max_size=payload_bits)),
            dtype=np.uint8,
        )
        framed = framer.frame(payload)
        assert framed.size % k == 0
        assert framed.size == framer.framed_bits
        assert np.array_equal(framer.extract_payload(framed), payload)
        assert framer.check(framed) or framer.crc is None


class TestHashProperties:
    @FAST_SETTINGS
    @given(
        seed=st.integers(0, 2**32 - 1),
        state=st.integers(0, 2**63 - 1),
        segment=st.integers(0, 255),
    )
    def test_hash_deterministic_and_seed_dependent(self, seed, state, segment):
        family_a = SaltedHashFamily(seed=seed, k=8)
        family_b = SaltedHashFamily(seed=seed, k=8)
        assert family_a.hash_spine_scalar(state, segment) == family_b.hash_spine_scalar(
            state, segment
        )

    @FAST_SETTINGS
    @given(
        state=st.integers(0, 2**63 - 1),
        segment_a=st.integers(0, 255),
        segment_b=st.integers(0, 255),
    )
    def test_distinct_segments_distinct_children(self, state, segment_a, segment_b):
        assume(segment_a != segment_b)
        family = SaltedHashFamily(seed=99, k=8)
        assert family.hash_spine_scalar(state, segment_a) != family.hash_spine_scalar(
            state, segment_b
        )


class TestConstellationProperties:
    @FAST_SETTINGS
    @given(
        kind=st.sampled_from(["linear", "offset-linear", "truncated-gaussian"]),
        c=st.integers(2, 8),
        power=st.floats(0.25, 8.0),
    )
    def test_average_energy_matches_request(self, kind, c, power):
        mapper = make_constellation(kind, c=c, average_power=power)
        assert mapper.average_energy == pytest.approx(power, rel=1e-6)

    @FAST_SETTINGS
    @given(kind=st.sampled_from(["linear", "offset-linear"]), c=st.integers(2, 6))
    def test_empirical_energy_matches_analytic(self, kind, c):
        mapper = make_constellation(kind, c=c)
        points = mapper.enumerate_points()
        assert float(np.mean(np.abs(points) ** 2)) == pytest.approx(
            mapper.average_energy, rel=1e-9
        )


class TestModulationProperties:
    @FAST_SETTINGS
    @given(
        name=st.sampled_from(["BPSK", "QAM-4", "QAM-16", "QAM-64"]),
        data=st.data(),
    )
    def test_modulate_hard_demodulate_roundtrip(self, name, data):
        modulation = make_modulation(name)
        n_symbols = data.draw(st.integers(1, 20))
        bits = np.array(
            data.draw(
                st.lists(
                    st.integers(0, 1),
                    min_size=n_symbols * modulation.bits_per_symbol,
                    max_size=n_symbols * modulation.bits_per_symbol,
                )
            ),
            dtype=np.uint8,
        )
        assert np.array_equal(modulation.demodulate_hard(modulation.modulate(bits)), bits)


class TestGF2Properties:
    @FAST_SETTINGS
    @given(data=st.data())
    def test_inverse_property(self, data):
        size = data.draw(st.integers(2, 10))
        rng = np.random.default_rng(data.draw(st.integers(0, 1000)))
        matrix = rng.integers(0, 2, size=(size, size), dtype=np.uint8)
        assume(gf2_rank(matrix) == size)
        inverse = gf2_inverse(matrix)
        identity = (matrix.astype(int) @ inverse.astype(int)) % 2
        assert np.array_equal(identity, np.eye(size, dtype=int))

    @FAST_SETTINGS
    @given(data=st.data())
    def test_matmul_vec_linearity(self, data):
        rows, cols = data.draw(st.integers(1, 8)), data.draw(st.integers(1, 8))
        rng = np.random.default_rng(data.draw(st.integers(0, 1000)))
        matrix = rng.integers(0, 2, size=(rows, cols), dtype=np.uint8)
        x = rng.integers(0, 2, size=cols, dtype=np.uint8)
        y = rng.integers(0, 2, size=cols, dtype=np.uint8)
        lhs = gf2_matmul_vec(matrix, x ^ y)
        rhs = gf2_matmul_vec(matrix, x) ^ gf2_matmul_vec(matrix, y)
        assert np.array_equal(lhs, rhs)


class TestPuncturingProperties:
    @FAST_SETTINGS
    @given(
        schedule=st.sampled_from(
            [NoPuncturing(), SymbolBySymbol(), TailFirstPuncturing(), StridedPuncturing(4)]
        ),
        n_segments=st.integers(1, 20),
        subpass=st.integers(0, 50),
    )
    def test_positions_always_valid(self, schedule, n_segments, subpass):
        positions = schedule.subpass_positions(subpass, n_segments)
        assert np.all((0 <= positions) & (positions < n_segments))
        assert len(set(positions.tolist())) == positions.size


class TestEncodeDecodeProperties:
    @FAST_SETTINGS
    @given(
        seed=st.integers(0, 2**16),
        k=st.sampled_from([2, 4]),
        n_segments=st.integers(2, 5),
        data=st.data(),
    )
    def test_noiseless_roundtrip(self, seed, k, n_segments, data):
        """One clean pass decodes to a zero-cost explanation of the symbols.

        The decoded message is the true one unless the hash family collides
        — two messages whose single-pass encodings are *identical symbols*
        are information-theoretically indistinguishable from one clean pass
        (hypothesis found such a collision at seed=246, k=2), so the
        guarantee is: zero path cost, and the decoded message re-encodes to
        exactly the observed symbols.
        """
        n_bits = k * n_segments
        params = SpinalParams(k=k, c=6, seed=seed)
        encoder = SpinalEncoder(params)
        bits = np.array(
            data.draw(st.lists(st.integers(0, 1), min_size=n_bits, max_size=n_bits)),
            dtype=np.uint8,
        )
        values = encoder.encode_passes(bits, 1)
        observations = ReceivedObservations(n_segments)
        for position in range(n_segments):
            observations.add(position, 0, values[0, position])
        result = BubbleDecoder(encoder, beam_width=4).decode(n_bits, observations)
        assert result.path_cost == 0.0
        assert np.array_equal(encoder.encode_passes(result.message_bits, 1), values)

    @FAST_SETTINGS
    @given(seed=st.integers(0, 2**16), data=st.data())
    def test_decoded_cost_never_exceeds_true_message_cost(self, seed, data):
        """The decoder's winning path never costs more than the true path."""
        params = SpinalParams(k=4, c=6, seed=seed)
        encoder = SpinalEncoder(params)
        rng = np.random.default_rng(data.draw(st.integers(0, 10_000)))
        bits = rng.integers(0, 2, size=12, dtype=np.uint8)
        values = encoder.encode_passes(bits, 2)
        noise = 0.3 * (rng.standard_normal(values.shape) + 1j * rng.standard_normal(values.shape))
        observations = ReceivedObservations(3)
        for pass_index in range(2):
            for position in range(3):
                observations.add(
                    position, pass_index, values[pass_index, position] + noise[pass_index, position]
                )
        result = BubbleDecoder(encoder, beam_width=64).decode(12, observations)
        true_cost = encoder.total_cost(bits, observations)
        assert result.path_cost <= true_cost + 1e-9
