"""Equivalence tests pinning the simulated transport to the existing stack.

Three anchors keep the event-driven protocol honest:

* **PerfectFeedback** — with a zero-delay lossless reverse channel the
  transport must spend *exactly* the per-packet symbol counts that
  :meth:`RatelessSession.run` measures with the same noise streams, and its
  link-session view must match :func:`simulate_link_session` under
  :class:`PerfectFeedback` bit-for-bit;
* **DelayedFeedback** — at window 1 the closed-form model brackets the
  measured overhead (the simulation can only overshoot by the in-flight
  feedback plus block granularity);
* **Direct link** — a 1-hop "relay" is the direct link, field for field.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import SpinalParams
from repro.experiments.runner import SpinalRunConfig
from repro.link.feedback import DelayedFeedback, PerfectFeedback
from repro.link.session import simulate_link_session
from repro.link.topology import (
    build_relay_sessions,
    relay_hop_params,
    simulate_relay_transport,
)
from repro.link.transport import TransportConfig, packet_rng, run_link_transport
from repro.utils.bitops import random_message_bits
from repro.utils.rng import spawn_rng

_RUN_CONFIG = SpinalRunConfig(
    payload_bits=16,
    params=SpinalParams(k=4, c=6, seed=31),
    beam_width=8,
    search="sequential",
    max_symbols=512,
)


def _payloads(n, seed=901):
    return [random_message_bits(16, spawn_rng(seed, "payload", i)) for i in range(n)]


def _serial_symbol_counts(payloads, transport_seed, snr_db=10.0):
    """Per-packet symbols from the plain rateless session, transport streams."""
    session = build_relay_sessions(_RUN_CONFIG, [snr_db])[0]
    return [
        session.run(payload, packet_rng(transport_seed, 0, index)).symbols_sent
        for index, payload in enumerate(payloads)
    ]


class TestPerfectFeedbackEquivalence:
    """Zero-delay lossless ACKs must reproduce PerfectFeedback exactly."""

    @pytest.mark.parametrize(
        "protocol,window",
        [
            ("selective-repeat", 1),
            ("selective-repeat", 3),
            ("go-back-n", 1),
        ],
    )
    def test_symbol_counts_match_rateless_session_exactly(self, protocol, window):
        payloads = _payloads(5)
        config = TransportConfig(
            protocol=protocol, window=window, ack_delay=0, ack_loss=0.0, seed=41
        )
        result = run_link_transport(
            build_relay_sessions(_RUN_CONFIG, [10.0])[0], payloads, config
        )
        serial = _serial_symbol_counts(payloads, transport_seed=41)

        assert result.delivered.all()
        assert result.symbols_needed.tolist() == serial
        assert result.symbols_spent.tolist() == serial  # zero measured overhead

    def test_link_session_view_matches_perfect_feedback(self):
        payloads = _payloads(4)
        config = TransportConfig(
            protocol="selective-repeat", window=2, ack_delay=0, ack_loss=0.0, seed=42
        )
        result = run_link_transport(
            build_relay_sessions(_RUN_CONFIG, [10.0])[0], payloads, config
        )
        reference = simulate_link_session(
            _serial_symbol_counts(payloads, transport_seed=42),
            payload_bits_per_packet=16,
            feedback=PerfectFeedback(),
        )
        measured = result.link_session_result()

        assert measured.n_packets == reference.n_packets
        assert np.array_equal(measured.symbols_needed, reference.symbols_needed)
        assert np.array_equal(measured.symbols_spent, reference.symbols_spent)
        assert (
            measured.throughput_bits_per_symbol == reference.throughput_bits_per_symbol
        )
        assert measured.feedback_efficiency == 1.0


class TestDelayedFeedbackBracket:
    def test_window_one_overhead_is_bracketed_by_the_closed_form(self):
        # At window 1 the sender overshoots each packet by at most the ACK
        # delay plus the blocks straddling it; the closed-form model charges
        # exactly the delay.  Measured overhead must sit in that bracket.
        delay = 11
        payloads = _payloads(5)
        session = build_relay_sessions(_RUN_CONFIG, [10.0])[0]
        config = TransportConfig(
            protocol="selective-repeat", window=1, ack_delay=delay, ack_loss=0.0, seed=43
        )
        result = run_link_transport(session, payloads, config)
        closed_form = DelayedFeedback(delay_symbols=delay)
        block_slack = 2 * session.framer.n_segments

        assert result.delivered.all()
        for needed, spent in zip(result.symbols_needed, result.symbols_spent):
            # The channel stays busy on the lone in-flight packet while the
            # ACK travels, so the closed form (needed + delay) is a lower
            # bound; block granularity bounds the extra overshoot above it.
            assert closed_form.symbols_spent(int(needed)) <= spent
            assert spent <= needed + delay + block_slack


class TestRelayEquivalence:
    def test_one_hop_relay_is_the_direct_link(self):
        payloads = _payloads(4)
        config = TransportConfig(window=2, ack_delay=5, ack_loss=0.3, seed=44)
        direct = run_link_transport(
            build_relay_sessions(_RUN_CONFIG, [9.0])[0], payloads, config
        )
        relay = simulate_relay_transport(
            build_relay_sessions(_RUN_CONFIG, [9.0]), payloads, config
        )

        assert relay.n_hops == 1
        hop = relay.hops[0]
        assert np.array_equal(hop.symbols_needed, direct.symbols_needed)
        assert np.array_equal(hop.symbols_spent, direct.symbols_spent)
        assert np.array_equal(hop.delivery_times, direct.delivery_times)
        assert np.array_equal(relay.delivered, direct.delivered)
        assert hop.acks_sent == direct.acks_sent
        assert hop.acks_lost == direct.acks_lost
        assert relay.makespan == direct.makespan

    def test_two_hop_relay_delivers_correct_payloads_end_to_end(self):
        payloads = _payloads(5)
        config = TransportConfig(window=2, ack_delay=4, ack_loss=0.1, seed=45)
        relay = simulate_relay_transport(
            build_relay_sessions(_RUN_CONFIG, [10.0, 7.0]), payloads, config
        )

        assert relay.delivered.all()
        final = relay.hops[-1]
        for i in range(final.n_packets):
            orig = int(final.orig_indices[i])
            assert np.array_equal(final.decoded_payloads[i], payloads[orig])
        # The pipeline clock: end-to-end completion is no earlier than the
        # busier hop, and strictly later than hop 0 alone.
        assert relay.makespan >= max(hop.makespan for hop in relay.hops[:-1])

    def test_hops_use_fresh_hash_seeds(self):
        assert relay_hop_params(_RUN_CONFIG, 0) == _RUN_CONFIG.params
        seeds = {relay_hop_params(_RUN_CONFIG, hop).seed for hop in range(4)}
        assert len(seeds) == 4  # hop 0 original + three distinct derived seeds

    def test_relay_requires_consistent_framing(self):
        sessions = build_relay_sessions(_RUN_CONFIG, [10.0]) + build_relay_sessions(
            _RUN_CONFIG.with_(payload_bits=12), [10.0]
        )
        with pytest.raises(ValueError, match="framing"):
            simulate_relay_transport(sessions, _payloads(2), TransportConfig())

    def test_relay_requires_at_least_one_hop(self):
        with pytest.raises(ValueError, match="hop"):
            simulate_relay_transport([], _payloads(1), TransportConfig())
        with pytest.raises(ValueError, match="hop"):
            build_relay_sessions(_RUN_CONFIG, [])
