"""Tests for the MAC scheduling disciplines.

Unit behaviour first (deterministic picks, tie-breaks, state hooks), then
the physics: on channels whose state evolves with wall-clock time, an
opportunistic scheduler must extract strictly more full-buffer throughput
than channel-blind round-robin — the gain that motivates channel-aware
MACs, reproduced here over rateless spinal sessions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.channels.awgn import TimeVaryingAWGNChannel
from repro.channels.traces import sinusoidal_trace
from repro.core.params import SpinalParams
from repro.experiments.runner import SpinalRunConfig
from repro.mac.cell import CellUser, MacCell, RatelessLink, simulate_cell
from repro.mac.schedulers import (
    MaxSnrScheduler,
    ProportionalFairScheduler,
    RoundRobinScheduler,
    Scheduler,
    UserView,
    make_scheduler,
)
from repro.utils.bitops import random_message_bits
from repro.utils.rng import spawn_rng

_RUN_CONFIG = SpinalRunConfig(
    payload_bits=16,
    params=SpinalParams(k=4, c=6, seed=31),
    beam_width=8,
    search="sequential",
    max_symbols=512,
)


def _view(user, csi_db, backlog=1):
    return UserView(
        user=user, csi_db=csi_db, backlog=backlog, symbols_granted=0, bits_delivered=0
    )


class TestRoundRobin:
    def test_cycles_through_eligible_users(self):
        scheduler = RoundRobinScheduler()
        views = [_view(0, 5.0), _view(1, 25.0), _view(2, 10.0)]
        picks = [scheduler.pick(t, views) for t in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_skips_users_without_backlog(self):
        scheduler = RoundRobinScheduler()
        assert scheduler.pick(0, [_view(0, 5.0), _view(2, 5.0)]) == 0
        assert scheduler.pick(1, [_view(0, 5.0), _view(2, 5.0)]) == 2
        # User 1 shows up again: the rotation resumes after the cursor (2).
        assert scheduler.pick(2, [_view(0, 5.0), _view(1, 5.0)]) == 0
        assert scheduler.pick(3, [_view(0, 5.0), _view(1, 5.0)]) == 1


class TestMaxSnr:
    def test_picks_highest_observed_snr(self):
        scheduler = MaxSnrScheduler()
        assert scheduler.pick(0, [_view(0, 5.0), _view(1, 25.0), _view(2, 10.0)]) == 1

    def test_ties_break_to_lowest_user(self):
        scheduler = MaxSnrScheduler()
        assert scheduler.pick(0, [_view(1, 10.0), _view(2, 10.0)]) == 1


class TestProportionalFair:
    def test_unserved_users_win_at_equal_snr(self):
        scheduler = ProportionalFairScheduler(half_life=64)
        views = [_view(0, 10.0), _view(1, 10.0)]
        assert scheduler.pick(0, views) == 0  # tie: lowest index
        scheduler.on_delivered(0, 16, 0)
        assert scheduler.pick(1, views) == 1  # user 0 now has throughput history

    def test_served_history_decays_back_to_parity(self):
        scheduler = ProportionalFairScheduler(half_life=8)
        scheduler.on_delivered(0, 16, 0)
        views = [_view(0, 10.0), _view(1, 5.0)]
        # Immediately after service the worse channel wins on fairness...
        assert scheduler.pick(1, views) == 1
        scheduler.on_delivered(1, 16, 1)
        # ...and far in the future both histories have decayed: rate wins.
        assert scheduler.pick(10_000, views) == 0

    def test_rejects_bad_half_life(self):
        with pytest.raises(ValueError, match="half_life"):
            ProportionalFairScheduler(half_life=0)


class TestFactoryAndProtocol:
    def test_make_scheduler_builds_each_discipline(self):
        assert make_scheduler("round-robin").name == "round-robin"
        assert make_scheduler("max-snr").name == "max-snr"
        assert make_scheduler("proportional-fair").name == "proportional-fair"

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            make_scheduler("lottery")

    def test_cell_rejects_ineligible_pick(self):
        class Rogue(Scheduler):
            name = "rogue"

            def pick(self, now, views):
                return 999

        payloads = [random_message_bits(16, spawn_rng(1, "rogue", i)) for i in range(1)]
        from repro.channels.awgn import AWGNChannel

        session = _RUN_CONFIG.build_session(AWGNChannel(10.0, adc_bits=14), 512)
        with pytest.raises(ValueError, match="picked user 999"):
            simulate_cell([CellUser(RatelessLink(session), payloads)], Rogue())


class TestOpportunisticGain:
    """Channel-aware scheduling must pay off on wall-clock-varying channels."""

    HORIZON = 400

    def _users(self):
        users = []
        for u in range(2):
            # Anti-phase sinusoidal SNR traces pinned to the cell clock:
            # whenever one user fades the other peaks, the textbook setting
            # for multi-user diversity.
            trace = sinusoidal_trace(10.0, 9.0, 64, 64, phase=np.pi * u)
            channel = TimeVaryingAWGNChannel(trace, adc_bits=14)
            session = _RUN_CONFIG.build_session(channel, 512, search="sequential")
            payloads = [
                random_message_bits(16, spawn_rng(9, "tv", u, i)) for i in range(80)
            ]
            users.append(CellUser(RatelessLink(session), payloads))
        return users

    def _throughput(self, scheduler_name):
        cell = MacCell(self._users(), scheduler_name, seed=11)
        result = cell.run_until(self.HORIZON)
        # Full-buffer framing: both queues stay backlogged through the
        # horizon, so delivered bits per horizon tick is the cell
        # throughput (no drain endgame to distort the comparison).
        assert any(not p.finished for p in cell.packets)
        return result.delivered_bits / self.HORIZON

    def test_max_snr_and_pf_beat_round_robin(self):
        round_robin = self._throughput("round-robin")
        max_snr = self._throughput("max-snr")
        proportional_fair = self._throughput("proportional-fair")
        assert max_snr > round_robin
        assert proportional_fair > round_robin

    def test_external_clock_is_what_creates_the_gain(self):
        # Control experiment: identical traces, but left on their default
        # symbols-transmitted clock (no set_time pinning).  Each user's
        # channel then evolves only while that user transmits, there are no
        # crests to ride, and max-SNR degenerates to a static pick.
        class Unpinned(TimeVaryingAWGNChannel):
            def set_time(self, time):  # noqa: ARG002 - deliberately ignore
                pass

        users = []
        for u in range(2):
            trace = sinusoidal_trace(10.0, 9.0, 64, 64, phase=np.pi * u)
            channel = Unpinned(trace, adc_bits=14)
            session = _RUN_CONFIG.build_session(channel, 512, search="sequential")
            payloads = [
                random_message_bits(16, spawn_rng(9, "tv", u, i)) for i in range(80)
            ]
            users.append(CellUser(RatelessLink(session), payloads))
        cell = MacCell(users, "max-snr", seed=11)
        result = cell.run_until(self.HORIZON)
        pinned = self._throughput("max-snr")
        unpinned = result.delivered_bits / self.HORIZON
        assert pinned > unpinned


class TestProportionalFairEdgeCases:
    """PR-7 bugfix sweep: the first-grant metric and degenerate CSI."""

    def test_rejects_non_positive_floor(self):
        with pytest.raises(ValueError, match="floor"):
            ProportionalFairScheduler(floor=0.0)
        with pytest.raises(ValueError, match="floor"):
            ProportionalFairScheduler(floor=-1e-9)

    def test_first_grant_is_well_defined(self):
        """No history at all (every average zero) must not divide by zero."""
        scheduler = ProportionalFairScheduler()
        assert scheduler.pick(0, [_view(0, 10.0), _view(1, 20.0)]) == 1

    def test_nan_csi_user_is_never_preferred(self):
        scheduler = ProportionalFairScheduler()
        assert scheduler.pick(0, [_view(0, float("nan")), _view(1, -10.0)]) == 1
        assert scheduler.pick(0, [_view(3, -10.0), _view(7, float("nan"))]) == 3

    def test_all_nan_csi_still_grants_someone(self):
        """All-NaN views fall back to the lowest-index user, not a crash."""
        scheduler = ProportionalFairScheduler()
        views = [_view(4, float("nan")), _view(9, float("nan"))]
        assert scheduler.pick(0, views) == 4
