"""The network-coding subsystem's claims, measured at smoke scale.

The headline acceptance criterion from the paper's "rateless codes
compose" pitch: at a symmetric operating point, XOR two-way relaying
saves **at least 25%** of the total medium uses of two one-way relay
exchanges (three equal-cost phases instead of four), for the spinal *and*
LT families — measured per phase, not assumed.  Around it:

* asymmetry shrinks (never inverts) the gain, because the broadcast
  phase is paced by the weaker endpoint;
* amplify-and-forward composes with any symbol-domain rateless code as a
  plain (worse) AWGN channel, with the closed-form effective SNR, and is
  rejected for bit-domain families;
* multicast over a tree charges the medium ``max`` instead of ``sum``;
* telemetry is bit-transparent for every netcode entry point;
* the ``network-coding-gain`` registry experiment's smoke grid meets the
  acceptance threshold on its symmetric cells.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.netcode import (
    AmplifyForwardChannel,
    MulticastTreeConfig,
    TwoWayAmplifyChannel,
    TwoWayConfig,
    broadcast_transmission,
    run_multicast_tree,
    run_two_way_af_exchange,
    run_two_way_exchange,
)
from repro.obs import Telemetry, set_current
from repro.phy.families import channel_for_code, make_code
from repro.utils.rng import spawn_rng
from repro.utils.units import db_to_linear, linear_to_db

SEED = 20111114

SYMMETRIC = TwoWayConfig(
    family="spinal", snr_a_db=33.0, snr_b_db=33.0, rounds=4, seed=SEED, smoke=True
)


def _with_telemetry(fn):
    """Run ``fn`` with a live sink installed; return (result, telemetry)."""
    tel = Telemetry()
    previous = set_current(tel)
    try:
        return fn(), tel
    finally:
        set_current(previous)


@pytest.fixture(autouse=True)
def _restore_sink():
    yield
    set_current(None)


# -- two-way XOR relaying ------------------------------------------------------


class TestTwoWayExchange:
    @pytest.mark.parametrize(
        "family,xor_uses,baseline_uses",
        [("spinal", 30, 40), ("lt", 864, 1152)],
    )
    def test_symmetric_saving_meets_the_25_percent_claim(
        self, family, xor_uses, baseline_uses
    ):
        """The acceptance pin: >= 25% total-medium-use saving, both families."""
        result = run_two_way_exchange(SYMMETRIC.with_(family=family))
        assert result.xor_delivery_rate == 1.0
        assert result.baseline_delivery_rate == 1.0
        assert result.xor_total_uses == xor_uses
        assert result.baseline_total_uses == baseline_uses
        assert result.medium_use_saving >= 0.25
        # The broadcast phase replaces two equal unicast downlinks.
        assert result.downlink_saving == pytest.approx(0.5)

    def test_asymmetry_shrinks_but_never_inverts_the_gain(self):
        symmetric = run_two_way_exchange(SYMMETRIC)
        asymmetric = run_two_way_exchange(SYMMETRIC.with_(snr_b_db=21.0))
        assert asymmetric.xor_delivery_rate == 1.0
        assert asymmetric.medium_use_saving < symmetric.medium_use_saving
        assert asymmetric.medium_use_saving > 0.0
        # The broadcast is paced by the weaker endpoint: it can never beat
        # the baseline's weaker downlink, only absorb the stronger one.
        assert asymmetric.broadcast.sum() >= asymmetric.downlink_b.sum()

    def test_per_round_accounting_shapes(self):
        result = run_two_way_exchange(SYMMETRIC.with_(rounds=2))
        assert result.n_rounds == 2
        for arr in (
            result.uplink_a,
            result.uplink_b,
            result.broadcast,
            result.downlink_a,
            result.downlink_b,
        ):
            assert arr.shape == (2,)
            assert (arr > 0).all()
        # Both schemes share the uplink phases by construction.
        assert result.xor_total_uses - int(result.broadcast.sum()) == (
            result.baseline_total_uses
            - int(result.downlink_a.sum())
            - int(result.downlink_b.sum())
        )

    def test_exchange_is_deterministic(self):
        first = run_two_way_exchange(SYMMETRIC.with_(rounds=2))
        second = run_two_way_exchange(SYMMETRIC.with_(rounds=2))
        assert np.array_equal(first.uplink_a, second.uplink_a)
        assert np.array_equal(first.broadcast, second.broadcast)
        assert np.array_equal(first.downlink_a, second.downlink_a)
        assert first.xor_total_uses == second.xor_total_uses


# -- amplify-and-forward -------------------------------------------------------


class TestAmplifyForward:
    def test_one_way_effective_snr_formula(self):
        channel = AmplifyForwardChannel(10.0, 14.0)
        p = 1.0
        n1 = p / db_to_linear(10.0)
        n2 = p / db_to_linear(14.0)
        expected = linear_to_db(p / (n1 + n2 * (p + n1) / p))
        assert channel.effective_snr_db == pytest.approx(expected)
        assert channel.effective_snr_db < 10.0  # strictly below the worse hop
        assert channel.uses_per_symbol == 2

    def test_two_way_gain_accounts_for_the_superposition(self):
        channel = TwoWayAmplifyChannel(12.0, 12.0)
        p = 1.0
        nr = p / db_to_linear(12.0)
        assert channel.gain_squared == pytest.approx(p / (2 * p + nr))
        # The superposed uplink costs gain, so the two-way composition is
        # strictly worse than the one-way relay at the same hop SNRs.
        assert (
            channel.effective_snr_db < AmplifyForwardChannel(12.0, 12.0).effective_snr_db
        )

    def test_transmit_is_nearly_transparent_at_high_snr(self):
        channel = AmplifyForwardChannel(80.0, 80.0)
        values = np.ones(64, dtype=np.complex128)
        received = channel.transmit(values, np.random.default_rng(0))
        assert np.allclose(received, values, atol=1e-2)

    def test_signal_power_validation(self):
        with pytest.raises(ValueError, match="signal_power"):
            AmplifyForwardChannel(10.0, 10.0, signal_power=0.0)
        with pytest.raises(ValueError, match="signal_power"):
            TwoWayAmplifyChannel(10.0, 10.0, signal_power=-1.0)

    def test_bit_domain_families_are_rejected(self):
        with pytest.raises(ValueError, match="symbol"):
            run_two_way_af_exchange(SYMMETRIC.with_(family="lt"))

    def test_af_exchange_delivers_and_reports_the_composed_snr(self):
        result = run_two_way_af_exchange(SYMMETRIC.with_(rounds=2))
        assert result.delivery_rate == 1.0
        assert result.total_uses == int(
            (2 * np.maximum(result.symbols_a, result.symbols_b)).sum()
        )
        expected = TwoWayAmplifyChannel(33.0, 33.0).effective_snr_db
        assert result.effective_snr_a_db == pytest.approx(expected)
        assert result.effective_snr_b_db == pytest.approx(expected)


# -- multicast -----------------------------------------------------------------


class TestMulticast:
    def _broadcast(self, n_receivers: int = 3, label: str = "mc"):
        code = make_code("spinal", seed=SEED, snr_db=33.0, smoke=True)
        payload = (
            spawn_rng(SEED, label, "payload")
            .integers(0, 2, size=code.info.payload_bits)
            .astype(np.uint8)
        )
        channels = [channel_for_code(code, 33.0) for _ in range(n_receivers)]
        rngs = [spawn_rng(SEED, label, "rx", i) for i in range(n_receivers)]
        return code, payload, channels, rngs

    def test_medium_is_charged_once_per_block(self):
        code, payload, channels, rngs = self._broadcast()
        outcome = broadcast_transmission(code, payload, channels, rngs)
        assert outcome.all_decoded
        assert (outcome.symbols_to_decode <= outcome.symbols_sent).all()
        # max-vs-sum: reaching three receivers costs one stream, so the
        # unicast equivalent can only be more expensive.
        assert outcome.unicast_equivalent_symbols >= outcome.symbols_sent
        for got in outcome.payloads:
            assert np.array_equal(np.asarray(got, dtype=np.uint8), payload)

    def test_broadcast_is_deterministic(self):
        first = broadcast_transmission(*self._broadcast())
        second = broadcast_transmission(*self._broadcast())
        assert first.symbols_sent == second.symbols_sent
        assert np.array_equal(first.symbols_to_decode, second.symbols_to_decode)

    def test_broadcast_validation(self):
        code, payload, channels, rngs = self._broadcast()
        with pytest.raises(ValueError, match="per receiver"):
            broadcast_transmission(code, payload, channels, rngs[:-1])
        with pytest.raises(ValueError, match="per receiver"):
            broadcast_transmission(code, payload, [], [])
        with pytest.raises(ValueError, match="termination"):
            broadcast_transmission(code, payload, channels, rngs, termination="oracle")
        with pytest.raises(ValueError, match="payload"):
            broadcast_transmission(code, payload[:-1], channels, rngs)

    def test_tree_broadcast_beats_per_child_unicast(self):
        result = run_multicast_tree(
            MulticastTreeConfig(
                family="spinal",
                depth=2,
                branching=2,
                snr_db=33.0,
                rounds=2,
                seed=SEED,
                smoke=True,
            )
        )
        assert result.n_leaves == 4
        assert result.delivery_rate == 1.0
        assert result.broadcast_total < result.unicast_total
        # Every interior node serves two children from one stream.
        assert result.medium_use_saving >= 0.25


# -- telemetry bit-transparency ------------------------------------------------


class TestNetcodeTelemetry:
    def test_two_way_exchange_is_bit_transparent(self):
        config = SYMMETRIC.with_(rounds=2)
        off = run_two_way_exchange(config)
        on, tel = _with_telemetry(lambda: run_two_way_exchange(config))
        for name in ("uplink_a", "uplink_b", "broadcast", "downlink_a", "downlink_b"):
            assert np.array_equal(getattr(off, name), getattr(on, name))
        assert off.xor_total_uses == on.xor_total_uses
        assert off.medium_use_saving == on.medium_use_saving
        # ... and the run really was observed, phase by phase.
        assert tel.counter_value("netcode.phase_uses", phase="uplink-a") == int(
            on.uplink_a.sum()
        )
        assert tel.counter_value("netcode.phase_uses", phase="broadcast") == int(
            on.broadcast.sum()
        )
        assert tel.counter_value("netcode.xor_combines") == config.rounds
        assert tel.counter_value("netcode.exchanges") == config.rounds
        # Every downlink stream (XOR broadcast + both baseline unicasts)
        # flows through broadcast_transmission's symbol counter.
        assert tel.counter_value("netcode.broadcast_symbols") == int(
            on.broadcast.sum() + on.downlink_a.sum() + on.downlink_b.sum()
        )

    def test_dag_xor_transport_is_bit_transparent(self):
        from repro.link.topology import build_dag_sessions, butterfly, simulate_dag_transport
        from repro.link.transport import TransportConfig

        topo = butterfly(snr_db=12.0)
        payloads = {
            src: [
                spawn_rng(SEED, "obs-bfly", src, 0)
                .integers(0, 2, size=16)
                .astype(np.uint8)
            ]
            for src in ("src-a", "src-b")
        }

        def run():
            return simulate_dag_transport(
                topo,
                build_dag_sessions("spinal", topo, seed=SEED, smoke=True),
                payloads,
                TransportConfig(seed=7),
                xor_nodes=("relay",),
            )

        off = run()
        on, tel = _with_telemetry(run)
        assert off.total_symbols_sent == on.total_symbols_sent
        assert off.makespan == on.makespan
        for node in topo.nodes:
            for da, db in zip(off.deliveries[node], on.deliveries[node]):
                assert (da.round, da.sources, da.time) == (db.round, db.sources, db.time)
                assert np.array_equal(da.payload, db.payload)
        assert tel.counter_value("link.xor_combines", node="relay") == 1

    def test_af_exchange_is_bit_transparent(self):
        config = SYMMETRIC.with_(rounds=2)
        off = run_two_way_af_exchange(config)
        on, tel = _with_telemetry(lambda: run_two_way_af_exchange(config))
        assert np.array_equal(off.symbols_a, on.symbols_a)
        assert np.array_equal(off.symbols_b, on.symbols_b)
        assert tel.counter_value("netcode.phase_uses", phase="af-slots") == on.total_uses


# -- the registry experiment ---------------------------------------------------


class TestNetworkCodingGainExperiment:
    def test_smoke_grid_meets_the_acceptance_threshold(self, tmp_path):
        from repro.experiments import registry
        from repro.experiments.registry import run_experiment
        from repro.utils.store import RunStore

        registry.load_all()
        experiment = registry.get("network-coding-gain")
        outcome = run_experiment(
            experiment, store=RunStore(tmp_path), smoke=True
        )
        cells = outcome.successful_cells()
        assert len(cells) == 8  # 2 offsets x 2 families x 2 topologies
        for _key, params, cell in cells:
            aggregate = cell["aggregate"]
            assert aggregate["delivered_coded"] == 1.0
            assert aggregate["saving"] > 0.0
            if params["snr_offset_db"] == 0.0 and params["topology"] == "two-way":
                # The acceptance criterion, for spinal AND lt.
                assert aggregate["saving"] >= 0.25
            if params["topology"] == "butterfly":
                # XOR halves the bottleneck edge (up to per-round wobble).
                assert aggregate["shared_link_saving"] >= 0.4
