"""Validated DAG topologies: structured errors, constructors, chain pins.

Three layers of guarantees:

* **Validation** — every structural defect raises :class:`TopologyError`
  with a stable machine-readable ``kind``, checked per defect class and
  property-style over seeded random layered DAGs;
* **Constructors** — ``path_dag``/``butterfly``/``multicast_tree`` produce
  the documented shapes, deterministically (pure functions of their
  arguments, no ambient state);
* **Chain equivalence (pinned)** — a 2-node path DAG run through
  :func:`simulate_dag_transport` is bit-exact against both the direct
  1-hop :func:`run_link_transport` and the 1-hop relay chain, and a 3-hop
  path DAG is bit-exact against the equivalent relay chain — the DAG layer
  strictly generalises the existing topology code, it does not fork it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.link.topology import (
    DagEdge,
    DagTopology,
    TopologyError,
    build_codec_relay_sessions,
    build_dag_sessions,
    butterfly,
    multicast_tree,
    path_dag,
    simulate_dag_transport,
    simulate_relay_transport,
)
from repro.link.transport import TransportConfig, run_link_transport
from repro.utils.rng import spawn_rng

SEED = 20111114


def _payloads(n_bits: int, n: int, seed: int = 901) -> list[np.ndarray]:
    return [
        spawn_rng(seed, "dag-payload", i).integers(0, 2, size=n_bits).astype(np.uint8)
        for i in range(n)
    ]


# -- validation ----------------------------------------------------------------


class TestValidation:
    def _raises(self, kind: str, nodes, edges) -> None:
        with pytest.raises(TopologyError) as err:
            DagTopology(nodes=tuple(nodes), edges=tuple(edges))
        assert err.value.kind == kind

    def test_topology_error_is_a_value_error(self):
        assert issubclass(TopologyError, ValueError)

    def test_no_nodes(self):
        self._raises("no-nodes", (), ())

    def test_no_edges(self):
        self._raises("no-edges", ("a", "b"), ())

    def test_duplicate_node(self):
        self._raises("duplicate-node", ("a", "b", "a"), (DagEdge("a", "b"),))

    def test_unknown_node(self):
        self._raises("unknown-node", ("a", "b"), (DagEdge("a", "ghost"),))

    def test_self_loop(self):
        self._raises("self-loop", ("a", "b"), (DagEdge("a", "b"), DagEdge("b", "b")))

    def test_duplicate_edge(self):
        self._raises(
            "duplicate-edge",
            ("a", "b"),
            (DagEdge("a", "b", 10.0), DagEdge("a", "b", 12.0)),
        )

    def test_cycle(self):
        self._raises(
            "cycle",
            ("a", "b", "c"),
            (DagEdge("a", "b"), DagEdge("b", "c"), DagEdge("c", "a")),
        )

    def test_isolated_node_is_unreachable(self):
        self._raises("unreachable", ("a", "b", "island"), (DagEdge("a", "b"),))

    def test_xor_node_must_exist(self):
        topo = butterfly()
        sessions = build_dag_sessions("spinal", topo, seed=SEED, smoke=True)
        with pytest.raises(TopologyError) as err:
            simulate_dag_transport(
                topo,
                sessions,
                {
                    "src-a": _payloads(16, 1),
                    "src-b": _payloads(16, 1, seed=902),
                },
                TransportConfig(),
                xor_nodes=("ghost",),
            )
        assert err.value.kind == "unknown-node"

    def test_xor_node_needs_fan_in_and_an_out_edge(self):
        topo = path_dag([10.0, 12.0])
        sessions = build_dag_sessions("spinal", topo, seed=SEED, smoke=True)
        with pytest.raises(TopologyError) as err:
            simulate_dag_transport(
                topo, sessions, {"n0": _payloads(16, 1)}, TransportConfig(),
                xor_nodes=("n1",),
            )
        assert err.value.kind == "unreachable"

    @pytest.mark.parametrize("seed", range(8))
    def test_random_layered_dags_validate_and_order(self, seed):
        """Forward-only random graphs build; a closing back edge is a cycle."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 9))
        nodes = tuple(f"n{i}" for i in range(n))
        # A spanning path keeps every node connected, plus random forward
        # chords — always a valid DAG.
        edges = [DagEdge(nodes[i], nodes[i + 1], 10.0) for i in range(n - 1)]
        pairs = {(i, i + 1) for i in range(n - 1)}
        for _ in range(int(rng.integers(0, 6))):
            i, j = sorted(rng.choice(n, size=2, replace=False))
            if (int(i), int(j)) not in pairs:
                pairs.add((int(i), int(j)))
                edges.append(DagEdge(nodes[int(i)], nodes[int(j)], 10.0))
        topo = DagTopology(nodes=nodes, edges=tuple(edges))
        position = {node: k for k, node in enumerate(topo.topological_order)}
        assert all(position[e.src] < position[e.dst] for e in topo.edges)
        assert topo.sources and topo.sinks
        with pytest.raises(TopologyError) as err:
            DagTopology(
                nodes=nodes, edges=tuple(edges) + (DagEdge(nodes[-1], nodes[0]),)
            )
        assert err.value.kind == "cycle"


# -- constructors --------------------------------------------------------------


class TestConstructors:
    def test_path_dag_maps_hops_to_edges(self):
        topo = path_dag([12.0, 9.0, 15.0])
        assert topo.nodes == ("n0", "n1", "n2", "n3")
        assert [e.snr_db for e in topo.edges] == [12.0, 9.0, 15.0]
        assert topo.sources == ("n0",) and topo.sinks == ("n3",)
        assert topo.topological_order == topo.nodes

    def test_path_dag_validates_names_and_hops(self):
        with pytest.raises(TopologyError) as err:
            path_dag([])
        assert err.value.kind == "no-edges"
        with pytest.raises(TopologyError) as err:
            path_dag([10.0], names=("only",))
        assert err.value.kind == "unknown-node"

    def test_butterfly_shape(self):
        topo = butterfly(snr_db=10.0, bottleneck_snr_db=7.0)
        assert len(topo.nodes) == 6 and topo.n_edges == 7
        assert set(topo.sources) == {"src-a", "src-b"}
        assert set(topo.sinks) == {"sink-a", "sink-b"}
        assert topo.edges[topo.edge_index("relay", "spread")].snr_db == 7.0
        assert all(
            e.snr_db == 10.0 for e in topo.edges if (e.src, e.dst) != ("relay", "spread")
        )
        assert len(topo.in_edges("relay")) == 2 and len(topo.out_edges("relay")) == 1

    def test_multicast_tree_shape(self):
        topo = multicast_tree(depth=2, branching=2)
        assert len(topo.nodes) == 7 and topo.n_edges == 6
        assert topo.sources == ("root",)
        assert len(topo.sinks) == 4
        wide = multicast_tree(depth=1, branching=3)
        assert len(wide.sinks) == 3
        for depth, branching in ((0, 2), (2, 0)):
            with pytest.raises(TopologyError) as err:
                multicast_tree(depth=depth, branching=branching)
            assert err.value.kind == "no-edges"

    def test_construction_is_deterministic(self):
        assert butterfly(11.0, 8.0) == butterfly(11.0, 8.0)
        assert multicast_tree(3, 2, 9.0) == multicast_tree(3, 2, 9.0)
        assert path_dag([10.0, 12.0]) == path_dag([10.0, 12.0])

    def test_edge_index_raises_on_missing_edge(self):
        with pytest.raises(KeyError):
            butterfly().edge_index("src-a", "sink-b")


# -- chain equivalence (pinned) ------------------------------------------------


class TestChainEquivalence:
    def test_two_node_path_dag_is_the_direct_link(self):
        """The ISSUE's pinned bridge: path DAG == transport == 1-hop relay."""
        config = TransportConfig(seed=41)
        payloads = _payloads(16, 4)

        direct = run_link_transport(
            build_codec_relay_sessions("spinal", [10.0], seed=SEED, smoke=True)[0],
            payloads,
            config,
        )
        relay = simulate_relay_transport(
            build_codec_relay_sessions("spinal", [10.0], seed=SEED, smoke=True),
            payloads,
            config,
        )
        topo = path_dag([10.0])
        dag = simulate_dag_transport(
            topo,
            build_dag_sessions("spinal", topo, seed=SEED, smoke=True),
            {"n0": payloads},
            config,
        )

        (edge,) = dag.edge_results
        for reference in (direct, relay.hops[0]):
            assert np.array_equal(edge.delivered, reference.delivered)
            assert np.array_equal(edge.symbols_spent, reference.symbols_spent)
            assert np.array_equal(edge.symbols_needed, reference.symbols_needed)
            assert np.array_equal(edge.delivery_times, reference.delivery_times)
        assert dag.makespan == direct.makespan == relay.makespan
        assert dag.total_symbols_sent == relay.total_symbols_sent
        got = dag.recovered("n1")
        assert sorted(got) == [(r, "n0") for r in range(len(payloads))]
        for rnd, payload in enumerate(payloads):
            assert np.array_equal(got[(rnd, "n0")], payload)

    def test_three_hop_path_dag_matches_the_relay_chain(self):
        snrs = [12.0, 9.0, 15.0]
        config = TransportConfig(seed=5)
        payloads = _payloads(16, 3)

        relay = simulate_relay_transport(
            build_codec_relay_sessions("spinal", snrs, seed=SEED, smoke=True),
            payloads,
            config,
        )
        topo = path_dag(snrs)
        dag = simulate_dag_transport(
            topo,
            build_dag_sessions("spinal", topo, seed=SEED, smoke=True),
            {"n0": payloads},
            config,
        )

        assert dag.makespan == relay.makespan
        assert dag.total_symbols_sent == relay.total_symbols_sent
        for edge_result, hop_result in zip(dag.edge_results, relay.hops):
            assert np.array_equal(edge_result.symbols_spent, hop_result.symbols_spent)
            assert np.array_equal(edge_result.delivery_times, hop_result.delivery_times)
        sink_times = np.array(
            [d.time for d in sorted(dag.deliveries["n3"], key=lambda d: d.round)]
        )
        assert np.array_equal(sink_times, relay.delivery_times)


# -- mesh transport ------------------------------------------------------------


class TestDagTransport:
    def _butterfly_run(self, xor: bool, rounds: int = 2):
        topo = butterfly(snr_db=12.0)
        sessions = build_dag_sessions("spinal", topo, seed=SEED, smoke=True)
        payloads = {
            "src-a": _payloads(16, rounds, seed=901),
            "src-b": _payloads(16, rounds, seed=902),
        }
        return payloads, simulate_dag_transport(
            topo,
            sessions,
            payloads,
            TransportConfig(seed=7),
            xor_nodes=("relay",) if xor else (),
        )

    def test_butterfly_xor_relieves_the_bottleneck(self):
        payloads, plain = self._butterfly_run(xor=False)
        _, coded = self._butterfly_run(xor=True)
        bottleneck_plain = plain.symbols_on_edge("relay", "spread")
        bottleneck_coded = coded.symbols_on_edge("relay", "spread")
        assert bottleneck_coded < bottleneck_plain
        # Both sinks resolve both payloads of every round in both schemes —
        # XOR deliveries peel against the direct copy.
        for result in (plain, coded):
            for sink in ("sink-a", "sink-b"):
                got = result.recovered(sink)
                for rnd in range(2):
                    for src in ("src-a", "src-b"):
                        assert np.array_equal(got[(rnd, src)], payloads[src][rnd])

    def test_rerun_is_bit_identical(self):
        _, first = self._butterfly_run(xor=True, rounds=1)
        _, second = self._butterfly_run(xor=True, rounds=1)
        assert first.total_symbols_sent == second.total_symbols_sent
        assert first.makespan == second.makespan
        for node in first.topology.nodes:
            a, b = first.deliveries[node], second.deliveries[node]
            assert len(a) == len(b)
            for da, db in zip(a, b):
                assert (da.round, da.sources, da.time) == (db.round, db.sources, db.time)
                assert np.array_equal(da.payload, db.payload)

    def test_input_validation(self):
        topo = butterfly()
        sessions = build_dag_sessions("spinal", topo, seed=SEED, smoke=True)
        with pytest.raises(ValueError, match="one session per edge"):
            simulate_dag_transport(
                topo, sessions[:-1], {"src-a": [], "src-b": []}, TransportConfig()
            )
        with pytest.raises(ValueError, match="exactly"):
            simulate_dag_transport(
                topo, sessions, {"src-a": _payloads(16, 1)}, TransportConfig()
            )
        with pytest.raises(ValueError, match="same number of round payloads"):
            simulate_dag_transport(
                topo,
                sessions,
                {"src-a": _payloads(16, 1), "src-b": _payloads(16, 2)},
                TransportConfig(),
            )
