"""Tests for the CLI entry points and the ASCII plot helper."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.utils.asciiplot import ascii_plot


class TestAsciiPlot:
    def test_contains_markers_and_legend(self):
        chart = ascii_plot(
            [0.0, 1.0, 2.0],
            {"capacity": [0.0, 1.0, 2.0], "spinal": [0.0, 0.8, 1.7]},
            x_label="SNR",
            y_label="rate",
        )
        assert "*" in chart and "o" in chart
        assert "capacity" in chart and "spinal" in chart
        assert "SNR" in chart

    def test_constant_series_does_not_crash(self):
        chart = ascii_plot([0.0, 1.0], {"flat": [1.0, 1.0]})
        assert "flat" in chart

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            ascii_plot([0.0, 1.0], {"a": [1.0, 2.0]}, width=4)
        with pytest.raises(ValueError):
            ascii_plot([0.0], {"a": [1.0]})
        with pytest.raises(ValueError):
            ascii_plot([0.0, 1.0], {})
        with pytest.raises(ValueError):
            ascii_plot([0.0, 1.0], {"a": [1.0]})


class TestRegistryCommands:
    """The registry-backed ``list`` / ``run`` / ``report`` commands."""

    def test_list_enumerates_experiments(self):
        output = main(["list"])
        for name in ("rate", "figure2", "transport", "k-sweep", "puncturing"):
            assert name in output

    def test_list_markdown_is_a_table(self):
        output = main(["list", "--markdown"])
        assert output.startswith("| Experiment |")
        assert "| `rate` |" in output

    def test_run_smoke_persists_and_reports(self, tmp_path):
        out_dir = str(tmp_path / "results")
        output = main(["run", "rate", "--smoke", "--out", out_dir])
        assert "rate (b/sym)" in output
        assert "1 cells computed, 0 from cache" in output
        run_files = list((tmp_path / "results").glob("rate-*.json"))
        assert len(run_files) == 1
        # Re-running the same spec recomputes nothing.
        again = main(["run", "rate", "--smoke", "--out", out_dir])
        assert "0 cells computed, 1 from cache" in again
        # And the report re-renders the same table from the JSON alone.
        report = main(["report", str(run_files[0])])
        table_lines = [line for line in output.splitlines() if "10.000" in line]
        assert table_lines and all(line in report for line in table_lines)

    def test_run_set_overrides_axis_and_workers_match(self, tmp_path):
        base = [
            "run", "rate", "--smoke", "--set", "snr_db=5,10",
            "--out", str(tmp_path / "a"),
        ]
        serial = main(base)
        parallel = main(
            ["run", "rate", "--smoke", "--set", "snr_db=5,10", "-j", "3",
             "--out", str(tmp_path / "b")]
        )
        strip = lambda text: text.split("saved:")[0]  # noqa: E731
        assert strip(parallel) == strip(serial)
        a_file = next((tmp_path / "a").glob("rate-*.json"))
        b_file = next((tmp_path / "b").glob("rate-*.json"))
        assert a_file.read_bytes() == b_file.read_bytes()

    def test_run_no_save(self, tmp_path):
        output = main(
            ["run", "distance", "--smoke", "--no-save", "--out", str(tmp_path)]
        )
        assert "saved:" not in output
        assert not list(tmp_path.glob("*.json"))

    def test_run_plot(self, tmp_path):
        output = main(
            ["run", "rate", "--smoke", "--set", "snr_db=5,10,15", "--plot",
             "--no-save", "--out", str(tmp_path)]
        )
        assert "SNR (dB)" in output  # chart x label

    def test_run_requires_name_or_all(self):
        with pytest.raises(ValueError, match="exactly one"):
            main(["run"])
        with pytest.raises(ValueError, match="exactly one"):
            main(["run", "rate", "--all"])

    def test_run_rejects_unknown_set_name(self, tmp_path):
        with pytest.raises(ValueError, match="unknown parameter"):
            main(["run", "rate", "--smoke", "--set", "bogus=1",
                  "--out", str(tmp_path)])


class TestParser:
    def test_rate_command_defaults(self):
        args = build_parser().parse_args(["rate", "10"])
        assert args.command == "rate"
        assert args.snrs == [10.0]
        assert args.k == 8 and args.beam_width == 16

    def test_bsc_command(self):
        args = build_parser().parse_args(["bsc", "0.05", "0.1", "--trials", "3"])
        assert args.command == "bsc"
        assert args.crossovers == [0.05, 0.1]
        assert args.trials == 3

    def test_figure2_command(self):
        args = build_parser().parse_args(["figure2", "--snr-step", "10"])
        assert args.snr_step == 10.0

    def test_ldpc_command(self):
        args = build_parser().parse_args(["ldpc", "5", "--rate", "3/4", "--modulation", "QAM-64"])
        assert args.rate == "3/4"
        assert args.modulation == "QAM-64"

    def test_transport_command_defaults(self):
        args = build_parser().parse_args(["transport"])
        assert args.command == "transport"
        assert args.protocol == "both"
        assert args.window == [1, 2, 4]
        assert args.hops == [1, 2]
        assert args.ack_delay == [0, 8, 32]

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMainEndToEnd:
    """Run the CLI commands with tiny workloads (they print and return text)."""

    def test_rate(self, capsys):
        output = main(
            [
                "rate", "6", "12",
                "--payload-bits", "16", "--k", "4", "--c", "6",
                "--trials", "3", "--beam-width", "8", "--plot",
            ]
        )
        assert "SNR(dB)" in output and "capacity" in output
        assert "bits/symbol" in output  # the ASCII chart legend
        assert capsys.readouterr().out  # printed something

    def test_rate_single_point_skips_plot(self):
        output = main(
            [
                "rate", "12",
                "--payload-bits", "16", "--k", "4", "--c", "6",
                "--trials", "2", "--beam-width", "8", "--plot",
            ]
        )
        assert "SNR(dB)" in output

    def test_bsc(self):
        output = main(
            [
                "bsc", "0.05",
                "--payload-bits", "16", "--k", "4", "--trials", "3", "--beam-width", "8",
            ]
        )
        assert "rate (b/bit)" in output

    def test_rate_with_workers_and_decoder_choice(self):
        base_args = [
            "rate", "10",
            "--payload-bits", "16", "--k", "4", "--c", "6",
            "--trials", "4", "--beam-width", "8",
        ]
        serial = main(base_args)
        parallel = main(base_args + ["--workers", "2"])
        bubble = main(base_args + ["--decoder", "bubble"])
        # Worker count and engine choice are wall-clock knobs only: the
        # rendered measurements must be identical.
        assert parallel == serial
        assert bubble == serial

    def test_figure2_without_ldpc(self):
        output = main(
            ["figure2", "--snr-min", "0", "--snr-max", "20", "--snr-step", "10", "--trials", "3"]
        )
        assert "Shannon" in output and "Spinal" in output

    def test_figure2_decoder_and_workers_knobs(self):
        base = ["figure2", "--snr-min", "10", "--snr-max", "10", "--trials", "2"]
        default = main(base)
        assert main(base + ["--decoder", "bubble"]) == default
        assert main(base + ["-j", "2"]) == default

    def test_ldpc(self):
        output = main(
            [
                "ldpc", "8",
                "--rate", "1/2", "--modulation", "BPSK",
                "--frames", "4", "--iterations", "10",
            ]
        )
        assert "achieved rate" in output

    def test_transport(self):
        base = [
            "transport",
            "--snr", "10", "--payload-bits", "16", "--k", "4", "--c", "6",
            "--beam-width", "8", "--packets", "3", "--max-symbols", "512",
            "--hops", "1", "2", "--window", "1", "2", "--ack-delay", "0", "6",
            "--protocol", "selective-repeat", "--plot",
        ]
        output = main(base)
        assert "goodput" in output and "selective-repeat" in output
        assert "window size" in output  # the ASCII chart axis label
        # Workers are a wall-clock knob only: rendered output is identical.
        assert main(base + ["--workers", "2"]) == output


class TestAsciiPlotConnect:
    def test_connect_draws_interpolated_segments(self):
        x = [0.0, 10.0]
        series = {"line": [0.0, 10.0]}
        dots = ascii_plot(x, series)
        connected = ascii_plot(x, series, connect=True)
        assert dots.count("*") == 3  # two data points plus the legend marker
        assert connected.count("*") > 10  # the segment fills the diagonal

    def test_connect_preserves_exact_points_across_series(self):
        x = [0.0, 1.0, 2.0]
        series = {"a": [0.0, 2.0, 0.0], "b": [2.0, 0.0, 2.0]}
        chart = ascii_plot(x, series, connect=True)
        assert "*" in chart and "o" in chart


class TestReportCsv:
    def _run_file(self, tmp_path, *extra):
        out_dir = str(tmp_path / "results")
        main(["run", "rate", "--smoke", *extra, "--out", out_dir])
        return str(next((tmp_path / "results").glob("rate-*.json")))

    def test_csv_round_trips_through_the_csv_module(self, tmp_path):
        import csv as csv_module
        import io

        run_file = self._run_file(tmp_path, "--set", "snr_db=5,10")
        output = main(["report", run_file, "--csv"])
        rows = list(csv_module.reader(io.StringIO(output)))
        assert rows[0] == ["SNR(dB)", "capacity", "rate (b/sym)", "stderr", "note"]
        assert len(rows) == 3
        assert [row[0] for row in rows[1:]] == ["5.0", "10.0"]
        assert all(row[-1] == "" for row in rows[1:])  # no footnotes
        assert float(rows[2][2]) > 0.0

    def test_error_cells_become_footnoted_rows_not_crashes(self, tmp_path):
        # A kernel-level failure (invalid symbol budget) must render as a
        # footnoted row in *both* the table and the CSV — never a crash,
        # never a silently missing grid point.
        run_file = self._run_file(tmp_path, "--set", "max_symbols=-5")
        table = main(["report", run_file])
        assert "failed cells" in table
        assert "max_symbols must be positive" in table
        csv_text = main(["report", run_file, "--csv"])
        lines = csv_text.splitlines()
        assert lines[1].startswith("10.0,")  # the cell's coordinates survive
        assert lines[1].endswith("[1]")  # ...with a footnote marker
        assert lines[2].startswith("# [1] snr_db=10.0:")
        assert "max_symbols must be positive" in lines[2]

    def test_cell_scaling_report_plots_per_scheduler_curves(self, tmp_path):
        out_dir = str(tmp_path / "results")
        main(["run", "cell-scaling", "--smoke", "--out", out_dir])
        run_file = str(next((tmp_path / "results").glob("cell-scaling-*.json")))
        output = main(["report", run_file, "--plot"])
        for name in ("round-robin", "max-snr", "proportional-fair"):
            assert f"scheduler={name}" in output  # one legend entry per curve
        assert "users in the cell" in output
        csv_text = main(["report", run_file, "--csv"])
        assert csv_text.splitlines()[0].startswith("users,scheduler,")


class TestServeSoakCommand:
    def test_table_reports_the_soak_metrics(self):
        output = main(
            ["serve-soak", "--sessions", "12", "--in-flight", "4"]
        )
        for metric in ("symbols_per_tick", "p99_latency", "peak_in_flight"):
            assert metric in output

    def test_json_summary_is_machine_readable(self):
        import json as _json

        output = main(
            ["serve-soak", "--sessions", "8", "--in-flight", "4", "--json"]
        )
        summary = _json.loads(output)
        assert summary["n_sessions"] == 8
        assert summary["peak_in_flight"] <= 4
        assert summary["delivered"] == 8
        assert summary["elapsed_s"] > 0

    def test_no_batching_selects_the_sequential_driver(self):
        import json as _json

        batched = _json.loads(
            main(["serve-soak", "--sessions", "8", "--in-flight", "4", "--json"])
        )
        sequential = _json.loads(
            main(
                ["serve-soak", "--sessions", "8", "--in-flight", "4",
                 "--no-batching", "--json"]
            )
        )
        assert batched["max_batch_sessions"] > 1
        assert sequential["max_batch_sessions"] == 1
        # Same outcomes either way (the determinism contract).
        for key in ("delivered", "total_symbols", "makespan", "p99_latency"):
            assert batched[key] == sequential[key]


class TestMeshCommand:
    def test_two_way_json_meets_the_saving_claim(self):
        import json as _json

        output = main(["mesh", "--smoke", "--json"])
        summary = _json.loads(output)
        assert summary["topology"] == "two-way"
        assert summary["delivered_coded"] == 1.0
        assert summary["delivered_plain"] == 1.0
        assert summary["coded_uses"] < summary["plain_uses"]
        assert summary["saving"] >= 0.25

    def test_with_af_reports_the_composed_snr(self):
        import json as _json

        summary = _json.loads(main(["mesh", "--smoke", "--with-af", "--json"]))
        assert summary["af_uses"] > 0
        assert summary["af_delivered"] == 1.0
        # Noise accumulates through the relay: strictly below the hop SNR.
        assert summary["af_effective_snr_a_db"] < summary["snr_a_db"]

    def test_tree_topology_table(self):
        output = main(
            ["mesh", "--topology", "tree", "--family", "spinal", "--smoke",
             "--rounds", "1"]
        )
        for key in ("n_leaves", "coded_uses", "plain_uses", "saving"):
            assert key in output

    def test_butterfly_json_halves_the_shared_link(self):
        import json as _json

        summary = _json.loads(
            main(["mesh", "--topology", "butterfly", "--smoke", "--rounds", "1",
                  "--json"])
        )
        assert summary["topology"] == "butterfly"
        assert summary["delivered_coded"] == 1.0
        assert summary["shared_link_saving"] >= 0.4

    def test_telemetry_stream_writes_a_validated_directory(self, tmp_path):
        from repro.obs import validate_directory

        directory = tmp_path / "meshtel"
        main(
            ["mesh", "--smoke", "--rounds", "2", "--json",
             "--telemetry", str(directory), "--telemetry-stream"]
        )
        assert (directory / "spans.part.jsonl").exists()
        assert validate_directory(directory) == []

    def test_stream_without_directory_is_rejected(self):
        with pytest.raises(ValueError, match="--telemetry-stream"):
            main(["mesh", "--smoke", "--json", "--telemetry-stream"])
