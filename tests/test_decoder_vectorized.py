"""Differential suite locking the vectorized engine to the reference.

:class:`VectorizedBubbleDecoder` restructures the beam walk as whole-beam
array operations with persistent parent-keyed caches, and
:class:`BatchDecoder` stacks many sessions into shared kernels — but the
results contract is the same as everywhere else in the decoder family:
bit-identical ``message_bits``, ``path_cost`` (to the last ulp, same
tie-breaks) and ``beam_trace`` versus a fresh :class:`BubbleDecoder` on the
same observations.  These tests enforce that over randomized
(k, B, puncturing, channel) configurations, growing and shrinking
(bisection-replayed) observation sets, degenerate beam widths, cache
eviction pressure, the numba feature flag, and the batched path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.channels.awgn import AWGNChannel
from repro.channels.bsc import BSCChannel
from repro.core.decoder_bubble import BubbleDecoder
from repro.core.decoder_vectorized import (
    BatchDecoder,
    DECODER_ENGINES,
    VectorizedBubbleDecoder,
    _LevelCache,
    make_decoder_factory,
    njit_available,
)
from repro.core.encoder import ReceivedObservations, SpinalEncoder
from repro.core.framing import Framer
from repro.core.params import SpinalParams
from repro.core.puncturing import (
    NoPuncturing,
    StridedPuncturing,
    SymbolBySymbol,
    TailFirstPuncturing,
)
from repro.core.rateless import RatelessSession
from repro.utils.bitops import random_message_bits
from repro.utils.rng import spawn_rng

_SCHEDULES = {
    "none": NoPuncturing,
    "symbol": SymbolBySymbol,
    "strided": lambda: StridedPuncturing(stride=4),
    "tail-first": TailFirstPuncturing,
}


def _random_config(trial: int):
    """Draw one randomized (params, puncturing, channel, payload) setup."""
    rng = spawn_rng(909, "vec-config", trial)
    k = int(rng.choice([1, 2, 3, 4]))
    beam = int(rng.choice([1, 2, 4, 8]))
    bit_mode = bool(rng.random() < 0.3)
    schedule = _SCHEDULES[rng.choice(list(_SCHEDULES))]()
    params = SpinalParams(
        k=k,
        c=int(rng.choice([4, 6])),
        seed=int(rng.integers(0, 2**32)),
        bit_mode=bit_mode,
    )
    if bit_mode:
        channel = BSCChannel(float(rng.uniform(0.01, 0.1)))
    else:
        channel = AWGNChannel(snr_db=float(rng.uniform(3.0, 15.0)), adc_bits=14)
    n_bits = k * int(rng.integers(3, 7))
    return params, schedule, channel, n_bits, rng


def _stream_blocks(encoder, message, channel, rng, n_subpasses):
    """Transmit ``n_subpasses`` subpasses, returning (block, received) pairs."""
    stream = encoder.symbol_stream(message)
    sent = []
    while len(sent) < n_subpasses:
        block = next(stream)
        sent.append((block, channel.transmit(block.values, rng)))
    return sent


def _assert_identical(result, reference):
    assert np.array_equal(result.message_bits, reference.message_bits)
    assert result.path_cost == reference.path_cost
    assert result.beam_trace == reference.beam_trace


class TestSubpassEquivalence:
    @pytest.mark.parametrize("trial", range(12))
    def test_bit_identical_after_every_subpass(self, trial):
        params, schedule, channel, n_bits, rng = _random_config(trial)
        encoder = SpinalEncoder(params, puncturing=schedule)
        message = random_message_bits(n_bits, rng)
        n_segments = params.n_segments(n_bits)
        n_subpasses = 3 * schedule.subpasses_per_cycle(n_segments)
        beam = int(spawn_rng(909, "vec-beam", trial).choice([1, 2, 4, 8]))

        fresh = BubbleDecoder(encoder, beam_width=beam)
        vectorized = VectorizedBubbleDecoder(encoder, beam_width=beam)
        observations = ReceivedObservations(n_segments)
        for block, received in _stream_blocks(encoder, message, channel, rng, n_subpasses):
            observations.add_block(block, received)
            reference = fresh.decode(n_bits, observations)
            result = vectorized.decode(n_bits, observations)
            _assert_identical(result, reference)

    def test_equivalence_under_shrinking_observations(self):
        """The bisection strategy replays truncated prefixes in any order."""
        params = SpinalParams(k=3, c=6, seed=99)
        encoder = SpinalEncoder(params, puncturing=TailFirstPuncturing())
        rng = spawn_rng(909, "vec-shrink")
        message = random_message_bits(12, rng)
        channel = AWGNChannel(snr_db=8.0, adc_bits=14)
        sent = _stream_blocks(encoder, message, channel, rng, 12)
        blocks = [block for block, _ in sent]
        received = [out for _, out in sent]
        total = sum(block.n_symbols for block in blocks)
        full = ReceivedObservations(params.n_segments(12))
        for block, out in sent:
            full.add_block(block, out)

        vectorized = VectorizedBubbleDecoder(encoder, beam_width=4)
        fresh = BubbleDecoder(encoder, beam_width=4)
        for boundary in [2, 4, 8, total, total // 2, total // 4, 3 * total // 4, total]:
            view = full.truncated(boundary, blocks, received)
            reference = fresh.decode(12, view)
            result = vectorized.decode(12, view)
            _assert_identical(result, reference)

    def test_repeat_decode_is_free_and_identical(self):
        params = SpinalParams(k=2, c=4, seed=5)
        encoder = SpinalEncoder(params)
        rng = spawn_rng(909, "vec-repeat")
        message = random_message_bits(8, rng)
        channel = AWGNChannel(snr_db=10.0, adc_bits=14)
        observations = ReceivedObservations(4)
        for block, out in _stream_blocks(encoder, message, channel, rng, 2):
            observations.add_block(block, out)
        vectorized = VectorizedBubbleDecoder(encoder, beam_width=4)
        first = vectorized.decode(8, observations)
        again = vectorized.decode(8, observations)
        assert np.array_equal(again.message_bits, first.message_bits)
        assert again.path_cost == first.path_cost
        assert first.candidates_explored > 0
        assert again.candidates_explored == 0

    def test_message_length_change_resets_state(self):
        params = SpinalParams(k=2, c=4, seed=6)
        encoder = SpinalEncoder(params)
        rng = spawn_rng(909, "vec-resize")
        channel = AWGNChannel(snr_db=12.0, adc_bits=14)
        vectorized = VectorizedBubbleDecoder(encoder, beam_width=4)
        for n_bits in (8, 12):
            message = random_message_bits(n_bits, rng)
            observations = ReceivedObservations(params.n_segments(n_bits))
            for block, out in _stream_blocks(encoder, message, channel, rng, 3):
                observations.add_block(block, out)
            reference = BubbleDecoder(encoder, beam_width=4).decode(n_bits, observations)
            result = vectorized.decode(n_bits, observations)
            _assert_identical(result, reference)

    def test_rejects_mismatched_observation_store(self):
        params = SpinalParams(k=2, c=4)
        encoder = SpinalEncoder(params)
        vectorized = VectorizedBubbleDecoder(encoder, beam_width=4)
        with pytest.raises(ValueError, match="segments"):
            vectorized.decode(8, ReceivedObservations(3))

    def test_constructor_validation_matches_bubble(self):
        encoder = SpinalEncoder(SpinalParams(k=2, c=4))
        with pytest.raises(ValueError):
            VectorizedBubbleDecoder(encoder, beam_width=0)
        with pytest.raises(ValueError):
            VectorizedBubbleDecoder(encoder, beam_width=8, max_unpruned_width=4)


class TestCacheBehaviour:
    def test_lookup_on_empty_cache_has_no_hits(self):
        """Probing a block-less level must report all-miss, not wrap to -1.

        This is the vectorized twin of the ``decoder_incremental`` empty
        ``sorted_states`` regression: ``searchsorted`` misses clamped with
        ``np.minimum(idx, size - 1)`` become index ``-1`` on an empty array.
        """
        cache = _LevelCache(4)
        probes = np.array([1, 2, 3], dtype=np.uint64)
        assert np.array_equal(cache.lookup(probes), np.full(3, -1, dtype=np.int64))

    def test_eviction_under_long_session_stays_exact(self):
        """Enough attempts to force compact_grow evictions repeatedly.

        KEEP_* are shrunk so a short test exercises the eviction branches
        (cold-block drop and hottest-block cap); cache contents are a pure
        performance policy, so outcomes must stay bit-identical throughout.
        """
        params = SpinalParams(k=3, c=4, seed=31)
        encoder = SpinalEncoder(params, puncturing=SymbolBySymbol())
        rng = spawn_rng(909, "vec-evict")
        message = random_message_bits(12, rng)
        channel = AWGNChannel(snr_db=-2.0, adc_bits=14)  # noisy: the beam churns
        n_segments = params.n_segments(12)
        vectorized = VectorizedBubbleDecoder(encoder, beam_width=4)
        fresh = BubbleDecoder(encoder, beam_width=4)
        observations = ReceivedObservations(n_segments)
        compactions_possible = 0
        for block, out in _stream_blocks(encoder, message, channel, rng, 40):
            observations.add_block(block, out)
            for cache in vectorized._levels:
                cache.KEEP_BLOCKS  # attribute exists (class constant)
            reference = fresh.decode(12, observations)
            result = vectorized.decode(12, observations)
            _assert_identical(result, reference)
            compactions_possible += 1
        # The per-level block count stays bounded by the eviction policy.
        for cache in vectorized._levels:
            assert cache.n_blocks <= 3 * _LevelCache.KEEP_BLOCKS + vectorized.beam_width

    def test_work_accounting_is_no_more_than_fresh(self):
        params = SpinalParams(k=2, c=4, seed=8)
        encoder = SpinalEncoder(params, puncturing=SymbolBySymbol())
        rng = spawn_rng(909, "vec-work")
        message = random_message_bits(8, rng)
        channel = AWGNChannel(snr_db=8.0, adc_bits=14)
        observations = ReceivedObservations(4)
        fresh = BubbleDecoder(encoder, beam_width=4)
        vectorized = VectorizedBubbleDecoder(encoder, beam_width=4)
        fresh_total = vec_total = 0
        for block, out in _stream_blocks(encoder, message, channel, rng, 16):
            observations.add_block(block, out)
            fresh_total += fresh.decode(8, observations).candidates_explored
            vec_total += vectorized.decode(8, observations).candidates_explored
        assert 0 < vec_total < fresh_total


class TestNumbaTier:
    def test_flag_off_by_default(self, small_encoder):
        assert VectorizedBubbleDecoder(small_encoder).njit_active is False

    @pytest.mark.skipif(njit_available(), reason="exercises the numba-absent fallback")
    def test_requesting_njit_without_numba_falls_back_cleanly(self, small_encoder, rng):
        """use_njit=True with no numba must be silent, inactive and correct."""
        decoder = VectorizedBubbleDecoder(small_encoder, beam_width=4, use_njit=True)
        assert decoder.njit_active is False
        message = rng.integers(0, 2, size=16).astype(np.uint8)
        channel = AWGNChannel(snr_db=10.0, adc_bits=14)
        observations = ReceivedObservations(4)
        for block, out in _stream_blocks(small_encoder, message, channel, rng, 3):
            observations.add_block(block, out)
        reference = BubbleDecoder(small_encoder, beam_width=4).decode(16, observations)
        _assert_identical(decoder.decode(16, observations), reference)

    @pytest.mark.skipif(not njit_available(), reason="numba not installed")
    def test_njit_tier_is_bit_exact(self, small_encoder, rng):
        decoder = VectorizedBubbleDecoder(small_encoder, beam_width=4, use_njit=True)
        assert decoder.njit_active is True
        message = rng.integers(0, 2, size=16).astype(np.uint8)
        channel = AWGNChannel(snr_db=6.0, adc_bits=14)
        observations = ReceivedObservations(4)
        fresh = BubbleDecoder(small_encoder, beam_width=4)
        for block, out in _stream_blocks(small_encoder, message, channel, rng, 6):
            observations.add_block(block, out)
            _assert_identical(
                decoder.decode(16, observations), fresh.decode(16, observations)
            )


class TestEngineRegistry:
    def test_registry_names(self):
        assert set(DECODER_ENGINES) == {"bubble", "incremental", "vectorized"}

    def test_factory_builds_requested_engine(self, small_encoder):
        decoder = make_decoder_factory("vectorized", 8)(small_encoder)
        assert isinstance(decoder, VectorizedBubbleDecoder)
        assert decoder.beam_width == 8

    def test_factory_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown decoder"):
            make_decoder_factory("magic", 8)

    def test_run_config_accepts_vectorized(self):
        from repro.experiments.runner import SpinalRunConfig

        config = SpinalRunConfig(decoder="vectorized")
        decoder = config.decoder_factory()(config.build_encoder())
        assert isinstance(decoder, VectorizedBubbleDecoder)
        with pytest.raises(ValueError, match="unknown decoder"):
            SpinalRunConfig(decoder="magic")


class TestSessionEquivalence:
    def _session(self, factory, search):
        params = SpinalParams(k=4, c=6, seed=21)
        encoder = SpinalEncoder(params, puncturing=TailFirstPuncturing())
        framer = Framer(payload_bits=16, k=params.k)
        return RatelessSession(
            encoder,
            decoder_factory=factory,
            channel=AWGNChannel(snr_db=10.0, adc_bits=14),
            framer=framer,
            termination="genie",
            max_symbols=512,
            search=search,
        )

    @pytest.mark.parametrize("search", ["sequential", "bisect"])
    def test_trials_identical_to_fresh_reference(self, search):
        results = {}
        for name, factory in [
            ("fresh", lambda enc: BubbleDecoder(enc, beam_width=8)),
            ("vectorized", lambda enc: VectorizedBubbleDecoder(enc, beam_width=8)),
        ]:
            session = self._session(factory, search)
            rng = spawn_rng(909, "vec-session", search)
            payload = random_message_bits(16, rng)
            results[name] = session.codec_session().run(payload, rng)
        fresh, vec = results["fresh"], results["vectorized"]
        assert vec.symbols_sent == fresh.symbols_sent
        assert vec.decode_attempts == fresh.decode_attempts
        assert np.array_equal(vec.decoded_payload, fresh.decoded_payload)
        assert vec.work < fresh.work


class TestBatchDecoder:
    def _sessions(self, n_sessions, bit_mode=False, seed0=500):
        """n independent sessions sharing the code shape, different seeds."""
        encoders = [
            SpinalEncoder(
                SpinalParams(k=3, c=4, seed=seed0 + i, bit_mode=bit_mode)
            )
            for i in range(n_sessions)
        ]
        stores = []
        rng = spawn_rng(909, "batch", n_sessions, bit_mode)
        if bit_mode:
            channel = BSCChannel(0.05)
        else:
            channel = AWGNChannel(snr_db=8.0, adc_bits=14)
        for i, encoder in enumerate(encoders):
            message = random_message_bits(12, rng)
            observations = ReceivedObservations(4)
            # Ragged: session i receives a different number of subpasses.
            for block, out in _stream_blocks(encoder, message, channel, rng, 2 + i % 3):
                observations.add_block(block, out)
            stores.append(observations)
        return encoders, stores

    @pytest.mark.parametrize("n_sessions", [1, 3, 8])
    def test_bit_identical_to_per_session_reference(self, n_sessions):
        encoders, stores = self._sessions(n_sessions)
        batch = BatchDecoder(encoders, beam_width=4)
        results = batch.decode_all(12, stores)
        for encoder, observations, result in zip(encoders, stores, results):
            reference = BubbleDecoder(encoder, beam_width=4).decode(12, observations)
            _assert_identical(result, reference)
            assert result.candidates_explored == reference.candidates_explored

    def test_bit_mode_batch(self):
        encoders, stores = self._sessions(4, bit_mode=True)
        results = BatchDecoder(encoders, beam_width=4).decode_all(12, stores)
        for encoder, observations, result in zip(encoders, stores, results):
            reference = BubbleDecoder(encoder, beam_width=4).decode(12, observations)
            _assert_identical(result, reference)

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            BatchDecoder([])
        encoders, stores = self._sessions(2)
        with pytest.raises(ValueError, match="beam_width"):
            BatchDecoder(encoders, beam_width=0)
        mixed = [encoders[0], SpinalEncoder(SpinalParams(k=4, c=4, seed=1))]
        with pytest.raises(ValueError, match="code shape"):
            BatchDecoder(mixed)
        batch = BatchDecoder(encoders, beam_width=4)
        with pytest.raises(ValueError, match="observation stores"):
            batch.decode_all(12, stores[:1])
        with pytest.raises(ValueError, match="segments"):
            batch.decode_all(12, [stores[0], ReceivedObservations(7)])

    def test_decode_subset_matches_decode_all(self):
        """A ragged subset decode equals the same sessions' full-batch rows."""
        encoders, stores = self._sessions(5)
        batch = BatchDecoder(encoders, beam_width=4)
        full = batch.decode_all(12, stores)
        subset = batch.decode_subset(12, [stores[3], stores[1]], [3, 1])
        _assert_identical(subset[0], full[3])
        _assert_identical(subset[1], full[1])
        assert subset[0].candidates_explored == full[3].candidates_explored
        assert subset[1].candidates_explored == full[1].candidates_explored

    def test_decode_subset_chunking_invariance(self):
        """max_stack_elements=1 (every chunk degenerate) changes nothing."""
        encoders, stores = self._sessions(6)
        default = BatchDecoder(encoders, beam_width=4).decode_subset(
            12, stores, range(6)
        )
        tiny = BatchDecoder(
            encoders, beam_width=4, max_stack_elements=1
        ).decode_subset(12, stores, range(6))
        for a, b in zip(default, tiny):
            _assert_identical(a, b)
            assert a.candidates_explored == b.candidates_explored

    def test_empty_store_member_is_degenerate_but_exact(self):
        """A member with no observations (late joiner) stays bit-exact."""
        encoders, stores = self._sessions(3)
        stores[1] = ReceivedObservations(4)
        results = BatchDecoder(encoders, beam_width=4).decode_all(12, stores)
        for encoder, observations, result in zip(encoders, stores, results):
            reference = BubbleDecoder(encoder, beam_width=4).decode(12, observations)
            _assert_identical(result, reference)

    def test_all_empty_stores(self):
        """Every member degenerate: zero-cost branches, no kernel crash."""
        encoders, _ = self._sessions(3)
        stores = [ReceivedObservations(4) for _ in range(3)]
        results = BatchDecoder(encoders, beam_width=4).decode_all(12, stores)
        for encoder, observations, result in zip(encoders, stores, results):
            reference = BubbleDecoder(encoder, beam_width=4).decode(12, observations)
            _assert_identical(result, reference)

    def test_decode_subset_validation(self):
        encoders, stores = self._sessions(3)
        batch = BatchDecoder(encoders, beam_width=4)
        assert batch.decode_subset(12, [], []) == []
        with pytest.raises(ValueError, match="distinct"):
            batch.decode_subset(12, [stores[0], stores[1]], [1, 1])
        with pytest.raises(IndexError, match="out of range"):
            batch.decode_subset(12, [stores[0]], [7])
        with pytest.raises(ValueError, match="observation stores"):
            batch.decode_subset(12, stores, [0, 1])
        with pytest.raises(ValueError, match="max_stack_elements"):
            BatchDecoder(encoders, beam_width=4, max_stack_elements=0)
