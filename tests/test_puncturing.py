"""Unit tests for puncturing schedules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.puncturing import (
    NoPuncturing,
    StridedPuncturing,
    SymbolBySymbol,
    TailFirstPuncturing,
    _bit_reversed_order,
)

ALL_SCHEDULES = [
    NoPuncturing(),
    SymbolBySymbol(),
    StridedPuncturing(stride=4),
    StridedPuncturing(stride=8, always_include_last=False),
    TailFirstPuncturing(),
]


@pytest.mark.parametrize("schedule", ALL_SCHEDULES, ids=lambda s: s.describe())
class TestScheduleContract:
    def test_positions_are_valid(self, schedule):
        for subpass in range(20):
            positions = schedule.subpass_positions(subpass, n_segments=7)
            assert np.all(positions >= 0)
            assert np.all(positions < 7)
            assert len(np.unique(positions)) == positions.size

    def test_rejects_negative_subpass(self, schedule):
        with pytest.raises(ValueError):
            schedule.subpass_positions(-1, 5)

    def test_every_position_eventually_sent(self, schedule):
        n_segments = 9
        seen = set()
        for subpass in range(4 * schedule.subpasses_per_cycle(n_segments)):
            seen.update(schedule.subpass_positions(subpass, n_segments).tolist())
        assert seen == set(range(n_segments))

    def test_symbols_per_cycle_positive(self, schedule):
        assert schedule.symbols_per_cycle(6) > 0

    def test_describe_is_string(self, schedule):
        assert isinstance(schedule.describe(), str)


class TestNoPuncturing:
    def test_each_subpass_is_a_full_pass(self):
        schedule = NoPuncturing()
        assert schedule.subpass_positions(0, 5).tolist() == [0, 1, 2, 3, 4]
        assert schedule.subpass_positions(3, 5).tolist() == [0, 1, 2, 3, 4]
        assert schedule.symbols_per_cycle(5) == 5


class TestSymbolBySymbol:
    def test_natural_order(self):
        schedule = SymbolBySymbol()
        order = [int(schedule.subpass_positions(j, 3)[0]) for j in range(6)]
        assert order == [0, 1, 2, 0, 1, 2]


class TestTailFirst:
    def test_reverse_order(self):
        schedule = TailFirstPuncturing()
        order = [int(schedule.subpass_positions(j, 3)[0]) for j in range(6)]
        assert order == [2, 1, 0, 2, 1, 0]

    def test_cycle_covers_all_positions_once(self):
        schedule = TailFirstPuncturing()
        positions = []
        for j in range(schedule.subpasses_per_cycle(5)):
            positions.extend(schedule.subpass_positions(j, 5).tolist())
        assert sorted(positions) == list(range(5))


class TestStrided:
    def test_last_position_in_every_subpass_when_requested(self):
        schedule = StridedPuncturing(stride=8, always_include_last=True)
        for subpass in range(8):
            assert 15 in schedule.subpass_positions(subpass, 16).tolist()

    def test_without_last_positions_partition_within_cycle(self):
        schedule = StridedPuncturing(stride=4, always_include_last=False)
        n_segments = 12
        all_positions = []
        for subpass in range(4):
            all_positions.extend(schedule.subpass_positions(subpass, n_segments).tolist())
        assert sorted(all_positions) == list(range(n_segments))

    def test_rejects_small_stride(self):
        with pytest.raises(ValueError):
            StridedPuncturing(stride=1)


class TestBitReversedOrder:
    def test_power_of_two(self):
        assert sorted(_bit_reversed_order(8)) == list(range(8))
        assert _bit_reversed_order(8)[0] == 0
        assert _bit_reversed_order(8)[1] == 4

    def test_non_power_of_two(self):
        order = _bit_reversed_order(6)
        assert sorted(order) == list(range(6))
