"""Unit tests for feedback models and link-session accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.link import (
    BlockFeedback,
    DelayedFeedback,
    PerfectFeedback,
    simulate_link_session,
)


class TestPerfectFeedback:
    def test_identity(self):
        assert PerfectFeedback().symbols_spent(17) == 17.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            PerfectFeedback().symbols_spent(-1)


class TestDelayedFeedback:
    def test_adds_delay(self):
        assert DelayedFeedback(delay_symbols=5).symbols_spent(10) == 15.0

    def test_zero_delay_is_perfect(self):
        assert DelayedFeedback(delay_symbols=0).symbols_spent(7) == 7.0

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            DelayedFeedback(delay_symbols=-1)

    def test_describe(self):
        assert "4" in DelayedFeedback(delay_symbols=4).describe()


class TestBlockFeedback:
    def test_rounds_up_to_block(self):
        model = BlockFeedback(block_symbols=8)
        assert model.symbols_spent(1) == 8.0
        assert model.symbols_spent(8) == 8.0
        assert model.symbols_spent(9) == 16.0

    def test_overhead_per_block(self):
        model = BlockFeedback(block_symbols=10, overhead_symbols=2)
        assert model.symbols_spent(25) == 3 * 12.0

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockFeedback(block_symbols=0)
        with pytest.raises(ValueError):
            BlockFeedback(block_symbols=4, overhead_symbols=-1.0)
        with pytest.raises(ValueError):
            BlockFeedback(block_symbols=4).symbols_spent(-2)


class TestLinkSession:
    def test_perfect_feedback_efficiency_is_one(self):
        result = simulate_link_session([10, 20, 30], 24, PerfectFeedback())
        assert result.feedback_efficiency == pytest.approx(1.0)
        assert result.throughput_bits_per_symbol == pytest.approx(72 / 60)

    def test_delayed_feedback_reduces_throughput(self):
        perfect = simulate_link_session([10, 20], 24, PerfectFeedback())
        delayed = simulate_link_session([10, 20], 24, DelayedFeedback(delay_symbols=10))
        assert delayed.throughput_bits_per_symbol < perfect.throughput_bits_per_symbol
        assert delayed.feedback_efficiency < 1.0

    def test_block_feedback_latency_proxy(self):
        result = simulate_link_session([5, 6], 24, BlockFeedback(block_symbols=8, overhead_symbols=1))
        assert result.mean_packet_symbols == pytest.approx(9.0)

    def test_total_payload(self):
        result = simulate_link_session([4, 4, 4], 16, PerfectFeedback())
        assert result.total_payload_bits == 48
        assert result.n_packets == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_link_session([], 24, PerfectFeedback())
        with pytest.raises(ValueError):
            simulate_link_session([0], 24, PerfectFeedback())
        with pytest.raises(ValueError):
            simulate_link_session([4], 0, PerfectFeedback())
