"""Unit tests for feedback models and link-session accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channels.awgn import AWGNChannel
from repro.core.decoder_bubble import BubbleDecoder
from repro.core.decoder_incremental import IncrementalBubbleDecoder
from repro.core.encoder import SpinalEncoder
from repro.core.framing import Framer
from repro.core.params import SpinalParams
from repro.core.rateless import RatelessSession
from repro.link import (
    BlockFeedback,
    DelayedFeedback,
    PerfectFeedback,
    deliver_packets,
    simulate_link_session,
)
from repro.utils.bitops import random_message_bits
from repro.utils.deprecation import reset_warnings
from repro.utils.rng import spawn_rng


class TestPerfectFeedback:
    def test_identity(self):
        assert PerfectFeedback().symbols_spent(17) == 17.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            PerfectFeedback().symbols_spent(-1)


class TestDelayedFeedback:
    def test_adds_delay(self):
        assert DelayedFeedback(delay_symbols=5).symbols_spent(10) == 15.0

    def test_zero_delay_is_perfect(self):
        assert DelayedFeedback(delay_symbols=0).symbols_spent(7) == 7.0

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            DelayedFeedback(delay_symbols=-1)

    def test_describe(self):
        assert "4" in DelayedFeedback(delay_symbols=4).describe()


class TestBlockFeedback:
    def test_rounds_up_to_block(self):
        model = BlockFeedback(block_symbols=8)
        assert model.symbols_spent(1) == 8.0
        assert model.symbols_spent(8) == 8.0
        assert model.symbols_spent(9) == 16.0

    def test_overhead_per_block(self):
        model = BlockFeedback(block_symbols=10, overhead_symbols=2)
        assert model.symbols_spent(25) == 3 * 12.0

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockFeedback(block_symbols=0)
        with pytest.raises(ValueError):
            BlockFeedback(block_symbols=4, overhead_symbols=-1.0)
        with pytest.raises(ValueError):
            BlockFeedback(block_symbols=4).symbols_spent(-2)


class TestLinkSession:
    def test_perfect_feedback_efficiency_is_one(self):
        # simulate_link_session is a deliberate exercise of the deprecated
        # model-based accounting shim; make its warning explicit.
        reset_warnings()
        with pytest.warns(DeprecationWarning, match="run_link_transport"):
            result = simulate_link_session([10, 20, 30], 24, PerfectFeedback())
        assert result.feedback_efficiency == pytest.approx(1.0)
        assert result.throughput_bits_per_symbol == pytest.approx(72 / 60)

    def test_delayed_feedback_reduces_throughput(self):
        perfect = simulate_link_session([10, 20], 24, PerfectFeedback())
        delayed = simulate_link_session([10, 20], 24, DelayedFeedback(delay_symbols=10))
        assert delayed.throughput_bits_per_symbol < perfect.throughput_bits_per_symbol
        assert delayed.feedback_efficiency < 1.0

    def test_block_feedback_latency_proxy(self):
        result = simulate_link_session([5, 6], 24, BlockFeedback(block_symbols=8, overhead_symbols=1))
        assert result.mean_packet_symbols == pytest.approx(9.0)

    def test_total_payload(self):
        result = simulate_link_session([4, 4, 4], 16, PerfectFeedback())
        assert result.total_payload_bits == 48
        assert result.n_packets == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_link_session([0], 24, PerfectFeedback())
        with pytest.raises(ValueError):
            simulate_link_session([4], 0, PerfectFeedback())

    def test_empty_sequence_is_well_defined(self):
        # Regression: this used to raise "no symbols spent; throughput
        # undefined" from throughput_bits_per_symbol.  An idle link is a
        # valid zero-throughput result.
        result = simulate_link_session([], 24, PerfectFeedback())
        assert result.n_packets == 0
        assert result.total_payload_bits == 0
        assert result.throughput_bits_per_symbol == 0.0
        assert result.ideal_throughput_bits_per_symbol == 0.0
        assert result.feedback_efficiency == 1.0
        assert result.mean_packet_symbols == 0.0


class TestDeliverPackets:
    def _session(self, decoder_cls):
        params = SpinalParams(k=4, c=6, seed=45)
        return RatelessSession(
            SpinalEncoder(params),
            decoder_factory=lambda enc: decoder_cls(enc, beam_width=8),
            channel=AWGNChannel(snr_db=12.0, adc_bits=14),
            framer=Framer(payload_bits=16, k=params.k),
            termination="genie",
            max_symbols=256,
            search="sequential",
        )

    def test_delivers_and_accounts(self):
        session = self._session(IncrementalBubbleDecoder)
        rng = spawn_rng(3, "link-deliver")
        payloads = [random_message_bits(16, rng) for _ in range(4)]
        link_result, trials = deliver_packets(session, payloads, rng, PerfectFeedback())
        assert link_result.n_packets == 4
        assert len(trials) == 4
        assert all(trial.payload_correct for trial in trials)
        assert link_result.symbols_needed.tolist() == [t.symbols_sent for t in trials]
        assert link_result.feedback_efficiency == pytest.approx(1.0)

    def test_engine_choice_is_invisible_at_link_level(self):
        outcomes = {}
        for name, cls in [("fresh", BubbleDecoder), ("incremental", IncrementalBubbleDecoder)]:
            session = self._session(cls)
            rng = spawn_rng(4, "link-engines")
            payloads = [random_message_bits(16, rng) for _ in range(3)]
            link_result, trials = deliver_packets(
                session, payloads, rng, DelayedFeedback(delay_symbols=4)
            )
            outcomes[name] = (
                link_result.symbols_needed.tolist(),
                link_result.throughput_bits_per_symbol,
                sum(t.candidates_explored for t in trials),
            )
        assert outcomes["fresh"][0] == outcomes["incremental"][0]
        assert outcomes["fresh"][1] == outcomes["incremental"][1]
        assert outcomes["incremental"][2] < outcomes["fresh"][2]

    def test_empty_payload_sequence(self):
        session = self._session(IncrementalBubbleDecoder)
        link_result, trials = deliver_packets(
            session, [], spawn_rng(5, "empty"), PerfectFeedback()
        )
        assert trials == []
        assert link_result.n_packets == 0
        assert link_result.throughput_bits_per_symbol == 0.0
