"""Unit tests for modulations and soft demappers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.modulation import (
    BPSK,
    QAM,
    QAM16,
    QAM64,
    QPSK,
    awgn_bit_llrs,
    hard_decisions_from_llrs,
    make_modulation,
)

ALL_NAMES = ["BPSK", "QPSK", "QAM-4", "QAM-16", "QAM-64"]


@pytest.mark.parametrize("name", ALL_NAMES)
class TestCommonModulationProperties:
    def test_unit_average_energy(self, name):
        assert make_modulation(name).average_energy == pytest.approx(1.0, rel=1e-9)

    def test_constellation_size(self, name):
        modulation = make_modulation(name)
        assert modulation.constellation_points().size == 2**modulation.bits_per_symbol

    def test_modulate_demodulate_hard_noiseless(self, name, rng):
        modulation = make_modulation(name)
        bits = rng.integers(0, 2, size=modulation.bits_per_symbol * 50, dtype=np.uint8)
        symbols = modulation.modulate(bits)
        assert np.array_equal(modulation.demodulate_hard(symbols), bits)

    def test_llr_signs_match_bits_noiseless(self, name, rng):
        modulation = make_modulation(name)
        bits = rng.integers(0, 2, size=modulation.bits_per_symbol * 20, dtype=np.uint8)
        symbols = modulation.modulate(bits)
        llrs = modulation.demodulate_llr(symbols, noise_energy=0.01)
        assert np.array_equal(hard_decisions_from_llrs(llrs), bits)

    def test_modulate_rejects_bad_length(self, name):
        modulation = make_modulation(name)
        if modulation.bits_per_symbol == 1:
            pytest.skip("every length is a multiple of 1 bit per symbol")
        with pytest.raises(ValueError):
            modulation.modulate(np.ones(modulation.bits_per_symbol + 1, dtype=np.uint8))

    def test_bit_labels_shape(self, name):
        modulation = make_modulation(name)
        labels = modulation.bit_labels()
        assert labels.shape == (2**modulation.bits_per_symbol, modulation.bits_per_symbol)


class TestBPSK:
    def test_mapping(self):
        symbols = BPSK().modulate(np.array([0, 1], dtype=np.uint8))
        assert symbols[0] == pytest.approx(1.0)
        assert symbols[1] == pytest.approx(-1.0)

    def test_llr_matches_closed_form(self, rng):
        """For BPSK, the exact LLR is 4*Re(y)/N0."""
        modulation = BPSK()
        noise_energy = 0.5
        received = rng.standard_normal(200) + 1j * rng.standard_normal(200)
        llrs = modulation.demodulate_llr(received, noise_energy)
        expected = 4.0 * received.real / noise_energy
        assert np.allclose(llrs, expected, rtol=1e-9)


class TestQPSK:
    def test_equivalent_to_qam4_rates(self):
        assert QPSK().bits_per_symbol == 2
        assert QAM(2).bits_per_symbol == 2

    def test_gray_property(self):
        """Adjacent constellation points differ in exactly one bit (Gray mapping)."""
        modulation = QAM16()
        points = modulation.constellation_points()
        labels = modulation.bit_labels()
        min_distance = np.min(
            np.abs(points[:, None] - points[None, :])
            + np.eye(points.size) * 10
        )
        for i in range(points.size):
            for j in range(points.size):
                if i < j and abs(points[i] - points[j]) < min_distance * 1.01:
                    assert int(np.sum(labels[i] != labels[j])) == 1


class TestQAMFamilies:
    def test_qam64_levels(self):
        points = QAM64().constellation_points()
        assert len(np.unique(np.round(points.real, 9))) == 8

    def test_qam_rejects_odd_bits(self):
        with pytest.raises(ValueError):
            QAM(3)

    def test_make_modulation_unknown(self):
        with pytest.raises(ValueError):
            make_modulation("QAM-1024")


class TestDemapper:
    def test_max_log_close_to_exact_at_high_snr(self, rng):
        modulation = QAM16()
        bits = rng.integers(0, 2, size=4 * 100, dtype=np.uint8)
        symbols = modulation.modulate(bits)
        noise_energy = 0.01
        exact = modulation.demodulate_llr(symbols, noise_energy)
        approx = modulation.demodulate_llr(symbols, noise_energy, max_log=True)
        assert np.array_equal(np.sign(exact), np.sign(approx))

    def test_llr_magnitude_shrinks_with_noise(self, rng):
        modulation = QPSK()
        bits = rng.integers(0, 2, size=200, dtype=np.uint8)
        symbols = modulation.modulate(bits)
        strong = modulation.demodulate_llr(symbols, noise_energy=0.01)
        weak = modulation.demodulate_llr(symbols, noise_energy=1.0)
        assert np.mean(np.abs(strong)) > np.mean(np.abs(weak))

    def test_rejects_bad_noise_energy(self):
        with pytest.raises(ValueError):
            awgn_bit_llrs(np.zeros(2), BPSK().constellation_points(), BPSK().bit_labels(), 0.0)

    def test_rejects_mismatched_labels(self):
        with pytest.raises(ValueError):
            awgn_bit_llrs(
                np.zeros(2), BPSK().constellation_points(), QPSK().bit_labels(), 1.0
            )

    def test_ber_improves_with_snr(self, rng):
        """Monte-Carlo BER of QAM-16 decreases as the SNR grows."""
        modulation = QAM16()
        bits = rng.integers(0, 2, size=4 * 2000, dtype=np.uint8)
        symbols = modulation.modulate(bits)
        bers = []
        for noise_energy in (0.5, 0.05):
            noise = np.sqrt(noise_energy / 2) * (
                rng.standard_normal(symbols.size) + 1j * rng.standard_normal(symbols.size)
            )
            llrs = modulation.demodulate_llr(symbols + noise, noise_energy)
            bers.append(np.mean(hard_decisions_from_llrs(llrs) != bits))
        assert bers[1] < bers[0]
