"""Unit tests for spine generation and the SpinalParams bundle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import SpinalParams
from repro.core.spine import SpineGenerator
from repro.utils.bitops import pack_segments, random_message_bits


class TestSpinalParams:
    def test_defaults_match_paper_figure2(self):
        params = SpinalParams()
        assert params.k == 8
        assert params.c == 10
        assert not params.bit_mode

    def test_coded_bits_per_symbol(self):
        assert SpinalParams(k=4, c=6).coded_bits_per_symbol == 12
        assert SpinalParams(k=4, bit_mode=True).coded_bits_per_symbol == 1

    def test_n_segments(self):
        assert SpinalParams(k=8).n_segments(24) == 3

    def test_n_segments_rejects_indivisible_length(self):
        with pytest.raises(ValueError):
            SpinalParams(k=8).n_segments(20)

    def test_n_segments_rejects_non_positive(self):
        with pytest.raises(ValueError):
            SpinalParams(k=8).n_segments(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SpinalParams(k=0)
        with pytest.raises(ValueError):
            SpinalParams(c=1)
        with pytest.raises(ValueError):
            SpinalParams(average_power=0.0)

    def test_bit_mode_ignores_c_validation(self):
        params = SpinalParams(k=4, c=1, bit_mode=True)
        assert params.bit_mode

    def test_with_returns_modified_copy(self):
        params = SpinalParams(k=8)
        changed = params.with_(k=4)
        assert changed.k == 4 and params.k == 8

    def test_factories(self):
        params = SpinalParams(k=6, c=8, constellation="offset-linear")
        assert params.make_hash_family().k == 6
        assert params.make_constellation().bits_per_symbol == 16

    def test_max_rate_per_pass(self):
        assert SpinalParams(k=8).max_rate_per_pass() == 8.0


class TestSpineGenerator:
    @pytest.fixture
    def generator(self, small_params):
        return SpineGenerator(small_params.make_hash_family())

    def test_spine_length(self, generator, rng):
        message = random_message_bits(16, rng)
        assert generator.generate(message).shape == (4,)

    def test_deterministic(self, generator, rng):
        message = random_message_bits(16, rng)
        assert np.array_equal(generator.generate(message), generator.generate(message))

    def test_sequential_structure(self, generator, rng):
        """s_t depends only on the first t segments (prefix property)."""
        message = random_message_bits(16, rng)
        other = message.copy()
        other[-1] ^= 1  # change only the last segment
        spine_a = generator.generate(message)
        spine_b = generator.generate(other)
        assert np.array_equal(spine_a[:-1], spine_b[:-1])
        assert spine_a[-1] != spine_b[-1]

    def test_first_segment_changes_whole_spine(self, generator, rng):
        message = random_message_bits(16, rng)
        other = message.copy()
        other[0] ^= 1
        spine_a = generator.generate(message)
        spine_b = generator.generate(other)
        assert np.all(spine_a != spine_b)

    def test_extend_matches_generate(self, generator, rng):
        message = random_message_bits(16, rng)
        segments = generator.segment_values(message)
        state = generator.hash_family.initial_state
        spine = generator.generate(message)
        for t, segment in enumerate(segments):
            state = generator.extend(state, segment)
            assert int(state) == int(spine[t])

    def test_segments_roundtrip(self, generator, rng):
        message = random_message_bits(20, rng)
        segments = generator.segment_values(message)
        assert np.array_equal(generator.segments_to_bits(segments), message)

    def test_generate_batch_matches_single(self, generator, rng):
        messages = [random_message_bits(16, rng) for _ in range(5)]
        segment_matrix = np.stack([pack_segments(m, generator.k) for m in messages])
        batch = generator.generate_batch(segment_matrix)
        for row, message in zip(batch, messages):
            assert np.array_equal(row, generator.generate(message))

    def test_generate_batch_rejects_1d(self, generator):
        with pytest.raises(ValueError):
            generator.generate_batch(np.zeros(4, dtype=np.uint64))
