"""Tests of the unified experiment registry, sweep engine, and results store.

Four contracts are locked down here:

* **completeness** — every experiment module in ``repro.experiments`` is
  registered (a new module cannot be added without a registry entry);
* **smoke** — every registered experiment runs end to end under its tiny
  smoke configuration and renders a table;
* **determinism** — the persisted JSON of a sweep is byte-identical for
  any worker count;
* **resilience** — a kernel that raises produces a structured error cell
  (the sweep continues) instead of an exception killing the run, including
  the ``mean``/``std_error`` empty-input case at the aggregation boundary.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments import registry
from repro.experiments.registry import (
    EXPERIMENT_MODULES,
    Experiment,
    default_aggregate,
    render_run,
    render_run_plot,
    run_experiment,
)
from repro.experiments.spec import Axis, Column, PlotSpec, SweepSpec, spec_hash
from repro.utils.store import RunStore, read_run

# -- spec ---------------------------------------------------------------------


class TestAxis:
    def test_coerces_values_to_kind(self):
        axis = Axis("snr_db", (0, 10), "float")
        assert axis.values == (0.0, 10.0)
        assert all(isinstance(v, float) for v in axis.values)

    def test_optional_axis_admits_none(self):
        axis = Axis("adc_bits", (4, None), "int", optional=True)
        assert axis.values == (4, None)
        assert axis.parse("none") is None
        assert axis.parse("8") == 8

    def test_non_optional_rejects_none(self):
        with pytest.raises(ValueError, match="does not admit None"):
            Axis("k", (4, None), "int")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown kind"):
            Axis("x", (1,), "complex")

    def test_round_trips_through_dict(self):
        axis = Axis("schedule", ("none", "tail-first"), "str")
        assert Axis.from_dict(axis.to_dict()) == axis


class TestSweepSpec:
    def _spec(self) -> SweepSpec:
        return SweepSpec(
            axes=(
                Axis("schedule", ("none", "tail-first"), "str"),
                Axis("snr_db", (10.0, 20.0), "float"),
            ),
            fixed={"k": 4, "beam_width": 8},
        )

    def test_cells_expand_in_report_order(self):
        keys = [key for key, _ in self._spec().cells()]
        assert keys == [
            "schedule=none,snr_db=10.0",
            "schedule=none,snr_db=20.0",
            "schedule=tail-first,snr_db=10.0",
            "schedule=tail-first,snr_db=20.0",
        ]

    def test_cells_merge_fixed_parameters(self):
        _key, params = self._spec().cells()[0]
        assert params == {"k": 4, "beam_width": 8, "schedule": "none", "snr_db": 10.0}

    def test_with_values_overrides_axis_and_fixed(self):
        spec = self._spec().with_values({"snr_db": (5.0,), "k": 8})
        assert spec.axis("snr_db").values == (5.0,)
        assert spec.fixed["k"] == 8
        # Scalars are promoted to single-value axes.
        spec = self._spec().with_values({"snr_db": 5})
        assert spec.axis("snr_db").values == (5.0,)

    def test_with_values_rejects_unknown_names(self):
        with pytest.raises(KeyError, match="unknown parameter"):
            self._spec().with_values({"bogus": 1})

    def test_reserved_names_rejected(self):
        with pytest.raises(ValueError, match="reserved"):
            SweepSpec(axes=(), fixed={"seed": 1})
        with pytest.raises(ValueError, match="reserved"):
            SweepSpec(axes=(Axis("n_trials", (1,), "int"),))

    def test_axis_fixed_overlap_rejected(self):
        with pytest.raises(ValueError, match="both axis and fixed"):
            SweepSpec(axes=(Axis("k", (4,), "int"),), fixed={"k": 8})

    def test_empty_axes_single_cell(self):
        spec = SweepSpec(axes=(), fixed={"n_samples": 10})
        assert spec.cells() == [("all", {"n_samples": 10})]

    def test_round_trips_through_dict(self):
        spec = self._spec()
        assert SweepSpec.from_dict(spec.to_dict()).to_dict() == spec.to_dict()


class TestSpecHash:
    def test_stable_and_sensitive(self):
        spec = SweepSpec(axes=(Axis("snr_db", (10.0,), "float"),), fixed={"k": 4})
        base = spec_hash("rate", spec, n_trials=5, seed=1)
        assert base == spec_hash("rate", spec, n_trials=5, seed=1)
        assert base != spec_hash("rate", spec, n_trials=6, seed=1)
        assert base != spec_hash("rate", spec, n_trials=5, seed=2)
        assert base != spec_hash("bsc", spec, n_trials=5, seed=1)
        wider = spec.with_values({"snr_db": (10.0, 20.0)})
        assert base != spec_hash("rate", wider, n_trials=5, seed=1)

    def test_equivalent_value_spellings_hash_identically(self):
        a = SweepSpec(axes=(Axis("snr_db", (10,), "float"),))
        b = SweepSpec(axes=(Axis("snr_db", (10.0,), "float"),))
        assert spec_hash("rate", a, 5, 1) == spec_hash("rate", b, 5, 1)


# -- registry completeness and smoke ------------------------------------------

_INFRASTRUCTURE_MODULES = {"__init__", "metrics", "registry", "spec"}


class TestRegistryCompleteness:
    def test_every_experiment_module_is_registered(self):
        experiments_dir = (
            Path(__file__).parent.parent / "src" / "repro" / "experiments"
        )
        modules = {
            path.stem
            for path in experiments_dir.glob("*.py")
            if path.stem not in _INFRASTRUCTURE_MODULES
        }
        registered_modules = {
            experiment.module.rsplit(".", 1)[-1]
            for experiment in registry.all_experiments().values()
        }
        missing = modules - registered_modules
        assert not missing, f"experiment modules without a registry entry: {sorted(missing)}"
        # And the loader list matches the on-disk modules.
        listed = {module.rsplit(".", 1)[-1] for module in EXPERIMENT_MODULES}
        assert listed == modules

    def test_names_are_unique_and_descriptive(self):
        experiments = registry.all_experiments()
        assert len(experiments) >= 14
        for name, experiment in experiments.items():
            assert experiment.name == name
            assert experiment.description
            assert experiment.columns

    def test_get_unknown_name_lists_registered(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            registry.get("bogus-experiment")

    def test_double_registration_rejected(self):
        existing = registry.get("rate")
        clone = Experiment(
            name="rate",
            description="imposter",
            spec=SweepSpec(),
            run_point=default_aggregate,
            columns=(Column("x", "x"),),
        )
        with pytest.raises(ValueError, match="already registered"):
            registry.register(clone)
        # Re-registering the identical object is an idempotent no-op.
        assert registry.register(existing) is existing


class TestSmokeAllExperiments:
    @pytest.mark.parametrize("name", sorted(registry.all_experiments()))
    def test_smoke_run_renders_and_persists(self, name, tmp_path):
        experiment = registry.get(name)
        store = RunStore(tmp_path)
        outcome = run_experiment(experiment, store=store, smoke=True)
        assert outcome.path is not None and outcome.path.exists()
        record = read_run(outcome.path)
        assert record["experiment"] == name
        assert record["cells"]
        for cell in record["cells"].values():
            assert "error" not in cell["aggregate"], cell["aggregate"]
        table = outcome.table()
        for column in experiment.columns:
            assert column.header in table
        # The persisted record re-renders identically without recomputation.
        assert render_run(experiment, record) == table


# -- determinism, caching, resume ---------------------------------------------

_RATE_OVERRIDES = {
    "snr_db": (5.0, 10.0),
    "payload_bits": 16,
    "k": 4,
    "c": 6,
    "beam_width": 8,
}


def _run_rate(store: RunStore, n_workers: int = 1, **kwargs):
    return run_experiment(
        registry.get("rate"),
        overrides=dict(_RATE_OVERRIDES, **kwargs.pop("overrides", {})),
        n_trials=kwargs.pop("n_trials", 4),
        n_workers=n_workers,
        store=store,
        **kwargs,
    )


class TestDeterminismAndResume:
    def test_worker_count_does_not_change_persisted_bytes(self, tmp_path):
        serial = _run_rate(RunStore(tmp_path / "w1"), n_workers=1)
        parallel = _run_rate(RunStore(tmp_path / "w4"), n_workers=4)
        assert serial.path.read_bytes() == parallel.path.read_bytes()
        assert serial.path.name == parallel.path.name

    def test_rerun_hits_cache_completely(self, tmp_path):
        store = RunStore(tmp_path)
        first = _run_rate(store)
        again = _run_rate(store)
        assert first.n_cells_computed == 2 and first.n_cells_cached == 0
        assert again.n_cells_computed == 0 and again.n_cells_cached == 2
        assert again.record == first.record

    def test_extended_grid_resumes_from_compatible_cells(self, tmp_path):
        store = RunStore(tmp_path)
        _run_rate(store)
        extended = _run_rate(
            store, overrides={"snr_db": (5.0, 10.0, 15.0)}
        )
        assert extended.n_cells_cached == 2
        assert extended.n_cells_computed == 1
        # The reused cells carry the exact same trials.
        fresh = _run_rate(RunStore(tmp_path / "fresh"), overrides={"snr_db": (15.0,)})
        assert (
            extended.record["cells"]["snr_db=15.0"]
            == fresh.record["cells"]["snr_db=15.0"]
        )

    def test_different_fixed_params_do_not_share_cells(self, tmp_path):
        store = RunStore(tmp_path)
        _run_rate(store)
        other = _run_rate(store, overrides={"beam_width": 4})
        assert other.n_cells_cached == 0
        assert other.n_cells_computed == 2

    def test_different_trials_or_seed_do_not_share_cells(self, tmp_path):
        store = RunStore(tmp_path)
        _run_rate(store)
        assert _run_rate(store, n_trials=5).n_cells_cached == 0
        assert _run_rate(store, seed=7).n_cells_cached == 0

    def test_seed_and_trials_change_the_hash(self, tmp_path):
        store = RunStore(tmp_path)
        a = _run_rate(store)
        b = _run_rate(store, seed=7)
        assert a.record["spec_hash"] != b.record["spec_hash"]
        assert a.path != b.path


# -- structured error cells ---------------------------------------------------


def _fragile_point(params, rng):
    if params["x"] >= 10:
        raise ValueError("mean of empty sequence")  # simulated kernel failure
    return {"value": float(params["x"]) + float(rng.random() * 0)}


def _empty_aggregate(params, trials):
    from repro.utils.results import mean

    # Deliberately aggregates an empty list for x == 5: the engine boundary
    # must convert the ValueError into an error record, not crash the sweep.
    values = [t["value"] for t in trials if params["x"] != 5]
    return {"value": mean(values)}


FRAGILE = Experiment(
    name="fragile-test-experiment",
    description="kernel/aggregate failures become structured error cells",
    spec=SweepSpec(axes=(Axis("x", (1, 5, 10), "int"),)),
    run_point=_fragile_point,
    columns=(Column("x", "x"), Column("value", "value")),
    n_trials=2,
    aggregate=_empty_aggregate,
)


class TestStructuredErrorCells:
    def test_failing_cells_do_not_kill_the_sweep(self, tmp_path):
        outcome = run_experiment(FRAGILE, store=RunStore(tmp_path))
        cells = outcome.record["cells"]
        assert "error" not in cells["x=1"]["aggregate"]
        assert cells["x=1"]["aggregate"]["value"] == pytest.approx(1.0)
        # Kernel raised for every trial of x=10: structured error record.
        assert cells["x=10"]["aggregate"]["error"].startswith("ValueError")
        assert cells["x=10"]["aggregate"]["n_failed"] == 2
        # Aggregate itself raised (mean of empty) for x=5: also an error
        # record — the mean/std_error ValueError never escapes the engine.
        assert "mean of empty sequence" in cells["x=5"]["aggregate"]["error"]

    def test_error_cells_render_and_persist(self, tmp_path):
        outcome = run_experiment(FRAGILE, store=RunStore(tmp_path))
        table = outcome.table()
        assert "failed cells" in table
        assert "x=10" in table
        record = read_run(outcome.path)
        assert render_run(FRAGILE, record) == table

    def test_successful_cells_surfaces_the_original_error(self, tmp_path):
        outcome = run_experiment(FRAGILE, store=RunStore(tmp_path))
        with pytest.raises(RuntimeError, match="mean of empty sequence"):
            outcome.successful_cells()

    def test_error_cells_are_recomputed_not_cached(self, tmp_path):
        store = RunStore(tmp_path)
        run_experiment(FRAGILE, store=store)
        again = run_experiment(FRAGILE, store=store)
        # The good cell is reused; both failing cells are retried.
        assert again.n_cells_cached == 1
        assert again.n_cells_computed == 2


# -- trial-invariant axes and trial guards ------------------------------------


class TestTrialSharing:
    def test_feedback_measures_once_per_snr(self, tmp_path):
        """Model cells at one SNR share one set of trials (no 6x recompute)."""
        outcome = run_experiment(
            registry.get("feedback"), store=RunStore(tmp_path), smoke=True
        )
        cells = outcome.record["cells"]
        # Smoke config: 1 SNR x 2 models -> exactly one computed representative.
        assert len(cells) == 2
        assert outcome.n_cells_computed == 1
        (trials_a, trials_b) = [cell["trials"] for cell in cells.values()]
        assert trials_a == trials_b
        # But the aggregates differ — the model axis is priced in aggregate.
        labels = {cell["aggregate"]["model_label"] for cell in cells.values()}
        assert len(labels) == 2

    def test_shared_trials_resume_from_cached_siblings(self, tmp_path):
        store = RunStore(tmp_path)
        run_experiment(registry.get("feedback"), store=store, smoke=True)
        extended = run_experiment(
            registry.get("feedback"),
            overrides={"model": ("perfect", "delayed:2", "delayed:8")},
            store=store,
            smoke=True,
        )
        # The new model cell lifts its trials from a cached sibling: zero
        # kernel work for a pure-aggregate extension.
        assert extended.n_cells_computed == 0
        assert extended.n_cells_cached == 2

    def test_max_trials_guard(self):
        with pytest.raises(ValueError, match="at most 1 trial"):
            run_experiment(registry.get("transport"), n_trials=2, smoke=True)
        with pytest.raises(ValueError, match="at most 1 trial"):
            run_experiment(registry.get("distance"), n_trials=3, smoke=True)

    def test_ldpc_extra_trials_use_independent_streams(self):
        from repro.experiments.ldpc_ablation import ldpc_ablation_seed_labels

        params = {"algorithm": "min-sum", "iterations": 5}
        base = ldpc_ablation_seed_labels(params, 0)
        assert base == ("ldpc-ablation", "min-sum", 5)  # historical stream
        assert ldpc_ablation_seed_labels(params, 1) != base
        assert ldpc_ablation_seed_labels(params, 2) != ldpc_ablation_seed_labels(params, 1)

    def test_unknown_invariant_axis_rejected(self):
        broken = Experiment(
            name="broken-invariant-test",
            description="",
            spec=SweepSpec(axes=(Axis("x", (1,), "int"),)),
            run_point=_fragile_point,
            columns=(Column("x", "x"),),
            trial_invariant_axes=("bogus",),
        )
        with pytest.raises(ValueError, match="unknown axes"):
            run_experiment(broken)


# -- rendering ----------------------------------------------------------------


class TestRendering:
    def test_plot_spec_renders_series(self, tmp_path):
        outcome = _run_rate(RunStore(tmp_path))
        chart = render_run_plot(registry.get("rate"), outcome.record)
        assert chart is not None
        assert "SNR (dB)" in chart and "rate" in chart

    def test_plot_requires_two_x_values(self, tmp_path):
        outcome = _run_rate(RunStore(tmp_path), overrides={"snr_db": (10.0,)})
        assert render_run_plot(registry.get("rate"), outcome.record) is None

    def test_catalog_mentions_every_experiment(self):
        text = registry.catalog()
        markdown = registry.catalog_markdown()
        for name in registry.names():
            assert name in text
            assert f"`{name}`" in markdown


# -- store --------------------------------------------------------------------


class TestRunStore:
    def test_read_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "not-a-run.json"
        path.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(ValueError, match="schema_version"):
            read_run(path)

    def test_read_rejects_future_schema(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(json.dumps({"schema_version": 999}))
        with pytest.raises(ValueError, match="not supported"):
            read_run(path)

    def test_iter_records_skips_corrupt_files(self, tmp_path):
        store = RunStore(tmp_path)
        outcome = _run_rate(store)
        (tmp_path / "rate-corrupt.json").write_text("{ not json")
        records = list(store.iter_records("rate"))
        assert len(records) == 1
        assert records[0]["spec_hash"] == outcome.record["spec_hash"]

    def test_save_is_deterministic(self, tmp_path):
        store = RunStore(tmp_path)
        outcome = _run_rate(store)
        before = outcome.path.read_bytes()
        store.save(outcome.record)
        assert outcome.path.read_bytes() == before
