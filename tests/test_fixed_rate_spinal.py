"""Unit tests for the fixed-rate spinal baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import FixedRateSpinalSystem
from repro.core.params import SpinalParams
from repro.utils.rng import spawn_rng


@pytest.fixture
def small_system() -> FixedRateSpinalSystem:
    return FixedRateSpinalSystem(
        message_bits=16,
        n_passes=2,
        params=SpinalParams(k=4, c=6, seed=31),
        beam_width=8,
    )


class TestConfiguration:
    def test_nominal_rate(self, small_system):
        # 16 bits over 2 passes of 4 symbols = 2 bits/symbol (= k / passes).
        assert small_system.nominal_rate == pytest.approx(2.0)
        assert small_system.symbols_per_frame == 8

    def test_rate_equals_k_over_passes(self):
        system = FixedRateSpinalSystem(
            message_bits=24, n_passes=3, params=SpinalParams(k=8, c=10)
        )
        assert system.nominal_rate == pytest.approx(8 / 3)

    def test_describe(self, small_system):
        assert "passes=2" in small_system.describe()

    def test_validation(self):
        with pytest.raises(ValueError):
            FixedRateSpinalSystem(message_bits=16, n_passes=0)
        with pytest.raises(ValueError):
            FixedRateSpinalSystem(message_bits=15, params=SpinalParams(k=4, c=6))
        with pytest.raises(ValueError):
            FixedRateSpinalSystem(message_bits=16, params=SpinalParams(k=4, c=6)).measure(
                10.0, 0, np.random.default_rng(0)
            )


class TestMeasurement:
    def test_high_snr_no_errors(self, small_system):
        rng = spawn_rng(1, "frs-high")
        result = small_system.measure(snr_db=18.0, n_frames=10, rng=rng)
        assert result.frame_error_rate == 0.0
        assert result.bit_error_rate == 0.0
        assert result.achieved_rate == pytest.approx(small_system.nominal_rate)

    def test_low_snr_mostly_errors(self, small_system):
        rng = spawn_rng(2, "frs-low")
        result = small_system.measure(snr_db=-8.0, n_frames=10, rng=rng)
        assert result.frame_error_rate > 0.5
        assert result.achieved_rate < small_system.nominal_rate

    def test_fer_monotone_between_extremes(self, small_system):
        rng = spawn_rng(3, "frs-mono")
        low = small_system.measure(snr_db=-4.0, n_frames=12, rng=rng).frame_error_rate
        high = small_system.measure(snr_db=12.0, n_frames=12, rng=rng).frame_error_rate
        assert high <= low

    def test_more_passes_more_robust(self):
        """At a fixed SNR, adding passes (lowering the rate) reduces FER."""
        rng = spawn_rng(4, "frs-passes")
        params = SpinalParams(k=4, c=6, seed=33)
        one_pass = FixedRateSpinalSystem(16, n_passes=1, params=params, beam_width=8)
        three_pass = FixedRateSpinalSystem(16, n_passes=3, params=params, beam_width=8)
        snr_db = 4.0
        fer_one = one_pass.measure(snr_db, n_frames=15, rng=rng).frame_error_rate
        fer_three = three_pass.measure(snr_db, n_frames=15, rng=rng).frame_error_rate
        assert fer_three <= fer_one
