"""Tests for the city-scale network layer (:mod:`repro.net`).

Four contracts anchor the suite:

* **degeneration** — a one-cell, no-mobility, interference-free network is
  bit-identical to a standalone :class:`~repro.mac.cell.MacCell` built from
  the same seed labels (frozen-dataclass equality of the full result);
* **handoff soundness** — equidistant users stay put, hysteresis filters
  marginal moves, a user whose block is on the air hands off only at the
  block boundary, and a mid-packet migration neither loses nor double-counts
  symbols;
* **calibration fidelity** — the flow tier's aggregate goodput stays within
  a pinned relative-error bound of the bit-exact tier on identical configs;
* **worker invariance** — replica fan-out and decoupled cell sharding are
  byte-identical (over sorted-key JSON summaries) for any worker count.
"""

from __future__ import annotations

import dataclasses
import json
import math

import numpy as np
import pytest

from repro.channels.awgn import AWGNChannel
from repro.mac.cell import CellUser, MacCell, RatelessLink
from repro.mac.schedulers import make_scheduler
from repro.net import (
    CellNetwork,
    CityGeometry,
    FlowLink,
    FlowTransmission,
    MobilityModel,
    NetworkConfig,
    SinrBitChannel,
    SinrChannel,
    SymbolCountModel,
    calibrate_symbol_model,
    default_symbol_model,
    network_code,
    network_payloads,
    simulate_cells_sharded,
    simulate_network,
    simulate_network_replicas,
)
from repro.phy.families import bpsk_crossover_probability
from repro.phy.session import CodecSession
from repro.utils.units import db_to_linear, linear_to_db


def _grid(n_cells: int = 2, radius: float = 400.0) -> CityGeometry:
    return CityGeometry.grid(
        n_cells,
        cell_radius=radius,
        reference_snr_db=16.0,
        path_loss_exponent=3.0,
        reference_distance=50.0,
        min_distance=1.0,
    )


def _model(
    samples=((48,), (48,), (48,)),
    block_symbols: int = 16,
    max_symbols: int = 256,
) -> SymbolCountModel:
    """A hand-built flow model: no calibration cost, fully pinned behavior."""
    return SymbolCountModel(
        family="spinal",
        payload_bits=32,
        max_symbols=max_symbols,
        block_symbols=block_symbols,
        snr_grid_db=(-5.0, 5.0, 15.0),
        samples=samples,
    )


def _pinned_mobility(xs_by_epoch, epoch_symbols: int) -> MobilityModel:
    """One user moving along explicit x positions (y = 0 throughout)."""
    xs = np.asarray([xs_by_epoch], dtype=np.float64)
    return MobilityModel(
        xs=xs, ys=np.zeros_like(xs), epoch_symbols=epoch_symbols
    )


class TestCityGeometry:
    def test_grid_layout_and_bounds(self):
        geometry = _grid(n_cells=4, radius=100.0)
        assert geometry.cell_x == (0.0, 200.0, 0.0, 200.0)
        assert geometry.cell_y == (0.0, 0.0, 200.0, 200.0)
        assert geometry.n_cells == 4
        assert geometry.bounds() == ((-100.0, 300.0), (-100.0, 300.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            _grid(n_cells=0)
        with pytest.raises(ValueError):
            CityGeometry(
                cell_x=(0.0,),
                cell_y=(0.0, 1.0),
                cell_radius=100.0,
                reference_snr_db=16.0,
                path_loss_exponent=3.0,
                reference_distance=50.0,
                min_distance=1.0,
            )
        with pytest.raises(ValueError):
            _grid(radius=-1.0)

    def test_path_loss_law(self):
        geometry = _grid(n_cells=1)
        # At the reference distance the SNR is the reference SNR.
        assert geometry.snr_db(50.0, 0.0, 0) == pytest.approx(16.0)
        # Distances clamp at min_distance: closer is not stronger.
        assert geometry.snr_db(0.5, 0.0, 0) == geometry.snr_db(1.0, 0.0, 0)
        # Each path-loss-exponent decade costs 10 * alpha dB.
        drop = geometry.snr_db(50.0, 0.0, 0) - geometry.snr_db(500.0, 0.0, 0)
        assert drop == pytest.approx(30.0)

    def test_scalar_vector_and_batch_paths_agree_bitwise(self):
        geometry = _grid(n_cells=3, radius=150.0)
        xs = np.array([10.0, 333.3, -42.0])
        ys = np.array([5.0, -17.2, 260.0])
        matrix = geometry.snrs_db_many(xs, ys)
        assert matrix.shape == (3, 3)
        for row, (x, y) in enumerate(zip(xs, ys)):
            per_user = geometry.snrs_db(float(x), float(y))
            assert np.array_equal(matrix[row], per_user)
            for cell in range(3):
                assert geometry.snr_db(float(x), float(y), cell) == per_user[cell]

    def test_equidistant_tie_resolves_to_lowest_index(self):
        geometry = _grid(n_cells=2, radius=400.0)  # cells at x=0 and x=800
        assert geometry.strongest_cell(400.0, 0.0) == 0
        assert geometry.strongest_cell(401.0, 0.0) == 1

    def test_sinr_composition(self):
        # No interferers: the signal passes through *unchanged*.
        assert CityGeometry.sinr_db(7.25, []) == 7.25
        # With interferers: S / (1 + sum I) in linear units of noise.
        got = CityGeometry.sinr_db(10.0, [3.0, 0.0])
        expected = linear_to_db(
            db_to_linear(10.0) / (1.0 + db_to_linear(3.0) + db_to_linear(0.0))
        )
        assert got == pytest.approx(expected)
        assert got < 10.0


class TestMobilityModel:
    def test_static_pins_users(self):
        model = MobilityModel.static([(1.0, 2.0), (3.0, 4.0)])
        assert model.n_users == 2
        assert model.n_epochs == 0
        assert model.epoch_symbols == 0
        assert model.position(1, 0) == (3.0, 4.0)
        assert model.position(1, 99) == (3.0, 4.0)  # parked forever

    def test_walks_deterministic_and_per_user_streams(self):
        kwargs = dict(
            n_epochs=16,
            epoch_symbols=64,
            step=30.0,
            x_range=(-100.0, 100.0),
            y_range=(-50.0, 50.0),
            seed=7,
        )
        a = MobilityModel.walks(n_users=3, **kwargs)
        b = MobilityModel.walks(n_users=3, **kwargs)
        assert np.array_equal(a.xs, b.xs) and np.array_equal(a.ys, b.ys)
        # Streams derive from (seed, user): adding users changes nothing
        # about existing users' trajectories.
        wider = MobilityModel.walks(n_users=5, **kwargs)
        assert np.array_equal(wider.xs[:3], a.xs)
        assert np.array_equal(wider.ys[:3], a.ys)
        # Reflected walks stay inside the city box.
        assert np.all(a.xs >= -100.0) and np.all(a.xs <= 100.0)
        assert np.all(a.ys >= -50.0) and np.all(a.ys <= 50.0)

    def test_positions_matches_scalar_accessor_and_parks(self):
        model = MobilityModel.walks(
            n_users=4,
            n_epochs=5,
            epoch_symbols=32,
            step=10.0,
            x_range=(0.0, 100.0),
            y_range=(0.0, 100.0),
            seed=3,
        )
        for epoch in (0, 3, 5, 17):  # 17 > n_epochs: the parked regime
            xs, ys = model.positions(epoch)
            for user in range(4):
                assert (float(xs[user]), float(ys[user])) == model.position(
                    user, epoch
                )
        assert model.position(0, 5) == model.position(0, 500)

    def test_validation(self):
        with pytest.raises(ValueError):
            MobilityModel(xs=np.zeros((2, 3)), ys=np.zeros((3, 2)), epoch_symbols=1)
        with pytest.raises(ValueError):
            MobilityModel(xs=np.zeros((2, 3)), ys=np.zeros((2, 3)), epoch_symbols=-1)
        kwargs = dict(
            n_epochs=2,
            epoch_symbols=8,
            x_range=(0.0, 1.0),
            y_range=(0.0, 1.0),
            seed=0,
        )
        with pytest.raises(ValueError):
            MobilityModel.walks(n_users=2, step=-1.0, **kwargs)
        with pytest.raises(ValueError):
            MobilityModel.walks(
                n_users=2, step=1.0, initial_positions=[(0.0, 0.0)], **kwargs
            )


class TestSinrChannels:
    def test_fixed_sinr_matches_plain_awgn_bitwise(self):
        symbols = (np.arange(32) - 16).astype(np.complex128) / 4.0
        tracked = SinrChannel(lambda: 9.5)
        plain = AWGNChannel(snr_db=9.5)
        got = tracked.transmit(symbols, np.random.default_rng(11))
        expected = plain.transmit(symbols, np.random.default_rng(11))
        assert np.array_equal(got, expected)

    def test_set_time_tracks_the_callback(self):
        levels = iter([12.0, 3.0])
        channel = SinrChannel(lambda: next(levels), signal_power=2.0)
        assert channel.snr_db == 12.0
        channel.set_time(5)
        assert channel.snr_db == 3.0
        assert channel.noise_energy == pytest.approx(2.0 / db_to_linear(3.0))
        assert "SINR-AWGN" in channel.describe()

    def test_bit_channel_tracks_crossover(self):
        levels = iter([8.0, -2.0])
        channel = SinrBitChannel(lambda: next(levels))
        assert channel.crossover_probability == pytest.approx(
            bpsk_crossover_probability(8.0)
        )
        channel.set_time(1)
        assert channel.crossover_probability == pytest.approx(
            bpsk_crossover_probability(-2.0)
        )
        assert "SINR-BSC" in channel.describe()


class TestSymbolCountModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            _model(samples=((48,), (48,)))  # one row per grid point
        with pytest.raises(ValueError):
            _model(samples=((48,), (), (48,)))  # empty row
        with pytest.raises(ValueError):
            SymbolCountModel(
                family="spinal",
                payload_bits=32,
                max_symbols=256,
                block_symbols=16,
                snr_grid_db=(5.0, 5.0, 15.0),  # not strictly increasing
                samples=((48,), (48,), (48,)),
            )
        with pytest.raises(ValueError):
            _model(block_symbols=0)

    def test_sample_requirement_consumes_exactly_two_draws(self):
        model = _model(samples=((40,), (60,), (80,)))
        for snr in (-20.0, -5.0, 1.0, 9.9, 15.0, 40.0):
            rng = np.random.default_rng(5)
            shadow = np.random.default_rng(5)
            model.sample_requirement(snr, rng)
            shadow.random()
            shadow.integers(1)
            # Both generators are now in the same state.
            assert rng.random() == shadow.random()

    def test_requirement_interpolates_between_neighbors(self):
        model = _model(samples=((40,), (60,), (80,)))
        rng = np.random.default_rng(0)
        draws = {model.sample_requirement(0.0, rng) for _ in range(64)}
        assert draws == {40, 60}  # midway: both neighbors appear
        assert model.sample_requirement(-30.0, rng) == 40  # clamped low
        assert model.sample_requirement(30.0, rng) == 80  # clamped high

    def test_failure_sample_maps_to_unreachable_requirement(self):
        model = _model(samples=((-1,), (-1,), (-1,)))
        rng = np.random.default_rng(0)
        assert model.sample_requirement(5.0, rng) == 2 * model.max_symbols
        assert model.success_probability(5.0) == 0.0
        mixed = _model(samples=((48, -1), (48, -1), (48, -1)))
        assert mixed.success_probability(5.0) == 0.5


class TestFlowTransmission:
    def test_whole_packet_is_one_quantized_grant(self):
        link = FlowLink(model=_model(samples=((40,), (40,), (40,))))
        tx = link.open(np.zeros(32), np.random.default_rng(0), lambda: 5.0)
        assert isinstance(tx, FlowTransmission)
        assert tx.required_symbols == 40
        block, received = tx.send_next_block()
        # 40 symbols quantized up to the 16-symbol block grid -> 48.
        assert block.n_symbols == 48 and received is None
        assert tx.deliver(block, received) is True
        assert tx.decoded and tx.symbols_delivered == 48

    def test_budget_caps_the_grant_and_aborts_failures(self):
        link = FlowLink(model=_model(samples=((-1,), (-1,), (-1,))))
        tx = link.open(np.zeros(32), np.random.default_rng(0), lambda: 5.0)
        assert tx.required_symbols == 2 * 256
        block, _ = tx.send_next_block()
        assert block.n_symbols == 256  # capped at max_symbols
        assert not tx.deliver(block, None)
        assert tx.exhausted and not tx.decoded

    def test_inert_channel_hooks(self):
        link = FlowLink(model=_model())
        assert link.channel.reset() is None
        assert link.channel.describe() == "Flow()"
        assert link.payload_bits == 32 and link.max_symbols == 256


class TestCalibration:
    def test_calibration_is_a_pure_function_of_its_arguments(self):
        kwargs = dict(
            snr_grid_db=(2.0, 8.0),
            samples_per_point=3,
            seed=99,
            smoke=True,
            max_symbols=128,
        )
        first = calibrate_symbol_model("spinal", **kwargs)
        second = calibrate_symbol_model("spinal", **kwargs)
        assert first == second  # frozen dataclass equality, field for field
        assert first.payload_bits > 0 and first.block_symbols >= 1
        assert len(first.samples) == 2

    def test_calibration_validation(self):
        with pytest.raises(ValueError):
            calibrate_symbol_model("spinal", (), 4, seed=0)
        with pytest.raises(ValueError):
            calibrate_symbol_model("spinal", (5.0,), 0, seed=0)

    def test_flow_tier_tracks_bit_exact_within_pinned_bound(self):
        """The calibrated-error contract on small cities, across seeds.

        The city-scale benchmark pins the same bound at 1000 users; here
        the configs are small enough for the bit-exact tier to be cheap,
        so the bound is wider (fewer packets, noisier ratio).
        """
        base = NetworkConfig(
            n_cells=4,
            n_users=6,
            packets_per_user=3,
            scheduler="round-robin",
            code="spinal",
            seed=20111114,
            max_symbols=512,
            cell_radius=150.0,
            reference_snr_db=18.0,
            epoch_symbols=128,
            mobility_step=60.0,
            calibration_samples=16,
            calibration_grid_points=5,
        )
        errors = []
        for seed in (20111114, 7, 123):
            exact = simulate_network(
                dataclasses.replace(base, seed=seed, tier="exact")
            )
            flow_config = dataclasses.replace(base, seed=seed, tier="flow")
            flow = simulate_network(
                flow_config, model=default_symbol_model(flow_config)
            )
            assert exact.aggregate_goodput > 0
            errors.append(
                abs(flow.aggregate_goodput - exact.aggregate_goodput)
                / exact.aggregate_goodput
            )
        assert max(errors) <= 0.25, f"per-seed relative errors {errors}"
        assert sum(errors) / len(errors) <= 0.15, f"mean of {errors}"


class TestDegeneration:
    @pytest.mark.parametrize("scheduler", ["round-robin", "max-snr"])
    def test_single_cell_static_network_is_a_plain_mac_cell(self, scheduler):
        """One cell, no mobility, no interference == standalone MacCell.

        Equality is frozen-dataclass equality of the *entire* result —
        every packet's symbol counts and completion times, bit for bit.
        """
        config = NetworkConfig(
            n_cells=1,
            n_users=3,
            packets_per_user=2,
            scheduler=scheduler,
            code="spinal",
            tier="exact",
            seed=20111114,
            max_symbols=256,
            cell_radius=400.0,
            reference_snr_db=16.0,
            epoch_symbols=0,
        )
        network = CellNetwork(config)
        geometry = config.geometry()
        users = []
        for user in range(config.n_users):
            x, y = network.mobility.position(user, 0)
            snr_db = geometry.snr_db(x, y, 0)
            code = network_code(config, user, snr_db)
            channel = AWGNChannel(
                snr_db=snr_db, signal_power=code.info.signal_power
            )
            users.append(
                CellUser(
                    link=RatelessLink(
                        CodecSession(
                            code,
                            channel,
                            termination="genie",
                            max_symbols=config.max_symbols,
                        )
                    ),
                    payloads=network_payloads(
                        config, user, code.info.payload_bits
                    ),
                )
            )
        reference = MacCell(users, make_scheduler(scheduler), seed=config.seed).run()
        result = network.run()
        assert result.as_cell_result() == reference
        assert result.n_handoffs == 0 and result.final_serving == (0, 0, 0)

    def test_single_cell_with_mobility_never_hands_off(self):
        config = NetworkConfig(
            n_cells=1,
            n_users=2,
            packets_per_user=1,
            code="spinal",
            tier="flow",
            max_symbols=256,
            epoch_symbols=32,
            mobility_step=100.0,
            model=_model(),
        )
        result = simulate_network(config)
        assert result.n_handoffs == 0 and result.n_deferred_handoffs == 0
        assert result.final_serving == (0, 0)

    def test_zero_user_network_completes_empty(self):
        config = NetworkConfig(
            n_cells=2,
            n_users=0,
            tier="flow",
            epoch_symbols=64,
            model=_model(),
        )
        result = simulate_network(config)
        assert result.packets == ()
        assert result.makespan == 0
        assert result.delivery_rate == 0.0
        assert result.handoffs_per_user == 0.0
        assert result.handoff_rate_per_kilosymbol == 0.0
        summary = result.summary()
        assert summary["n_packets"] == 0 and summary["n_users"] == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            NetworkConfig(tier="approximate")
        with pytest.raises(ValueError):
            NetworkConfig(n_cells=0)
        with pytest.raises(ValueError):
            NetworkConfig(n_users=-1)
        with pytest.raises(ValueError):
            NetworkConfig(packets_per_user=0)
        with pytest.raises(ValueError):
            NetworkConfig(epoch_symbols=-1)
        with pytest.raises(ValueError):
            NetworkConfig(n_users=2, user_positions=((0.0, 0.0),))
        with pytest.raises(ValueError):
            CellNetwork(
                NetworkConfig(n_users=1, model=_model(), tier="flow"),
                mobility=MobilityModel.static([(0.0, 0.0), (1.0, 1.0)]),
            )


class TestHandoff:
    """Two cells at x=0 and x=800 (radius-400 grid) throughout."""

    def _config(self, **overrides) -> NetworkConfig:
        settings = dict(
            n_cells=2,
            n_users=1,
            packets_per_user=2,
            scheduler="round-robin",
            code="spinal",
            tier="flow",
            seed=20111114,
            max_symbols=256,
            cell_radius=400.0,
            reference_snr_db=16.0,
            model=_model(),
        )
        settings.update(overrides)
        return NetworkConfig(**settings)

    def test_equidistant_user_stays_with_lowest_index_cell(self):
        epoch_symbols = 20
        config = self._config(epoch_symbols=epoch_symbols)
        result = CellNetwork(
            config,
            mobility=_pinned_mobility([400.0] * 8, epoch_symbols),
        ).run()
        assert result.final_serving == (0,)
        assert result.n_handoffs == 0 and result.n_deferred_handoffs == 0

    def test_hysteresis_filters_marginal_moves(self):
        # x=405 favors cell 1 by ~0.33 dB — inside the 1 dB hysteresis.
        epoch_symbols = 20
        config = self._config(epoch_symbols=epoch_symbols)
        result = CellNetwork(
            config,
            mobility=_pinned_mobility([390.0] + [405.0] * 7, epoch_symbols),
        ).run()
        assert result.final_serving == (0,)
        assert result.n_handoffs == 0

    def test_on_air_handoff_defers_to_the_block_boundary(self):
        # The flow tier grants the whole 48-symbol packet at once; the
        # first epoch tick (t=20) lands mid-grant, so the handoff must
        # defer, then complete once the block lands.
        epoch_symbols = 20
        config = self._config(epoch_symbols=epoch_symbols)
        result = CellNetwork(
            config,
            mobility=_pinned_mobility([100.0] + [700.0] * 10, epoch_symbols),
        ).run()
        assert result.n_deferred_handoffs >= 1
        assert result.n_handoffs == 1
        assert result.handoffs_by_user == (1,)
        assert result.final_serving == (1,)
        assert all(packet.delivered for packet in result.packets)
        # The deferral did not distort the flow accounting: both packets
        # took exactly their quantized 48-symbol grant.
        assert [p.symbols_sent for p in result.packets] == [48, 48]

    def test_mid_packet_migration_preserves_symbol_accounting(self):
        # Bit-exact tier, 1-symbol blocks: the epoch tick at t=2 migrates
        # the user while packet 0 is partially transmitted.  The packet
        # finishes in the *new* cell with no symbol lost or re-sent.
        epoch_symbols = 2
        config = self._config(tier="exact", model=None, max_symbols=512,
                              epoch_symbols=epoch_symbols)
        result = CellNetwork(
            config,
            mobility=_pinned_mobility([100.0] + [700.0] * 10, epoch_symbols),
        ).run()
        assert result.n_handoffs == 1
        assert result.final_serving == (1,)
        assert all(packet.delivered for packet in result.packets)
        head = result.packets[0]
        # The handoff (t=2) happened strictly inside packet 0's lifetime.
        assert head.completed > epoch_symbols
        # Genie termination: delivered packets sent exactly what decoding
        # needed — a lost or double-counted symbol would break this.
        for packet in result.packets:
            assert packet.symbols_sent == packet.symbols_needed > 0

    def test_detach_refuses_mid_air_and_unknown_users(self):
        link = FlowLink(model=_model())
        cell = MacCell(
            [CellUser(link=link, payloads=[np.zeros(32)], csi=lambda now: 5.0)],
            make_scheduler("round-robin"),
        )
        cell.run_until(1)  # the 48-symbol grant is now on the air
        assert cell.on_air_user == 0
        with pytest.raises(RuntimeError):
            cell.detach_user(0)
        with pytest.raises(ValueError):
            cell.detach_user(7)
        cell.run()
        assert cell.on_air_user is None  # medium free after completion


class TestSharding:
    def _decoupled_config(self, **overrides) -> NetworkConfig:
        settings = dict(
            n_cells=3,
            n_users=6,
            packets_per_user=2,
            scheduler="round-robin",
            code="spinal",
            tier="exact",
            seed=20111114,
            max_symbols=256,
            cell_radius=400.0,
            reference_snr_db=16.0,
            interference=False,
            epoch_symbols=0,
        )
        settings.update(overrides)
        return NetworkConfig(**settings)

    def test_cell_sharding_is_byte_identical_for_any_worker_count(self):
        config = self._decoupled_config()
        full = json.dumps(CellNetwork(config).run().summary(), sort_keys=True)
        serial = json.dumps(
            simulate_cells_sharded(config, n_workers=1).summary(), sort_keys=True
        )
        fanned = json.dumps(
            simulate_cells_sharded(config, n_workers=4).summary(), sort_keys=True
        )
        assert full == serial == fanned

    def test_sharding_requires_decoupled_cells(self):
        with pytest.raises(ValueError):
            simulate_cells_sharded(self._decoupled_config(interference=True))
        with pytest.raises(ValueError):
            simulate_cells_sharded(
                self._decoupled_config(epoch_symbols=64), n_workers=2
            )
        with pytest.raises(ValueError):
            CellNetwork(self._decoupled_config(), restrict_to_cell=9)

    def test_replicas_are_worker_invariant_and_seed_distinct(self):
        config = NetworkConfig(
            n_cells=3,
            n_users=6,
            packets_per_user=2,
            scheduler="round-robin",
            code="spinal",
            tier="flow",
            seed=20111114,
            max_symbols=256,
            cell_radius=150.0,
            reference_snr_db=18.0,
            epoch_symbols=64,
            mobility_step=60.0,
            model=_model(
                samples=((48, 64, -1), (32, 48, 64), (16, 16, 32))
            ),
        )
        serial = simulate_network_replicas(config, 5, n_workers=1)
        fanned = simulate_network_replicas(config, 5, n_workers=3)
        assert json.dumps(serial, sort_keys=True) == json.dumps(
            fanned, sort_keys=True
        )
        # Replicas carry independent derived seeds: all five differ.
        assert len({json.dumps(r, sort_keys=True) for r in serial}) == 5
        with pytest.raises(ValueError):
            simulate_network_replicas(config, 0)


class TestNetworkResult:
    def test_summary_surface(self):
        config = NetworkConfig(
            n_cells=2,
            n_users=3,
            packets_per_user=2,
            tier="flow",
            epoch_symbols=64,
            mobility_step=80.0,
            cell_radius=150.0,
            reference_snr_db=18.0,
            model=_model(),
        )
        result = simulate_network(config)
        summary = result.summary()
        for key in (
            "scheduler",
            "tier",
            "n_users",
            "n_cells",
            "n_packets",
            "n_delivered",
            "delivery_rate",
            "aggregate_goodput",
            "jain_fairness",
            "mean_latency",
            "makespan",
            "n_handoffs",
            "n_deferred_handoffs",
            "handoffs_per_user",
            "handoff_rate_per_kilosymbol",
        ):
            assert key in summary
        json.dumps(summary)  # JSON-native by contract
        assert summary["n_packets"] == 6
        assert result.handoffs_per_user == result.n_handoffs / 3
        if result.makespan:
            assert result.handoff_rate_per_kilosymbol == pytest.approx(
                1000.0 * result.n_handoffs / result.makespan
            )
        assert sum(result.handoffs_by_user) == result.n_handoffs
        assert math.isfinite(result.jain_fairness)
