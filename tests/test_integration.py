"""Integration tests: complete systems wired together across modules.

These exercise the same paths as the examples and the benchmark harness —
spinal codes over AWGN/BSC/fading channels with realistic framing and
termination, compared against theory and against the LDPC baseline — at
reduced sizes so they stay fast.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest

from repro import (
    AWGNChannel,
    BSCChannel,
    BubbleDecoder,
    CRC16_CCITT,
    Framer,
    MLDecoder,
    RatelessSession,
    RayleighBlockFadingChannel,
    SpinalEncoder,
    SpinalParams,
    TimeVaryingAWGNChannel,
)
from repro.baselines import FixedRateLdpcSystem, LdpcConfig
from repro.channels.traces import gilbert_elliott_trace
from repro.core.puncturing import TailFirstPuncturing
from repro.theory import awgn_capacity_db, bsc_capacity
from repro.utils.bitops import random_message_bits
from repro.utils.rng import spawn_rng


def run_trials(session, payload_bits, n_trials, seed):
    rng = spawn_rng(seed, "integration")
    results = []
    for _ in range(n_trials):
        payload = random_message_bits(payload_bits, rng)
        results.append(session.run(payload, rng))
    return results


class TestAwgnEndToEnd:
    def test_rate_tracks_capacity_across_snr(self):
        """The single spinal configuration adapts from 0 dB to 25 dB."""
        params = SpinalParams(k=4, c=8, seed=5)
        encoder = SpinalEncoder(params, puncturing=TailFirstPuncturing())
        framer = Framer(payload_bits=16, k=4)
        rates = {}
        for snr_db in (0.0, 12.0, 25.0):
            session = RatelessSession(
                encoder,
                decoder_factory=lambda enc: BubbleDecoder(enc, beam_width=16),
                channel=AWGNChannel(snr_db=snr_db, adc_bits=14),
                framer=framer,
                max_symbols=1024,
                search="bisect",
            )
            results = run_trials(session, 16, 10, seed=int(snr_db))
            assert all(r.payload_correct for r in results)
            rates[snr_db] = float(np.mean([r.rate for r in results]))
        assert rates[0.0] < rates[12.0] < rates[25.0]
        # Within a factor ~2 of capacity everywhere (usually much closer).
        for snr_db, rate in rates.items():
            assert rate > 0.4 * awgn_capacity_db(snr_db)

    def test_crc_framing_end_to_end(self):
        params = SpinalParams(k=4, c=8, seed=6)
        encoder = SpinalEncoder(params, puncturing=TailFirstPuncturing())
        framer = Framer(payload_bits=24, k=4, crc=CRC16_CCITT, tail_segments=1)
        session = RatelessSession(
            encoder,
            decoder_factory=lambda enc: BubbleDecoder(enc, beam_width=16),
            channel=AWGNChannel(snr_db=12.0, adc_bits=14),
            framer=framer,
            termination="crc",
            count_overhead=True,
            max_symbols=512,
        )
        results = run_trials(session, 24, 8, seed=42)
        assert all(r.success for r in results)
        assert all(r.payload_correct for r in results)
        # Rate counts only payload bits, so it is below the framed-bits rate.
        assert all(r.payload_bits == 24 for r in results)

    def test_ml_and_bubble_agree_end_to_end(self):
        """On easy channels the beam decoder reproduces the ML decision."""
        params = SpinalParams(k=4, c=8, seed=7)
        encoder = SpinalEncoder(params)
        rng = spawn_rng(3, "ml-vs-bubble")
        channel = AWGNChannel(snr_db=8.0)
        from repro.core.encoder import ReceivedObservations

        for _ in range(5):
            message = random_message_bits(12, rng)
            passes = encoder.encode_passes(message, 3)
            observations = ReceivedObservations(3)
            for pass_index in range(3):
                received = channel.transmit(passes[pass_index], rng)
                for position in range(3):
                    observations.add(position, pass_index, received[position])
            ml = MLDecoder(encoder).decode(12, observations)
            bubble = BubbleDecoder(encoder, beam_width=64).decode(12, observations)
            assert np.array_equal(ml.message_bits, bubble.message_bits)


class TestBscEndToEnd:
    def test_rate_close_to_bsc_capacity(self):
        params = SpinalParams(k=3, bit_mode=True, seed=8)
        encoder = SpinalEncoder(params, puncturing=TailFirstPuncturing())
        framer = Framer(payload_bits=24, k=3)
        session = RatelessSession(
            encoder,
            decoder_factory=lambda enc: BubbleDecoder(enc, beam_width=16),
            channel=BSCChannel(0.1),
            framer=framer,
            max_symbols=4096,
            search="bisect",
        )
        results = run_trials(session, 24, 10, seed=9)
        assert all(r.payload_correct for r in results)
        mean_rate = float(np.mean([r.rate for r in results]))
        assert mean_rate > 0.5 * bsc_capacity(0.1)
        assert mean_rate < 1.0


class TestTimeVaryingChannels:
    def test_fading_channel_delivery(self):
        params = SpinalParams(k=4, c=8, seed=10)
        encoder = SpinalEncoder(params, puncturing=TailFirstPuncturing())
        framer = Framer(payload_bits=16, k=4)
        session = RatelessSession(
            encoder,
            decoder_factory=lambda enc: BubbleDecoder(enc, beam_width=16),
            channel=RayleighBlockFadingChannel(average_snr_db=15.0, coherence_symbols=8),
            framer=framer,
            max_symbols=2048,
            search="bisect",
        )
        results = run_trials(session, 16, 8, seed=11)
        assert sum(r.payload_correct for r in results) >= 7

    def test_bursty_interference_trace(self):
        rng = spawn_rng(12, "trace")
        trace = gilbert_elliott_trace(22.0, -3.0, 512, rng)
        params = SpinalParams(k=4, c=8, seed=13)
        encoder = SpinalEncoder(params, puncturing=TailFirstPuncturing())
        framer = Framer(payload_bits=16, k=4)
        session = RatelessSession(
            encoder,
            decoder_factory=lambda enc: BubbleDecoder(enc, beam_width=16),
            channel=TimeVaryingAWGNChannel(trace, adc_bits=14),
            framer=framer,
            max_symbols=512,
            search="bisect",
        )
        results = run_trials(session, 16, 8, seed=14)
        assert sum(r.payload_correct for r in results) >= 6

    def test_rateless_beats_mismatched_fixed_rate(self):
        """A fixed-rate config picked for the good state collapses in the bad
        state; the rateless code keeps delivering (the paper's core argument)."""
        rng = spawn_rng(15, "mismatch")
        ldpc = FixedRateLdpcSystem(
            LdpcConfig(Fraction(3, 4), "QAM-16"), max_iterations=15, algorithm="min-sum"
        )
        bad_snr = 2.0
        ldpc_rate = ldpc.achieved_rate(bad_snr, n_frames=6, rng=rng)

        params = SpinalParams(k=4, c=8, seed=16)
        encoder = SpinalEncoder(params, puncturing=TailFirstPuncturing())
        framer = Framer(payload_bits=16, k=4)
        session = RatelessSession(
            encoder,
            decoder_factory=lambda enc: BubbleDecoder(enc, beam_width=16),
            channel=AWGNChannel(snr_db=bad_snr, adc_bits=14),
            framer=framer,
            max_symbols=1024,
            search="bisect",
        )
        results = run_trials(session, 16, 8, seed=17)
        spinal_rate = float(np.mean([r.rate for r in results]))
        assert spinal_rate > ldpc_rate
