"""Tests for the two cell-level registry experiments (E16/E17).

The acceptance claims pinned here:

* cell sweeps are byte-identical across worker counts (the registry
  determinism contract holds for the new kernels);
* a 1-user cell cell-scaling point reproduces the bare rateless session's
  symbol accounting (the experiment is wired to the same streams the
  equivalence suite pins at the simulator level);
* the paper's network-level claim in falsifiable form: rateless aggregate
  goodput is at least the rate-adaptation baseline's at **every** SNR
  spread point (smoke scale).
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.experiments import registry
from repro.experiments.cell_scaling import build_cell_channel
from repro.experiments.registry import run_experiment
from repro.utils.store import RunStore


class TestCatalog:
    def test_both_experiments_are_registered_and_listed(self):
        names = registry.names()
        assert "cell-scaling" in names
        assert "cell-rateless-vs-adaptive" in names
        output = main(["list"])
        assert "cell-scaling" in output and "cell-rateless-vs-adaptive" in output


class TestBuildCellChannel:
    def test_awgn_sine_and_fading(self):
        from repro.channels.awgn import AWGNChannel, TimeVaryingAWGNChannel
        from repro.channels.fading import RayleighBlockFadingChannel

        assert isinstance(build_cell_channel("awgn", 10.0, 14, 0, 4), AWGNChannel)
        sine = build_cell_channel("sine:64:6.0", 10.0, 14, 1, 4)
        assert isinstance(sine, TimeVaryingAWGNChannel)
        assert sine.snr_trace_db.size == 64
        fading = build_cell_channel("fading:8", 10.0, None, 0, 4)
        assert isinstance(fading, RayleighBlockFadingChannel)
        assert fading.coherence_symbols == 8

    def test_sine_phases_are_staggered_per_user(self):
        a = build_cell_channel("sine:64:6.0", 10.0, None, 0, 4)
        b = build_cell_channel("sine:64:6.0", 10.0, None, 1, 4)
        assert a.snr_trace_db[0] != b.snr_trace_db[0]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown channel kind"):
            build_cell_channel("microwave", 10.0, None, 0, 1)


class TestCellScalingExperiment:
    def test_worker_count_does_not_change_persisted_bytes(self, tmp_path):
        experiment = registry.get("cell-scaling")
        serial = run_experiment(
            experiment, smoke=True, n_workers=1, store=RunStore(tmp_path / "w1")
        )
        parallel = run_experiment(
            experiment, smoke=True, n_workers=4, store=RunStore(tmp_path / "w4")
        )
        assert serial.path.read_bytes() == parallel.path.read_bytes()

    def test_single_user_cell_matches_the_bare_session(self, tmp_path):
        """The registry wiring preserves the simulator-level equivalence."""
        from repro.channels.awgn import AWGNChannel
        from repro.experiments.runner import spinal_config_from_params
        from repro.link.transport import packet_rng
        from repro.utils.bitops import random_message_bits
        from repro.utils.rng import spawn_rng

        experiment = registry.get("cell-scaling")
        outcome = run_experiment(
            experiment,
            overrides={"n_users": (1,), "scheduler": ("round-robin",)},
            smoke=True,
            store=RunStore(tmp_path),
        )
        (cell,) = [c for _k, _p, c in outcome.successful_cells()]
        params = {
            **experiment.spec.with_values(dict(experiment.smoke)).fixed,
            "seed": outcome.record["seed"],
        }
        config = spinal_config_from_params(params)
        session = config.build_session(
            AWGNChannel(12.0, adc_bits=config.adc_bits),  # 1 user: center SNR
            max_symbols=int(params["max_symbols"]),
            search="sequential",
        )
        codec = session.codec_session()
        seed = int(outcome.record["seed"])
        total = 0
        for index in range(int(params["packets_per_user"])):
            payload = random_message_bits(
                config.payload_bits, spawn_rng(seed, "cell-payload", 0, index)
            )
            total += codec.run(payload, packet_rng(seed, 0, index)).symbols_sent
        assert cell["aggregate"]["makespan"] == total
        assert cell["aggregate"]["total_symbols"] == total

    def test_smoke_goodput_is_scheduler_invariant_on_static_channels(self, tmp_path):
        outcome = run_experiment(
            registry.get("cell-scaling"), smoke=True, store=RunStore(tmp_path)
        )
        by_users: dict[int, set] = {}
        for _key, params, cell in outcome.successful_cells():
            by_users.setdefault(int(params["n_users"]), set()).add(
                round(cell["aggregate"]["goodput"], 12)
            )
        for n_users, goodputs in by_users.items():
            assert len(goodputs) == 1, (n_users, goodputs)


class TestRatelessVsAdaptiveExperiment:
    def test_rateless_goodput_dominates_at_every_spread(self, tmp_path):
        outcome = run_experiment(
            registry.get("cell-rateless-vs-adaptive"),
            smoke=True,
            store=RunStore(tmp_path),
        )
        by_mode: dict[str, dict[float, float]] = {"rateless": {}, "adaptive": {}}
        for _key, params, cell in outcome.successful_cells():
            by_mode[str(params["mode"])][float(params["snr_spread_db"])] = cell[
                "aggregate"
            ]["goodput"]
        assert by_mode["rateless"].keys() == by_mode["adaptive"].keys()
        for spread, rateless_goodput in by_mode["rateless"].items():
            assert rateless_goodput >= by_mode["adaptive"][spread], (
                spread,
                by_mode,
            )

    def test_worker_count_does_not_change_persisted_bytes(self, tmp_path):
        experiment = registry.get("cell-rateless-vs-adaptive")
        serial = run_experiment(
            experiment, smoke=True, n_workers=1, store=RunStore(tmp_path / "w1")
        )
        parallel = run_experiment(
            experiment, smoke=True, n_workers=3, store=RunStore(tmp_path / "w3")
        )
        assert serial.path.read_bytes() == parallel.path.read_bytes()

    def test_unknown_mode_becomes_a_structured_error_cell(self, tmp_path):
        outcome = run_experiment(
            registry.get("cell-rateless-vs-adaptive"),
            overrides={"mode": ("rateless", "bogus"), "snr_spread_db": (0.0,)},
            smoke=True,
            store=RunStore(tmp_path),
        )
        cells = outcome.record["cells"]
        assert "error" not in cells["mode=rateless,snr_spread_db=0.0"]["aggregate"]
        assert (
            "unknown mode"
            in cells["mode=bogus,snr_spread_db=0.0"]["aggregate"]["error"]
        )
