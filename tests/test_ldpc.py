"""Unit tests for the LDPC substrate: matrices, construction, encoder, decoder."""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest

from repro.ldpc import (
    BeliefPropagationDecoder,
    LDPCCode,
    QCMatrix,
    gf2_inverse,
    gf2_matmul_vec,
    gf2_rank,
    make_wifi_like_code,
)
from repro.ldpc.construction import WIFI_LIKE_RATES, build_base_matrix
from repro.ldpc.matrices import expand_base_matrix, gf2_solve, has_four_cycle
from repro.modulation import BPSK, QAM16


# Module-scoped codes so the (moderately expensive) construction runs once.
@pytest.fixture(scope="module")
def rate_half_code() -> LDPCCode:
    return make_wifi_like_code(Fraction(1, 2))


@pytest.fixture(scope="module")
def rate_56_code() -> LDPCCode:
    return make_wifi_like_code(Fraction(5, 6))


class TestGF2:
    def test_rank_of_identity(self):
        assert gf2_rank(np.eye(5, dtype=np.uint8)) == 5

    def test_rank_of_singular(self):
        matrix = np.array([[1, 1], [1, 1]], dtype=np.uint8)
        assert gf2_rank(matrix) == 1

    def test_inverse_roundtrip(self, rng):
        for _ in range(5):
            size = 12
            while True:
                matrix = rng.integers(0, 2, size=(size, size), dtype=np.uint8)
                if gf2_rank(matrix) == size:
                    break
            inverse = gf2_inverse(matrix)
            product = (matrix.astype(int) @ inverse.astype(int)) % 2
            assert np.array_equal(product, np.eye(size, dtype=int))

    def test_inverse_rejects_singular(self):
        with pytest.raises(ValueError):
            gf2_inverse(np.zeros((3, 3), dtype=np.uint8))

    def test_inverse_rejects_non_square(self):
        with pytest.raises(ValueError):
            gf2_inverse(np.zeros((2, 3), dtype=np.uint8))

    def test_solve(self, rng):
        matrix = np.array([[1, 1, 0], [0, 1, 1], [1, 0, 0]], dtype=np.uint8)
        x = np.array([1, 0, 1], dtype=np.uint8)
        b = gf2_matmul_vec(matrix, x)
        assert np.array_equal(gf2_solve(matrix, b), x)


class TestQCMatrix:
    def test_expansion_shape(self):
        base = np.array([[0, 1, -1], [-1, 2, 0]])
        qc_matrix = QCMatrix(base=base, lifting=4)
        assert qc_matrix.shape == (8, 12)
        expanded = qc_matrix.expand()
        assert expanded.shape == (8, 12)

    def test_expansion_is_circulant(self):
        base = np.array([[2]])
        expanded = expand_base_matrix(base, 4).toarray()
        # Row 0 has its 1 at column (0 + 2) % 4 = 2.
        assert expanded[0].tolist() == [0, 0, 1, 0]
        assert expanded[3].tolist() == [0, 1, 0, 0]

    def test_weights(self):
        base = np.array([[0, -1], [1, 3]])
        qc_matrix = QCMatrix(base=base, lifting=5)
        assert qc_matrix.column_weights().tolist() == [2, 1]
        assert qc_matrix.row_weights().tolist() == [1, 2]

    def test_validation(self):
        with pytest.raises(ValueError):
            QCMatrix(base=np.array([[5]]), lifting=4)  # shift >= lifting
        with pytest.raises(ValueError):
            QCMatrix(base=np.array([[-2]]), lifting=4)
        with pytest.raises(ValueError):
            QCMatrix(base=np.array([[0]]), lifting=0)

    def test_four_cycle_detection(self):
        # Two columns sharing two rows with equal shift differences -> cycle.
        cyclic = np.array([[0, 0], [0, 0]])
        acyclic = np.array([[0, 0], [0, 1]])
        assert has_four_cycle(cyclic, 4)
        assert not has_four_cycle(acyclic, 4)


class TestConstruction:
    @pytest.mark.parametrize("rate", WIFI_LIKE_RATES, ids=str)
    def test_all_rates_build(self, rate):
        qc_matrix = build_base_matrix(rate)
        n_parity, n_cols = qc_matrix.block_shape
        assert n_cols == 24
        assert n_parity == int(round(24 * (1 - rate)))
        assert not has_four_cycle(qc_matrix.base, qc_matrix.lifting)

    def test_deterministic_given_seed(self):
        a = build_base_matrix(Fraction(1, 2), seed=9)
        b = build_base_matrix(Fraction(1, 2), seed=9)
        assert np.array_equal(a.base, b.base)

    def test_different_seeds_differ(self):
        a = build_base_matrix(Fraction(1, 2), seed=1)
        b = build_base_matrix(Fraction(1, 2), seed=2)
        assert not np.array_equal(a.base, b.base)

    def test_rejects_unknown_rate(self):
        with pytest.raises(ValueError):
            make_wifi_like_code(0.4)

    def test_rejects_bad_codeword_length(self):
        with pytest.raises(ValueError):
            make_wifi_like_code(Fraction(1, 2), codeword_bits=650)

    def test_code_dimensions(self, rate_half_code, rate_56_code):
        assert rate_half_code.n == 648 and rate_half_code.k == 324
        assert rate_56_code.n == 648 and rate_56_code.k == 540


class TestLDPCEncoding:
    def test_encode_produces_valid_codeword(self, rate_half_code, rng):
        message = rng.integers(0, 2, size=rate_half_code.k, dtype=np.uint8)
        codeword = rate_half_code.encode(message)
        assert codeword.size == rate_half_code.n
        assert rate_half_code.is_codeword(codeword)

    def test_systematic(self, rate_half_code, rng):
        message = rng.integers(0, 2, size=rate_half_code.k, dtype=np.uint8)
        codeword = rate_half_code.encode(message)
        assert np.array_equal(rate_half_code.extract_message(codeword), message)

    def test_encode_batch_matches_single(self, rate_half_code, rng):
        messages = rng.integers(0, 2, size=(4, rate_half_code.k), dtype=np.uint8)
        batch = rate_half_code.encode_batch(messages)
        for row, message in zip(batch, messages):
            assert np.array_equal(row, rate_half_code.encode(message))

    def test_linearity(self, rate_half_code, rng):
        """The code is linear: the XOR of two codewords is a codeword."""
        a = rng.integers(0, 2, size=rate_half_code.k, dtype=np.uint8)
        b = rng.integers(0, 2, size=rate_half_code.k, dtype=np.uint8)
        xor = rate_half_code.encode(a) ^ rate_half_code.encode(b)
        assert rate_half_code.is_codeword(xor)

    def test_all_zero_is_codeword(self, rate_half_code):
        assert rate_half_code.is_codeword(np.zeros(rate_half_code.n, dtype=np.uint8))

    def test_wrong_length_rejected(self, rate_half_code):
        with pytest.raises(ValueError):
            rate_half_code.encode(np.zeros(10, dtype=np.uint8))
        with pytest.raises(ValueError):
            rate_half_code.syndrome(np.zeros(10, dtype=np.uint8))

    def test_rate_property(self, rate_half_code, rate_56_code):
        assert rate_half_code.rate == pytest.approx(0.5)
        assert rate_56_code.rate == pytest.approx(5 / 6)


def _bpsk_llrs(code, codewords, noise_energy, rng):
    """Transmit codewords over BPSK/AWGN and return channel LLRs."""
    modulation = BPSK()
    llrs = np.empty((codewords.shape[0], code.n))
    for i, codeword in enumerate(codewords):
        symbols = modulation.modulate(codeword)
        noise = np.sqrt(noise_energy / 2) * (
            rng.standard_normal(symbols.size) + 1j * rng.standard_normal(symbols.size)
        )
        llrs[i] = modulation.demodulate_llr(symbols + noise, noise_energy)
    return llrs


class TestBeliefPropagation:
    @pytest.mark.parametrize("algorithm", ["sum-product", "min-sum"])
    def test_decodes_clean_llrs(self, rate_half_code, algorithm, rng):
        decoder = BeliefPropagationDecoder(rate_half_code, max_iterations=5, algorithm=algorithm)
        message = rng.integers(0, 2, size=rate_half_code.k, dtype=np.uint8)
        codeword = rate_half_code.encode(message)
        llrs = np.where(codeword == 0, 10.0, -10.0)
        decoded, stats = decoder.decode(llrs)
        assert np.array_equal(decoded, codeword)
        assert stats.converged.all()
        assert stats.mean_iterations <= 2

    @pytest.mark.parametrize("algorithm", ["sum-product", "min-sum"])
    def test_corrects_noisy_frames_good_snr(self, rate_half_code, algorithm, rng):
        decoder = BeliefPropagationDecoder(rate_half_code, max_iterations=40, algorithm=algorithm)
        messages = rng.integers(0, 2, size=(8, rate_half_code.k), dtype=np.uint8)
        codewords = rate_half_code.encode_batch(messages)
        llrs = _bpsk_llrs(rate_half_code, codewords, noise_energy=1.0 / 10**0.25, rng=rng)  # ~2.5 dB
        decoded, stats = decoder.decode(llrs)
        assert stats.convergence_fraction >= 0.9
        errors = sum(
            not np.array_equal(decoded[i, : rate_half_code.k], messages[i]) for i in range(8)
        )
        assert errors <= 1

    def test_fails_at_terrible_snr(self, rate_half_code, rng):
        decoder = BeliefPropagationDecoder(rate_half_code, max_iterations=10)
        messages = rng.integers(0, 2, size=(4, rate_half_code.k), dtype=np.uint8)
        codewords = rate_half_code.encode_batch(messages)
        llrs = _bpsk_llrs(rate_half_code, codewords, noise_energy=10.0, rng=rng)  # -10 dB
        decoded, stats = decoder.decode(llrs)
        assert stats.convergence_fraction < 0.5

    def test_single_codeword_interface(self, rate_half_code, rng):
        decoder = BeliefPropagationDecoder(rate_half_code, max_iterations=5)
        codeword = rate_half_code.encode(
            rng.integers(0, 2, size=rate_half_code.k, dtype=np.uint8)
        )
        llrs = np.where(codeword == 0, 6.0, -6.0)
        decoded, stats = decoder.decode(llrs)
        assert decoded.shape == (rate_half_code.n,)
        assert stats.iterations_used.shape == (1,)

    def test_rejects_wrong_llr_length(self, rate_half_code):
        decoder = BeliefPropagationDecoder(rate_half_code)
        with pytest.raises(ValueError):
            decoder.decode(np.zeros(100))

    def test_validation(self, rate_half_code):
        with pytest.raises(ValueError):
            BeliefPropagationDecoder(rate_half_code, max_iterations=0)
        with pytest.raises(ValueError):
            BeliefPropagationDecoder(rate_half_code, algorithm="turbo")

    def test_min_sum_and_sum_product_agree_at_high_snr(self, rate_56_code, rng):
        message = rng.integers(0, 2, size=rate_56_code.k, dtype=np.uint8)
        codeword = rate_56_code.encode(message)
        modulation = QAM16()
        noise_energy = 10 ** (-20 / 10)
        symbols = modulation.modulate(codeword)
        noise = np.sqrt(noise_energy / 2) * (
            rng.standard_normal(symbols.size) + 1j * rng.standard_normal(symbols.size)
        )
        llrs = modulation.demodulate_llr(symbols + noise, noise_energy)
        for algorithm in ("sum-product", "min-sum"):
            decoder = BeliefPropagationDecoder(rate_56_code, algorithm=algorithm)
            decoded, _ = decoder.decode(llrs)
            assert np.array_equal(decoded, codeword)
