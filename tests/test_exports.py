"""Export hygiene: ``__all__`` is real, and README examples import cleanly.

Two guarantees:

* every name in the ``__all__`` of the public packages (``repro``,
  ``repro.phy``, ``repro.core``, ``repro.link``, ``repro.mac``) actually
  resolves, and the list is sorted-set clean (no duplicates);
* every ``import``/``from ... import`` statement appearing in a README code
  fence executes — so the documented examples cannot rot silently — and
  every symbol a README example pulls from ``repro`` is importable from the
  package root.
"""

from __future__ import annotations

import importlib
import re
from pathlib import Path

import pytest

README = Path(__file__).parent.parent / "README.md"

PUBLIC_PACKAGES = (
    "repro",
    "repro.phy",
    "repro.core",
    "repro.link",
    "repro.mac",
    "repro.serve",
    "repro.net",
    "repro.obs",
    "repro.netcode",
)


@pytest.mark.parametrize("package", PUBLIC_PACKAGES)
def test_all_names_resolve(package):
    module = importlib.import_module(package)
    exported = getattr(module, "__all__", None)
    assert exported, f"{package} must declare __all__"
    assert len(exported) == len(set(exported)), f"duplicate names in {package}.__all__"
    for name in exported:
        assert hasattr(module, name), f"{package}.__all__ lists missing name {name!r}"


def _readme_code_blocks() -> list[str]:
    """The contents of the README's fenced code blocks (fence state machine)."""
    blocks: list[str] = []
    current: list[str] | None = None
    for line in README.read_text().splitlines():
        if line.strip().startswith("```"):
            if current is None:
                current = []
            else:
                blocks.append("\n".join(current))
                current = None
        elif current is not None:
            current.append(line)
    return blocks


def _readme_import_statements() -> list[str]:
    """Every import statement inside the README's fenced code blocks."""
    statements: list[str] = []
    for block in _readme_code_blocks():
        block_lines = block.splitlines()
        index = 0
        while index < len(block_lines):
            line = block_lines[index].strip()
            if line.startswith(("import ", "from ")) and "repro" in line:
                statement = block_lines[index].rstrip()
                # Multi-line parenthesised imports: consume to the ")".
                while "(" in statement and ")" not in statement:
                    index += 1
                    statement += "\n" + block_lines[index].rstrip()
                statements.append(statement)
            index += 1
    return statements


def test_readme_has_import_examples():
    assert _readme_import_statements(), "README should show importable examples"


@pytest.mark.parametrize("statement", _readme_import_statements())
def test_readme_imports_execute(statement):
    exec(compile(statement, "<README>", "exec"), {})


def test_readme_package_root_symbols_are_exported():
    """Symbols README examples pull from the bare ``repro`` root are in __all__."""
    import repro

    root_imports = [
        s for s in _readme_import_statements() if s.lstrip().startswith("from repro import")
    ]
    for statement in root_imports:
        names = re.sub(r"from repro import|\(|\)", " ", statement)
        for name in re.split(r"[,\s]+", names):
            if name:
                assert name in repro.__all__, f"README uses repro.{name} (not in __all__)"
