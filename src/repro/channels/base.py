"""Channel interface.

A channel turns transmitted values into received values, consuming
randomness from an explicitly passed generator so that every experiment is
reproducible from its seed.  Channels may be stateful (e.g. a fading channel
advances through its SNR trace as symbols flow through it); the rateless
session calls :meth:`Channel.reset` at the start of each trial.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["Channel", "SymbolChannel", "BitChannel"]


class Channel(ABC):
    """Base class for all channel models."""

    #: Either ``"symbol"`` (complex I/Q inputs) or ``"bit"`` (0/1 inputs).
    domain: str = "symbol"

    @abstractmethod
    def transmit(self, values: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Pass ``values`` through the channel and return what is received."""

    def reset(self) -> None:
        """Reset per-trial state (no-op for memoryless channels)."""

    def describe(self) -> str:
        """Short human-readable description for experiment metadata."""
        return type(self).__name__


class SymbolChannel(Channel):
    """Marker base class for channels taking complex constellation points."""

    domain = "symbol"


class BitChannel(Channel):
    """Marker base class for channels taking 0/1 coded bits."""

    domain = "bit"
