"""SNR trace generators for time-varying channel experiments.

The examples and the rate-adaptation baseline need plausible "channel
quality over time" sequences: slow random walks (mobility), two-state
Gilbert–Elliott bursts (interference), and periodic fades.  These are pure
functions of an explicit RNG so every figure is reproducible.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "constant_trace",
    "random_walk_trace",
    "gilbert_elliott_trace",
    "sinusoidal_trace",
]


def constant_trace(snr_db: float, length: int) -> np.ndarray:
    """A constant-SNR trace (degenerates to the plain AWGN channel)."""
    if length <= 0:
        raise ValueError(f"length must be positive, got {length}")
    return np.full(length, float(snr_db))


def random_walk_trace(
    start_snr_db: float,
    length: int,
    step_db: float,
    rng: np.random.Generator,
    min_snr_db: float = -10.0,
    max_snr_db: float = 40.0,
) -> np.ndarray:
    """Reflected Gaussian random walk between ``min_snr_db`` and ``max_snr_db``.

    Models slow channel drift (e.g. pedestrian mobility).  ``step_db`` is the
    per-symbol standard deviation of the SNR increment.
    """
    if length <= 0:
        raise ValueError(f"length must be positive, got {length}")
    if min_snr_db >= max_snr_db:
        raise ValueError("min_snr_db must be below max_snr_db")
    steps = rng.normal(0.0, step_db, size=length)
    trace = np.empty(length)
    current = float(np.clip(start_snr_db, min_snr_db, max_snr_db))
    for i, step in enumerate(steps):
        current += step
        # Reflect at the boundaries to keep the walk inside the range.
        if current > max_snr_db:
            current = 2 * max_snr_db - current
        if current < min_snr_db:
            current = 2 * min_snr_db - current
        current = float(np.clip(current, min_snr_db, max_snr_db))
        trace[i] = current
    return trace


def gilbert_elliott_trace(
    good_snr_db: float,
    bad_snr_db: float,
    length: int,
    rng: np.random.Generator,
    p_good_to_bad: float = 0.05,
    p_bad_to_good: float = 0.2,
) -> np.ndarray:
    """Two-state Markov (Gilbert–Elliott) trace modelling bursty interference."""
    if length <= 0:
        raise ValueError(f"length must be positive, got {length}")
    for name, p in (("p_good_to_bad", p_good_to_bad), ("p_bad_to_good", p_bad_to_good)):
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"{name} must be a probability, got {p}")
    trace = np.empty(length)
    in_good_state = True
    for i in range(length):
        trace[i] = good_snr_db if in_good_state else bad_snr_db
        if in_good_state and rng.random() < p_good_to_bad:
            in_good_state = False
        elif not in_good_state and rng.random() < p_bad_to_good:
            in_good_state = True
    return trace


def sinusoidal_trace(
    mean_snr_db: float,
    amplitude_db: float,
    period_symbols: int,
    length: int,
    phase: float = 0.0,
) -> np.ndarray:
    """Deterministic periodic fading (e.g. rotating-machinery multipath)."""
    if length <= 0:
        raise ValueError(f"length must be positive, got {length}")
    if period_symbols <= 0:
        raise ValueError(f"period_symbols must be positive, got {period_symbols}")
    t = np.arange(length)
    return mean_snr_db + amplitude_db * np.sin(2 * np.pi * t / period_symbols + phase)
