"""SNR trace generators for time-varying channel experiments.

The examples and the rate-adaptation baseline need plausible "channel
quality over time" sequences: slow random walks (mobility), two-state
Gilbert–Elliott bursts (interference), and periodic fades.  These are pure
functions of an explicit RNG so every figure is reproducible.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "constant_trace",
    "random_walk_trace",
    "gilbert_elliott_trace",
    "sinusoidal_trace",
]


def constant_trace(snr_db: float, length: int) -> np.ndarray:
    """A constant-SNR trace (degenerates to the plain AWGN channel)."""
    if length <= 0:
        raise ValueError(f"length must be positive, got {length}")
    return np.full(length, float(snr_db))


def random_walk_trace(
    start_snr_db: float,
    length: int,
    step_db: float,
    rng: np.random.Generator,
    min_snr_db: float = -10.0,
    max_snr_db: float = 40.0,
) -> np.ndarray:
    """Reflected Gaussian random walk between ``min_snr_db`` and ``max_snr_db``.

    Models slow channel drift (e.g. pedestrian mobility).  ``step_db`` is the
    per-symbol standard deviation of the SNR increment.
    """
    if length <= 0:
        raise ValueError(f"length must be positive, got {length}")
    if min_snr_db >= max_snr_db:
        raise ValueError("min_snr_db must be below max_snr_db")
    steps = rng.normal(0.0, step_db, size=length)
    trace = np.empty(length)
    current = float(np.clip(start_snr_db, min_snr_db, max_snr_db))
    # Vectorized between boundary hits: a prefix-sum from ``current`` adds the
    # steps in exactly the order (and float associativity) of the one-at-a-time
    # walk, so every in-range segment is bit-identical to the scalar loop; the
    # rare reflecting step is replayed scalar and the sweep resumes after it.
    i = 0
    while i < length:
        path = np.cumsum(np.concatenate(((current,), steps[i:])))[1:]
        outside = (path > max_snr_db) | (path < min_snr_db)
        hit = int(np.argmax(outside))
        if not outside[hit]:
            trace[i:] = path
            break
        if hit > 0:
            trace[i : i + hit] = path[:hit]
        # The reflecting step, exactly as the scalar loop computes it (both
        # reflections may apply for a step larger than the whole range).
        value = float(path[hit])
        if value > max_snr_db:
            value = 2 * max_snr_db - value
        if value < min_snr_db:
            value = 2 * min_snr_db - value
        value = float(np.clip(value, min_snr_db, max_snr_db))
        trace[i + hit] = value
        current = value
        i += hit + 1
    return trace


def gilbert_elliott_trace(
    good_snr_db: float,
    bad_snr_db: float,
    length: int,
    rng: np.random.Generator,
    p_good_to_bad: float = 0.05,
    p_bad_to_good: float = 0.2,
) -> np.ndarray:
    """Two-state Markov (Gilbert–Elliott) trace modelling bursty interference."""
    if length <= 0:
        raise ValueError(f"length must be positive, got {length}")
    for name, p in (("p_good_to_bad", p_good_to_bad), ("p_bad_to_good", p_bad_to_good)):
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"{name} must be a probability, got {p}")
    # The scalar loop draws exactly one uniform per symbol (the two branch
    # draws are mutually exclusive), so one bulk draw consumes the identical
    # RNG stream; the trace is then filled run by run — each state persists
    # until its first sub-threshold draw, which takes effect the *next* symbol.
    draws = rng.random(length)
    trace = np.empty(length)
    in_good_state = True
    i = 0
    while i < length:
        p = p_good_to_bad if in_good_state else p_bad_to_good
        flips = draws[i:] < p
        hit = int(np.argmax(flips))
        if not flips[hit]:
            trace[i:] = good_snr_db if in_good_state else bad_snr_db
            break
        trace[i : i + hit + 1] = good_snr_db if in_good_state else bad_snr_db
        in_good_state = not in_good_state
        i += hit + 1
    return trace


def sinusoidal_trace(
    mean_snr_db: float,
    amplitude_db: float,
    period_symbols: int,
    length: int,
    phase: float = 0.0,
) -> np.ndarray:
    """Deterministic periodic fading (e.g. rotating-machinery multipath)."""
    if length <= 0:
        raise ValueError(f"length must be positive, got {length}")
    if period_symbols <= 0:
        raise ValueError(f"period_symbols must be positive, got {period_symbols}")
    t = np.arange(length)
    return mean_snr_db + amplitude_db * np.sin(2 * np.pi * t / period_symbols + phase)
