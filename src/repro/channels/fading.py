"""Rayleigh block-fading channel with coherent reception.

The paper's motivation (Section 1) is precisely channels whose quality
changes due to "noise, attenuation, interference, and multipath fading".
This channel draws an i.i.d. Rayleigh gain per coherence block; the receiver
is assumed to know the gain (pilot-aided coherent detection) and equalises
it, so what the decoder sees is an AWGN observation whose *effective SNR*
varies block to block.  Examples use it to demonstrate that the rateless
session implicitly adapts to fades without any explicit rate selection.
"""

from __future__ import annotations

import math

import numpy as np

from repro.channels.base import SymbolChannel
from repro.utils.units import db_to_linear

__all__ = ["RayleighBlockFadingChannel"]


class RayleighBlockFadingChannel(SymbolChannel):
    """Block-fading channel: gain constant within each coherence block.

    Parameters
    ----------
    average_snr_db:
        Mean SNR (averaged over the fading distribution).
    coherence_symbols:
        Number of consecutive symbols sharing one fading gain.
    signal_power:
        Average transmitted energy per symbol.
    """

    def __init__(
        self,
        average_snr_db: float,
        coherence_symbols: int = 16,
        signal_power: float = 1.0,
    ) -> None:
        if coherence_symbols < 1:
            raise ValueError(
                f"coherence_symbols must be at least 1, got {coherence_symbols}"
            )
        if signal_power <= 0:
            raise ValueError(f"signal_power must be positive, got {signal_power}")
        self.average_snr_db = float(average_snr_db)
        self.coherence_symbols = int(coherence_symbols)
        self.signal_power = float(signal_power)
        self.noise_energy = self.signal_power / db_to_linear(average_snr_db)
        self._symbols_in_block = 0
        self._current_gain = 1.0

    def reset(self) -> None:
        self._symbols_in_block = 0
        self._current_gain = 1.0

    def _draw_gain(self, rng: np.random.Generator) -> float:
        # |h|^2 is exponential with unit mean for Rayleigh fading.
        h = (rng.standard_normal() + 1j * rng.standard_normal()) / math.sqrt(2.0)
        return abs(h)

    def transmit(self, values: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        values = np.asarray(values, dtype=np.complex128).reshape(-1)
        received = np.empty_like(values)
        sigma_per_dim = math.sqrt(self.noise_energy / 2.0)
        for i, x in enumerate(values):
            if self._symbols_in_block == 0:
                self._current_gain = self._draw_gain(rng)
            noise = sigma_per_dim * (rng.standard_normal() + 1j * rng.standard_normal())
            # Coherent receiver equalises the known gain; noise is enhanced
            # by 1/|h| during deep fades, which is exactly the effect the
            # rateless code must ride out.
            received[i] = x + noise / max(self._current_gain, 1e-6)
            self._symbols_in_block = (self._symbols_in_block + 1) % self.coherence_symbols
        return received

    def describe(self) -> str:
        return (
            f"RayleighBlockFading(avg={self.average_snr_db:.1f} dB, "
            f"coherence={self.coherence_symbols})"
        )
