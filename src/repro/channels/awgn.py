"""Additive white Gaussian noise channels.

Conventions (see also :mod:`repro.utils.units`): the transmitted
constellation has unit average energy per complex symbol, noise is circular
complex Gaussian with total energy ``N0`` per complex symbol (variance
``N0/2`` per real dimension), and ``SNR = signal_power / N0``.  The Shannon
capacity quoted against this SNR is ``log2(1 + SNR)`` bits per symbol.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.channels.base import SymbolChannel
from repro.channels.quantize import AdcQuantizer
from repro.utils.units import db_to_linear

__all__ = ["AWGNChannel", "TimeVaryingAWGNChannel"]

#: Full-scale margin for the receiver ADC, in multiples of the RMS received
#: amplitude per dimension.  Four sigma keeps clipping negligible.
_ADC_MARGIN = 4.0


class AWGNChannel(SymbolChannel):
    """Memoryless complex AWGN channel with optional receiver ADC.

    Parameters
    ----------
    snr_db:
        Signal-to-noise ratio in dB (per complex symbol).
    signal_power:
        Average transmitted energy per symbol; must match the constellation
        in use (1.0 for the library's default unit-power constellations).
    adc_bits:
        If given, the received symbols are quantised to this many bits per
        dimension, mimicking the paper's 14-bit ADC.
    """

    def __init__(
        self,
        snr_db: float,
        signal_power: float = 1.0,
        adc_bits: int | None = None,
    ) -> None:
        if signal_power <= 0:
            raise ValueError(f"signal_power must be positive, got {signal_power}")
        self.snr_db = float(snr_db)
        self.signal_power = float(signal_power)
        self.noise_energy = self.signal_power / db_to_linear(snr_db)
        if adc_bits is None:
            self.quantizer = None
        else:
            rms_per_dim = math.sqrt((self.signal_power + self.noise_energy) / 2.0)
            self.quantizer = AdcQuantizer(
                bits=adc_bits, full_scale=_ADC_MARGIN * rms_per_dim
            )

    @property
    def snr_linear(self) -> float:
        return self.signal_power / self.noise_energy

    def transmit(self, values: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        values = np.asarray(values, dtype=np.complex128)
        sigma_per_dim = math.sqrt(self.noise_energy / 2.0)
        noise = sigma_per_dim * (
            rng.standard_normal(values.shape) + 1j * rng.standard_normal(values.shape)
        )
        received = values + noise
        if self.quantizer is not None:
            received = self.quantizer.quantize(received)
        return received

    def describe(self) -> str:
        adc = f", adc={self.quantizer.bits}b" if self.quantizer is not None else ""
        return f"AWGN(snr={self.snr_db:.1f} dB{adc})"


class TimeVaryingAWGNChannel(SymbolChannel):
    """AWGN channel whose SNR follows a per-symbol trace.

    The introduction of the paper motivates rateless codes with channels
    whose conditions "vary with time, even at time-scales shorter than a
    single packet transmission"; this channel realises that setting.  The
    trace is indexed by the number of symbols transmitted so far within the
    current trial and repeats cyclically if the trial outlives it.
    """

    def __init__(
        self,
        snr_trace_db: Sequence[float],
        signal_power: float = 1.0,
        adc_bits: int | None = None,
    ) -> None:
        trace = np.asarray(list(snr_trace_db), dtype=np.float64)
        if trace.size == 0:
            raise ValueError("snr_trace_db must contain at least one value")
        if signal_power <= 0:
            raise ValueError(f"signal_power must be positive, got {signal_power}")
        self.snr_trace_db = trace
        self.signal_power = float(signal_power)
        self.adc_bits = adc_bits
        self._cursor = 0
        if adc_bits is None:
            self.quantizer = None
        else:
            worst_noise = self.signal_power / db_to_linear(float(trace.min()))
            rms_per_dim = math.sqrt((self.signal_power + worst_noise) / 2.0)
            self.quantizer = AdcQuantizer(
                bits=adc_bits, full_scale=_ADC_MARGIN * rms_per_dim
            )

    def reset(self) -> None:
        self._cursor = 0

    def set_time(self, time: int) -> None:
        """Pin the trace cursor to an external clock tick.

        By default the trace is indexed by the symbols *this channel* has
        carried (conditions vary over a single sender's transmission).  A
        multi-user simulator instead owns one shared wall clock and calls
        ``set_time(now)`` before each grant, so a user's channel keeps
        evolving while others transmit — the regime where opportunistic
        scheduling has something to exploit (see :mod:`repro.mac.cell`).
        """
        time = int(time)
        if time < 0:
            raise ValueError(f"time must be non-negative, got {time}")
        self._cursor = time

    @property
    def mean_snr_db(self) -> float:
        return float(self.snr_trace_db.mean())

    def transmit(self, values: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        values = np.asarray(values, dtype=np.complex128)
        n = values.size
        indices = (self._cursor + np.arange(n)) % self.snr_trace_db.size
        self._cursor += n
        snr_linear = np.power(10.0, self.snr_trace_db[indices] / 10.0)
        noise_energy = self.signal_power / snr_linear
        sigma_per_dim = np.sqrt(noise_energy / 2.0).reshape(values.shape)
        noise = sigma_per_dim * (
            rng.standard_normal(values.shape) + 1j * rng.standard_normal(values.shape)
        )
        received = values + noise
        if self.quantizer is not None:
            received = self.quantizer.quantize(received)
        return received

    def describe(self) -> str:
        return (
            f"TimeVaryingAWGN(mean={self.mean_snr_db:.1f} dB, "
            f"min={self.snr_trace_db.min():.1f}, max={self.snr_trace_db.max():.1f})"
        )
