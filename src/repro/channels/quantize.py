"""Receiver-side ADC quantisation.

The paper's Figure 2 experiment notes: "To simulate quantization of an ADC,
the receiver quantizes each dimension to 14 bits."  This module models that
ADC: a uniform mid-rise quantiser with ``bits`` bits per real dimension over
the range ``[-full_scale, +full_scale]``, with saturation outside the range.
Experiment E10 sweeps the bit depth to confirm 14 bits is effectively
transparent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["AdcQuantizer"]


@dataclass(frozen=True)
class AdcQuantizer:
    """Uniform quantiser applied independently to I and Q.

    Parameters
    ----------
    bits:
        ADC resolution in bits per dimension (the paper uses 14).
    full_scale:
        Inputs are clipped to ``[-full_scale, +full_scale]`` before
        quantisation; choose it a few standard deviations above the expected
        received amplitude.
    """

    bits: int
    full_scale: float

    def __post_init__(self) -> None:
        if not 1 <= self.bits <= 32:
            raise ValueError(f"ADC bits must be in [1, 32], got {self.bits}")
        if self.full_scale <= 0:
            raise ValueError(f"full_scale must be positive, got {self.full_scale}")

    @property
    def step(self) -> float:
        """Quantisation step size."""
        return 2.0 * self.full_scale / (1 << self.bits)

    def quantize_real(self, values: np.ndarray) -> np.ndarray:
        """Quantise a real-valued array."""
        values = np.asarray(values, dtype=np.float64)
        clipped = np.clip(values, -self.full_scale, self.full_scale - self.step)
        indices = np.floor((clipped + self.full_scale) / self.step)
        return -self.full_scale + (indices + 0.5) * self.step

    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Quantise a complex array, each dimension independently."""
        values = np.asarray(values)
        if np.iscomplexobj(values):
            return self.quantize_real(values.real) + 1j * self.quantize_real(values.imag)
        return self.quantize_real(values)
