"""Binary erasure channel.

Not used by the paper's own evaluation (spinal codes target AWGN and BSC),
but the related-work discussion contrasts spinal codes with Raptor/LT codes,
which are capacity-achieving for the BEC; the erasure channel is provided so
examples can make that comparison concrete and so the LDPC substrate can be
exercised under erasures.

Erased positions are marked with the sentinel :data:`ERASURE` (the integer
2, which is never a valid bit).
"""

from __future__ import annotations

import numpy as np

from repro.channels.base import BitChannel

__all__ = ["BECChannel", "ERASURE"]

#: Marker placed in the received sequence where a bit was erased.
ERASURE = np.uint8(2)


class BECChannel(BitChannel):
    """Memoryless binary erasure channel with erasure probability ``p``."""

    def __init__(self, erasure_probability: float) -> None:
        if not 0.0 <= erasure_probability < 1.0:
            raise ValueError(
                f"erasure probability must be in [0, 1), got {erasure_probability}"
            )
        self.erasure_probability = float(erasure_probability)

    def transmit(self, values: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        values = np.asarray(values, dtype=np.uint8)
        if values.size and values.max() > 1:
            raise ValueError("BEC inputs must be 0/1 bits")
        received = values.copy()
        erased = rng.random(values.shape) < self.erasure_probability
        received[erased] = ERASURE
        return received

    def describe(self) -> str:
        return f"BEC(p={self.erasure_probability:g})"
