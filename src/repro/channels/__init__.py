"""Channel models used by the paper's evaluation and by the extensions.

The paper evaluates spinal codes over the complex AWGN channel (Figure 2,
with 14-bit ADC quantisation at the receiver) and analyses them over the
binary symmetric channel (Theorem 2).  This package provides those two
channels plus the supporting cast needed by the examples and extension
experiments: a binary erasure channel, Rayleigh block fading, time-varying
SNR traces (for the rate-adaptation comparisons the introduction motivates),
the ADC quantiser as a standalone component, and the frame-level packet
erasure model the link transport uses for its ACK (reverse) channel.
"""

from repro.channels.awgn import AWGNChannel, TimeVaryingAWGNChannel
from repro.channels.base import BitChannel, Channel, SymbolChannel
from repro.channels.bec import BECChannel, ERASURE
from repro.channels.bsc import BSCChannel
from repro.channels.erasure import PacketErasureChannel
from repro.channels.fading import RayleighBlockFadingChannel
from repro.channels.quantize import AdcQuantizer
from repro.channels.traces import (
    constant_trace,
    gilbert_elliott_trace,
    random_walk_trace,
    sinusoidal_trace,
)

__all__ = [
    "Channel",
    "SymbolChannel",
    "BitChannel",
    "AWGNChannel",
    "TimeVaryingAWGNChannel",
    "BSCChannel",
    "BECChannel",
    "ERASURE",
    "PacketErasureChannel",
    "RayleighBlockFadingChannel",
    "AdcQuantizer",
    "constant_trace",
    "random_walk_trace",
    "gilbert_elliott_trace",
    "sinusoidal_trace",
]
