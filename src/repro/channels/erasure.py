"""Packet-erasure model for the transport layer's reverse (ACK) channel.

The forward channel in this library is a *noisy* channel at symbol
granularity (AWGN, BSC, fading); feedback frames are tiny and heavily
protected, so the link-transport simulator models the reverse direction at
*frame* granularity instead: an ACK either arrives intact after a fixed
delay or is erased entirely.  This is the standard abstraction in the
sliding-window ARQ literature, and it is what makes ACK loss a first-class,
*measured* cost in :mod:`repro.link.transport` rather than the assumed-free
feedback of the paper's evaluation.
"""

from __future__ import annotations

import numpy as np

__all__ = ["PacketErasureChannel"]


class PacketErasureChannel:
    """I.i.d. frame erasures: each frame survives with ``1 - loss_probability``.

    Draws consume exactly one uniform variate from the supplied generator
    per frame, so a fixed seed yields a reproducible erasure schedule for a
    deterministic sequence of sends (the event scheduler guarantees the
    sequence).
    """

    def __init__(self, loss_probability: float = 0.0) -> None:
        if not 0.0 <= loss_probability <= 1.0:
            raise ValueError(
                f"loss_probability must be in [0, 1], got {loss_probability}"
            )
        self.loss_probability = float(loss_probability)

    def survives(self, rng: np.random.Generator) -> bool:
        """Whether the next frame makes it across (consumes one RNG draw)."""
        if self.loss_probability == 0.0:
            return True
        if self.loss_probability == 1.0:
            return False
        return bool(rng.random() >= self.loss_probability)

    def describe(self) -> str:
        return f"PacketErasure(loss={self.loss_probability:g})"
