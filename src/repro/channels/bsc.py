"""Binary symmetric channel.

Theorem 2 of the paper states that spinal codes with ML decoding achieve
capacity over the BSC; experiment E4 measures the rate of the practical
decoder against ``C_bsc(p) = 1 - H2(p)``.  The channel flips each coded bit
independently with probability ``p``.
"""

from __future__ import annotations

import numpy as np

from repro.channels.base import BitChannel

__all__ = ["BSCChannel"]


class BSCChannel(BitChannel):
    """Memoryless binary symmetric channel with crossover probability ``p``."""

    def __init__(self, crossover_probability: float) -> None:
        if not 0.0 <= crossover_probability <= 0.5:
            raise ValueError(
                "crossover probability must be in [0, 0.5], got "
                f"{crossover_probability}"
            )
        self.crossover_probability = float(crossover_probability)

    def transmit(self, values: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        values = np.asarray(values, dtype=np.uint8)
        if values.size and values.max() > 1:
            raise ValueError("BSC inputs must be 0/1 bits")
        flips = rng.random(values.shape) < self.crossover_probability
        return (values ^ flips.astype(np.uint8)).astype(np.uint8)

    def describe(self) -> str:
        return f"BSC(p={self.crossover_probability:g})"
