"""Serving at scale: the deterministic high-concurrency soak engine.

See :mod:`repro.serve.engine` for the architecture — one event loop
multiplexing thousands of in-flight :class:`~repro.phy.session.CodecSession`
transmissions, a per-tick batched decode stage over
:class:`~repro.core.decoder_vectorized.BatchDecoder`, preallocated symbol
buffers, and bounded-admission backpressure.
"""

from repro.serve.engine import (
    SessionDelivery,
    SoakConfig,
    SoakEngine,
    SoakResult,
    run_sequential_baseline,
    run_soak,
)

__all__ = [
    "SessionDelivery",
    "SoakConfig",
    "SoakEngine",
    "SoakResult",
    "run_sequential_baseline",
    "run_soak",
]
