"""The soak engine: thousands of concurrent rateless sessions, one event loop.

This is the "serving at scale" layer the ROADMAP's async item calls for: a
deterministic streaming engine that multiplexes many concurrent in-flight
:class:`~repro.phy.session.CodecTransmission` packets over one
:class:`~repro.link.events.EventScheduler` clock, batches same-tick decode
work across sessions into :class:`~repro.core.decoder_vectorized.BatchDecoder`
kernels, and applies explicit backpressure (bounded in-flight admission with
FIFO queueing and queue-depth accounting).

Architecture — one tick of the shared symbol-time clock:

1. **Block arrivals** (``PRIORITY_BLOCK``): each in-flight session's current
   subpass block lands ``n_symbols`` ticks after it was sent (the block's
   air time).  Arrivals only *stage* the block — received values live in a
   preallocated per-slot symbol buffer, so the in-flight window performs no
   per-block allocations.
2. **The flush** (``PRIORITY_ACK``): one coalesced event per tick absorbs
   every staged block into its session's observation store without decoding
   (``deliver(..., attempt=False)``), then decodes *all* gate-open sessions
   of the tick in one ragged :meth:`BatchDecoder.decode_subset` call and
   feeds each result back through
   :meth:`~repro.phy.session.CodecTransmission.record_status` — so per-
   session accounting and genie termination are exactly the sequential
   session loop's, while the decode work is amortised across the batch.
3. **Send decisions and admissions** (``PRIORITY_SEND``): undecoded sessions
   immediately send their next block (continuous streaming with immediate
   feedback, the same protocol :meth:`CodecSession.run` models); finished
   sessions free an in-flight slot and the FIFO backlog admits the next
   request.

Determinism: all randomness is derived per session from the config seed
(payload and noise streams via :func:`~repro.utils.rng.spawn_rng`), the
event order is a pure function of the config, and the batched decode is
bit-exact per session regardless of batch composition or kernel chunking —
so the delivery log is byte-identical for any ``max_stack_elements`` and
identical between the batched and the one-session-at-a-time drivers
(``batching=False``).  Per-session outcomes also match a plain
``CodecSession.run`` of the same packet (everything except decoder ``work``,
whose unit is engine-specific); :func:`run_sequential_baseline` exposes that
anchor.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.channels.awgn import AWGNChannel
from repro.core.decoder_vectorized import BatchDecoder, make_decoder_factory
from repro.core.encoder import SpinalEncoder, SubpassBlock
from repro.core.framing import Framer
from repro.core.params import SpinalParams
from repro.core.puncturing import TailFirstPuncturing
from repro.link.events import (
    EventScheduler,
    PRIORITY_ACK,
    PRIORITY_BLOCK,
    PRIORITY_SEND,
)
from repro.obs.telemetry import current as current_telemetry
from repro.phy.protocol import DecodeStatus
from repro.phy.session import CodecResult, CodecSession, CodecTransmission
from repro.phy.spinal import SpinalCode
from repro.utils.bitops import random_message_bits
from repro.utils.rng import derive_seed, spawn_rng

__all__ = [
    "SoakConfig",
    "SoakEngine",
    "SoakResult",
    "SessionDelivery",
    "run_soak",
    "run_sequential_baseline",
]


@dataclass(frozen=True)
class SoakConfig:
    """One soak workload: N spinal sessions through one bounded engine.

    All sessions share the code *shape* (``payload_bits``, ``k``, ``c``,
    ``beam_width`` — the :class:`BatchDecoder` requirement) but use
    independent per-session hash seeds and noise streams.  ``max_in_flight``
    is the backpressure bound: at most that many transmissions may hold a
    symbol-buffer slot concurrently, the rest wait in a FIFO backlog.
    ``arrival_spacing`` is the request inter-arrival gap in symbol-times
    (0 = all requests arrive at tick 0).  ``batching=False`` selects the
    one-session-at-a-time sequential decode driver (same event schedule,
    same kernels, batch groups of one) — the baseline the soak benchmark
    compares against.  ``max_stack_elements`` caps the stacked kernel chunk
    (``None`` = the library default) and must never change any outcome.
    """

    n_sessions: int = 256
    max_in_flight: int = 64
    arrival_spacing: int = 0
    snr_db: float = 8.0
    seed: int = 20111114
    payload_bits: int = 16
    k: int = 4
    c: int = 6
    beam_width: int = 8
    max_symbols: int = 512
    batching: bool = True
    max_stack_elements: int | None = None

    def __post_init__(self) -> None:
        if self.n_sessions < 1:
            raise ValueError(f"n_sessions must be at least 1, got {self.n_sessions}")
        if self.max_in_flight < 1:
            raise ValueError(
                f"max_in_flight must be at least 1, got {self.max_in_flight}"
            )
        if self.arrival_spacing < 0:
            raise ValueError(
                f"arrival_spacing must be non-negative, got {self.arrival_spacing}"
            )
        if self.max_symbols < 1:
            raise ValueError(f"max_symbols must be at least 1, got {self.max_symbols}")


@dataclass(frozen=True)
class SessionDelivery:
    """One line of the delivery log: a session's complete serving record.

    Times are ticks of the engine's symbol-time clock.  ``latency``
    (``completed - arrival``) includes both the backlog wait
    (``admitted - arrival``) and the air/decode time; ``success`` is genie
    termination, ``payload_correct`` compares the decoded payload bits.
    """

    session: int
    arrival: int
    admitted: int
    completed: int
    success: bool
    payload_correct: bool
    symbols_sent: int
    symbols_delivered: int
    decode_attempts: int
    work: int

    @property
    def latency(self) -> int:
        return self.completed - self.arrival

    @property
    def queue_wait(self) -> int:
        return self.admitted - self.arrival


@dataclass(frozen=True)
class SoakResult:
    """Everything one soak run measured, on the deterministic event clock."""

    config: SoakConfig
    #: Per-session records in completion (event) order — the delivery log.
    deliveries: tuple[SessionDelivery, ...]
    #: Tick of the last event (the soak's makespan in symbol-times).
    makespan: int
    #: Highest concurrent in-flight count observed (must be <= the bound).
    peak_in_flight: int
    #: Deepest the FIFO backlog ever got.
    peak_queue_depth: int
    #: Coalesced flush events (one per tick with block arrivals).
    n_flushes: int
    #: Flushes that ran a decode stage (>= 1 gate-open session).
    n_decode_batches: int
    #: Sessions decoded across all decode stages (sum of batch sizes).
    batched_sessions: int
    #: Largest single decode batch.
    max_batch_sessions: int
    #: ``(tick, backlog depth)`` after every FIFO length change — the full
    #: queue-depth trajectory behind :attr:`peak_queue_depth` (whose value
    #: must equal the series maximum; pinned in ``tests/test_serve.py``).
    queue_depth_series: tuple[tuple[int, int], ...] = ()

    # -- aggregates ----------------------------------------------------------
    @property
    def n_delivered(self) -> int:
        return sum(1 for d in self.deliveries if d.success)

    @property
    def delivered_fraction(self) -> float:
        return self.n_delivered / len(self.deliveries)

    @property
    def total_symbols(self) -> int:
        """Channel uses spent by all sessions (the throughput numerator)."""
        return sum(d.symbols_sent for d in self.deliveries)

    def latencies(self) -> np.ndarray:
        """Arrival-to-completion latencies of *successful* sessions."""
        return np.array(
            [d.latency for d in self.deliveries if d.success], dtype=np.int64
        )

    @property
    def mean_latency(self) -> float:
        """Mean delivery latency in symbol-times (0.0 if nothing delivered)."""
        latencies = self.latencies()
        if latencies.size == 0:
            return 0.0
        return float(latencies.mean())

    def latency_percentile(self, q: float) -> float:
        """``q``-th percentile delivery latency (0.0 if nothing delivered)."""
        latencies = self.latencies()
        if latencies.size == 0:
            return 0.0
        return float(np.percentile(latencies, q))

    @property
    def mean_batch_sessions(self) -> float:
        """Average decode-batch size (1.0 in the sequential driver)."""
        if self.n_decode_batches == 0:
            return 0.0
        return self.batched_sessions / self.n_decode_batches

    # -- determinism surface -------------------------------------------------
    def outcomes(self) -> list[tuple[int, int, int, bool, bool]]:
        """Per-session decode outcomes in session order (work excluded).

        The tuple ``(symbols_sent, symbols_delivered, decode_attempts,
        success, payload_correct)`` is the engine-independent outcome a plain
        ``CodecSession.run`` of the same packet must reproduce exactly.
        """
        by_session = sorted(self.deliveries, key=lambda d: d.session)
        return [
            (d.symbols_sent, d.symbols_delivered, d.decode_attempts, d.success,
             d.payload_correct)
            for d in by_session
        ]

    def delivery_log_json(self) -> str:
        """The canonical byte-exact delivery log (completion order).

        Same seed + same admission schedule must yield the identical string
        regardless of batch-group chunking or batching on/off — the
        determinism contract ``tests/test_serve.py`` pins.
        """
        return json.dumps(
            [
                {
                    "session": d.session,
                    "arrival": d.arrival,
                    "admitted": d.admitted,
                    "completed": d.completed,
                    "success": d.success,
                    "payload_correct": d.payload_correct,
                    "symbols_sent": d.symbols_sent,
                    "symbols_delivered": d.symbols_delivered,
                    "decode_attempts": d.decode_attempts,
                    "work": d.work,
                }
                for d in self.deliveries
            ],
            sort_keys=True,
            separators=(",", ":"),
        )

    def summary(self, elapsed_s: float | None = None) -> dict:
        """Flat JSON-ready metrics dict (the CLI table and CI artifact body).

        Everything except the two wall-clock entries (``elapsed_s``,
        ``symbols_per_second``, present only when ``elapsed_s`` is given) is
        deterministic on the symbol-time clock, so floors and ceilings over
        these numbers can be asserted even on noisy CI machines.
        """
        config = self.config
        data = {
            "n_sessions": config.n_sessions,
            "max_in_flight": config.max_in_flight,
            "arrival_spacing": config.arrival_spacing,
            "snr_db": config.snr_db,
            "payload_bits": config.payload_bits,
            "beam_width": config.beam_width,
            "batching": config.batching,
            "seed": config.seed,
            "delivered": self.n_delivered,
            "delivered_fraction": self.delivered_fraction,
            "total_symbols": self.total_symbols,
            "makespan": self.makespan,
            "symbols_per_tick": (
                self.total_symbols / self.makespan if self.makespan else 0.0
            ),
            "mean_latency": self.mean_latency,
            "p50_latency": self.latency_percentile(50.0),
            "p99_latency": self.latency_percentile(99.0),
            "peak_in_flight": self.peak_in_flight,
            "peak_queue_depth": self.peak_queue_depth,
            "n_flushes": self.n_flushes,
            "n_decode_batches": self.n_decode_batches,
            "mean_batch_sessions": self.mean_batch_sessions,
            "max_batch_sessions": self.max_batch_sessions,
        }
        if elapsed_s is not None:
            data["elapsed_s"] = elapsed_s
            data["symbols_per_second"] = (
                self.total_symbols / elapsed_s if elapsed_s > 0 else 0.0
            )
        return data


#: Subpasses pre-encoded per vectorized hash dispatch by the windowed source.
#: Sized to cover a typical session's whole transmission in one or two
#: refills at smoke shapes without encoding far past the decode point.
_ENCODE_WINDOW = 8


class _WindowedSpinalSource:
    """Drop-in spinal symbol source that pre-encodes subpasses in windows.

    The per-packet stream (:class:`~repro.phy.spinal._SpinalSource`) pays one
    vectorized hash dispatch per subpass block — a handful of symbols each —
    so at serving scale the fixed numpy overhead dominates the sender.  The
    keyed hash behind :meth:`~repro.core.encoder.SpinalEncoder.values_from_spines`
    is elementwise in ``(spine value, pass index)`` (the same property the
    decoders' incremental caches rely on), so evaluating ``window`` subpasses'
    worth of pairs in one concatenated call yields byte-identical values to
    the per-subpass stream while paying the dispatch cost once per window.

    Pre-encoding past the block actually consumed is safe: transmitted values
    are a pure function of the payload, and channel noise is drawn per block,
    in send order, from the transmission's private rng — never here.
    """

    __slots__ = (
        "_encoder", "_spine", "_n_segments", "_times_sent", "_subpass",
        "_queue", "_window",
    )

    def __init__(
        self, encoder: SpinalEncoder, framed: np.ndarray, window: int = _ENCODE_WINDOW
    ) -> None:
        self._encoder = encoder
        self._spine = encoder.spine(framed)
        self._n_segments = int(self._spine.size)
        self._times_sent = np.zeros(self._n_segments, dtype=np.int64)
        self._subpass = 0
        self._queue: deque[SubpassBlock] = deque()
        self._window = window

    def next_block(self) -> SubpassBlock:
        if not self._queue:
            self._refill()
        return self._queue.popleft()

    def _refill(self) -> None:
        spans: list[tuple[int, np.ndarray, np.ndarray]] = []
        while len(spans) < self._window:
            positions = self._encoder.puncturing.subpass_positions(
                self._subpass, self._n_segments
            )
            if positions.size:
                pass_indices = self._times_sent[positions].copy()
                self._times_sent[positions] += 1
                spans.append((self._subpass, positions, pass_indices))
            self._subpass += 1
        values = self._encoder.values_from_spines(
            self._spine[np.concatenate([span[1] for span in spans])],
            np.concatenate([span[2] for span in spans]),
        )
        offset = 0
        for subpass_index, positions, pass_indices in spans:
            self._queue.append(
                SubpassBlock(
                    subpass_index=subpass_index,
                    positions=positions,
                    pass_indices=pass_indices,
                    values=values[offset : offset + positions.size],
                )
            )
            offset += positions.size


class _SymbolBufferPool:
    """Preallocated per-slot symbol buffers for the in-flight window.

    One complex row per admitted session: a transmitted block's received
    values are copied into the session's slot at send time and read back at
    the flush, so steady-state serving allocates nothing per block no matter
    how many blocks the soak moves.  Slot count equals the in-flight bound —
    acquiring more than that is a backpressure bug and raises.
    """

    def __init__(self, n_slots: int, n_symbols: int) -> None:
        self._buffers = np.empty((n_slots, n_symbols), dtype=np.complex128)
        self._free = list(range(n_slots - 1, -1, -1))

    def acquire(self, values: np.ndarray) -> tuple[int, np.ndarray]:
        """Copy ``values`` into a free slot; return ``(slot, view)``."""
        if not self._free:
            raise RuntimeError(
                "symbol buffer pool exhausted: more in-flight blocks than the "
                "admission bound allows"
            )
        slot = self._free.pop()
        view = self._buffers[slot, : values.size]
        view[:] = values
        return slot, view

    def release(self, slot: int) -> None:
        self._free.append(slot)

    @property
    def n_free(self) -> int:
        return len(self._free)


class _Flight:
    """Mutable per-session serving state (one request through the engine)."""

    __slots__ = (
        "index", "tx", "payload", "arrival", "admitted", "completed",
        "slot", "block", "received",
    )

    def __init__(self, index: int, arrival: int) -> None:
        self.index = index
        self.arrival = arrival
        self.tx: CodecTransmission | None = None
        self.payload: np.ndarray | None = None
        self.admitted = -1
        self.completed = -1
        self.slot = -1
        self.block = None
        self.received: np.ndarray | None = None


class SoakEngine:
    """Serve ``config.n_sessions`` concurrent spinal sessions to completion.

    The engine is reusable: :meth:`run` builds fresh per-request state every
    call and returns a :class:`SoakResult`, so running it twice (or building
    a second engine from the same config) yields byte-identical delivery
    logs.  Construction builds the shared pieces once — per-session encoders
    with derived hash seeds, the shared framer and stateless AWGN channel,
    and one :class:`BatchDecoder` registered over every session.
    """

    def __init__(self, config: SoakConfig) -> None:
        self.config = config
        self._tel = current_telemetry()
        params = SpinalParams(k=config.k, c=config.c)
        self.framer = Framer(payload_bits=config.payload_bits, k=config.k)
        self.channel = AWGNChannel(
            snr_db=config.snr_db, signal_power=params.average_power
        )
        factory = make_decoder_factory("incremental", config.beam_width)
        self.sessions: list[CodecSession] = []
        for i in range(config.n_sessions):
            encoder = SpinalEncoder(
                params.with_(seed=derive_seed(config.seed, "serve", "code", i)),
                puncturing=TailFirstPuncturing(),
            )
            code = SpinalCode(encoder, factory, self.framer)
            self.sessions.append(
                CodecSession(
                    code,
                    self.channel,
                    termination="genie",
                    max_symbols=config.max_symbols,
                )
            )
        self.batch = BatchDecoder(
            [session.code.encoder for session in self.sessions],
            beam_width=config.beam_width,
            max_stack_elements=config.max_stack_elements,
        )

    # ------------------------------------------------------------------
    def run(self) -> SoakResult:
        config = self.config
        clock = EventScheduler()
        tel = self._tel
        tel.bind_clock(clock)
        pool = _SymbolBufferPool(config.max_in_flight, self.framer.n_segments)
        pending: deque[_Flight] = deque()
        staged: list[_Flight] = []
        deliveries: list[SessionDelivery] = []
        queue_series: list[tuple[int, int]] = []
        state = {
            "in_flight": 0,
            "peak_in_flight": 0,
            "peak_queue": 0,
            "flush_scheduled": False,
            "n_flushes": 0,
            "n_batches": 0,
            "batched": 0,
            "max_batch": 0,
        }

        def admit_ready() -> None:
            while pending and state["in_flight"] < config.max_in_flight:
                flight = pending.popleft()
                queue_series.append((clock.now, len(pending)))
                flight.admitted = clock.now
                state["in_flight"] += 1
                state["peak_in_flight"] = max(
                    state["peak_in_flight"], state["in_flight"]
                )
                open_transmission(flight)
                send(flight)

        def open_transmission(flight: _Flight) -> None:
            i = flight.index
            flight.payload = random_message_bits(
                config.payload_bits, spawn_rng(config.seed, "serve", "payload", i)
            )
            flight.tx = self.sessions[i].open_transmission(
                flight.payload, spawn_rng(config.seed, "serve", "packet", i)
            )
            # Swap in the windowed pre-encoder: byte-identical blocks (see
            # _WindowedSpinalSource), one hash dispatch per window instead of
            # per subpass.
            flight.tx.source = _WindowedSpinalSource(
                self.sessions[i].code.encoder, self.framer.frame(flight.payload)
            )

        def arrive(flight: _Flight) -> None:
            pending.append(flight)
            queue_series.append((clock.now, len(pending)))
            state["peak_queue"] = max(state["peak_queue"], len(pending))
            if tel.enabled:
                tel.gauge("serve.queue_depth", len(pending))
                tel.observe("serve.queue_depth_samples", len(pending))
            admit_ready()

        def send(flight: _Flight) -> None:
            block, received = flight.tx.send_next_block()
            flight.slot, flight.received = pool.acquire(received)
            flight.block = block
            clock.schedule(
                clock.now + block.n_symbols, PRIORITY_BLOCK, lambda: on_block(flight)
            )

        def on_block(flight: _Flight) -> None:
            staged.append(flight)
            if not state["flush_scheduled"]:
                state["flush_scheduled"] = True
                clock.schedule(clock.now, PRIORITY_ACK, flush)

        def flush() -> None:
            arrived, staged[:] = list(staged), []
            state["flush_scheduled"] = False
            state["n_flushes"] += 1
            if tel.enabled:
                tel.counter("serve.flushes")
                tel.observe("serve.flush_blocks", len(arrived))
            attempters: list[_Flight] = []
            for flight in arrived:
                flight.tx.deliver(flight.block, flight.received, attempt=False)
                pool.release(flight.slot)
                flight.slot, flight.block, flight.received = -1, None, None
                if flight.tx.attempt_ready:
                    attempters.append(flight)
                elif flight.tx.exhausted:
                    # Budget spent before the decode gate ever opened (a
                    # starved configuration): same terminal step as the
                    # sequential loop — one best-effort decode, then fail.
                    flight.tx.best_effort_decode()
                    finish(flight, success=False)
                else:
                    resend(flight)
            if attempters:
                statuses = decode_stage(attempters)
                for flight, status in zip(attempters, statuses):
                    if flight.tx.record_status(status):
                        finish(flight, success=True)
                    elif flight.tx.exhausted:
                        # The flush attempt above already recorded a status,
                        # so this is the sequential loop's idempotent
                        # best-effort no-op, kept for exact step parity.
                        flight.tx.best_effort_decode()
                        finish(flight, success=False)
                    else:
                        resend(flight)

        def decode_stage(attempters: list[_Flight]) -> list[DecodeStatus]:
            stores = [f.tx.decoder.observations for f in attempters]
            members = [f.index for f in attempters]
            with tel.span("serve.decode_batch", width=len(members)):
                if config.batching:
                    results = self.batch.decode_subset(
                        self.framer.framed_bits, stores, members
                    )
                    state["n_batches"] += 1
                    state["batched"] += len(members)
                    state["max_batch"] = max(state["max_batch"], len(members))
                else:
                    # The sequential driver: identical kernels and event
                    # schedule, but every session decodes in its own batch of
                    # one — the baseline that isolates the batching win.
                    results = [
                        self.batch.decode_subset(
                            self.framer.framed_bits, [store], [member]
                        )[0]
                        for store, member in zip(stores, members)
                    ]
                    state["n_batches"] += len(members)
                    state["batched"] += len(members)
                    state["max_batch"] = max(state["max_batch"], 1)
            if tel.enabled:
                tel.observe("serve.batch_width", len(members))
            framer = self.framer
            return [
                DecodeStatus(
                    attempted=True,
                    estimate=result.message_bits,
                    payload=framer.extract_payload(result.message_bits),
                    verified=framer.check(result.message_bits),
                    work=result.candidates_explored,
                    detail=result,
                )
                for result in results
            ]

        def resend(flight: _Flight) -> None:
            clock.schedule(clock.now, PRIORITY_SEND, lambda: send(flight))

        def finish(flight: _Flight, success: bool) -> None:
            flight.completed = clock.now
            state["in_flight"] -= 1
            tx = flight.tx
            decoded = tx.decoded_payload() if tx.last_status is not None else None
            correct = decoded is not None and bool(
                np.array_equal(decoded, flight.payload)
            )
            deliveries.append(
                SessionDelivery(
                    session=flight.index,
                    arrival=flight.arrival,
                    admitted=flight.admitted,
                    completed=flight.completed,
                    success=success,
                    payload_correct=correct,
                    symbols_sent=tx.symbols_sent,
                    symbols_delivered=tx.symbols_delivered,
                    decode_attempts=tx.decode_attempts,
                    work=tx.work,
                )
            )
            if tel.enabled:
                tel.counter(
                    "serve.sessions", outcome="delivered" if success else "failed"
                )
                tel.observe("serve.latency", flight.completed - flight.arrival)
            admit_ready()

        for i in range(config.n_sessions):
            flight = _Flight(i, i * config.arrival_spacing)
            clock.schedule(flight.arrival, PRIORITY_SEND, lambda f=flight: arrive(f))

        # Liveness budget: every block costs <= 3 events (send, arrival, at
        # most one coalesced flush) and a session sends at most max_symbols
        # blocks, plus one arrival event per request.
        clock.run(max_events=64 + config.n_sessions * (4 + 4 * config.max_symbols))
        assert clock.next_time() is None and not pending and state["in_flight"] == 0

        return SoakResult(
            config=config,
            deliveries=tuple(deliveries),
            makespan=clock.now,
            peak_in_flight=state["peak_in_flight"],
            peak_queue_depth=state["peak_queue"],
            n_flushes=state["n_flushes"],
            n_decode_batches=state["n_batches"],
            batched_sessions=state["batched"],
            max_batch_sessions=state["max_batch"],
            queue_depth_series=tuple(queue_series),
        )


def run_soak(config: SoakConfig) -> SoakResult:
    """Build a fresh engine for ``config`` and serve it to completion."""
    return SoakEngine(config).run()


def run_sequential_baseline(config: SoakConfig) -> list[CodecResult]:
    """The engine-free anchor: each session run alone via ``CodecSession.run``.

    Uses the same derived payload and noise streams as the engine, so the
    per-session outcomes (symbols, attempts, success, correctness) must
    match the soak's :meth:`SoakResult.outcomes` exactly — only decoder
    ``work`` differs (incremental engine units vs from-scratch batch units).
    """
    engine = SoakEngine(config)
    results = []
    for i, session in enumerate(engine.sessions):
        payload = random_message_bits(
            config.payload_bits, spawn_rng(config.seed, "serve", "payload", i)
        )
        results.append(
            session.run(payload, spawn_rng(config.seed, "serve", "packet", i))
        )
    return results
