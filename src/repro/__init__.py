"""repro — a complete reproduction of "Rateless Spinal Codes" (HotNets 2011).

The package implements the paper's primary contribution (the spinal code:
hash-based rateless encoder, ML decoder, and practical bubble decoder) plus
every substrate its evaluation depends on: AWGN/BSC/fading channel models,
constellation mappings, an 802.11n-style LDPC code with belief-propagation
decoding (the fixed-rate baseline of Figure 2), Shannon and finite-blocklength
bounds, and the experiment harness that regenerates the paper's figure.

Quickstart::

    import numpy as np
    from repro import (
        AWGNChannel, Framer, IncrementalBubbleDecoder, RatelessSession,
        SpinalEncoder, SpinalParams,
    )

    params = SpinalParams(k=8, c=10)
    encoder = SpinalEncoder(params)
    framer = Framer(payload_bits=24, k=params.k)
    session = RatelessSession(
        encoder,
        decoder_factory=lambda enc: IncrementalBubbleDecoder(enc, beam_width=16),
        channel=AWGNChannel(snr_db=10.0, adc_bits=14),
        framer=framer,
    )
    rng = np.random.default_rng(0)
    payload = rng.integers(0, 2, size=24, dtype=np.uint8)
    trial = session.codec_session().run(payload, rng)
    print(trial.rate, trial.payload_correct)

Any other registered code family runs through the same loop (and the same
transports, relays and cells) via ``repro.phy``::

    from repro import make_codec_session

    lt = make_codec_session("lt", snr_db=10.0)
    trial = lt.run(rng.integers(0, 2, size=lt.payload_bits, dtype=np.uint8), rng)

See DESIGN.md for the complete system inventory and EXPERIMENTS.md for the
paper-versus-measured comparison of every figure.
"""

from repro.channels import (
    AWGNChannel,
    BECChannel,
    BSCChannel,
    RayleighBlockFadingChannel,
    TimeVaryingAWGNChannel,
)
from repro.core import (
    BatchDecoder,
    BubbleDecoder,
    IncrementalBubbleDecoder,
    VectorizedBubbleDecoder,
    CRC8,
    CRC16_CCITT,
    CRC32,
    Framer,
    LinearConstellation,
    MLDecoder,
    NoPuncturing,
    OffsetLinearConstellation,
    RatelessSession,
    SpinalEncoder,
    SpinalParams,
    StackDecoder,
    StridedPuncturing,
    TrialResult,
    TruncatedGaussianConstellation,
)
from repro.netcode import (
    MulticastTreeConfig,
    TwoWayConfig,
    broadcast_transmission,
    run_multicast_tree,
    run_two_way_af_exchange,
    run_two_way_exchange,
)
from repro.phy import (
    CODE_FAMILY_NAMES,
    CodeInfo,
    CodecResult,
    CodecSession,
    CodecTransmission,
    DecodeStatus,
    FixedRateSpinalCode,
    LTCode,
    LdpcIrCode,
    RatelessCode,
    RepetitionCode,
    SpinalCode,
    channel_for_code,
    make_code,
    make_codec_session,
)

__version__ = "1.0.0"

__all__ = [
    "SpinalParams",
    "SpinalEncoder",
    "BubbleDecoder",
    "IncrementalBubbleDecoder",
    "VectorizedBubbleDecoder",
    "BatchDecoder",
    "MLDecoder",
    "StackDecoder",
    "RatelessSession",
    "TrialResult",
    "Framer",
    "CRC8",
    "CRC16_CCITT",
    "CRC32",
    "NoPuncturing",
    "StridedPuncturing",
    "LinearConstellation",
    "OffsetLinearConstellation",
    "TruncatedGaussianConstellation",
    "AWGNChannel",
    "TimeVaryingAWGNChannel",
    "BSCChannel",
    "BECChannel",
    "RayleighBlockFadingChannel",
    "CODE_FAMILY_NAMES",
    "CodeInfo",
    "CodecResult",
    "CodecSession",
    "CodecTransmission",
    "DecodeStatus",
    "FixedRateSpinalCode",
    "LTCode",
    "LdpcIrCode",
    "RatelessCode",
    "RepetitionCode",
    "SpinalCode",
    "channel_for_code",
    "make_code",
    "make_codec_session",
    "MulticastTreeConfig",
    "TwoWayConfig",
    "broadcast_transmission",
    "run_multicast_tree",
    "run_two_way_af_exchange",
    "run_two_way_exchange",
    "__version__",
]
