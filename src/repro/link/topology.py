"""Multi-hop decode-and-forward relay topologies over rateless links.

Section 6 of the paper motivates rateless codes for links whose quality the
sender cannot know in advance; a relay chain is the simplest topology where
that uncertainty compounds — each hop has its own channel and SNR, and a
fixed-rate code would have to be provisioned for the worst hop.  With
decode-and-forward relaying each hop runs its *own* rateless session: the
relay fully decodes a packet, then re-encodes it with a **fresh hash seed**
(a different spinal code) for the next hop, so per-hop symbol counts adapt
to per-hop conditions independently.

All hops share one global event clock but transmit on independent channels
(different frequencies/links), so the chain pipelines: hop ``h+1`` starts
serving a packet the moment hop ``h`` delivers it, while hop ``h`` moves on
to the next packet.  Each hop runs the full sliding-window ARQ machinery of
:mod:`repro.link.transport` with its own reverse channel.

A 1-hop "relay" is by construction exactly the direct link (hop 0 keeps the
caller's hash seed), an equivalence the test suite pins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.channels.awgn import AWGNChannel
from repro.core.rateless import RatelessSession
from repro.phy.session import CodecSession
from repro.link.events import EventScheduler
from repro.link.transport import (
    HopTransport,
    TransportConfig,
    TransportResult,
    _event_budget,
)
from repro.utils.rng import derive_seed

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (experiments -> link)
    from repro.experiments.runner import SpinalRunConfig

__all__ = [
    "RelayTransportResult",
    "build_codec_relay_sessions",
    "build_relay_sessions",
    "relay_hop_params",
    "simulate_relay_transport",
]


def relay_hop_params(config: "SpinalRunConfig", hop: int):
    """Spinal parameters for one hop: hop 0 is the original code.

    Later hops re-encode with a fresh hash-family seed derived from the
    code's own seed, so the per-hop codes are independent (a decoding
    pathology on one hop cannot correlate with the next) while remaining
    reproducible.
    """
    if hop == 0:
        return config.params
    return config.params.with_(seed=derive_seed(config.params.seed, "relay-hop", hop))


def build_relay_sessions(
    config: "SpinalRunConfig", hop_snrs_db: Sequence[float]
) -> list[RatelessSession]:
    """One rateless session per hop, each with its own AWGN channel and code."""
    if len(hop_snrs_db) == 0:
        raise ValueError("a relay path needs at least one hop")
    sessions = []
    for hop, snr_db in enumerate(hop_snrs_db):
        params = relay_hop_params(config, hop)
        hop_config = config.with_(params=params)
        channel = AWGNChannel(
            snr_db=float(snr_db),
            signal_power=params.average_power,
            adc_bits=config.adc_bits,
        )
        # The transport is inherently an on-line sequential receiver, so the
        # config's search strategy is overridden per hop.
        sessions.append(hop_config.build_session(channel, search="sequential"))
    return sessions


def build_codec_relay_sessions(
    family: str,
    hop_snrs_db: Sequence[float],
    seed: int = 0,
    smoke: bool = False,
    max_symbols: int = 4096,
    termination: str = "genie",
) -> list[CodecSession]:
    """One code-agnostic session per hop, for any registered code family.

    The protocol-level generalisation of :func:`build_relay_sessions`: each
    hop gets an independent code instance built from a hop-derived seed (the
    "fresh hash seed per hop" discipline, generalised — an LT hop re-draws
    its neighbourhoods, a spinal hop its hash family) and its own
    SNR-calibrated channel matching the code's alphabet.
    """
    from repro.phy.families import make_codec_session

    if len(hop_snrs_db) == 0:
        raise ValueError("a relay path needs at least one hop")
    return [
        make_codec_session(
            family,
            snr_db=float(snr_db),
            seed=seed if hop == 0 else derive_seed(seed, "relay-hop", hop),
            smoke=smoke,
            max_symbols=max_symbols,
            termination=termination,
        )
        for hop, snr_db in enumerate(hop_snrs_db)
    ]


@dataclass(frozen=True)
class RelayTransportResult:
    """End-to-end outcome of a decode-and-forward relay transport."""

    hops: tuple[TransportResult, ...]
    n_packets: int
    payload_bits_per_packet: int
    delivered: np.ndarray
    delivery_times: np.ndarray
    makespan: int

    @property
    def n_hops(self) -> int:
        return len(self.hops)

    @property
    def n_delivered(self) -> int:
        return int(self.delivered.sum())

    @property
    def total_symbols_sent(self) -> int:
        """Channel uses summed over every hop (the chain's energy/airtime)."""
        return int(sum(hop.total_symbols_sent for hop in self.hops))

    @property
    def end_to_end_goodput(self) -> float:
        """Delivered payload bits per symbol-time of pipelined wall-clock."""
        if self.makespan == 0:
            return 0.0
        return self.n_delivered * self.payload_bits_per_packet / self.makespan

    @property
    def symbol_efficiency(self) -> float:
        """Summed needed-over-spent ratio across hops (1.0 = ideal feedback)."""
        spent = sum(float(hop.symbols_spent.sum()) for hop in self.hops)
        if spent == 0:
            return 1.0
        needed = sum(float(hop.symbols_needed.sum()) for hop in self.hops)
        return needed / spent


def simulate_relay_transport(
    sessions: Sequence[RatelessSession],
    payloads: Sequence[np.ndarray],
    config: TransportConfig,
) -> RelayTransportResult:
    """Run the full chain under one event clock and return per-hop + e2e results.

    Hop ``h``'s in-order deliveries are enqueued at hop ``h+1`` at the
    moment of delivery; the final hop's deliveries are the end-to-end
    outcome.  A packet aborted at any hop never reaches later hops and is
    reported undelivered.
    """
    sessions = list(sessions)
    if not sessions:
        raise ValueError("a relay path needs at least one hop session")
    if len({s.payload_bits for s in sessions}) != 1:
        raise ValueError("all hops must share one framing (payload size) configuration")
    scheduler = EventScheduler()
    n_packets = len(payloads)
    delivered = np.zeros(n_packets, dtype=bool)
    delivery_times = np.full(n_packets, -1, dtype=np.int64)

    hops: list[HopTransport] = []
    for hop_index, session in enumerate(sessions):
        session.channel.reset()
        hops.append(
            HopTransport(scheduler, session, config, hop_index=hop_index)
        )

    def forward_to(next_hop: HopTransport):
        def deliver(orig_index: int, payload: np.ndarray, _time: int) -> None:
            next_hop.enqueue(payload, orig_index=orig_index)

        return deliver

    def final_delivery(orig_index: int, _payload: np.ndarray, time: int) -> None:
        delivered[orig_index] = True
        delivery_times[orig_index] = time

    for hop_index, hop in enumerate(hops[:-1]):
        hop.on_deliver = forward_to(hops[hop_index + 1])
    hops[-1].on_deliver = final_delivery

    for index, payload in enumerate(payloads):
        hops[0].enqueue(payload, orig_index=index)
    scheduler.run(
        max_events=_event_budget(
            config,
            n_packets * len(sessions),
            [s.max_symbols for s in sessions for _ in range(n_packets)],
        )
    )
    hop_results = tuple(hop.result() for hop in hops)
    return RelayTransportResult(
        hops=hop_results,
        n_packets=n_packets,
        payload_bits_per_packet=sessions[0].payload_bits,
        delivered=delivered,
        delivery_times=delivery_times,
        makespan=max((hop.makespan for hop in hop_results), default=0),
    )
