"""Relay chains and validated DAG/mesh topologies over rateless links.

Section 6 of the paper motivates rateless codes for links whose quality the
sender cannot know in advance; a relay chain is the simplest topology where
that uncertainty compounds — each hop has its own channel and SNR, and a
fixed-rate code would have to be provisioned for the worst hop.  With
decode-and-forward relaying each hop runs its *own* rateless session: the
relay fully decodes a packet, then re-encodes it with a **fresh hash seed**
(a different spinal code) for the next hop, so per-hop symbol counts adapt
to per-hop conditions independently.

All hops share one global event clock but transmit on independent channels
(different frequencies/links), so the chain pipelines: hop ``h+1`` starts
serving a packet the moment hop ``h`` delivers it, while hop ``h`` moves on
to the next packet.  Each hop runs the full sliding-window ARQ machinery of
:mod:`repro.link.transport` with its own reverse channel.

A 1-hop "relay" is by construction exactly the direct link (hop 0 keeps the
caller's hash seed), an equivalence the test suite pins.

Beyond chains, :class:`DagTopology` generalises the layer to arbitrary
validated DAGs: explicit node/edge specs with per-edge SNRs, structural
validation with typed errors (:class:`TopologyError`), and
:func:`simulate_dag_transport` running every edge as an independent
:class:`~repro.link.transport.HopTransport` under one shared event clock.
Interior nodes decode-and-forward; nodes named in ``xor_nodes`` instead
XOR-combine the payloads of one round from all of their in-edges into a
single packet — the classic network-coding move that lets the butterfly's
bottleneck edge carry one coded packet where plain forwarding needs two.
A 2-node path DAG is by construction exactly the 1-hop chain (same packet
seeds, same event sequence), an equivalence the test suite pins the same
way relay-chain == direct-link is pinned.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.channels.awgn import AWGNChannel
from repro.core.rateless import RatelessSession
from repro.phy.session import CodecSession
from repro.link.events import EventScheduler
from repro.link.transport import (
    HopTransport,
    TransportConfig,
    TransportResult,
    _event_budget,
)
from repro.obs.telemetry import current as current_telemetry
from repro.utils.rng import derive_seed

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (experiments -> link)
    from repro.experiments.runner import SpinalRunConfig

__all__ = [
    "DagDelivery",
    "DagEdge",
    "DagTopology",
    "DagTransportResult",
    "RelayTransportResult",
    "TopologyError",
    "build_codec_relay_sessions",
    "build_dag_sessions",
    "build_relay_sessions",
    "butterfly",
    "multicast_tree",
    "path_dag",
    "relay_hop_params",
    "simulate_dag_transport",
    "simulate_relay_transport",
]


def relay_hop_params(config: "SpinalRunConfig", hop: int):
    """Spinal parameters for one hop: hop 0 is the original code.

    Later hops re-encode with a fresh hash-family seed derived from the
    code's own seed, so the per-hop codes are independent (a decoding
    pathology on one hop cannot correlate with the next) while remaining
    reproducible.
    """
    if hop == 0:
        return config.params
    return config.params.with_(seed=derive_seed(config.params.seed, "relay-hop", hop))


def build_relay_sessions(
    config: "SpinalRunConfig", hop_snrs_db: Sequence[float]
) -> list[RatelessSession]:
    """One rateless session per hop, each with its own AWGN channel and code."""
    if len(hop_snrs_db) == 0:
        raise ValueError("a relay path needs at least one hop")
    sessions = []
    for hop, snr_db in enumerate(hop_snrs_db):
        params = relay_hop_params(config, hop)
        hop_config = config.with_(params=params)
        channel = AWGNChannel(
            snr_db=float(snr_db),
            signal_power=params.average_power,
            adc_bits=config.adc_bits,
        )
        # The transport is inherently an on-line sequential receiver, so the
        # config's search strategy is overridden per hop.
        sessions.append(hop_config.build_session(channel, search="sequential"))
    return sessions


def build_codec_relay_sessions(
    family: str,
    hop_snrs_db: Sequence[float],
    seed: int = 0,
    smoke: bool = False,
    max_symbols: int = 4096,
    termination: str = "genie",
) -> list[CodecSession]:
    """One code-agnostic session per hop, for any registered code family.

    The protocol-level generalisation of :func:`build_relay_sessions`: each
    hop gets an independent code instance built from a hop-derived seed (the
    "fresh hash seed per hop" discipline, generalised — an LT hop re-draws
    its neighbourhoods, a spinal hop its hash family) and its own
    SNR-calibrated channel matching the code's alphabet.
    """
    from repro.phy.families import make_codec_session

    if len(hop_snrs_db) == 0:
        raise ValueError("a relay path needs at least one hop")
    return [
        make_codec_session(
            family,
            snr_db=float(snr_db),
            seed=seed if hop == 0 else derive_seed(seed, "relay-hop", hop),
            smoke=smoke,
            max_symbols=max_symbols,
            termination=termination,
        )
        for hop, snr_db in enumerate(hop_snrs_db)
    ]


@dataclass(frozen=True)
class RelayTransportResult:
    """End-to-end outcome of a decode-and-forward relay transport."""

    hops: tuple[TransportResult, ...]
    n_packets: int
    payload_bits_per_packet: int
    delivered: np.ndarray
    delivery_times: np.ndarray
    makespan: int

    @property
    def n_hops(self) -> int:
        return len(self.hops)

    @property
    def n_delivered(self) -> int:
        return int(self.delivered.sum())

    @property
    def total_symbols_sent(self) -> int:
        """Channel uses summed over every hop (the chain's energy/airtime)."""
        return int(sum(hop.total_symbols_sent for hop in self.hops))

    @property
    def end_to_end_goodput(self) -> float:
        """Delivered payload bits per symbol-time of pipelined wall-clock."""
        if self.makespan == 0:
            return 0.0
        return self.n_delivered * self.payload_bits_per_packet / self.makespan

    @property
    def symbol_efficiency(self) -> float:
        """Summed needed-over-spent ratio across hops (1.0 = ideal feedback)."""
        spent = sum(float(hop.symbols_spent.sum()) for hop in self.hops)
        if spent == 0:
            return 1.0
        needed = sum(float(hop.symbols_needed.sum()) for hop in self.hops)
        return needed / spent


def simulate_relay_transport(
    sessions: Sequence[RatelessSession],
    payloads: Sequence[np.ndarray],
    config: TransportConfig,
) -> RelayTransportResult:
    """Run the full chain under one event clock and return per-hop + e2e results.

    Hop ``h``'s in-order deliveries are enqueued at hop ``h+1`` at the
    moment of delivery; the final hop's deliveries are the end-to-end
    outcome.  A packet aborted at any hop never reaches later hops and is
    reported undelivered.
    """
    sessions = list(sessions)
    if not sessions:
        raise ValueError("a relay path needs at least one hop session")
    if len({s.payload_bits for s in sessions}) != 1:
        raise ValueError("all hops must share one framing (payload size) configuration")
    scheduler = EventScheduler()
    n_packets = len(payloads)
    delivered = np.zeros(n_packets, dtype=bool)
    delivery_times = np.full(n_packets, -1, dtype=np.int64)

    hops: list[HopTransport] = []
    for hop_index, session in enumerate(sessions):
        session.channel.reset()
        hops.append(
            HopTransport(scheduler, session, config, hop_index=hop_index)
        )

    def forward_to(next_hop: HopTransport):
        def deliver(orig_index: int, payload: np.ndarray, _time: int) -> None:
            next_hop.enqueue(payload, orig_index=orig_index)

        return deliver

    def final_delivery(orig_index: int, _payload: np.ndarray, time: int) -> None:
        delivered[orig_index] = True
        delivery_times[orig_index] = time

    for hop_index, hop in enumerate(hops[:-1]):
        hop.on_deliver = forward_to(hops[hop_index + 1])
    hops[-1].on_deliver = final_delivery

    for index, payload in enumerate(payloads):
        hops[0].enqueue(payload, orig_index=index)
    scheduler.run(
        max_events=_event_budget(
            config,
            n_packets * len(sessions),
            [s.max_symbols for s in sessions for _ in range(n_packets)],
        )
    )
    hop_results = tuple(hop.result() for hop in hops)
    return RelayTransportResult(
        hops=hop_results,
        n_packets=n_packets,
        payload_bits_per_packet=sessions[0].payload_bits,
        delivered=delivered,
        delivery_times=delivery_times,
        makespan=max((hop.makespan for hop in hop_results), default=0),
    )


# -- validated DAG topologies --------------------------------------------------


class TopologyError(ValueError):
    """A structural problem in a topology spec, tagged with a ``kind``.

    ``kind`` is a stable machine-readable slug (``"cycle"``, ``"self-loop"``,
    ``"duplicate-edge"``, ``"unknown-node"``, ``"duplicate-node"``,
    ``"no-nodes"``, ``"no-edges"``, ``"unreachable"``) so tests and callers
    can assert *which* validation fired without string-matching messages.
    """

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(message)
        self.kind = kind


@dataclass(frozen=True)
class DagEdge:
    """One directed link: source node, destination node, and its SNR."""

    src: str
    dst: str
    snr_db: float = 10.0


@dataclass(frozen=True)
class DagTopology:
    """An explicit, validated directed acyclic graph of rateless links.

    Construction validates the spec eagerly (typed :class:`TopologyError`
    for every structural defect) and fixes the edge order, which downstream
    code treats as the canonical per-edge index: sessions, packet seeds and
    results all align with ``edges``.  Validation and the topological order
    are pure functions of the spec — no randomness, no ambient state — so
    building the same topology in any process yields the same object.
    """

    nodes: tuple[str, ...]
    edges: tuple[DagEdge, ...]

    def __post_init__(self) -> None:
        nodes = tuple(str(n) for n in self.nodes)
        edges = tuple(
            e if isinstance(e, DagEdge) else DagEdge(*e) for e in self.edges
        )
        object.__setattr__(self, "nodes", nodes)
        object.__setattr__(self, "edges", edges)
        if not nodes:
            raise TopologyError("no-nodes", "a topology needs at least one node")
        if len(set(nodes)) != len(nodes):
            dupes = sorted({n for n in nodes if nodes.count(n) > 1})
            raise TopologyError("duplicate-node", f"duplicate node names: {dupes}")
        if not edges:
            raise TopologyError("no-edges", "a topology needs at least one edge")
        known = set(nodes)
        seen_pairs: set[tuple[str, str]] = set()
        for index, edge in enumerate(edges):
            for endpoint in (edge.src, edge.dst):
                if endpoint not in known:
                    raise TopologyError(
                        "unknown-node",
                        f"edge {index} ({edge.src!r} -> {edge.dst!r}) references "
                        f"undeclared node {endpoint!r}",
                    )
            if edge.src == edge.dst:
                raise TopologyError(
                    "self-loop", f"edge {index} is a self-loop on {edge.src!r}"
                )
            pair = (edge.src, edge.dst)
            if pair in seen_pairs:
                raise TopologyError(
                    "duplicate-edge",
                    f"edge {index} duplicates {edge.src!r} -> {edge.dst!r}",
                )
            seen_pairs.add(pair)
        order = self._kahn_order()
        if len(order) != len(nodes):
            stuck = sorted(set(nodes) - set(order))
            raise TopologyError("cycle", f"topology has a cycle through {stuck}")
        object.__setattr__(self, "_topo_order", tuple(order))
        isolated = [
            n for n in nodes if not self.in_edges(n) and not self.out_edges(n)
        ]
        if isolated:
            raise TopologyError(
                "unreachable",
                f"nodes {isolated} have no edges: they are sinks unreachable "
                f"from any source",
            )

    def _kahn_order(self) -> list[str]:
        indegree = {n: 0 for n in self.nodes}
        for edge in self.edges:
            indegree[edge.dst] += 1
        ready = [n for n in self.nodes if indegree[n] == 0]
        order: list[str] = []
        while ready:
            node = ready.pop(0)  # declaration order is the deterministic tiebreak
            order.append(node)
            for edge in self.edges:
                if edge.src == node:
                    indegree[edge.dst] -= 1
                    if indegree[edge.dst] == 0:
                        ready.append(edge.dst)
        return order

    # -- structure accessors ---------------------------------------------------
    @property
    def n_edges(self) -> int:
        return len(self.edges)

    @property
    def topological_order(self) -> tuple[str, ...]:
        """Every node, sources first (ties broken by declaration order)."""
        return self._topo_order

    @property
    def sources(self) -> tuple[str, ...]:
        """Nodes with no in-edges, in declaration order."""
        dsts = {e.dst for e in self.edges}
        return tuple(n for n in self.nodes if n not in dsts)

    @property
    def sinks(self) -> tuple[str, ...]:
        """Nodes with no out-edges, in declaration order."""
        srcs = {e.src for e in self.edges}
        return tuple(n for n in self.nodes if n not in srcs)

    def in_edges(self, node: str) -> tuple[int, ...]:
        """Indices of the edges arriving at ``node``, in edge order."""
        return tuple(i for i, e in enumerate(self.edges) if e.dst == node)

    def out_edges(self, node: str) -> tuple[int, ...]:
        """Indices of the edges leaving ``node``, in edge order."""
        return tuple(i for i, e in enumerate(self.edges) if e.src == node)

    def edge_index(self, src: str, dst: str) -> int:
        """The index of the ``src -> dst`` edge (raises if absent)."""
        for i, e in enumerate(self.edges):
            if e.src == src and e.dst == dst:
                return i
        raise KeyError(f"no edge {src!r} -> {dst!r}")


def path_dag(hop_snrs_db: Sequence[float], names: Sequence[str] | None = None) -> DagTopology:
    """A linear chain expressed as a DAG: ``n0 -> n1 -> ... -> nK``.

    Edge ``h`` carries ``hop_snrs_db[h]``, so a path DAG's edge indices are
    exactly the relay chain's hop indices — the bridge that makes the
    2-node path bit-exact against the 1-hop transport.
    """
    snrs = [float(s) for s in hop_snrs_db]
    if not snrs:
        raise TopologyError("no-edges", "a path needs at least one hop SNR")
    if names is None:
        names = tuple(f"n{i}" for i in range(len(snrs) + 1))
    names = tuple(names)
    if len(names) != len(snrs) + 1:
        raise TopologyError(
            "unknown-node",
            f"a {len(snrs)}-hop path needs {len(snrs) + 1} names, got {len(names)}",
        )
    edges = tuple(
        DagEdge(names[i], names[i + 1], snrs[i]) for i in range(len(snrs))
    )
    return DagTopology(nodes=names, edges=edges)


def butterfly(snr_db: float = 10.0, bottleneck_snr_db: float | None = None) -> DagTopology:
    """The classic network-coding butterfly.

    Two sources each reach their *near* sink directly, and both sinks want
    *both* payloads; the only route for the cross payloads is the shared
    ``relay -> spread`` bottleneck.  With plain forwarding the bottleneck
    carries two packets per round; with ``xor_nodes={"relay"}`` it carries
    one XOR packet that each sink resolves using its direct copy::

        src-a ──────────────► sink-a
          └──► relay            ▲
                 │ (bottleneck) │
                 ▼              │
               spread ──────────┤
                 │              ▼
          ┌──► relay ──┘     sink-b
        src-b ──────────────► sink-b

    All edges run at ``snr_db``; the bottleneck may be set separately.
    """
    bn = snr_db if bottleneck_snr_db is None else bottleneck_snr_db
    return DagTopology(
        nodes=("src-a", "src-b", "relay", "spread", "sink-a", "sink-b"),
        edges=(
            DagEdge("src-a", "relay", snr_db),
            DagEdge("src-b", "relay", snr_db),
            DagEdge("src-a", "sink-a", snr_db),
            DagEdge("src-b", "sink-b", snr_db),
            DagEdge("relay", "spread", bn),
            DagEdge("spread", "sink-a", snr_db),
            DagEdge("spread", "sink-b", snr_db),
        ),
    )


def multicast_tree(depth: int, branching: int, snr_db: float = 10.0) -> DagTopology:
    """A rooted multicast tree: one source, ``branching**depth`` leaf sinks.

    Nodes are named ``root``, then ``d{level}.{index}`` in breadth-first
    order; edges are emitted in the same order, so edge indices (and their
    derived seeds) are a pure function of ``(depth, branching)``.
    """
    if depth < 1:
        raise TopologyError("no-edges", f"depth must be at least 1, got {depth}")
    if branching < 1:
        raise TopologyError("no-edges", f"branching must be at least 1, got {branching}")
    nodes: list[str] = ["root"]
    edges: list[DagEdge] = []
    previous = ["root"]
    for level in range(1, depth + 1):
        current = []
        for parent_i, parent in enumerate(previous):
            for child_i in range(branching):
                child = f"d{level}.{parent_i * branching + child_i}"
                nodes.append(child)
                edges.append(DagEdge(parent, child, snr_db))
                current.append(child)
        previous = current
    return DagTopology(nodes=tuple(nodes), edges=tuple(edges))


def build_dag_sessions(
    family: str,
    topology: DagTopology,
    seed: int = 0,
    smoke: bool = False,
    max_symbols: int = 4096,
    termination: str = "genie",
) -> list[CodecSession]:
    """One code-agnostic session per edge, seeds derived from the edge index.

    Edge 0 keeps the caller's seed and edge ``e > 0`` uses
    ``derive_seed(seed, "relay-hop", e)`` — the *same* discipline as
    :func:`build_codec_relay_sessions`, so a path DAG's sessions are
    identical to the equivalent relay chain's.
    """
    from repro.phy.families import make_codec_session

    return [
        make_codec_session(
            family,
            snr_db=float(edge.snr_db),
            seed=seed if e == 0 else derive_seed(seed, "relay-hop", e),
            smoke=smoke,
            max_symbols=max_symbols,
            termination=termination,
        )
        for e, edge in enumerate(topology.edges)
    ]


@dataclass(frozen=True)
class DagDelivery:
    """One payload arriving at one node: which round, combined from whom."""

    round: int
    sources: tuple[str, ...]
    payload: np.ndarray
    time: int


@dataclass(frozen=True)
class DagTransportResult:
    """Per-edge transport results plus every node's delivery log."""

    topology: DagTopology
    n_rounds: int
    payload_bits_per_packet: int
    edge_results: tuple[TransportResult, ...]
    deliveries: Mapping[str, tuple[DagDelivery, ...]]
    makespan: int

    @property
    def total_symbols_sent(self) -> int:
        """Channel uses summed over every edge (the mesh's airtime)."""
        return int(sum(r.total_symbols_sent for r in self.edge_results))

    def symbols_on_edge(self, src: str, dst: str) -> int:
        """Channel uses spent on one named edge."""
        return int(
            self.edge_results[self.topology.edge_index(src, dst)].total_symbols_sent
        )

    def recovered(
        self, node: str, known: Mapping[tuple[int, str], np.ndarray] | None = None
    ) -> dict[tuple[int, str], np.ndarray]:
        """Per-source payloads a node can resolve, ``(round, source) -> bits``.

        Singleton deliveries are known outright; XOR-combined deliveries are
        peeled by Gaussian-elimination-style substitution (a combination with
        exactly one unknown member resolves it), iterated to a fixpoint.
        ``known`` seeds extra a-priori knowledge — e.g. a source node knows
        its own payloads.
        """
        resolved: dict[tuple[int, str], np.ndarray] = dict(known or {})
        pending: list[DagDelivery] = []
        for d in self.deliveries.get(node, ()):
            if len(d.sources) == 1:
                resolved[(d.round, d.sources[0])] = d.payload
            else:
                pending.append(d)
        progressed = True
        while pending and progressed:
            progressed = False
            remaining = []
            for d in pending:
                unknown = [s for s in d.sources if (d.round, s) not in resolved]
                if len(unknown) == 1:
                    acc = np.array(d.payload, dtype=np.uint8)
                    for s in d.sources:
                        if s != unknown[0]:
                            acc = np.bitwise_xor(acc, resolved[(d.round, s)])
                    resolved[(d.round, unknown[0])] = acc
                    progressed = True
                elif unknown:
                    remaining.append(d)
            pending = remaining
        return resolved


def _dag_flow_bound(topology: DagTopology, xor_nodes: frozenset) -> dict[int, int]:
    """Packets each edge carries per round (XOR nodes emit one per round)."""
    per_node: dict[str, int] = {}
    for node in topology.topological_order:
        in_edges = topology.in_edges(node)
        if not in_edges:
            per_node[node] = 1
        elif node in xor_nodes:
            per_node[node] = 1
        else:
            per_node[node] = sum(
                per_node[topology.edges[e].src] for e in in_edges
            )
    return {
        e: per_node[edge.src] for e, edge in enumerate(topology.edges)
    }


def simulate_dag_transport(
    topology: DagTopology,
    sessions: Sequence[RatelessSession | CodecSession],
    source_payloads: Mapping[str, Sequence[np.ndarray]],
    config: TransportConfig,
    xor_nodes: Sequence[str] = (),
) -> DagTransportResult:
    """Run a mesh of rateless links under one event clock.

    Every edge is an independent :class:`HopTransport` (its own ARQ window,
    ACK channel, and per-packet noise streams keyed by the edge index);
    interior nodes forward each decoded payload onto all of their out-edges
    the moment it is delivered, so the whole mesh pipelines in topological
    order.  Nodes in ``xor_nodes`` instead wait for one payload per in-edge
    of a round and emit the XOR of all of them as a single packet.

    Per-edge packet sequence numbers count arrivals at that edge in delivery
    order (for sources: enqueue order), which for a path DAG makes packet
    noise streams identical to the relay chain's.  A packet aborted on any
    edge never reaches downstream edges; an XOR node missing one in-edge
    payload of a round never emits that round's combination.
    """
    sessions = list(sessions)
    if len(sessions) != topology.n_edges:
        raise ValueError(
            f"need one session per edge: {topology.n_edges} edges, "
            f"{len(sessions)} sessions"
        )
    if len({s.payload_bits for s in sessions}) > 1:
        raise ValueError("all edges must share one framing (payload size) configuration")
    xor_set = frozenset(str(n) for n in xor_nodes)
    for node in sorted(xor_set):
        if node not in topology.nodes:
            raise TopologyError("unknown-node", f"xor node {node!r} is not in the topology")
        if len(topology.in_edges(node)) < 2 or not topology.out_edges(node):
            raise TopologyError(
                "unreachable",
                f"xor node {node!r} needs at least two in-edges and one out-edge",
            )
    sources = topology.sources
    if set(source_payloads) != set(sources):
        raise ValueError(
            f"source_payloads keys {sorted(source_payloads)} must be exactly "
            f"the topology sources {sorted(sources)}"
        )
    round_counts = {len(source_payloads[s]) for s in sources}
    if len(round_counts) != 1:
        raise ValueError("every source must supply the same number of round payloads")
    n_rounds = round_counts.pop()

    tel = current_telemetry()
    scheduler = EventScheduler()
    hops: list[HopTransport] = []
    for e, session in enumerate(sessions):
        session.channel.reset()
        hops.append(HopTransport(scheduler, session, config, hop_index=e))

    packet_meta: list[list[tuple[int, frozenset]]] = [[] for _ in hops]
    deliveries: dict[str, list[DagDelivery]] = {n: [] for n in topology.nodes}
    xor_pending: dict[tuple[str, int], list[tuple[frozenset, np.ndarray]]] = {}

    def enqueue_on(e: int, rnd: int, srcs: frozenset, payload: np.ndarray) -> None:
        meta = packet_meta[e]
        index = len(meta)
        meta.append((rnd, srcs))
        hops[e].enqueue(payload, orig_index=index)

    def arrive(node: str, rnd: int, srcs: frozenset, payload: np.ndarray, time: int) -> None:
        deliveries[node].append(
            DagDelivery(round=rnd, sources=tuple(sorted(srcs)), payload=payload, time=time)
        )
        out = topology.out_edges(node)
        if node in xor_set:
            pending = xor_pending.setdefault((node, rnd), [])
            pending.append((srcs, payload))
            if len(pending) == len(topology.in_edges(node)):
                combined_srcs = frozenset()
                combined = None
                for part_srcs, part_payload in pending:
                    combined_srcs = combined_srcs.symmetric_difference(part_srcs)
                    part = np.array(part_payload, dtype=np.uint8)
                    combined = part if combined is None else np.bitwise_xor(combined, part)
                del xor_pending[(node, rnd)]
                if tel.enabled:
                    tel.counter("link.xor_combines", node=node)
                for e in out:
                    enqueue_on(e, rnd, combined_srcs, combined)
        else:
            for e in out:
                enqueue_on(e, rnd, srcs, payload)

    def make_on_deliver(e: int):
        dst = topology.edges[e].dst

        def deliver(orig_index: int, payload: np.ndarray, time: int) -> None:
            rnd, srcs = packet_meta[e][orig_index]
            arrive(dst, rnd, srcs, payload, time)

        return deliver

    for e in range(topology.n_edges):
        hops[e].on_deliver = make_on_deliver(e)

    for node in sources:
        for rnd, payload in enumerate(source_payloads[node]):
            for e in topology.out_edges(node):
                enqueue_on(e, rnd, frozenset({node}), np.asarray(payload, dtype=np.uint8))

    flow = _dag_flow_bound(topology, xor_set)
    budgets = [
        sessions[e].max_symbols
        for e in range(topology.n_edges)
        for _ in range(n_rounds * flow[e])
    ]
    scheduler.run(max_events=_event_budget(config, len(budgets), budgets))

    edge_results = tuple(hop.result() for hop in hops)
    return DagTransportResult(
        topology=topology,
        n_rounds=n_rounds,
        payload_bits_per_packet=sessions[0].payload_bits,
        edge_results=edge_results,
        deliveries={n: tuple(d) for n, d in deliveries.items()},
        makespan=max((r.makespan for r in edge_results), default=0),
    )
