"""Deterministic discrete-event scheduler for the link and MAC simulators.

Time is measured in integer *symbol-times* (one tick per forward-channel
use), the natural clock of a rateless link: every cost the transport layer
measures — ACK delay, window stalls, go-back-N waste — is expressed in the
same unit the physical layer spends, so transport results divide directly
into the bits/symbol numbers the rest of the library reports.

Events at the same tick are ordered by a priority class and then by
insertion order (FIFO).  The priority classes encode the causality the
sliding-window protocols need at a shared instant:

* ``PRIORITY_BLOCK`` — a subpass block arrives at the receiver (and may
  trigger a decode and an ACK);
* ``PRIORITY_ACK`` — an ACK arrives back at the sender;
* ``PRIORITY_SEND`` — the sender decides what to transmit next.

Processing blocks before ACKs before send decisions guarantees that with a
zero-delay lossless reverse channel the sender *always* learns of a decode
before it can spend another symbol on that packet — which is what makes the
transport reproduce :class:`~repro.link.feedback.PerfectFeedback` symbol
counts exactly (an equivalence pinned by the test suite).

:meth:`EventScheduler.schedule` returns an :class:`EventHandle` that can be
:meth:`~EventHandle.cancel`-led before it fires — the multi-user cell
simulator (:mod:`repro.mac.cell`) uses handles for per-packet deadline
timers that are disarmed when the packet delivers first.  Cancellation is
lazy (the heap entry is skipped when popped), so a cancelled event costs
nothing and never perturbs the ordering of live events; a run with no
cancellations is therefore bit-identical to the pre-handle scheduler.
:meth:`EventScheduler.run_until` additionally lets a caller step the clock
to a chosen instant — scheduler studies advance a cell epoch by epoch and
inspect metrics between epochs.
"""

from __future__ import annotations

import heapq
from typing import Callable

__all__ = [
    "EventHandle",
    "EventScheduler",
    "PRIORITY_BLOCK",
    "PRIORITY_ACK",
    "PRIORITY_SEND",
]

PRIORITY_BLOCK = 0
PRIORITY_ACK = 1
PRIORITY_SEND = 2


class EventHandle:
    """A cancellable reference to one scheduled event.

    Cancelling is idempotent and only effective before the event fires;
    cancelling an already-processed event is a no-op.
    """

    __slots__ = ("time", "_scheduler", "_live")

    def __init__(self, scheduler: "EventScheduler", time: int) -> None:
        self._scheduler = scheduler
        self._live = True
        #: The tick this event is scheduled for (informational).
        self.time = time

    @property
    def cancelled(self) -> bool:
        return not self._live

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        if self._live:
            self._live = False
            self._scheduler._n_cancelled += 1

    def _fire(self) -> bool:
        """Mark the event consumed; return whether it was still live."""
        if not self._live:
            self._scheduler._n_cancelled -= 1
            return False
        self._live = False
        return True


class EventScheduler:
    """A heap of ``(time, priority, insertion order, action)`` events.

    Actions are zero-argument callables (closures over the transport state).
    Determinism: for a fixed seed the transport schedules an identical event
    sequence, so heap order — and therefore every RNG draw made inside the
    actions — is reproducible run to run and across processes.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, int, EventHandle, Callable[[], None]]] = []
        self._counter = 0
        self._n_cancelled = 0
        self._now = 0
        self._n_processed = 0

    @property
    def now(self) -> int:
        """Current tick (read-only; only event processing advances it).

        Observers — the telemetry layer stamps spans with this clock — read
        the same accessor the simulation uses, so instrumentation can never
        write the clock by accident.
        """
        return self._now

    @property
    def n_processed(self) -> int:
        """Index of the event currently (or most recently) executing.

        Read-only.  Any simulation state change happens inside some event,
        so ``(now, n_processed)`` is a sound memo key for state that is
        fixed while one action runs (e.g. the network's interference cache).
        """
        return self._n_processed

    def schedule(
        self, time: int, priority: int, action: Callable[[], None]
    ) -> EventHandle:
        """Enqueue ``action`` to run at ``time`` (must not be in the past).

        Returns an :class:`EventHandle` that can cancel the event before it
        fires.
        """
        time = int(time)
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} before current time {self.now}")
        handle = EventHandle(self, time)
        heapq.heappush(self._heap, (time, priority, self._counter, handle, action))
        self._counter += 1
        return handle

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return len(self._heap) - self._n_cancelled

    def next_time(self) -> int | None:
        """Tick of the next *live* event, or ``None`` when none is queued.

        Lets a driver peek at where the clock will land before stepping it —
        the serve engine uses this to sample queue depths tick by tick, and
        tests use it to assert a loop fully drained.  Cancelled entries at
        the head of the heap are purged as a side effect (with the same
        bookkeeping :meth:`_run` would have applied when skipping them), so
        repeated peeks stay O(1) amortised.
        """
        while self._heap:
            time, _, _, handle, _ = self._heap[0]
            if handle.cancelled:
                heapq.heappop(self._heap)
                self._n_cancelled -= 1
                continue
            return time
        return None

    def run(self, max_events: int | None = None) -> int:
        """Process events until the queue drains; return the number processed.

        ``max_events`` is a liveness guard: a correct transport always
        drains (every packet either decodes or exhausts its symbol budget),
        so exceeding the bound indicates a protocol bug and raises rather
        than spinning forever.  Cancelled events are skipped and do not
        count against the bound.
        """
        return self._run(until=None, max_events=max_events)

    def run_until(self, time: int, max_events: int | None = None) -> int:
        """Process every event scheduled at or before ``time``, then set
        ``now = time``; return the number of events processed.

        Lets callers step a simulation epoch by epoch: events strictly
        after ``time`` stay queued, and the clock lands exactly on ``time``
        even if no event fires there (so a subsequent ``schedule`` cannot
        land in the stepped-over past).
        """
        time = int(time)
        if time < self.now:
            raise ValueError(f"cannot run until {time}, already at {self.now}")
        processed = self._run(until=time, max_events=max_events)
        self._now = max(self._now, time)
        return processed

    def _run(self, until: int | None, max_events: int | None) -> int:
        processed = 0
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                break
            time, _, _, handle, action = heapq.heappop(self._heap)
            if not handle._fire():
                continue  # cancelled: skip without advancing the clock
            self._now = time
            self._n_processed += 1
            action()
            processed += 1
            if max_events is not None and processed > max_events:
                raise RuntimeError(
                    f"event budget of {max_events} exceeded; "
                    "the transport simulation is not making progress"
                )
        return processed
