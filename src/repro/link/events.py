"""Deterministic discrete-event scheduler for the link-transport simulator.

Time is measured in integer *symbol-times* (one tick per forward-channel
use), the natural clock of a rateless link: every cost the transport layer
measures — ACK delay, window stalls, go-back-N waste — is expressed in the
same unit the physical layer spends, so transport results divide directly
into the bits/symbol numbers the rest of the library reports.

Events at the same tick are ordered by a priority class and then by
insertion order (FIFO).  The priority classes encode the causality the
sliding-window protocols need at a shared instant:

* ``PRIORITY_BLOCK`` — a subpass block arrives at the receiver (and may
  trigger a decode and an ACK);
* ``PRIORITY_ACK`` — an ACK arrives back at the sender;
* ``PRIORITY_SEND`` — the sender decides what to transmit next.

Processing blocks before ACKs before send decisions guarantees that with a
zero-delay lossless reverse channel the sender *always* learns of a decode
before it can spend another symbol on that packet — which is what makes the
transport reproduce :class:`~repro.link.feedback.PerfectFeedback` symbol
counts exactly (an equivalence pinned by the test suite).
"""

from __future__ import annotations

import heapq
from typing import Callable

__all__ = [
    "EventScheduler",
    "PRIORITY_BLOCK",
    "PRIORITY_ACK",
    "PRIORITY_SEND",
]

PRIORITY_BLOCK = 0
PRIORITY_ACK = 1
PRIORITY_SEND = 2


class EventScheduler:
    """A heap of ``(time, priority, insertion order, action)`` events.

    Actions are zero-argument callables (closures over the transport state).
    Determinism: for a fixed seed the transport schedules an identical event
    sequence, so heap order — and therefore every RNG draw made inside the
    actions — is reproducible run to run and across processes.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, int, Callable[[], None]]] = []
        self._counter = 0
        self.now = 0

    def schedule(self, time: int, priority: int, action: Callable[[], None]) -> None:
        """Enqueue ``action`` to run at ``time`` (must not be in the past)."""
        time = int(time)
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} before current time {self.now}")
        heapq.heappush(self._heap, (time, priority, self._counter, action))
        self._counter += 1

    @property
    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._heap)

    def run(self, max_events: int | None = None) -> int:
        """Process events until the queue drains; return the number processed.

        ``max_events`` is a liveness guard: a correct transport always
        drains (every packet either decodes or exhausts its symbol budget),
        so exceeding the bound indicates a protocol bug and raises rather
        than spinning forever.
        """
        processed = 0
        while self._heap:
            time, _, _, action = heapq.heappop(self._heap)
            self.now = time
            action()
            processed += 1
            if max_events is not None and processed > max_events:
                raise RuntimeError(
                    f"event budget of {max_events} exceeded; "
                    "the transport simulation is not making progress"
                )
        return processed
