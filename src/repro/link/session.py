"""Packet-level accounting of a rateless link under a feedback model.

Takes the per-packet "symbols needed" measurements produced by the rateless
session and turns them into link-level throughput and latency numbers for a
given feedback model — the quantity experiment E13 sweeps.

:func:`deliver_packets` bridges the physical and link layers directly: it
transmits a sequence of payloads through a :class:`RatelessSession` (whose
``decoder_factory`` decides between the from-scratch and incremental
decoding engines) and applies a feedback model to the measured per-packet
symbol requirements in one step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.rateless import RatelessSession, TrialResult
from repro.link.feedback import FeedbackModel
from repro.utils.deprecation import warn_once

__all__ = ["LinkSessionResult", "simulate_link_session", "deliver_packets"]


@dataclass(frozen=True)
class LinkSessionResult:
    """Aggregate outcome of delivering a sequence of packets."""

    n_packets: int
    payload_bits_per_packet: int
    symbols_needed: np.ndarray
    symbols_spent: np.ndarray

    @property
    def total_payload_bits(self) -> int:
        return self.n_packets * self.payload_bits_per_packet

    @property
    def throughput_bits_per_symbol(self) -> float:
        """Delivered payload bits per channel use, including feedback overhead.

        An empty packet sequence spends nothing and delivers nothing; its
        throughput is defined as 0.0 (rather than raising), so aggregation
        code can fold in idle links without special-casing them.
        """
        total_spent = float(self.symbols_spent.sum())
        if total_spent == 0:
            return 0.0
        return self.total_payload_bits / total_spent

    @property
    def ideal_throughput_bits_per_symbol(self) -> float:
        """Throughput with perfect feedback (the paper's assumption)."""
        total_needed = float(self.symbols_needed.sum())
        if total_needed == 0:
            return 0.0
        return self.total_payload_bits / total_needed

    @property
    def feedback_efficiency(self) -> float:
        """Fraction of the ideal throughput retained under the feedback model.

        Vacuously 1.0 for an empty packet sequence (no symbols were needed
        and none were spent).
        """
        ideal = self.ideal_throughput_bits_per_symbol
        if ideal == 0:
            return 1.0
        return self.throughput_bits_per_symbol / ideal

    @property
    def mean_packet_symbols(self) -> float:
        """Mean channel uses per packet including overhead (a latency proxy)."""
        if self.symbols_spent.size == 0:
            return 0.0
        return float(self.symbols_spent.mean())


def simulate_link_session(
    symbols_needed_per_packet: Sequence[int],
    payload_bits_per_packet: int,
    feedback: FeedbackModel,
) -> LinkSessionResult:
    """Apply a feedback model to a sequence of per-packet symbol requirements.

    An empty sequence is valid and yields a zero-packet result whose
    throughput properties are all well-defined (zero throughput, vacuously
    perfect efficiency).

    .. deprecated::
        Model-based accounting is superseded by the *measured* transport:
        ``repro.link.transport.run_link_transport(session, payloads, config)``
        returns the same :class:`LinkSessionResult` via
        ``TransportResult.link_session_result()`` from simulated protocol
        dynamics, for any :class:`~repro.phy.session.CodecSession`.
    """
    warn_once(
        "simulate_link_session",
        "simulate_link_session applies a closed-form feedback model; prefer the "
        "measured transport: repro.link.transport.run_link_transport(session, "
        "payloads, config).link_session_result()",
    )
    return _accounted_link_session(
        symbols_needed_per_packet, payload_bits_per_packet, feedback
    )


def _accounted_link_session(
    symbols_needed_per_packet: Sequence[int],
    payload_bits_per_packet: int,
    feedback: FeedbackModel,
) -> LinkSessionResult:
    """The non-deprecated implementation behind :func:`simulate_link_session`."""
    needed = np.asarray(list(symbols_needed_per_packet), dtype=np.int64)
    if np.any(needed <= 0):
        raise ValueError("symbols_needed_per_packet must be positive")
    if payload_bits_per_packet <= 0:
        raise ValueError(
            f"payload_bits_per_packet must be positive, got {payload_bits_per_packet}"
        )
    spent = np.array([feedback.symbols_spent(int(n)) for n in needed], dtype=np.float64)
    return LinkSessionResult(
        n_packets=int(needed.size),
        payload_bits_per_packet=int(payload_bits_per_packet),
        symbols_needed=needed,
        symbols_spent=spent,
    )


def deliver_packets(
    session: RatelessSession,
    payloads: Sequence[np.ndarray],
    rng: np.random.Generator,
    feedback: FeedbackModel,
) -> tuple[LinkSessionResult, list[TrialResult]]:
    """Transmit each payload ratelessly and account for feedback overhead.

    Runs one rateless trial per payload through ``session`` (each trial gets
    a fresh decoder from the session's factory, so the incremental engine's
    per-message caches never leak between packets), then applies ``feedback``
    to the measured symbol requirements.  Returns the link-level accounting
    together with the underlying per-packet trial results, whose
    ``candidates_explored`` totals expose the decoder work the engine choice
    saved.  An empty payload sequence yields an empty (zero-throughput)
    result and no trials.
    """
    trials = [session._run(payload, rng) for payload in payloads]
    link_result = _accounted_link_session(
        [trial.symbols_sent for trial in trials],
        session.payload_bits,
        feedback,
    )
    return link_result, trials
