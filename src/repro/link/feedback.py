"""Feedback models: how many symbols does the sender really transmit?

A rateless receiver needs ``S`` symbols to decode, but the sender only stops
when it *learns* that the receiver is done.  Each model maps the needed
symbol count to the transmitted symbol count (and accounts for any feedback
overhead in symbol-equivalents), which is all the throughput accounting in
:mod:`repro.link.session` requires.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

__all__ = ["FeedbackModel", "PerfectFeedback", "DelayedFeedback", "BlockFeedback"]


class FeedbackModel(ABC):
    """Maps symbols-needed to symbols-actually-spent on the channel."""

    @abstractmethod
    def symbols_spent(self, symbols_needed: int) -> float:
        """Channel uses consumed to deliver a packet that needed ``symbols_needed``."""

    def describe(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class PerfectFeedback(FeedbackModel):
    """The paper's evaluation assumption: instantaneous, free feedback."""

    def symbols_spent(self, symbols_needed: int) -> float:
        if symbols_needed < 0:
            raise ValueError("symbols_needed must be non-negative")
        return float(symbols_needed)


@dataclass(frozen=True)
class DelayedFeedback(FeedbackModel):
    """Feedback arrives a fixed delay after the decoding-enabling symbol.

    The sender keeps transmitting during the delay, so every packet overshoots
    by ``delay_symbols`` channel uses (e.g. a SIFS + ACK time expressed in
    symbol durations).
    """

    delay_symbols: int

    def __post_init__(self) -> None:
        if self.delay_symbols < 0:
            raise ValueError(f"delay_symbols must be non-negative, got {self.delay_symbols}")

    def symbols_spent(self, symbols_needed: int) -> float:
        if symbols_needed < 0:
            raise ValueError("symbols_needed must be non-negative")
        return float(symbols_needed + self.delay_symbols)

    def describe(self) -> str:
        return f"DelayedFeedback({self.delay_symbols} symbols)"


@dataclass(frozen=True)
class BlockFeedback(FeedbackModel):
    """Feedback only at block boundaries, with per-block overhead.

    The sender transmits in bursts of ``block_symbols`` and pauses for an
    ACK/NACK costing ``overhead_symbols`` symbol-times.  The packet therefore
    spends a whole number of blocks plus the per-block overhead — the classic
    throughput/latency trade-off for rateless links.
    """

    block_symbols: int
    overhead_symbols: float = 0.0

    def __post_init__(self) -> None:
        if self.block_symbols < 1:
            raise ValueError(f"block_symbols must be at least 1, got {self.block_symbols}")
        if self.overhead_symbols < 0:
            raise ValueError(
                f"overhead_symbols must be non-negative, got {self.overhead_symbols}"
            )

    def symbols_spent(self, symbols_needed: int) -> float:
        if symbols_needed < 0:
            raise ValueError("symbols_needed must be non-negative")
        n_blocks = max(1, math.ceil(symbols_needed / self.block_symbols))
        return n_blocks * (self.block_symbols + self.overhead_symbols)

    def describe(self) -> str:
        return (
            f"BlockFeedback(block={self.block_symbols}, "
            f"overhead={self.overhead_symbols:g})"
        )
