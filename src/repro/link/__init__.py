"""Link-layer machinery around the rateless code.

The paper's evaluation assumes "the receiver informs the sender as soon as it
is able to fully decode the data", and lists "developing a feedback
link-layer protocol for rateless spinal codes" as future work (Section 6).
This package models that feedback at two levels of fidelity:

* :mod:`repro.link.feedback` — closed-form feedback models (perfect,
  delayed, per-block) that convert the number of symbols a decoder *needed*
  into the number the sender actually *transmits*;
* :mod:`repro.link.session` — packet-level throughput/latency accounting for
  a stream of rateless transmissions under a feedback model;
* :mod:`repro.link.events` — the deterministic discrete-event scheduler
  (symbol-time clock) underlying the transport simulator;
* :mod:`repro.link.transport` — a simulated sliding-window ARQ protocol
  (go-back-N / selective-repeat, lossy delayed ACKs) whose feedback
  overhead is *measured* from protocol dynamics instead of assumed;
* :mod:`repro.link.topology` — multi-hop decode-and-forward relay chains
  (each hop re-encoding with a fresh hash seed on its own channel) and,
  generalising them, validated DAG topologies — explicit node/edge specs
  with cycle/reachability checking, butterfly and multicast-tree
  constructors, and a pipelined mesh transport under one event clock with
  optional XOR network coding at interior nodes.
"""

from repro.link.events import EventScheduler
from repro.link.feedback import (
    BlockFeedback,
    DelayedFeedback,
    FeedbackModel,
    PerfectFeedback,
)
from repro.link.session import LinkSessionResult, deliver_packets, simulate_link_session
from repro.link.topology import (
    DagDelivery,
    DagEdge,
    DagTopology,
    DagTransportResult,
    RelayTransportResult,
    TopologyError,
    build_codec_relay_sessions,
    build_dag_sessions,
    build_relay_sessions,
    butterfly,
    multicast_tree,
    path_dag,
    relay_hop_params,
    simulate_dag_transport,
    simulate_relay_transport,
)
from repro.link.transport import (
    HopTransport,
    TransportConfig,
    TransportResult,
    run_link_transport,
)

__all__ = [
    "FeedbackModel",
    "PerfectFeedback",
    "DelayedFeedback",
    "BlockFeedback",
    "simulate_link_session",
    "deliver_packets",
    "LinkSessionResult",
    "EventScheduler",
    "TransportConfig",
    "TransportResult",
    "HopTransport",
    "run_link_transport",
    "RelayTransportResult",
    "build_codec_relay_sessions",
    "build_relay_sessions",
    "relay_hop_params",
    "simulate_relay_transport",
    "DagDelivery",
    "DagEdge",
    "DagTopology",
    "DagTransportResult",
    "TopologyError",
    "build_dag_sessions",
    "butterfly",
    "multicast_tree",
    "path_dag",
    "simulate_dag_transport",
]
