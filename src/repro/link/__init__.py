"""Link-layer machinery around the rateless code.

The paper's evaluation assumes "the receiver informs the sender as soon as it
is able to fully decode the data", and lists "developing a feedback
link-layer protocol for rateless spinal codes" as future work (Section 6).
This package models that feedback explicitly so the cost of realistic
signalling can be quantified (experiment E13):

* :mod:`repro.link.feedback` — feedback models (perfect, delayed, per-block)
  that convert the number of symbols a decoder *needed* into the number the
  sender actually *transmits*;
* :mod:`repro.link.session` — packet-level throughput/latency accounting for
  a stream of rateless transmissions under a feedback model.
"""

from repro.link.feedback import (
    BlockFeedback,
    DelayedFeedback,
    FeedbackModel,
    PerfectFeedback,
)
from repro.link.session import LinkSessionResult, deliver_packets, simulate_link_session

__all__ = [
    "FeedbackModel",
    "PerfectFeedback",
    "DelayedFeedback",
    "BlockFeedback",
    "simulate_link_session",
    "deliver_packets",
    "LinkSessionResult",
]
