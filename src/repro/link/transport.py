"""Event-driven sliding-window ARQ over rateless spinal sessions.

The paper's evaluation assumes the sender learns of a decode instantly and
for free; :mod:`repro.link.feedback` priced that assumption with closed-form
models.  This module replaces the formulas with a *simulated* protocol: a
discrete-event sender/receiver pair exchanging subpass blocks on the forward
channel and ACK frames on a lossy, delayed reverse channel, so feedback
overhead is measured from protocol dynamics rather than assumed.

Protocol model
--------------
Time advances in symbol-times (one tick per forward channel use; see
:mod:`repro.link.events`).  The sender holds a window of up to ``window``
packets in flight and services them round-robin, one subpass block per turn.
"Retransmission" in a rateless code never repeats symbols — servicing a
packet again simply sends *fresh* coded symbols — so classical timers are
subsumed: an unacknowledged packet stays in the rotation, keeps eliciting
receiver feedback, and the protocol is live without a timeout state machine.

Two receiver policies are implemented:

* ``"go-back-n"`` — the receiver keeps decoder state only for the next
  in-order packet; blocks for later packets are *discarded* (their symbols
  are pure waste, the classical GBN penalty) and acknowledged cumulatively.
* ``"selective-repeat"`` — the receiver keeps per-packet decoder state,
  acknowledges each packet individually as it decodes, and delivers
  buffered packets in order.

ACKs travel on a frame-level :class:`~repro.channels.erasure.PacketErasureChannel`
with a fixed ``ack_delay`` (the feedback RTT in symbol-times).  A receiver
re-ACKs whenever it sees symbols for an already-completed packet, so lost
ACKs are recovered by the sender's continued transmission.

With a zero-delay lossless reverse channel the sender stops each packet at
exactly the symbols its decoder needed, so the transport reproduces
:class:`~repro.link.feedback.PerfectFeedback` accounting bit-exactly
(``selective-repeat`` at any window; ``go-back-n`` at window 1) — the
equivalence the test suite pins against :mod:`repro.link.session`.

A packet that exhausts the session's ``max_symbols`` budget without
decoding is aborted: both endpoints drop it and advance (modelling an
out-of-band management abort; the abort itself is not charged any channel
time).  Aborts are recorded as undelivered packets in the result.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Sequence

import numpy as np

from repro.channels.erasure import PacketErasureChannel
from repro.core.rateless import PacketTransmission, RatelessSession
from repro.phy.session import CodecSession
from repro.link.events import (
    PRIORITY_ACK,
    PRIORITY_BLOCK,
    PRIORITY_SEND,
    EventScheduler,
)
from repro.link.session import LinkSessionResult
from repro.obs.telemetry import current as current_telemetry
from repro.utils.rng import spawn_rng

__all__ = [
    "TransportConfig",
    "TransportResult",
    "HopTransport",
    "run_link_transport",
    "packet_rng",
    "ack_rng",
]

_PROTOCOLS = ("go-back-n", "selective-repeat")


def packet_rng(seed: int, hop: int, index: int) -> np.random.Generator:
    """Canonical per-(hop, packet) generator for forward-channel noise.

    Factored out so tests and the relay topology derive the *same* streams
    as the transport: per-packet independence is what makes a packet's
    symbol requirement identical whether its blocks are interleaved with
    other packets or sent back-to-back by :meth:`RatelessSession.run`.
    """
    return spawn_rng(seed, "transport", "hop", hop, "packet", index)


def ack_rng(seed: int, hop: int) -> np.random.Generator:
    """Canonical per-hop generator for reverse-channel erasure draws."""
    return spawn_rng(seed, "transport", "hop", hop, "ack")


@dataclass(frozen=True)
class TransportConfig:
    """Sliding-window protocol parameters shared by every hop.

    Parameters
    ----------
    protocol:
        ``"go-back-n"`` or ``"selective-repeat"``.
    window:
        Maximum packets the sender may have in flight (started, unACKed).
    ack_delay:
        Symbol-times from the receiver emitting an ACK to the sender
        processing it (the feedback RTT).
    ack_loss:
        Per-frame erasure probability on the reverse channel.
    seed:
        Base seed for the transport's random streams (forward noise per
        packet, reverse erasures per hop).
    max_events:
        Optional override of the scheduler's liveness bound; the default is
        derived from the per-packet symbol budgets and is generous.
    """

    protocol: str = "selective-repeat"
    window: int = 4
    ack_delay: int = 0
    ack_loss: float = 0.0
    seed: int = 20111114
    max_events: int | None = None

    def __post_init__(self) -> None:
        if self.protocol not in _PROTOCOLS:
            raise ValueError(
                f"unknown protocol {self.protocol!r}; expected one of {_PROTOCOLS}"
            )
        if self.window < 1:
            raise ValueError(f"window must be at least 1, got {self.window}")
        if self.ack_delay < 0:
            raise ValueError(f"ack_delay must be non-negative, got {self.ack_delay}")
        if not 0.0 <= self.ack_loss <= 1.0:
            raise ValueError(f"ack_loss must be in [0, 1], got {self.ack_loss}")

    def with_(self, **changes) -> "TransportConfig":
        """Copy with fields replaced (sweep convenience)."""
        return replace(self, **changes)


@dataclass(frozen=True)
class TransportResult:
    """Measured outcome of one hop's sliding-window transport.

    ``symbols_needed`` counts the channel uses the receiver had *accepted*
    when each packet decoded (0 for aborted packets); ``symbols_spent``
    counts everything the sender transmitted for the packet, including
    blocks the receiver discarded and overshoot while feedback was in
    flight.  The gap between the two is the measured cost of the protocol.
    """

    protocol: str
    window: int
    n_packets: int
    payload_bits_per_packet: int
    orig_indices: np.ndarray
    delivered: np.ndarray
    symbols_needed: np.ndarray
    symbols_spent: np.ndarray
    delivery_times: np.ndarray
    decoded_payloads: tuple
    makespan: int
    acks_sent: int
    acks_lost: int
    max_outstanding: int

    @property
    def n_delivered(self) -> int:
        return int(self.delivered.sum())

    @property
    def total_symbols_sent(self) -> int:
        return int(self.symbols_spent.sum())

    @property
    def goodput_bits_per_symbol_time(self) -> float:
        """Delivered payload bits per elapsed symbol-time (includes idling)."""
        if self.makespan == 0:
            return 0.0
        return self.n_delivered * self.payload_bits_per_packet / self.makespan

    @property
    def symbol_efficiency(self) -> float:
        """Needed-over-spent symbol ratio (1.0 = perfect-feedback ideal)."""
        spent = float(self.symbols_spent.sum())
        if spent == 0:
            return 1.0
        return float(self.symbols_needed.sum()) / spent

    def link_session_result(self) -> LinkSessionResult:
        """The delivered packets expressed in :mod:`repro.link.session` terms.

        This is the bridge that pins the simulated transport to the
        existing closed-form accounting: the returned object's throughput
        and efficiency properties are computed exactly as for the
        :class:`~repro.link.feedback.FeedbackModel` pipeline, but from
        *measured* per-packet symbol counts.
        """
        mask = self.delivered
        return LinkSessionResult(
            n_packets=int(mask.sum()),
            payload_bits_per_packet=self.payload_bits_per_packet,
            symbols_needed=self.symbols_needed[mask],
            symbols_spent=self.symbols_spent[mask].astype(np.float64),
        )


@dataclass
class _PacketState:
    """Bookkeeping for one packet at one hop (sender + receiver sides)."""

    orig_index: int
    payload: np.ndarray
    transmission: PacketTransmission | None = None
    acked: bool = False
    failed: bool = False
    delivered: bool = False
    symbols_needed: int = 0
    delivery_time: int = -1
    decoded_payload: np.ndarray | None = None


class HopTransport:
    """The sender/receiver state machine for one hop of a rateless link.

    One instance simulates both endpoints of a hop (they share the process,
    so "the receiver knows X" is enforced by only touching receiver fields
    from receiver-side handlers).  Packets enter through :meth:`enqueue`
    (all upfront for a direct link; as upstream hops deliver, for a relay)
    and leave through the ``on_deliver`` callback, which fires in order,
    exactly once per delivered packet.

    ``session`` is *code-agnostic*: anything exposing the PHY-session
    surface — ``open_transmission(payload, rng)``, ``payload_bits``,
    ``max_symbols``, ``channel`` — works, i.e. a historical (spinal)
    :class:`~repro.core.rateless.RatelessSession` or a
    :class:`~repro.phy.session.CodecSession` over any registered code
    family.  The transport only ever drives the pausable transmission
    interface (``send_next_block`` / ``deliver`` / ``decoded`` /
    ``exhausted``), so ARQ behaviour is identical across families.
    """

    def __init__(
        self,
        scheduler: EventScheduler,
        session: "RatelessSession | CodecSession",
        config: TransportConfig,
        hop_index: int = 0,
        on_deliver: Callable[[int, np.ndarray, int], None] | None = None,
    ) -> None:
        self.scheduler = scheduler
        self.session = session
        self.config = config
        self.hop_index = hop_index
        self.on_deliver = on_deliver
        self.ack_channel = PacketErasureChannel(config.ack_loss)
        self.ack_rng = ack_rng(config.seed, hop_index)
        self.packets: list[_PacketState] = []
        # -- sender state --
        self.base = 0  # lowest sequence number not yet ACKed (sender view)
        self.rr_cursor = -1
        self.busy_until = 0
        self.send_pending = False
        # -- receiver state --
        self.expected = 0  # go-back-N: next in-order sequence number
        self.rcv_base = 0  # selective-repeat: lowest undelivered sequence
        # -- statistics --
        self.acks_sent = 0
        self.acks_lost = 0
        #: Packets currently in flight (transmission started, not yet
        #: ACKed/aborted); maintained incrementally, peak recorded below.
        self.outstanding = 0
        self.max_outstanding = 0
        self.closed_at = 0
        self._tel = current_telemetry()

    # -- packet intake -------------------------------------------------------
    def enqueue(self, payload: np.ndarray, orig_index: int) -> None:
        """Make one payload available to this hop's sender (at current time)."""
        self.packets.append(_PacketState(orig_index=orig_index, payload=payload))
        self._kick_send(self.scheduler.now)

    # -- sender side ---------------------------------------------------------
    def _transmission(self, seq: int) -> PacketTransmission:
        state = self.packets[seq]
        if state.transmission is None:
            state.transmission = self.session.open_transmission(
                state.payload,
                packet_rng(self.config.seed, self.hop_index, state.orig_index),
            )
            self.outstanding += 1
            self.max_outstanding = max(self.max_outstanding, self.outstanding)
        return state.transmission

    def _mark_acked(self, seq: int) -> None:
        state = self.packets[seq]
        if not state.acked:
            state.acked = True
            if state.transmission is not None and not state.failed:
                self.outstanding -= 1

    def _sendable(self, seq: int) -> bool:
        state = self.packets[seq]
        if state.acked or state.failed:
            return False
        if state.transmission is not None and state.transmission.exhausted:
            return False  # final block in flight; abort resolves at arrival
        return True

    def _next_seq_to_service(self) -> int | None:
        """Round-robin over the in-flight window, starting after the cursor."""
        window_end = min(self.base + self.config.window, len(self.packets))
        candidates = [
            seq for seq in range(self.base, window_end) if self._sendable(seq)
        ]
        if not candidates:
            return None
        for seq in candidates:
            if seq > self.rr_cursor:
                return seq
        return candidates[0]

    def _kick_send(self, time: int) -> None:
        if self.send_pending:
            return
        self.send_pending = True
        self.scheduler.schedule(max(time, self.busy_until), PRIORITY_SEND, self._on_send)

    def _on_send(self) -> None:
        self.send_pending = False
        now = self.scheduler.now
        if now < self.busy_until:  # pragma: no cover - defensive; kicks respect busy_until
            self._kick_send(self.busy_until)
            return
        seq = self._next_seq_to_service()
        if seq is None:
            return  # idle; a future ACK/enqueue/abort will kick us again
        self.rr_cursor = seq
        transmission = self._transmission(seq)
        block, received = transmission.send_next_block()
        if self._tel.enabled:
            self._tel.counter("link.blocks_sent", hop=self.hop_index)
            self._tel.observe(
                "link.window_occupancy", self.outstanding, hop=self.hop_index
            )
        arrival = now + block.n_symbols
        self.busy_until = arrival
        self.scheduler.schedule(
            arrival,
            PRIORITY_BLOCK,
            lambda: self._on_block_arrival(seq, block, received),
        )
        self._kick_send(arrival)

    def _advance_base(self) -> None:
        while self.base < len(self.packets) and (
            self.packets[self.base].acked or self.packets[self.base].failed
        ):
            self.base += 1

    def _on_ack(self, value: int) -> None:
        """Process one ACK frame at the sender."""
        progressed = False
        if self.config.protocol == "go-back-n":
            # Cumulative: every sequence number below ``value`` is delivered.
            for seq in range(self.base, min(value, len(self.packets))):
                if not self.packets[seq].acked:
                    self._mark_acked(seq)
                    progressed = True
        else:
            if not self.packets[value].acked:
                self._mark_acked(value)
                progressed = True
        if progressed:
            self._advance_base()
            self._kick_send(self.scheduler.now)

    # -- receiver side -------------------------------------------------------
    def _send_ack(self, value: int) -> None:
        self.acks_sent += 1
        if self._tel.enabled:
            self._tel.counter("link.acks_sent", hop=self.hop_index)
        if not self.ack_channel.survives(self.ack_rng):
            self.acks_lost += 1
            if self._tel.enabled:
                self._tel.counter("link.acks_lost", hop=self.hop_index)
            return
        self.scheduler.schedule(
            self.scheduler.now + self.config.ack_delay,
            PRIORITY_ACK,
            lambda: self._on_ack(value),
        )

    def _deliver(self, seq: int) -> None:
        state = self.packets[seq]
        state.delivered = True
        state.delivery_time = self.scheduler.now
        self.closed_at = max(self.closed_at, self.scheduler.now)
        if self._tel.enabled:
            self._tel.counter("link.packets_delivered", hop=self.hop_index)
        if self.on_deliver is not None:
            self.on_deliver(state.orig_index, state.decoded_payload, self.scheduler.now)

    def _on_block_arrival(self, seq: int, block, received) -> None:
        if self.config.protocol == "go-back-n":
            self._gbn_arrival(seq, block, received)
        else:
            self._sr_arrival(seq, block, received)
        state = self.packets[seq]
        if state.transmission.exhausted and not state.acked and not state.failed:
            if state.transmission.decoded:
                # The receiver completed this packet but every ACK was lost
                # before the budget ran out; with no more blocks to elicit
                # re-ACKs the window would wedge on it forever.  Resolve it
                # out-of-band like an abort (the packet *was* delivered).
                self._mark_acked(seq)
                self._advance_base()
                self._kick_send(self.scheduler.now)
            else:
                self._abort(seq)

    def _gbn_arrival(self, seq: int, block, received) -> None:
        if seq < self.expected or self.packets[seq].failed:
            # Already complete (or aborted): the ACK must have been lost or
            # is still in flight; re-ACK cumulatively.
            self._send_ack(self.expected)
            return
        if seq > self.expected:
            # Out-of-order: discarded silently (the GBN penalty).  The
            # discarded symbols are the protocol's retransmission waste.
            if self._tel.enabled:
                self._tel.counter("link.blocks_discarded", hop=self.hop_index)
                self._tel.counter(
                    "link.symbols_discarded", block.n_symbols, hop=self.hop_index
                )
            return
        transmission = self.packets[seq].transmission
        if transmission.deliver(block, received):
            self._complete(seq)
            self.expected = seq + 1
            while (
                self.expected < len(self.packets) and self.packets[self.expected].failed
            ):
                self.expected += 1
            self._deliver(seq)
            self._send_ack(self.expected)

    def _sr_arrival(self, seq: int, block, received) -> None:
        state = self.packets[seq]
        if state.failed:
            return
        transmission = state.transmission
        if transmission.decoded:
            # Completed earlier but the sender evidently has not heard yet.
            self._send_ack(seq)
            return
        if transmission.deliver(block, received):
            self._complete(seq)
            self._send_ack(seq)
            self._sr_flush_in_order()

    def _sr_flush_in_order(self) -> None:
        """Deliver the in-order prefix of decoded packets (skipping aborts)."""
        while self.rcv_base < len(self.packets):
            head = self.packets[self.rcv_base]
            if head.failed:
                self.rcv_base += 1
                continue
            if head.transmission is None or not head.transmission.decoded:
                break
            if not head.delivered:
                self._deliver(self.rcv_base)
            self.rcv_base += 1

    def _complete(self, seq: int) -> None:
        """Record receiver-side decode bookkeeping for one packet."""
        state = self.packets[seq]
        state.symbols_needed = state.transmission.symbols_delivered
        state.decoded_payload = state.transmission.decoded_payload()

    def _abort(self, seq: int) -> None:
        """Give up on a budget-exhausted packet (out-of-band, zero-cost)."""
        state = self.packets[seq]
        state.failed = True
        self.outstanding -= 1
        if self._tel.enabled:
            self._tel.counter("link.aborts", hop=self.hop_index)
        if self.config.protocol == "go-back-n":
            if seq == self.expected:
                self.expected += 1
                while (
                    self.expected < len(self.packets)
                    and self.packets[self.expected].failed
                ):
                    self.expected += 1
        else:
            # Packets already decoded and buffered behind the aborted one
            # must not be stranded: flush the newly unblocked prefix.
            self._sr_flush_in_order()
        self._advance_base()
        self.closed_at = max(self.closed_at, self.scheduler.now)
        self._kick_send(self.scheduler.now)

    # -- results -------------------------------------------------------------
    def result(self) -> TransportResult:
        n = len(self.packets)
        spent = np.zeros(n, dtype=np.int64)
        for seq, state in enumerate(self.packets):
            if state.transmission is not None:
                spent[seq] = state.transmission.symbols_sent
        return TransportResult(
            protocol=self.config.protocol,
            window=self.config.window,
            n_packets=n,
            payload_bits_per_packet=self.session.payload_bits,
            orig_indices=np.array([s.orig_index for s in self.packets], dtype=np.int64),
            delivered=np.array([s.delivered for s in self.packets], dtype=bool),
            symbols_needed=np.array([s.symbols_needed for s in self.packets], dtype=np.int64),
            symbols_spent=spent,
            delivery_times=np.array([s.delivery_time for s in self.packets], dtype=np.int64),
            decoded_payloads=tuple(s.decoded_payload for s in self.packets),
            makespan=self.closed_at,
            acks_sent=self.acks_sent,
            acks_lost=self.acks_lost,
            max_outstanding=self.max_outstanding,
        )


def _event_budget(config: TransportConfig, n_packets: int, budgets: Sequence[int]) -> int:
    """Generous liveness bound: a few events per possible channel symbol."""
    if config.max_events is not None:
        return config.max_events
    return 64 + 16 * n_packets + 8 * int(np.sum(np.asarray(budgets, dtype=np.int64)))


def run_link_transport(
    session: "RatelessSession | CodecSession",
    payloads: Sequence[np.ndarray],
    config: TransportConfig,
) -> TransportResult:
    """Simulate a single-hop sliding-window transport of ``payloads``.

    Every payload is streamed through ``session``'s encoder, channel and
    decoder under the configured ARQ protocol; the session may be the
    historical spinal one or a :class:`~repro.phy.session.CodecSession`
    over any code family.  The session's ``max_symbols`` acts as the
    per-packet abort budget, and its ``termination`` rule decides when the
    receiver considers a packet decoded.  A spinal session's ``search``
    setting is ignored: the transport is inherently sequential (an on-line
    receiver attempting a decode per block).
    """
    scheduler = EventScheduler()
    session.channel.reset()
    hop = HopTransport(scheduler, session, config, hop_index=0)
    for index, payload in enumerate(payloads):
        hop.enqueue(payload, orig_index=index)
    scheduler.run(
        max_events=_event_budget(
            config, len(hop.packets), [session.max_symbols] * len(hop.packets)
        )
    )
    return hop.result()
