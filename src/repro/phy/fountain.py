"""LT fountain codes behind the :class:`~repro.phy.protocol.RatelessCode` protocol.

LT codes are erasure codes: peeling needs symbols that are either *correct*
or *known missing*.  To run them over the library's noisy bit channels the
family adds the detection layer real fountain deployments use — every LT
symbol travels with a per-symbol CRC, and the receiver erases any symbol
whose CRC fails.  The CRC bits are charged as channel uses, so the measured
rate honestly prices the erasure abstraction (this is exactly the
related-work contrast the paper draws: fountain codes ride *erasures*,
spinal codes ride the noise itself).

The decoder is the incremental peeling decoder of :mod:`repro.fountain.lt`
— recovery happens inside ``absorb`` (peeling *is* the decode), attempts are
cheap completion checks, and redundant symbols after completion are no-ops.
A CRC false-accept (flips that preserve the CRC) can poison a block; under
genie termination such a trial simply never terminates and is reported as a
budget-exhausted failure, which is the honest outcome for a detection layer
of finite strength.
"""

from __future__ import annotations

import numpy as np

from repro.core.crc import CRC8, Crc
from repro.fountain.lt import (
    LTDecoder,
    LTEncoder,
    LTSymbol,
    lt_neighbours,
    robust_soliton_distribution,
)
from repro.phy.protocol import CodeBlock, CodeInfo, DecodeStatus, NOT_ATTEMPTED

__all__ = ["LTCode"]


class _LTSource:
    """Per-packet stream: LT symbol ``i`` plus its CRC trailer, as hard bits."""

    def __init__(self, code: "LTCode", payload: np.ndarray) -> None:
        self.code = code
        self.encoder = LTEncoder(
            payload, code.block_bits, seed=code.seed, c=code.c, delta=code.delta
        )
        self.next_seed = 0

    def next_block(self) -> CodeBlock:
        symbol = self.encoder.symbol(self.next_seed)
        parts = [symbol.value]
        if self.code.crc is not None:
            parts.append(self.code.crc.compute(symbol.value))
        block = CodeBlock(
            index=self.next_seed,
            values=np.concatenate(parts).astype(np.uint8),
            meta=self.next_seed,
        )
        self.next_seed += 1
        return block


class _LTReceiver:
    """Incremental peeling receiver with the CRC erasure layer in front."""

    def __init__(self, code: "LTCode") -> None:
        self.code = code
        self.peeler = LTDecoder(code.n_blocks, code.block_bits)
        self.symbols_erased = 0

    def absorb(
        self, block: CodeBlock, received: np.ndarray, attempt: bool = True
    ) -> DecodeStatus:
        bits = np.asarray(received, dtype=np.uint8)
        value = bits[: self.code.block_bits]
        if self.code.crc is not None and not self.code.crc.check(bits):
            self.symbols_erased += 1
        else:
            neighbours = lt_neighbours(
                self.code.seed,
                int(block.meta),
                self.code.n_blocks,
                self.code.degree_distribution,
            )
            self.peeler.add_symbol(
                LTSymbol(seed=int(block.meta), neighbours=neighbours, value=value)
            )
        if not attempt:
            return NOT_ATTEMPTED
        return self.decode_now()

    def decode_now(self) -> DecodeStatus:
        if not self.peeler.is_complete:
            return DecodeStatus(attempted=True, work=1)
        data = self.peeler.data_bits()
        return DecodeStatus(
            attempted=True, estimate=data, payload=data, verified=True, work=1
        )


class LTCode:
    """Rateless LT fountain code over a hard-bit channel.

    Parameters
    ----------
    payload_bits:
        Message size; must be a multiple of ``block_bits``.
    block_bits:
        Bits per LT input block (and per output symbol body).
    crc:
        Per-symbol CRC providing the erasure-detection layer (``None``
        disables it — only sensible on an error-free channel).  Its width is
        charged as channel uses on every symbol.
    seed:
        Code seed shared by sender and receiver (the degree/neighbour
        pseudo-randomness); derive per-hop seeds from it for relays.
    c, delta:
        Robust-soliton parameters.
    """

    def __init__(
        self,
        payload_bits: int,
        block_bits: int = 6,
        crc: Crc | None = CRC8,
        seed: int = 0,
        c: float = 0.1,
        delta: float = 0.5,
    ) -> None:
        if payload_bits % block_bits != 0:
            raise ValueError(
                f"payload_bits={payload_bits} is not a multiple of block_bits={block_bits}"
            )
        self.block_bits = int(block_bits)
        self.n_blocks = payload_bits // block_bits
        self.crc = crc
        self.seed = int(seed)
        self.c = float(c)
        self.delta = float(delta)
        self.degree_distribution = robust_soliton_distribution(
            self.n_blocks, c=self.c, delta=self.delta
        )
        self.symbol_bits = self.block_bits + (crc.width if crc is not None else 0)
        self.info = CodeInfo(
            family="lt",
            payload_bits=int(payload_bits),
            domain="bit",
        )

    def new_encoder(self, payload: np.ndarray) -> _LTSource:
        return _LTSource(self, np.asarray(payload, dtype=np.uint8))

    def new_decoder(self) -> _LTReceiver:
        return _LTReceiver(self)

    def min_symbols_to_attempt(self) -> int:
        """Peeling cannot complete before ``n_blocks`` symbols have arrived."""
        return self.n_blocks * self.symbol_bits

    def reference(self, payload: np.ndarray) -> np.ndarray:
        return np.asarray(payload, dtype=np.uint8)
