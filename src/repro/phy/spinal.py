"""Spinal codes behind the :class:`~repro.phy.protocol.RatelessCode` protocol.

This adapter is deliberately *thin*: the encoder stream is the existing
:meth:`~repro.core.encoder.SpinalEncoder.symbol_stream` (blocks are the very
same :class:`~repro.core.encoder.SubpassBlock` objects — whole subpasses per
call, the batching the PR-1 throughput pin measures), the observation store
is :class:`~repro.core.encoder.ReceivedObservations`, and decode attempts go
through whatever decoder the factory builds (the incremental bubble engine
by default).  As a result a :class:`~repro.phy.session.CodecSession` over a
:class:`SpinalCode` consumes randomness, counts symbols, gates decode
attempts and produces decoded bits **bit-identically** to the historical
:class:`~repro.core.rateless.RatelessSession` — which is what lets the old
session remain a shim over the new API (pinned by
``tests/test_api_migration.py`` and the transport/cell equivalence suites).

The termination (estimate) space of the family is the *framed* message —
payload plus CRC, padding and tail — so genie sessions compare exactly what
the historical receiver compared, and ``verified`` is the framer's
self-check (CRC plus known-bits), i.e. the historical ``"crc"`` rule.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.decoder_bubble import BubbleDecoder
from repro.core.encoder import ReceivedObservations, SpinalEncoder, SubpassBlock
from repro.core.framing import Framer
from repro.phy.protocol import CodeInfo, DecodeStatus, NOT_ATTEMPTED

__all__ = ["SpinalCode"]


class _SpinalSource:
    """Per-packet encoder stream: whole subpasses, straight off the encoder."""

    def __init__(self, encoder: SpinalEncoder, framed: np.ndarray) -> None:
        self._stream = encoder.symbol_stream(framed)

    def next_block(self) -> SubpassBlock:
        return next(self._stream)


class _SpinalDecoder:
    """Per-packet receiver: observation store plus one decoder instance."""

    def __init__(self, code: "SpinalCode") -> None:
        self.code = code
        self.decoder = code.decoder_factory(code.encoder)
        self.observations = ReceivedObservations(code.framer.n_segments)

    def absorb(
        self, block: SubpassBlock, received: np.ndarray, attempt: bool = True
    ) -> DecodeStatus:
        self.observations.add_block(block, received)
        if not attempt:
            return NOT_ATTEMPTED
        return self.decode_now()

    def decode_now(self) -> DecodeStatus:
        framer = self.code.framer
        result = self.decoder.decode(framer.framed_bits, self.observations)
        return DecodeStatus(
            attempted=True,
            estimate=result.message_bits,
            payload=framer.extract_payload(result.message_bits),
            verified=framer.check(result.message_bits),
            work=result.candidates_explored,
            detail=result,
        )


class SpinalCode:
    """The paper's code, packaged as a :class:`~repro.phy.protocol.RatelessCode`.

    Parameters mirror the pieces a :class:`~repro.core.rateless.RatelessSession`
    is assembled from, so the old session can wrap its own parts::

        code = SpinalCode(encoder, decoder_factory, framer)
    """

    def __init__(
        self,
        encoder: SpinalEncoder,
        decoder_factory: Callable[[SpinalEncoder], BubbleDecoder],
        framer: Framer,
    ) -> None:
        if framer.k != encoder.params.k:
            raise ValueError("framer and encoder disagree on the segment size k")
        self.encoder = encoder
        self.decoder_factory = decoder_factory
        self.framer = framer
        self.info = CodeInfo(
            family="spinal",
            payload_bits=framer.payload_bits,
            domain="bit" if encoder.params.bit_mode else "symbol",
            signal_power=encoder.params.average_power,
        )

    def new_encoder(self, payload: np.ndarray) -> _SpinalSource:
        return _SpinalSource(self.encoder, self.framer.frame(payload))

    def new_decoder(self) -> _SpinalDecoder:
        return _SpinalDecoder(self)

    def min_symbols_to_attempt(self) -> int:
        """Channel uses carrying fewer coded bits than the unknown bits.

        The historical receiver's threshold, verbatim: below it a *reliable*
        decode is information-theoretically impossible, so attempting one
        only burns tree expansions (and could terminate on an
        above-capacity fluke).
        """
        bits_per_symbol = self.encoder.params.coded_bits_per_symbol
        unknown_bits = self.framer.payload_bits + self.framer.crc_bits
        return -(-unknown_bits // bits_per_symbol)

    def reference(self, payload: np.ndarray) -> np.ndarray:
        return self.framer.frame(payload)
