"""Code-agnostic PHY session API: one protocol, every rateless code family.

The paper's protocol — stream coded symbols until the receiver's ACK stops
the sender — is not specific to spinal codes.  This package defines the
:class:`~repro.phy.protocol.RatelessCode` protocol (encoder stream +
incremental decoder + metadata) and a single session loop
(:class:`~repro.phy.session.CodecSession` /
:class:`~repro.phy.session.CodecTransmission`) that the link transport,
relay topology and MAC cell all drive, so *any* code family runs in *any*
scenario:

* :mod:`repro.phy.protocol` — the protocol itself (``CodeInfo``,
  ``DecodeStatus``, ``SymbolSource``, ``IncrementalDecoder``,
  ``RatelessCode``);
* :mod:`repro.phy.session` — the code-agnostic session loop with the PR-1
  decode gate, per-packet budgets and pause/resume;
* :mod:`repro.phy.spinal` — the paper's code (bit-identical adapter over
  the existing encoder and incremental bubble decoder);
* :mod:`repro.phy.fountain` — LT fountain codes with a per-symbol CRC
  erasure layer and an incremental peeling decoder;
* :mod:`repro.phy.ldpc_ir` — incremental-redundancy LDPC: the hybrid-ARQ
  puncturing schedule as a rateless symbol stream with LLR combining;
* :mod:`repro.phy.fixed_rate` — fixed-rate spinal frames under ARQ (the
  "status quo" member of the matrix, and the adaptive menu's backing code);
* :mod:`repro.phy.repetition` — BPSK repetition with soft combining (the
  floor any code should beat);
* :mod:`repro.phy.families` — the code-family registry powering the
  conformance suite and the ``code-family-matrix`` experiment.
"""

from repro.phy.protocol import (
    CodeBlock,
    CodeInfo,
    DecodeStatus,
    IncrementalDecoder,
    RatelessCode,
    SymbolSource,
)
from repro.phy.session import CodecResult, CodecSession, CodecTransmission
from repro.phy.spinal import SpinalCode
from repro.phy.fountain import LTCode
from repro.phy.ldpc_ir import LdpcIrCode
from repro.phy.fixed_rate import FixedRateSpinalCode
from repro.phy.repetition import RepetitionCode
from repro.phy.families import (
    CODE_FAMILY_NAMES,
    CodeFamily,
    channel_for_code,
    code_family,
    make_code,
    make_codec_session,
    register_code_family,
)

__all__ = [
    "CODE_FAMILY_NAMES",
    "CodeBlock",
    "CodeFamily",
    "CodeInfo",
    "CodecResult",
    "CodecSession",
    "CodecTransmission",
    "DecodeStatus",
    "FixedRateSpinalCode",
    "IncrementalDecoder",
    "LTCode",
    "LdpcIrCode",
    "RatelessCode",
    "RepetitionCode",
    "SpinalCode",
    "SymbolSource",
    "channel_for_code",
    "code_family",
    "make_code",
    "make_codec_session",
    "register_code_family",
]
