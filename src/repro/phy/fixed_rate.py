"""Fixed-rate spinal frames under ARQ, behind the :class:`~repro.phy.protocol.RatelessCode` protocol.

Section 3 of the paper notes spinal codes can run at fixed rates; this
family is that instantiation made *session-compatible*: every frame attempt
transmits exactly ``n_passes`` passes, the receiver decodes once per frame,
and a failed frame is simply retransmitted with fresh noise (no combining
across attempts — the classical whole-frame ARQ the multi-user adaptive
baseline uses, so the two stay comparable).  The per-block quantum is one
whole pass, which keeps the cell/transport scheduling granularity identical
to the rateless families.

Because each attempt uses its own observation store keyed by the block's
``(attempt, pass)`` metadata, the decoder is order-invariant within the
blocks actually delivered, and the family slots into every scenario the
protocol reaches — including the :class:`~repro.mac.adaptive` rate menu,
whose entries are instances of this class at different ``n_passes``.
"""

from __future__ import annotations

import os
from typing import Callable

import numpy as np

from repro.core.decoder_bubble import BubbleDecoder
from repro.core.decoder_vectorized import make_decoder_factory
from repro.core.encoder import ReceivedObservations, SpinalEncoder
from repro.core.params import SpinalParams
from repro.phy.protocol import CodeBlock, CodeInfo, DecodeStatus, NOT_ATTEMPTED

__all__ = ["FixedRateSpinalCode"]


class _FrameSource:
    """Cycle the frame's passes; attempt ``a`` re-sends the same symbols."""

    def __init__(self, code: "FixedRateSpinalCode", payload: np.ndarray) -> None:
        self.code = code
        self.passes = code.encoder.encode_passes(payload, code.n_passes)
        self.next_index = 0

    def next_block(self) -> CodeBlock:
        attempt, pass_index = divmod(self.next_index, self.code.n_passes)
        block = CodeBlock(
            index=self.next_index,
            values=self.passes[pass_index],
            meta=(attempt, pass_index),
        )
        self.next_index += 1
        return block


class _FrameReceiver:
    """Per-attempt observation stores; one decode per completed frame."""

    def __init__(self, code: "FixedRateSpinalCode") -> None:
        self.code = code
        self.decoder = code.decoder_factory(code.encoder)
        self._observations: dict[int, ReceivedObservations] = {}
        self._passes_seen: dict[int, set[int]] = {}

    def _store(self, attempt: int) -> ReceivedObservations:
        if attempt not in self._observations:
            self._observations[attempt] = ReceivedObservations(self.code.n_segments)
            self._passes_seen[attempt] = set()
        return self._observations[attempt]

    def absorb(
        self, block: CodeBlock, received: np.ndarray, attempt: bool = True
    ) -> DecodeStatus:
        frame_attempt, pass_index = block.meta
        observations = self._store(frame_attempt)
        for position in range(self.code.n_segments):
            observations.add(position, pass_index, received[position])
        seen = self._passes_seen[frame_attempt]
        seen.add(pass_index)
        if not attempt or len(seen) < self.code.n_passes:
            # Mid-frame: a fixed-rate receiver decodes only at the frame
            # boundary, whatever the session's symbol gate says.
            return NOT_ATTEMPTED
        return self._decode(observations)

    def decode_now(self) -> DecodeStatus:
        """Best effort: decode the attempt with the most observations."""
        if not self._observations:
            return self._decode(ReceivedObservations(self.code.n_segments))
        fullest = max(
            self._observations, key=lambda a: self._observations[a].total_symbols
        )
        return self._decode(self._observations[fullest])

    def _decode(self, observations: ReceivedObservations) -> DecodeStatus:
        result = self.decoder.decode(self.code.info.payload_bits, observations)
        return DecodeStatus(
            attempted=True,
            estimate=result.message_bits,
            payload=result.message_bits,
            verified=False,  # no self-contained check: genie termination only
            work=result.candidates_explored,
            detail=result,
        )


class FixedRateSpinalCode:
    """Spinal code at a fixed ``k / n_passes`` bits-per-symbol rate, under ARQ."""

    def __init__(
        self,
        payload_bits: int,
        n_passes: int,
        params: SpinalParams | None = None,
        beam_width: int = 16,
        decoder_factory: Callable[[SpinalEncoder], BubbleDecoder] | None = None,
    ) -> None:
        if n_passes < 1:
            raise ValueError(f"n_passes must be at least 1, got {n_passes}")
        self.params = params if params is not None else SpinalParams(k=8, c=10)
        self.n_segments = self.params.n_segments(payload_bits)  # validates divisibility
        self.n_passes = int(n_passes)
        self.encoder = SpinalEncoder(self.params)
        beam = int(beam_width)
        if decoder_factory is None:
            # A fixed-rate frame is decoded once per ARQ attempt, so any
            # registered engine gives identical results; honour the same
            # environment knob as the rateless family.
            engine = os.environ.get("REPRO_SPINAL_DECODER", "bubble")
            decoder_factory = make_decoder_factory(engine, beam)
        self.decoder_factory = decoder_factory
        symbols_per_frame = self.n_passes * self.n_segments
        self.info = CodeInfo(
            family="fixed-spinal",
            payload_bits=int(payload_bits),
            domain="bit" if self.params.bit_mode else "symbol",
            signal_power=self.params.average_power,
            rate_menu=(payload_bits / symbols_per_frame,),
            symbols_per_frame=symbols_per_frame,
        )

    @property
    def nominal_rate(self) -> float:
        return self.info.rate_menu[0]

    def new_encoder(self, payload: np.ndarray) -> _FrameSource:
        return _FrameSource(self, np.asarray(payload, dtype=np.uint8))

    def new_decoder(self) -> _FrameReceiver:
        return _FrameReceiver(self)

    def min_symbols_to_attempt(self) -> int:
        """The first possible decode is at the first frame boundary."""
        return self.info.symbols_per_frame

    def reference(self, payload: np.ndarray) -> np.ndarray:
        return np.asarray(payload, dtype=np.uint8)
