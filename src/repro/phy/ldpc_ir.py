"""Incremental-redundancy LDPC behind the :class:`~repro.phy.protocol.RatelessCode` protocol.

The related-work section of the paper cites hybrid-ARQ / incremental
redundancy as the classical way to make a fixed-rate code behave ratelessly;
this family implements it as a genuine rateless *symbol stream*:

* the message is encoded once with a mother LDPC code (systematic, rate
  ``k/n``);
* the codeword is released in **chunks** following a puncturing schedule —
  systematic bits first, then successive parity chunks, so the effective
  code rate walks down from ``~1`` towards ``k/n`` as symbols flow;
* once the whole codeword is on the air, further chunks *repeat* it and the
  receiver Chase-combines (adds LLRs), so the stream is endless like any
  other rateless code;
* the receiver accumulates per-bit LLRs (unreceived bits contribute LLR 0,
  i.e. punctured) and runs belief propagation on each attempt; ``verified``
  is the parity check (BP convergence), giving the family a self-contained
  termination rule.

With ``chunk_bits = n`` the schedule degenerates to whole-codeword
retransmission with Chase combining — exactly the historical
:class:`~repro.baselines.hybrid_arq.HybridArqLdpcSystem`, which is why that
baseline can remain a byte-identical shim over this family.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from repro.ldpc.construction import make_wifi_like_code
from repro.ldpc.decoder import BeliefPropagationDecoder
from repro.ldpc.encoder import LDPCCode
from repro.modulation import Modulation
from repro.modulation.qam import make_modulation
from repro.phy.protocol import CodeBlock, CodeInfo, DecodeStatus, NOT_ATTEMPTED
from repro.utils.units import db_to_linear

__all__ = ["LdpcIrCode"]


class _IrSource:
    """Per-packet stream: codeword chunks in schedule order, cycling forever."""

    def __init__(self, code: "LdpcIrCode", payload: np.ndarray) -> None:
        self.code = code
        self.codeword = code.code.encode(payload)
        self.next_chunk = 0

    def next_block(self) -> CodeBlock:
        start = (self.next_chunk % self.code.n_chunks) * self.code.chunk_bits
        stop = start + self.code.chunk_bits
        values = self.code.modulation.modulate(self.codeword[start:stop])
        block = CodeBlock(index=self.next_chunk, values=values, meta=(start, stop))
        self.next_chunk += 1
        return block


class _IrReceiver:
    """LLR accumulator plus one BP decode per attempt."""

    def __init__(self, code: "LdpcIrCode") -> None:
        self.code = code
        self.llrs = np.zeros(code.code.n, dtype=np.float64)

    def absorb(
        self, block: CodeBlock, received: np.ndarray, attempt: bool = True
    ) -> DecodeStatus:
        start, stop = block.meta
        self.llrs[start:stop] += self.code.modulation.demodulate_llr(
            received, self.code.noise_energy
        )
        if not attempt:
            return NOT_ATTEMPTED
        return self.decode_now()

    def decode_now(self) -> DecodeStatus:
        decoded, stats = self.code.decoder.decode(self.llrs)
        estimate = decoded[: self.code.code.k]
        return DecodeStatus(
            attempted=True,
            estimate=estimate,
            payload=estimate,
            verified=bool(stats.converged[0]),
            work=int(stats.iterations_used[0]),
            detail=stats,
        )


class LdpcIrCode:
    """Hybrid-ARQ incremental redundancy over a mother LDPC code.

    Parameters
    ----------
    snr_db:
        Operating SNR; sets the noise energy the soft demapper assumes (a
        real receiver estimates this — here it is part of the code's
        configuration, like the LDPC baselines).
    rate:
        Mother-code rate (one of the 802.11n rates).
    codeword_bits:
        Mother codeword length ``n`` (multiple of 24).
    modulation:
        Modulation name (``"BPSK"``, ``"QAM-4"``, ...); ``chunk_bits`` must
        be a multiple of its bits/symbol.
    chunk_bits:
        Coded bits released per block; defaults to ``n`` (whole-codeword
        retransmission, the classical Chase-combining HARQ).
    max_iterations, algorithm:
        Belief-propagation configuration.
    code, modulation_obj, decoder:
        Optional prebuilt components (the hybrid-ARQ shim passes its own so
        the construction — and therefore the outputs — match bit for bit).
    """

    def __init__(
        self,
        snr_db: float,
        rate: Fraction | float = Fraction(1, 2),
        codeword_bits: int = 648,
        modulation: str | Modulation = "BPSK",
        chunk_bits: int | None = None,
        max_iterations: int = 40,
        algorithm: str = "sum-product",
        seed: int = 2011,
        code: LDPCCode | None = None,
        decoder: BeliefPropagationDecoder | None = None,
    ) -> None:
        self.code = (
            code
            if code is not None
            else make_wifi_like_code(rate, codeword_bits=codeword_bits, seed=seed)
        )
        self.modulation = (
            modulation
            if isinstance(modulation, Modulation)
            else make_modulation(modulation)
        )
        self.decoder = (
            decoder
            if decoder is not None
            else BeliefPropagationDecoder(
                self.code, max_iterations=max_iterations, algorithm=algorithm
            )
        )
        self.chunk_bits = self.code.n if chunk_bits is None else int(chunk_bits)
        if self.chunk_bits <= 0 or self.code.n % self.chunk_bits != 0:
            raise ValueError(
                f"chunk_bits={self.chunk_bits} must evenly divide n={self.code.n}"
            )
        if self.chunk_bits % self.modulation.bits_per_symbol != 0:
            raise ValueError(
                f"chunk_bits={self.chunk_bits} is not a multiple of the modulation's "
                f"{self.modulation.bits_per_symbol} bits/symbol"
            )
        self.n_chunks = self.code.n // self.chunk_bits
        self.snr_db = float(snr_db)
        self.noise_energy = 1.0 / db_to_linear(self.snr_db)
        self.info = CodeInfo(
            family="ldpc-ir",
            payload_bits=self.code.k,
            domain="symbol",
            signal_power=1.0,
            rate_menu=None,
        )

    def new_encoder(self, payload: np.ndarray) -> _IrSource:
        return _IrSource(self, np.asarray(payload, dtype=np.uint8))

    def new_decoder(self) -> _IrReceiver:
        return _IrReceiver(self)

    def min_symbols_to_attempt(self) -> int:
        """Fewer channel uses than ``k`` coded bits cannot determine ``k`` bits."""
        return -(-self.code.k // self.modulation.bits_per_symbol)

    def reference(self, payload: np.ndarray) -> np.ndarray:
        return np.asarray(payload, dtype=np.uint8)
