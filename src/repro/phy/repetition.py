"""Repetition coding behind the :class:`~repro.phy.protocol.RatelessCode` protocol.

The floor of the code-family matrix: modulate the payload once, send it
again and again, soft-combine LLRs at the receiver.  Repetition *is*
rateless — every extra pass lowers the effective rate and raises
reliability — it is just maximally inefficient about it (combining gain
grows only logarithmically in SNR terms), which makes it the reference any
real code family should dominate at every SNR.

No self-contained success check exists (``verified`` is always False), so
the family supports genie termination only — the same methodology the
paper's Figure 2 uses for every curve.
"""

from __future__ import annotations

import numpy as np

from repro.modulation import Modulation
from repro.modulation.qam import make_modulation
from repro.phy.protocol import CodeBlock, CodeInfo, DecodeStatus, NOT_ATTEMPTED
from repro.utils.units import db_to_linear

__all__ = ["RepetitionCode"]


class _RepetitionSource:
    """The same modulated payload, pass after pass."""

    def __init__(self, code: "RepetitionCode", payload: np.ndarray) -> None:
        self.symbols = code.modulation.modulate(payload)
        self.next_pass = 0

    def next_block(self) -> CodeBlock:
        block = CodeBlock(index=self.next_pass, values=self.symbols, meta=self.next_pass)
        self.next_pass += 1
        return block


class _RepetitionReceiver:
    """Per-bit LLR accumulator; a decode is a hard decision on the sums."""

    def __init__(self, code: "RepetitionCode") -> None:
        self.code = code
        self.llrs = np.zeros(code.info.payload_bits, dtype=np.float64)
        self.passes = 0

    def absorb(
        self, block: CodeBlock, received: np.ndarray, attempt: bool = True
    ) -> DecodeStatus:
        self.llrs += self.code.modulation.demodulate_llr(
            received, self.code.noise_energy
        )
        self.passes += 1
        if not attempt:
            return NOT_ATTEMPTED
        return self.decode_now()

    def decode_now(self) -> DecodeStatus:
        estimate = (self.llrs < 0).astype(np.uint8)
        return DecodeStatus(
            attempted=True, estimate=estimate, payload=estimate, verified=False, work=1
        )


class RepetitionCode:
    """Soft-combining repetition of a modulated payload.

    Parameters
    ----------
    snr_db:
        Operating SNR (sets the demapper's assumed noise energy).
    payload_bits:
        Message size; must be a multiple of the modulation's bits/symbol.
    modulation:
        Modulation name or instance (default BPSK: one bit per channel use).
    """

    def __init__(
        self,
        snr_db: float,
        payload_bits: int,
        modulation: str | Modulation = "BPSK",
    ) -> None:
        self.modulation = (
            modulation
            if isinstance(modulation, Modulation)
            else make_modulation(modulation)
        )
        if payload_bits % self.modulation.bits_per_symbol != 0:
            raise ValueError(
                f"payload_bits={payload_bits} is not a multiple of the modulation's "
                f"{self.modulation.bits_per_symbol} bits/symbol"
            )
        self.snr_db = float(snr_db)
        self.noise_energy = 1.0 / db_to_linear(self.snr_db)
        self.symbols_per_pass = payload_bits // self.modulation.bits_per_symbol
        self.info = CodeInfo(
            family="repetition",
            payload_bits=int(payload_bits),
            domain="symbol",
            signal_power=1.0,
        )

    def new_encoder(self, payload: np.ndarray) -> _RepetitionSource:
        return _RepetitionSource(self, np.asarray(payload, dtype=np.uint8))

    def new_decoder(self) -> _RepetitionReceiver:
        return _RepetitionReceiver(self)

    def min_symbols_to_attempt(self) -> int:
        """Nothing to decide on before one full pass has arrived."""
        return self.symbols_per_pass

    def reference(self, payload: np.ndarray) -> np.ndarray:
        return np.asarray(payload, dtype=np.uint8)
