"""The code-agnostic PHY session protocol: ``RatelessCode`` and friends.

The paper's architectural claim — a rateless PHY emits symbols until an ACK
makes rate adaptation unnecessary — is not specific to spinal codes, and the
interesting comparisons are *across code families* (spinal vs. fountain vs.
incremental-redundancy LDPC vs. fixed-rate).  This module defines the small
protocol every code family implements so that one session loop
(:mod:`repro.phy.session`), one link transport, one relay topology and one
MAC cell can drive any of them:

``RatelessCode``
    A *code family instance*: knows its message size and channel alphabet
    (:class:`CodeInfo`), mints per-packet encoder streams
    (:meth:`~RatelessCode.new_encoder`) and incremental decoders
    (:meth:`~RatelessCode.new_decoder`), and declares the earliest point a
    decode attempt can possibly succeed
    (:meth:`~RatelessCode.min_symbols_to_attempt` — the PR-1
    "cannot-reliably-succeed-yet" gate, generalised per code).

``SymbolSource``
    An endless per-packet stream of :class:`CodeBlock`-shaped blocks.
    Encoders emit *whole* blocks per call (a spinal subpass, an LT symbol, an
    LDPC redundancy chunk, a fixed-rate pass), which is what keeps the
    session loop's per-symbol overhead amortised — the batching the PR-1
    throughput pin relies on.

``IncrementalDecoder``
    Absorbs received blocks one at a time, in any order the link happens to
    deliver them, and reports a :class:`DecodeStatus` per absorb.  The
    session tells the decoder when an attempt is worth running (the
    ``attempt`` flag); the decoder may still decline (``attempted=False``)
    when an attempt is structurally meaningless (e.g. mid-frame for a
    fixed-rate code).

Any object *structurally* matching these protocols works; none of the
implementations subclass anything from this module.  In particular a
"block" is anything with ``values`` (what goes on the air) and
``n_symbols`` (channel uses) — the spinal family streams its existing
:class:`~repro.core.encoder.SubpassBlock` unchanged, which is how the
adapter stays bit-identical to the historical session.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

__all__ = [
    "CodeBlock",
    "CodeInfo",
    "DecodeStatus",
    "IncrementalDecoder",
    "RatelessCode",
    "SymbolSource",
    "NOT_ATTEMPTED",
]


@dataclass(frozen=True)
class CodeInfo:
    """Static metadata of one code family instance.

    Attributes
    ----------
    family:
        Registry name of the code family (``"spinal"``, ``"lt"``, ...).
    payload_bits:
        Message bits carried per packet (the ``k`` of the code as a system;
        internal framing/CRC/padding is the code's own business).
    domain:
        Channel alphabet: ``"symbol"`` (complex I/Q values) or ``"bit"``
        (0/1 hard bits) — must match the session channel's ``domain``.
    signal_power:
        Average transmitted power per channel use in symbol mode (used to
        build SNR-calibrated channels).
    rate_menu:
        For codes that are fixed-rate at heart (fixed-rate spinal, the
        adaptive baseline's menu entries): the nominal rates available, in
        bits per channel use.  ``None`` for genuinely rateless families.
    symbols_per_frame:
        For fixed-rate codes, the channel uses of one frame attempt (the
        quantum an ARQ wrapper retransmits).  ``None`` for rateless codes.
    order_invariant:
        Whether the decoder's outcome is invariant to the order in which
        sent blocks are absorbed (all five built-in families are; a code
        with genuinely sequential state may declare ``False`` to opt out of
        the conformance suite's reordering battery).
    """

    family: str
    payload_bits: int
    domain: str = "symbol"
    signal_power: float = 1.0
    rate_menu: tuple[float, ...] | None = None
    symbols_per_frame: int | None = None
    order_invariant: bool = True

    def __post_init__(self) -> None:
        if self.payload_bits <= 0:
            raise ValueError(f"payload_bits must be positive, got {self.payload_bits}")
        if self.domain not in ("symbol", "bit"):
            raise ValueError(f"domain must be 'symbol' or 'bit', got {self.domain!r}")
        if self.signal_power <= 0:
            raise ValueError(f"signal_power must be positive, got {self.signal_power}")


@dataclass(frozen=True)
class CodeBlock:
    """Default concrete block type for codes without a richer one.

    Only ``values`` and ``n_symbols`` are protocol; ``index`` and ``meta``
    carry whatever the family's decoder needs to place the block (an LT
    symbol seed, an (attempt, pass) pair, a chunk's bit positions).
    """

    index: int
    values: np.ndarray
    meta: object = None

    @property
    def n_symbols(self) -> int:
        return int(np.asarray(self.values).size)


@dataclass(frozen=True)
class DecodeStatus:
    """What one decoder absorb (or forced attempt) reported.

    Attributes
    ----------
    attempted:
        Whether a decode actually ran (skipped/gated absorbs report False
        and are not counted as attempts by the session).
    estimate:
        The decoder's current message estimate in the code's *termination*
        space (for spinal: the framed bits, so genie termination compares
        exactly what the historical receiver compared).  ``None`` when the
        decoder has no estimate yet (e.g. an incomplete fountain decode).
    payload:
        The payload-bits view of ``estimate`` (``None`` iff ``estimate`` is).
    verified:
        The code's *self-contained* success check (CRC, parity, completion);
        drives ``termination="self"`` sessions.  Families with no internal
        check report False and support genie termination only.
    work:
        Decoder work spent by this attempt, in the family's natural unit
        (spinal: tree nodes evaluated; LDPC: BP iterations; LT: peeling
        operations).  Comparable within a family, not across families.
    detail:
        Optional family-specific result object (spinal attaches the raw
        :class:`~repro.core.decoder_bubble.DecodeResult` so path costs stay
        observable through the new API).
    """

    attempted: bool
    estimate: np.ndarray | None = None
    payload: np.ndarray | None = None
    verified: bool = False
    work: int = 0
    detail: object = field(default=None, compare=False)


#: Shared "absorbed but did not attempt" status.
NOT_ATTEMPTED = DecodeStatus(attempted=False)


@runtime_checkable
class SymbolSource(Protocol):
    """Endless per-packet encoder stream; one whole block per call."""

    def next_block(self):  # pragma: no cover - protocol stub
        """Return the next block to transmit (``values`` + ``n_symbols``)."""
        ...


@runtime_checkable
class IncrementalDecoder(Protocol):
    """Receiver state for one packet: absorb blocks, report status."""

    def absorb(self, block, received: np.ndarray, attempt: bool = True) -> DecodeStatus:
        """Record one received block; decode if asked (and meaningful).

        ``attempt=False`` means the session's symbol gate has not opened
        yet: record the observation and return a non-attempted status.
        """
        ...  # pragma: no cover - protocol stub

    def decode_now(self) -> DecodeStatus:
        """Force a best-effort decode from whatever has been absorbed."""
        ...  # pragma: no cover - protocol stub


@runtime_checkable
class RatelessCode(Protocol):
    """One code family instance, ready to mint per-packet codecs."""

    @property
    def info(self) -> CodeInfo:  # pragma: no cover - protocol stub
        ...

    def new_encoder(self, payload: np.ndarray) -> SymbolSource:
        """Start the (conceptually endless) symbol stream for one payload."""
        ...  # pragma: no cover - protocol stub

    def new_decoder(self) -> IncrementalDecoder:
        """Fresh receiver state for one packet."""
        ...  # pragma: no cover - protocol stub

    def min_symbols_to_attempt(self) -> int:
        """Channel uses below which a reliable decode is impossible.

        The session skips decode attempts until this many symbols have been
        delivered — the PR-1 gate that both avoids hopeless decoder work and
        suppresses above-capacity flukes, generalised per code family.
        """
        ...  # pragma: no cover - protocol stub

    def reference(self, payload: np.ndarray) -> np.ndarray:
        """Genie-termination truth in the code's termination space.

        For spinal this is the *framed* message (payload + CRC + padding +
        tail), so a genie session terminates on exactly the comparison the
        historical :class:`~repro.core.rateless.RatelessReceiver` made.
        """
        ...  # pragma: no cover - protocol stub
