"""Registry of code families implementing the :class:`~repro.phy.protocol.RatelessCode` protocol.

One name → one builder.  The conformance suite
(``tests/test_codec_protocol.py``) runs every registered family through the
same battery, and the ``code-family-matrix`` experiment sweeps them across
scenarios; registering a new family here is all it takes to appear in both.

Builders take ``(seed, snr_db, smoke)``:

* ``seed`` derives any code-construction randomness (hash families, LT
  neighbourhoods) — relays pass per-hop seeds so hop codes are independent;
* ``snr_db`` parameterises families whose receivers need the operating
  point (soft demappers assume a noise energy);
* ``smoke`` selects a seconds-scale configuration for CI.

:func:`channel_for_code` builds the SNR-calibrated channel matching a code's
alphabet: complex AWGN for symbol-domain codes, and for bit-domain codes a
BSC whose crossover probability is the hard-decision error of BPSK at that
SNR — so "SNR" means the same physical channel across domains and the
matrix's x-axis is comparable between families.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Callable

from repro.channels.awgn import AWGNChannel
from repro.channels.base import Channel
from repro.channels.bsc import BSCChannel
from repro.core.decoder_vectorized import make_decoder_factory
from repro.core.encoder import SpinalEncoder
from repro.core.framing import Framer
from repro.core.params import SpinalParams
from repro.core.puncturing import TailFirstPuncturing
from repro.phy.fixed_rate import FixedRateSpinalCode
from repro.phy.fountain import LTCode
from repro.phy.ldpc_ir import LdpcIrCode
from repro.phy.protocol import RatelessCode
from repro.phy.repetition import RepetitionCode
from repro.phy.session import CodecSession
from repro.phy.spinal import SpinalCode
from repro.utils.rng import derive_seed
from repro.utils.units import db_to_linear

__all__ = [
    "CODE_FAMILY_NAMES",
    "CodeFamily",
    "bpsk_crossover_probability",
    "channel_for_code",
    "code_family",
    "make_code",
    "make_codec_session",
    "register_code_family",
]


@dataclass(frozen=True)
class CodeFamily:
    """One registered family: a name, a blurb, and a code builder."""

    name: str
    description: str
    build: Callable[[int, float, bool], RatelessCode]


_REGISTRY: dict[str, CodeFamily] = {}


def register_code_family(family: CodeFamily) -> CodeFamily:
    """Add a family to the registry (idempotent per identity)."""
    existing = _REGISTRY.get(family.name)
    if existing is not None and existing is not family:
        raise ValueError(f"code family {family.name!r} is already registered")
    _REGISTRY[family.name] = family
    return family


def code_family(name: str) -> CodeFamily:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown code family {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def make_code(name: str, seed: int = 0, snr_db: float = 10.0, smoke: bool = False):
    """Build one family's code instance for an operating point."""
    return code_family(name).build(int(seed), float(snr_db), bool(smoke))


def bpsk_crossover_probability(snr_db: float) -> float:
    """Hard-decision BPSK bit error probability at a given Es/N0."""
    return 0.5 * math.erfc(math.sqrt(db_to_linear(snr_db)))


def channel_for_code(
    code: RatelessCode, snr_db: float, adc_bits: int | None = None
) -> Channel:
    """The SNR-calibrated channel matching a code's alphabet (see module doc)."""
    if code.info.domain == "symbol":
        return AWGNChannel(
            snr_db=snr_db, signal_power=code.info.signal_power, adc_bits=adc_bits
        )
    return BSCChannel(bpsk_crossover_probability(snr_db))


def make_codec_session(
    name: str,
    snr_db: float,
    seed: int = 0,
    smoke: bool = False,
    max_symbols: int = 4096,
    termination: str = "genie",
    adc_bits: int | None = None,
) -> CodecSession:
    """One-call entry point: family name + SNR → ready-to-run session."""
    code = make_code(name, seed=seed, snr_db=snr_db, smoke=smoke)
    return CodecSession(
        code,
        channel_for_code(code, snr_db, adc_bits=adc_bits),
        termination=termination,
        max_symbols=max_symbols,
    )


# -- the five built-in families ----------------------------------------------


def _build_spinal(seed: int, snr_db: float, smoke: bool) -> SpinalCode:
    if smoke:
        payload_bits, params, beam_width = 16, SpinalParams(k=4, c=6), 8
    else:
        payload_bits, params, beam_width = 24, SpinalParams(k=8, c=10), 16
    params = params.with_(seed=derive_seed(seed, "phy", "spinal"))
    encoder = SpinalEncoder(params, puncturing=TailFirstPuncturing())
    framer = Framer(payload_bits=payload_bits, k=params.k)
    # All registered engines are bit-identical, so the choice is a pure
    # performance knob; REPRO_SPINAL_DECODER lets scenario drivers (cell,
    # relay, transport) switch the whole family without new plumbing.
    engine = os.environ.get("REPRO_SPINAL_DECODER", "incremental")
    return SpinalCode(encoder, make_decoder_factory(engine, beam_width), framer)


def _build_lt(seed: int, snr_db: float, smoke: bool) -> LTCode:
    payload_bits, block_bits = (16, 4) if smoke else (24, 6)
    return LTCode(
        payload_bits, block_bits=block_bits, seed=derive_seed(seed, "phy", "lt")
    )


def _build_ldpc_ir(seed: int, snr_db: float, smoke: bool) -> LdpcIrCode:
    if smoke:
        codeword_bits, chunk_bits, max_iterations = 120, 30, 12
    else:
        codeword_bits, chunk_bits, max_iterations = 648, 81, 40
    return LdpcIrCode(
        snr_db=snr_db,
        codeword_bits=codeword_bits,
        chunk_bits=chunk_bits,
        max_iterations=max_iterations,
        algorithm="min-sum",
        seed=derive_seed(seed, "phy", "ldpc-ir"),
    )


def _build_fixed_spinal(seed: int, snr_db: float, smoke: bool) -> FixedRateSpinalCode:
    if smoke:
        payload_bits, params, beam_width = 16, SpinalParams(k=4, c=6), 8
    else:
        payload_bits, params, beam_width = 24, SpinalParams(k=8, c=10), 16
    params = params.with_(seed=derive_seed(seed, "phy", "fixed-spinal"))
    return FixedRateSpinalCode(
        payload_bits, n_passes=3, params=params, beam_width=beam_width
    )


def _build_repetition(seed: int, snr_db: float, smoke: bool) -> RepetitionCode:
    return RepetitionCode(snr_db=snr_db, payload_bits=16 if smoke else 24)


register_code_family(
    CodeFamily(
        "spinal",
        "Rateless spinal code (engine via REPRO_SPINAL_DECODER, tail-first puncturing)",
        _build_spinal,
    )
)
register_code_family(
    CodeFamily(
        "lt",
        "LT fountain code with per-symbol CRC erasure detection over hard bits",
        _build_lt,
    )
)
register_code_family(
    CodeFamily(
        "ldpc-ir",
        "Incremental-redundancy LDPC (puncturing schedule + Chase combining)",
        _build_ldpc_ir,
    )
)
register_code_family(
    CodeFamily(
        "fixed-spinal",
        "Fixed-rate spinal frames under whole-frame ARQ (no combining)",
        _build_fixed_spinal,
    )
)
register_code_family(
    CodeFamily(
        "repetition",
        "BPSK repetition with soft combining (the floor any code should beat)",
        _build_repetition,
    )
)

#: Registered family names, in matrix display order.
CODE_FAMILY_NAMES: tuple[str, ...] = (
    "spinal",
    "lt",
    "ldpc-ir",
    "fixed-spinal",
    "repetition",
)
