"""The code-agnostic rateless session loop: one implementation, any code.

:class:`CodecSession` is the generalisation of the historical
:class:`~repro.core.rateless.RatelessSession`: it owns a
:class:`~repro.phy.protocol.RatelessCode`, a channel, a termination rule and
a per-packet symbol budget, and runs the paper's protocol — stream blocks,
attempt decodes, stop on the first success — for *any* code family.

:class:`CodecTransmission` is the per-packet state (the generalisation of
:class:`~repro.core.rateless.PacketTransmission`): a pausable, resumable
transmission that the link transport, the relay topology and the MAC cell
advance one block at a time in any global interleaving.  Sending and
delivering stay separate steps (a transport may discard a block at the
receiver), noise comes from the packet's private generator, and the PR-1
decode gate (``code.min_symbols_to_attempt()``) keeps hopeless early decode
attempts — and above-capacity flukes — suppressed uniformly across families.

The spinal adapter (:mod:`repro.phy.spinal`) drives this loop through the
same encoder stream, observation store and incremental decoder as the
historical session, so ``RatelessSession.run`` remains available as a
bit-identical shim on top of this module.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channels.base import Channel
from repro.obs.telemetry import current as current_telemetry
from repro.phy.protocol import DecodeStatus, RatelessCode

__all__ = ["CodecSession", "CodecTransmission", "CodecResult", "TERMINATIONS"]

#: Recognised termination rules: the paper's genie, or the code's own check.
TERMINATIONS = ("genie", "self")


@dataclass(frozen=True)
class CodecResult:
    """Outcome of transmitting one payload ratelessly through any code.

    The code-agnostic counterpart of
    :class:`~repro.core.rateless.TrialResult` — same accounting, but
    ``decoded_payload`` may be ``None`` for families whose best-effort
    decode can be structurally incomplete (an LT decoder missing blocks),
    and decoder work is reported in the family's own unit.
    """

    success: bool
    payload_correct: bool
    symbols_sent: int
    credited_bits: int
    decode_attempts: int
    work: int
    decoded_payload: np.ndarray | None

    @property
    def rate(self) -> float:
        """Achieved rate in credited bits per channel use."""
        if self.symbols_sent == 0:
            raise ValueError("no symbols were sent; rate is undefined")
        return self.credited_bits / self.symbols_sent


class CodecTransmission:
    """A pausable, resumable transmission of one payload over one code.

    Mirrors the contract of the historical ``PacketTransmission`` exactly —
    ``send_next_block`` / ``deliver`` / ``decoded`` / ``exhausted`` /
    ``symbols_sent`` / ``symbols_delivered`` / ``decoded_payload()`` — which
    is the interface the link transport and the MAC cell multiplex on.
    """

    def __init__(
        self,
        session: "CodecSession",
        payload: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        self.session = session
        self.payload = np.asarray(payload, dtype=np.uint8)
        if self.payload.size != session.code.info.payload_bits:
            raise ValueError(
                f"expected a payload of {session.code.info.payload_bits} bits, "
                f"got {self.payload.size}"
            )
        self.rng = rng
        self.source = session.code.new_encoder(self.payload)
        self.decoder = session.code.new_decoder()
        self.reference = (
            session.code.reference(self.payload)
            if session.termination == "genie"
            else None
        )
        self._min_attempt = session.code.min_symbols_to_attempt()
        #: Channel uses spent by the sender on this packet (including any
        #: blocks the receiver discarded).
        self.symbols_sent = 0
        #: Channel uses actually delivered to this packet's decoder.
        self.symbols_delivered = 0
        self.decoded = False
        self.decode_attempts = 0
        self.work = 0
        self.last_status: DecodeStatus | None = None
        self._tel = current_telemetry()
        # Subpass blocks absorbed since the last decode attempt (telemetry
        # only; stays 0 when the sink is disabled).
        self._blocks_since_attempt = 0

    @property
    def exhausted(self) -> bool:
        """Whether the sender's per-packet symbol budget is spent."""
        return self.symbols_sent >= self.session.max_symbols

    # ------------------------------------------------------------------
    def send_next_block(self):
        """Transmit the next block through the session's channel.

        Returns the transmitted block and the received values.  Noise draws
        come from this packet's private generator, so per-packet results
        are independent of how transmissions are interleaved (over
        memoryless channels).
        """
        block = self.source.next_block()
        received = self.session.channel.transmit(block.values, self.rng)
        self.symbols_sent += block.n_symbols
        return block, received

    @property
    def attempt_ready(self) -> bool:
        """Whether the PR-1 decode gate is open (enough symbols delivered)."""
        return self.symbols_delivered >= self._min_attempt

    def deliver(
        self, block, received_values: np.ndarray, attempt: bool | None = None
    ) -> bool:
        """Feed one received block to the decoder; return True once decoded.

        ``attempt=None`` (the default) applies the decode gate: attempt once
        the delivered symbols reach ``min_symbols_to_attempt()``, but never
        for an *empty* block — a block carrying zero symbols adds nothing to
        the observation set, so attempting on it would double-count decode
        attempts (and decoder work) against unchanged observations.
        ``attempt=False`` absorbs the block without decoding — the
        non-blocking step used by the serve engine, which batches the decode
        across many sessions and feeds the result back through
        :meth:`record_status`.  ``attempt=True`` forces a decode.
        """
        if self.decoded:
            return True
        if attempt is None:
            attempt = (
                block.n_symbols > 0
                and self.symbols_delivered + block.n_symbols >= self._min_attempt
            )
        status = self.decoder.absorb(block, received_values, attempt=attempt)
        self.symbols_delivered += block.n_symbols
        if self._tel.enabled:
            self._tel.counter("phy.blocks_delivered")
            self._tel.counter("phy.symbols_delivered", block.n_symbols)
            self._blocks_since_attempt += 1
        self._record(status)
        return self.decoded

    def record_status(self, status: DecodeStatus) -> bool:
        """Account one externally computed decode attempt; True once decoded.

        The serve engine's batched decode stage computes one
        :class:`~repro.phy.protocol.DecodeStatus` per session outside the
        transmission (via :class:`~repro.core.decoder_vectorized.BatchDecoder`
        over the sessions' observation stores) and feeds it back here, so
        attempt/work accounting and termination go through exactly the same
        bookkeeping as a decode made by :meth:`deliver`.
        """
        if not self.decoded:
            self._record(status)
        return self.decoded

    def best_effort_decode(self) -> None:
        """Force one decode so a failed packet still reports a best guess.

        Idempotent: once *any* decode attempt has been recorded (including a
        previous best-effort), this is a no-op — calling it again after
        budget exhaustion never double-counts attempts or decoder work.
        """
        if self.last_status is None:
            self._record(self.decoder.decode_now())

    def decoded_payload(self) -> np.ndarray | None:
        """The payload estimate of the last decode attempt.

        ``None`` when the decoder's best effort is structurally incomplete;
        raises if no decode attempt has been made at all (callers are
        expected to have driven the session to a decode or a best-effort).
        """
        if self.last_status is None:
            raise ValueError("no decode attempt has been made yet")
        return self.last_status.payload

    # ------------------------------------------------------------------
    def _record(self, status: DecodeStatus) -> None:
        if not status.attempted:
            return
        self.decode_attempts += 1
        self.work += status.work
        self.last_status = status
        if self._terminated(status):
            self.decoded = True
        tel = self._tel
        if tel.enabled:
            tel.counter("phy.decode_attempts")
            tel.observe("phy.blocks_per_attempt", self._blocks_since_attempt)
            self._blocks_since_attempt = 0
            if self.decoded:
                # The paper's core statistic: channel uses needed to decode.
                tel.observe("phy.symbols_to_decode", self.symbols_delivered)

    def _terminated(self, status: DecodeStatus) -> bool:
        if self.session.termination == "genie":
            return status.estimate is not None and bool(
                np.array_equal(status.estimate, self.reference)
            )
        return bool(status.verified)


class CodecSession:
    """Complete rateless transmissions of payloads over any code family.

    Parameters
    ----------
    code:
        Any :class:`~repro.phy.protocol.RatelessCode` implementation.
    channel:
        The channel model; its ``domain`` must match ``code.info.domain``.
    termination:
        ``"genie"`` (the paper's methodology: the receiver is told when its
        estimate is exactly right) or ``"self"`` (the code's own check —
        CRC, parity, completion — with whatever false-positive risk that
        carries).
    max_symbols:
        Sender give-up budget in channel uses per packet.
    credited_bits:
        Bits credited per delivered packet when computing rates; defaults
        to the code's ``payload_bits``.  The spinal shim passes its framed
        length here to preserve the paper's Figure-2 rate convention.
    """

    def __init__(
        self,
        code: RatelessCode,
        channel: Channel,
        termination: str = "genie",
        max_symbols: int = 4096,
        credited_bits: int | None = None,
    ) -> None:
        if termination not in TERMINATIONS:
            raise ValueError(
                f"unknown termination rule {termination!r}; expected one of {TERMINATIONS}"
            )
        if max_symbols <= 0:
            raise ValueError(f"max_symbols must be positive, got {max_symbols}")
        if channel.domain != code.info.domain:
            raise ValueError(
                f"channel domain {channel.domain!r} does not match the code's "
                f"({code.info.domain!r})"
            )
        self.code = code
        self.channel = channel
        self.termination = termination
        self.max_symbols = max_symbols
        self.credited_bits = (
            code.info.payload_bits if credited_bits is None else int(credited_bits)
        )

    @property
    def payload_bits(self) -> int:
        """Message bits per packet (the link/MAC layers' goodput numerator)."""
        return self.code.info.payload_bits

    # ------------------------------------------------------------------
    def open_transmission(
        self, payload: np.ndarray, rng: np.random.Generator
    ) -> CodecTransmission:
        """Start a pausable per-packet transmission (used by the transport).

        Does *not* reset the channel: the caller owns the channel lifecycle
        because many transmissions may share one channel concurrently.
        """
        return CodecTransmission(self, payload, rng)

    def run(self, payload: np.ndarray, rng: np.random.Generator) -> CodecResult:
        """Transmit one payload until decoded or the symbol budget is spent."""
        self.channel.reset()
        transmission = self.open_transmission(payload, rng)
        while True:
            block, received = transmission.send_next_block()
            if transmission.deliver(block, received):
                return self._result(transmission, success=True)
            if transmission.exhausted:
                transmission.best_effort_decode()
                return self._result(transmission, success=False)

    # ------------------------------------------------------------------
    def _result(self, transmission: CodecTransmission, success: bool) -> CodecResult:
        decoded = (
            transmission.decoded_payload()
            if transmission.last_status is not None
            else None
        )
        correct = decoded is not None and bool(
            np.array_equal(decoded, transmission.payload)
        )
        return CodecResult(
            success=success,
            payload_correct=correct,
            symbols_sent=transmission.symbols_sent,
            credited_bits=self.credited_bits,
            decode_attempts=transmission.decode_attempts,
            work=transmission.work,
            decoded_payload=decoded,
        )
