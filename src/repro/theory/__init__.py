"""Information-theoretic reference curves used by the paper's evaluation.

Figure 2 plots three non-simulated curves alongside the spinal and LDPC
measurements:

* the Shannon capacity of the complex AWGN channel (``log2(1 + SNR)``);
* the finite-blocklength ("fixed-block") approximation of Polyanskiy, Poor
  and Verdú for block length 24 and error probability 1e-4;
* (implicitly, via Theorem 1) the spinal achievable-rate bound
  ``C - 1/2 log2(pi*e/6)``.

This package computes all three, plus BSC capacity for Theorem 2 /
experiment E4.
"""

from repro.theory.bounds import (
    spinal_awgn_rate_bound,
    spinal_bsc_rate_bound,
    spinal_gap_constant,
)
from repro.theory.capacity import (
    awgn_capacity,
    awgn_capacity_db,
    binary_entropy,
    bsc_capacity,
    shannon_limit_snr_db,
)
from repro.theory.finite_blocklength import (
    awgn_dispersion,
    normal_approximation_rate,
    ppv_fixed_block_bound_db,
)

__all__ = [
    "awgn_capacity",
    "awgn_capacity_db",
    "bsc_capacity",
    "binary_entropy",
    "shannon_limit_snr_db",
    "awgn_dispersion",
    "normal_approximation_rate",
    "ppv_fixed_block_bound_db",
    "spinal_gap_constant",
    "spinal_awgn_rate_bound",
    "spinal_bsc_rate_bound",
]
