"""Finite-blocklength (normal approximation) bounds.

The dashed curve of Figure 2 ("fixed-block approx. bound, len=24,
err.prob=1e-4") is the fundamental limit on *fixed-rate* codes of block
length 24 derived by Polyanskiy, Poor and Verdú [12].  We use the standard
normal approximation

    R(n, eps)  ≈  C  -  sqrt(V / n) * Q^{-1}(eps)  +  log2(n) / (2n)

where ``C`` is the channel capacity and ``V`` its dispersion.  For the
complex AWGN channel with SNR ``s`` (per complex symbol), the capacity is
``log2(1 + s)`` and the dispersion is

    V(s) = (s * (s + 2)) / (s + 1)^2 * log2(e)^2     [bits^2 per symbol].

The approximation is clipped below at 0 (a negative rate just means "no code
of that block length achieves the target error probability at this SNR").
"""

from __future__ import annotations

import math

from scipy import special

from repro.theory.capacity import awgn_capacity
from repro.utils.units import db_to_linear

__all__ = ["awgn_dispersion", "normal_approximation_rate", "ppv_fixed_block_bound_db"]

_LOG2_E = math.log2(math.e)


def awgn_dispersion(snr_linear: float) -> float:
    """Channel dispersion of the complex AWGN channel, in bits^2 per symbol."""
    if snr_linear < 0:
        raise ValueError(f"SNR must be non-negative, got {snr_linear}")
    s = snr_linear
    return (s * (s + 2.0)) / ((s + 1.0) ** 2) * _LOG2_E**2


def _q_inverse(probability: float) -> float:
    """Inverse of the Gaussian tail function Q(x)."""
    if not 0.0 < probability < 1.0:
        raise ValueError(f"probability must be in (0, 1), got {probability}")
    return math.sqrt(2.0) * special.erfcinv(2.0 * probability)


def normal_approximation_rate(
    snr_linear: float, block_length: int, error_probability: float
) -> float:
    """Maximum rate (bits/symbol) of a fixed-rate code at finite block length.

    Parameters
    ----------
    snr_linear:
        SNR per complex symbol (linear).
    block_length:
        Codeword length in channel uses (the paper uses 24).
    error_probability:
        Target block error probability (the paper uses 1e-4).
    """
    if block_length <= 0:
        raise ValueError(f"block_length must be positive, got {block_length}")
    capacity = awgn_capacity(snr_linear)
    dispersion = awgn_dispersion(snr_linear)
    penalty = math.sqrt(dispersion / block_length) * _q_inverse(error_probability)
    correction = math.log2(block_length) / (2.0 * block_length)
    return max(0.0, capacity - penalty + correction)


def ppv_fixed_block_bound_db(
    snr_db: float, block_length: int = 24, error_probability: float = 1e-4
) -> float:
    """Figure 2's dashed "fixed-block approx. bound" at an SNR given in dB."""
    return normal_approximation_rate(db_to_linear(snr_db), block_length, error_probability)
