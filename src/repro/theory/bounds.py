"""Achievable-rate bounds from the paper's two theorems.

Theorem 1 (AWGN): the bubble/ML decoder drives BER to zero provided the
number of passes ``L`` satisfies

    L * ( C_awgn(SNR) - 1/2 * log2(pi*e/6) )  >  k,

i.e. spinal codes achieve rate ``C - Delta`` with
``Delta = 1/2 log2(pi e / 6) ≈ 0.2546`` bits/symbol — a small constant gap
attributed to the linear (non-Gaussian) constellation mapping.

Theorem 2 (BSC): spinal codes achieve the full BSC capacity
(``L * C_bsc(p) > k`` suffices), i.e. a zero gap.

These bounds are compared against measurements in experiments E3/E4.
"""

from __future__ import annotations

import math

from repro.theory.capacity import awgn_capacity_db, bsc_capacity

__all__ = [
    "spinal_gap_constant",
    "spinal_awgn_rate_bound",
    "spinal_bsc_rate_bound",
    "min_passes_awgn",
    "min_passes_bsc",
]


def spinal_gap_constant() -> float:
    """The constant gap ``Delta = 1/2 * log2(pi * e / 6)`` of Theorem 1."""
    return 0.5 * math.log2(math.pi * math.e / 6.0)


def spinal_awgn_rate_bound(snr_db: float) -> float:
    """Rate guaranteed by Theorem 1 over AWGN, in bits per symbol (>= 0)."""
    return max(0.0, awgn_capacity_db(snr_db) - spinal_gap_constant())


def spinal_bsc_rate_bound(crossover_probability: float) -> float:
    """Rate guaranteed by Theorem 2 over a BSC, in bits per channel bit."""
    return bsc_capacity(crossover_probability)


def min_passes_awgn(snr_db: float, k: int) -> int:
    """Smallest number of passes for which Theorem 1 guarantees decoding.

    Returns a large sentinel (2**31) when the guarantee can never hold at
    this SNR (the per-pass rate bound is non-positive).
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    per_pass = spinal_awgn_rate_bound(snr_db)
    if per_pass <= 0.0:
        return 2**31
    return int(math.floor(k / per_pass)) + 1


def min_passes_bsc(crossover_probability: float, k: int) -> int:
    """Smallest number of passes for which Theorem 2 guarantees decoding."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    capacity = spinal_bsc_rate_bound(crossover_probability)
    if capacity <= 0.0:
        return 2**31
    return int(math.floor(k / capacity)) + 1
