"""Shannon capacities of the channels used in the paper.

All AWGN capacities are per *complex* (two-dimensional) channel use, matching
the paper's convention ("for SNR = 30 dB, the capacity in two dimensions is
roughly 10 bits/s/Hz").
"""

from __future__ import annotations

import math

from repro.utils.units import db_to_linear

__all__ = [
    "awgn_capacity",
    "awgn_capacity_db",
    "bsc_capacity",
    "binary_entropy",
    "bec_capacity",
    "shannon_limit_snr_db",
]


def awgn_capacity(snr_linear: float) -> float:
    """Capacity of the complex AWGN channel, bits per symbol.

    ``C = log2(1 + SNR)`` where SNR is a linear power ratio per complex
    symbol.
    """
    if snr_linear < 0:
        raise ValueError(f"SNR must be non-negative, got {snr_linear}")
    return math.log2(1.0 + snr_linear)


def awgn_capacity_db(snr_db: float) -> float:
    """Capacity of the complex AWGN channel for an SNR given in dB."""
    return awgn_capacity(db_to_linear(snr_db))


def binary_entropy(p: float) -> float:
    """The binary entropy function ``H2(p)`` in bits."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"probability must be in [0, 1], got {p}")
    if p in (0.0, 1.0):
        return 0.0
    return -p * math.log2(p) - (1.0 - p) * math.log2(1.0 - p)


def bsc_capacity(crossover_probability: float) -> float:
    """Capacity of the binary symmetric channel, bits per channel bit."""
    if not 0.0 <= crossover_probability <= 1.0:
        raise ValueError(
            f"crossover probability must be in [0, 1], got {crossover_probability}"
        )
    return 1.0 - binary_entropy(crossover_probability)


def bec_capacity(erasure_probability: float) -> float:
    """Capacity of the binary erasure channel, bits per channel bit."""
    if not 0.0 <= erasure_probability <= 1.0:
        raise ValueError(
            f"erasure probability must be in [0, 1], got {erasure_probability}"
        )
    return 1.0 - erasure_probability


def shannon_limit_snr_db(rate_bits_per_symbol: float) -> float:
    """Minimum SNR (dB) at which an AWGN channel can support a given rate.

    The inverse of :func:`awgn_capacity_db`; used to place the LDPC baseline
    configurations of Figure 2 relative to their Shannon limits.
    """
    if rate_bits_per_symbol <= 0:
        raise ValueError(
            f"rate must be positive, got {rate_bits_per_symbol}"
        )
    snr_linear = 2.0**rate_bits_per_symbol - 1.0
    return 10.0 * math.log10(snr_linear)
