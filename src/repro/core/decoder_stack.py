"""A stack (best-first sequential) decoder for spinal codes.

Section 6 of the paper conjectures that "one can prove that a polynomial-time
decoder can essentially achieve capacity; ... [it] will likely entail a
slightly different decoding algorithm."  The classic candidate family is
sequential decoding, and this module implements its stack-algorithm variant
over the spinal code tree:

* the decoder keeps a priority queue of partial paths ordered by a Fano-style
  metric (path cost minus a per-level bias);
* at each step it pops the best partial path, expands its ``2^k`` children
  (replaying the encoder, exactly as the bubble decoder does), and pushes
  them back;
* decoding ends when a full-depth path is popped, or when a node budget is
  exhausted (graceful scale-down again, but work-adaptive: easy channels
  expand barely more than the true path, hard channels expand more).

The per-level bias makes deeper paths attractive; it is set per decode from
the observed per-symbol costs so the metric is roughly centred for the
operating SNR (the usual Fano heuristic).  With a generous node budget the
stack decoder returns the same answers as a wide-beam bubble decoder; with a
tight budget its work adapts to channel quality, which is the property the
examples and experiment E14 showcase.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.core.decoder_bubble import DecodeResult
from repro.core.encoder import ReceivedObservations, SpinalEncoder

__all__ = ["StackDecoder", "StackDecodeStats"]


@dataclass(frozen=True)
class StackDecodeStats:
    """Work accounting of one stack-decoder invocation."""

    nodes_expanded: int
    max_stack_size: int
    budget_exhausted: bool


class StackDecoder:
    """Best-first sequential decoder over the spinal tree.

    Parameters
    ----------
    encoder:
        The spinal encoder whose code is being decoded (provides the hash
        family and the branch-cost replay).
    max_expansions:
        Node-expansion budget; decoding stops with the best full path found
        so far (or the deepest partial path, extended greedily) once the
        budget is spent.
    bias_scale:
        Multiplier on the per-level bias of the Fano metric.  1.0 uses the
        average observed per-level cost; larger values push the search
        deeper (more greedy), smaller values make it more breadth-first.
    """

    def __init__(
        self,
        encoder: SpinalEncoder,
        max_expansions: int = 4096,
        bias_scale: float = 1.0,
    ) -> None:
        if max_expansions < 1:
            raise ValueError(f"max_expansions must be at least 1, got {max_expansions}")
        if bias_scale <= 0:
            raise ValueError(f"bias_scale must be positive, got {bias_scale}")
        self.encoder = encoder
        self.max_expansions = max_expansions
        self.bias_scale = bias_scale
        self.last_stats: StackDecodeStats | None = None

    # ------------------------------------------------------------------
    def _level_bias(self, observations: ReceivedObservations) -> float:
        """Expected per-level cost of the *true* path, used as the Fano bias.

        For AWGN the expected squared distance of the true symbol equals the
        noise energy per observation; we estimate it robustly as a fraction
        of the mean observed cost of random candidates, which requires no
        knowledge of the SNR: the median branch cost over a small random
        probe of spine values at level 0.
        """
        n_obs = sum(
            observations.count_at(position) for position in range(observations.n_segments)
        )
        if n_obs == 0:
            return 0.0
        probe = np.arange(64, dtype=np.uint64) * np.uint64(0x9E3779B97F4A7C15)
        costs = []
        for position in range(observations.n_segments):
            if observations.count_at(position) == 0:
                continue
            costs.append(float(np.median(self.encoder.branch_costs(probe, position, observations))))
        if not costs:
            return 0.0
        # Random candidates cost roughly (signal + noise) energy per
        # observation while the true path costs roughly the noise energy; a
        # conservative bias of half the random-candidate cost works across
        # the SNR range and errs toward exploring (admissible-ish).
        return self.bias_scale * 0.5 * float(np.mean(costs))

    # ------------------------------------------------------------------
    def decode(
        self, n_message_bits: int, observations: ReceivedObservations
    ) -> DecodeResult:
        """Best-first decode of a message of ``n_message_bits`` bits."""
        params = self.encoder.params
        k = params.k
        n_segments = params.n_segments(n_message_bits)
        if observations.n_segments != n_segments:
            raise ValueError(
                f"observations were sized for {observations.n_segments} segments "
                f"but the message has {n_segments}"
            )
        hash_family = self.encoder.hash_family
        all_segments = np.arange(1 << k, dtype=np.uint64)
        bias = self._level_bias(observations)

        # Heap entries: (metric, tie_breaker, depth, state, segments_so_far).
        counter = 0
        heap: list[tuple[float, int, int, int, tuple[int, ...]]] = [
            (0.0, counter, 0, int(hash_family.initial_state), ())
        ]
        best_full: tuple[float, tuple[int, ...]] | None = None
        best_partial: tuple[int, float, tuple[int, ...], int] = (0, 0.0, (), int(hash_family.initial_state))
        nodes_expanded = 0
        max_stack = 1

        while heap and nodes_expanded < self.max_expansions:
            metric, _, depth, state, segments = heapq.heappop(heap)
            if depth == n_segments:
                best_full = (metric + bias * depth, segments)
                break
            # Expand this node: all 2^k children in one vectorised call.
            children = hash_family.hash_spine(np.uint64(state), all_segments)
            child_costs = self.encoder.branch_costs(children, depth, observations)
            path_cost = metric + bias * depth  # undo the bias to get the raw cost
            nodes_expanded += 1
            for value in range(1 << k):
                counter += 1
                child_cost = path_cost + float(child_costs[value])
                child_metric = child_cost - bias * (depth + 1)
                heapq.heappush(
                    heap,
                    (
                        child_metric,
                        counter,
                        depth + 1,
                        int(children[value]),
                        segments + (value,),
                    ),
                )
            if depth + 1 > best_partial[0] or (
                depth + 1 == best_partial[0] and path_cost < best_partial[1]
            ):
                best_child = int(np.argmin(child_costs))
                best_partial = (
                    depth + 1,
                    path_cost + float(child_costs[best_child]),
                    segments + (best_child,),
                    int(children[best_child]),
                )
            max_stack = max(max_stack, len(heap))

        budget_exhausted = best_full is None
        if best_full is None:
            # Budget ran out: extend the deepest partial path greedily so the
            # decoder always returns a full-length (if low-confidence) answer.
            depth, cost, segments, state = best_partial
            while depth < n_segments:
                children = hash_family.hash_spine(np.uint64(state), all_segments)
                child_costs = self.encoder.branch_costs(children, depth, observations)
                best_child = int(np.argmin(child_costs))
                cost += float(child_costs[best_child])
                state = int(children[best_child])
                segments = segments + (best_child,)
                depth += 1
                nodes_expanded += 1
            best_full = (cost, segments)

        total_cost, segments = best_full
        message_bits = self.encoder.spine_generator.segments_to_bits(
            np.array(segments, dtype=np.uint64)
        )
        self.last_stats = StackDecodeStats(
            nodes_expanded=nodes_expanded,
            max_stack_size=max_stack,
            budget_exhausted=budget_exhausted,
        )
        return DecodeResult(
            message_bits=message_bits,
            path_cost=float(total_cost),
            candidates_explored=nodes_expanded * (1 << k),
            beam_trace=(max_stack,) * n_segments,
        )
