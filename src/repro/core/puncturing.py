"""Puncturing schedules: which spine positions are sent in each subpass.

Without puncturing, every pass transmits one symbol per spine value, so the
maximum achievable rate is ``k`` bits/symbol (decode after one pass).
Section 3.1 notes that the authors "actually obtain rates higher than k
bits/symbol using puncturing, where the transmitter does not send each
successive spine value in every pass".

A schedule partitions the symbol stream into *subpasses*: each subpass is a
set of spine positions whose next symbol is transmitted.  The receiver may
attempt to decode after every subpass, so finer-grained schedules both raise
the achievable peak rate and smooth the rate-vs-SNR staircase.

Schedules are deliberately stateless: :meth:`subpass_positions` is a pure
function of the subpass index, so encoder and decoder trivially agree on
which (position, pass) pair each received value corresponds to.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = [
    "PuncturingSchedule",
    "NoPuncturing",
    "SymbolBySymbol",
    "StridedPuncturing",
    "TailFirstPuncturing",
]


class PuncturingSchedule(ABC):
    """Maps a subpass index to the spine positions transmitted in it."""

    @abstractmethod
    def subpass_positions(self, subpass_index: int, n_segments: int) -> np.ndarray:
        """Spine positions (0-based) transmitted in subpass ``subpass_index``.

        The same position may appear in many subpasses over time; its
        ``pass`` index (how many symbols of it have been sent before) is
        tracked by the encoder/receiver, not by the schedule.
        """

    def symbols_per_cycle(self, n_segments: int) -> int:
        """Symbols transmitted in one full cycle of the schedule.

        A *cycle* is the smallest number of subpasses after which every
        position has been transmitted the same number of times.  For the
        un-punctured schedule a cycle is one pass (``n_segments`` symbols).
        """
        count = 0
        for j in range(self.subpasses_per_cycle(n_segments)):
            count += int(self.subpass_positions(j, n_segments).size)
        return count

    @abstractmethod
    def subpasses_per_cycle(self, n_segments: int) -> int:
        """Number of subpasses per cycle (see :meth:`symbols_per_cycle`)."""

    def describe(self) -> str:
        """Short human-readable description for experiment metadata."""
        return type(self).__name__


class NoPuncturing(PuncturingSchedule):
    """The paper's basic schedule: each subpass is one full pass."""

    def subpass_positions(self, subpass_index: int, n_segments: int) -> np.ndarray:
        if subpass_index < 0:
            raise ValueError("subpass_index must be non-negative")
        return np.arange(n_segments, dtype=np.int64)

    def subpasses_per_cycle(self, n_segments: int) -> int:
        return 1


class SymbolBySymbol(PuncturingSchedule):
    """Finest granularity: each subpass transmits a single spine position.

    Positions are sent in natural order within each pass.  This does not
    change the code at all — it only lets the receiver attempt decoding
    after every individual symbol, which removes the "staircase"
    quantisation of the achieved rate.
    """

    def subpass_positions(self, subpass_index: int, n_segments: int) -> np.ndarray:
        if subpass_index < 0:
            raise ValueError("subpass_index must be non-negative")
        return np.array([subpass_index % n_segments], dtype=np.int64)

    def subpasses_per_cycle(self, n_segments: int) -> int:
        return n_segments


class StridedPuncturing(PuncturingSchedule):
    """8-way-style strided puncturing.

    A cycle consists of ``stride`` subpasses.  Subpass ``j`` transmits the
    positions congruent to ``order[j]`` modulo ``stride``, where ``order`` is
    a bit-reversed permutation of ``0..stride-1`` so that consecutive
    subpasses cover well-separated parts of the spine.  The last spine
    position may additionally be included in every subpass
    (``always_include_last``), because its value depends on the *entire*
    message and is therefore the most informative single symbol.
    """

    def __init__(self, stride: int = 8, always_include_last: bool = True) -> None:
        if stride < 2:
            raise ValueError(f"stride must be at least 2, got {stride}")
        self.stride = stride
        self.always_include_last = always_include_last
        self._order = _bit_reversed_order(stride)

    def subpass_positions(self, subpass_index: int, n_segments: int) -> np.ndarray:
        if subpass_index < 0:
            raise ValueError("subpass_index must be non-negative")
        offset = self._order[subpass_index % self.stride]
        positions = np.arange(offset, n_segments, self.stride, dtype=np.int64)
        if self.always_include_last and (n_segments - 1) not in positions:
            positions = np.append(positions, n_segments - 1)
        return np.sort(positions)

    def subpasses_per_cycle(self, n_segments: int) -> int:
        return self.stride

    def describe(self) -> str:
        last = "+last" if self.always_include_last else ""
        return f"StridedPuncturing(stride={self.stride}{last})"


class TailFirstPuncturing(PuncturingSchedule):
    """Send the tail of the spine before the head within each pass.

    The last spine value hashes the whole message, so at high SNR a couple of
    tail symbols can already pin down every message bit; transmitting them
    first is what lets the achieved rate exceed ``k`` bits/symbol
    (experiment E7).  Each cycle still transmits every position exactly once
    (it is a permuted :class:`SymbolBySymbol` schedule).
    """

    def subpass_positions(self, subpass_index: int, n_segments: int) -> np.ndarray:
        if subpass_index < 0:
            raise ValueError("subpass_index must be non-negative")
        position = n_segments - 1 - (subpass_index % n_segments)
        return np.array([position], dtype=np.int64)

    def subpasses_per_cycle(self, n_segments: int) -> int:
        return n_segments


def _bit_reversed_order(n: int) -> list[int]:
    """Bit-reversed permutation of ``0..n-1`` (n need not be a power of two)."""
    width = max(1, (n - 1).bit_length())
    reversed_vals = []
    for value in range(1 << width):
        rev = int(format(value, f"0{width}b")[::-1], 2)
        if rev < n:
            reversed_vals.append(rev)
    return reversed_vals
