"""The rateless spinal encoder and the receiver-side observation store.

The encoder (Section 3.1) works in two stages:

1. compute the spine ``s_1 .. s_{n/k}`` of the message (once);
2. in pass ``l``, expand each spine value into ``2c`` fresh pseudo-random
   bits (via the salted hash) and map them to a constellation point
   (``bit_mode`` instead emits a single coded bit per spine value per pass,
   the paper's binary-channel variant).

Passes may be *punctured* (see :mod:`repro.core.puncturing`): the symbol
stream is organised into subpasses, each transmitting a subset of the spine
positions.  The encoder exposes both a batch API (``encode_passes``) used by
tests and analysis, and a streaming API (``symbol_stream``) used by the
rateless session, which yields one :class:`SubpassBlock` at a time until the
receiver says "stop".

The decoders need the encoder's notion of "what would have been sent from
this spine value in that pass"; that logic lives in
:meth:`SpinalEncoder.branch_costs`, which literally replays the encoder over
candidate spine values — the paper's footnote 1 ("replaying the encoder
allows inference of the hash input bits ...; an inverse of the hash function
is not required").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.params import SpinalParams
from repro.core.puncturing import NoPuncturing, PuncturingSchedule
from repro.core.spine import SpineGenerator

__all__ = ["SpinalEncoder", "SubpassBlock", "ReceivedObservations"]


@dataclass(frozen=True)
class SubpassBlock:
    """One subpass worth of channel uses.

    Attributes
    ----------
    subpass_index:
        0-based index of the subpass in the transmission order.
    positions:
        Spine positions (0-based) of the values transmitted in this subpass.
    pass_indices:
        For each position, how many symbols of that position had been sent
        before (i.e. the 0-based pass number used to salt the hash).
    values:
        The transmitted values: complex constellation points in symbol mode,
        0/1 coded bits in bit mode.
    """

    subpass_index: int
    positions: np.ndarray
    pass_indices: np.ndarray
    values: np.ndarray

    @property
    def n_symbols(self) -> int:
        return int(self.values.size)


class ReceivedObservations:
    """Receiver-side store of everything received so far.

    Observations are grouped by spine position because the decoder walks the
    tree position by position and needs, at level ``t``, every received value
    that was generated from spine value ``s_t`` (across all passes received
    so far), together with the pass index that salted it.

    The store is append-only: observations are never removed or reordered,
    which is what lets the incremental decoders treat "same store object,
    same per-position version" (see :meth:`version_at`) as proof that a
    position's columns are unchanged since the last decode attempt.
    """

    def __init__(self, n_segments: int) -> None:
        if n_segments <= 0:
            raise ValueError(f"n_segments must be positive, got {n_segments}")
        self.n_segments = n_segments
        self._pass_indices: list[list[int]] = [[] for _ in range(n_segments)]
        self._values: list[list[complex]] = [[] for _ in range(n_segments)]
        self._total = 0
        self._versions: list[int] = [0] * n_segments
        self._array_cache: dict[int, tuple[int, np.ndarray, np.ndarray]] = {}

    def add_block(self, block: SubpassBlock, received_values: np.ndarray) -> None:
        """Record the received counterparts of one transmitted subpass."""
        received_values = np.asarray(received_values)
        if received_values.shape != block.values.shape:
            raise ValueError(
                f"received {received_values.shape} values for a subpass of "
                f"{block.values.shape}"
            )
        for position, pass_idx, value in zip(
            block.positions, block.pass_indices, received_values
        ):
            self.add(int(position), int(pass_idx), value)

    def add(self, position: int, pass_index: int, value: complex) -> None:
        """Record a single received value for (position, pass)."""
        if not 0 <= position < self.n_segments:
            raise ValueError(f"position {position} out of range [0, {self.n_segments})")
        if pass_index < 0:
            raise ValueError("pass_index must be non-negative")
        self._pass_indices[position].append(pass_index)
        self._values[position].append(value)
        self._total += 1
        self._versions[position] += 1

    def version_at(self, position: int) -> int:
        """Monotone per-position change counter (0 while nothing received).

        Because the store is append-only, a caller that remembers both this
        store object and ``version_at(position)`` can later conclude — in
        O(1), without comparing arrays — that the position's observation
        columns are exactly as it last saw them whenever both still match.
        """
        if not 0 <= position < self.n_segments:
            raise ValueError(f"position {position} out of range [0, {self.n_segments})")
        return self._versions[position]

    def for_position(self, position: int) -> tuple[np.ndarray, np.ndarray]:
        """Return (pass indices, received values) available at a position.

        The returned arrays are cached, immutable snapshots: they are marked
        read-only, are shared between callers, and remain valid (unchanged)
        if the store grows afterwards — later calls return fresh arrays
        instead of mutating old ones.  The decode hot path calls this once
        per tree level per attempt, so the list-to-array conversion must not
        be paid again while a position is unchanged.
        """
        if not 0 <= position < self.n_segments:
            raise ValueError(f"position {position} out of range [0, {self.n_segments})")
        version = self._versions[position]
        cached = self._array_cache.get(position)
        if cached is not None and cached[0] == version:
            return cached[1], cached[2]
        pass_indices = np.asarray(self._pass_indices[position], dtype=np.int64)
        values = np.asarray(self._values[position])
        pass_indices.flags.writeable = False
        values.flags.writeable = False
        self._array_cache[position] = (version, pass_indices, values)
        return pass_indices, values

    def count_at(self, position: int) -> int:
        return len(self._values[position])

    @property
    def total_symbols(self) -> int:
        """Total number of channel uses observed so far."""
        return self._total

    def truncated(self, n_symbols: int, blocks: list[SubpassBlock], received: list[np.ndarray]) -> "ReceivedObservations":
        """Rebuild an observation store containing only the first ``n_symbols``.

        Used by the bisection termination-search strategy, which records the
        full transmission once and then asks "would the receiver have decoded
        after only the first N channel uses?".
        """
        out = ReceivedObservations(self.n_segments)
        remaining = n_symbols
        for block, recv in zip(blocks, received):
            if remaining <= 0:
                break
            take = min(remaining, block.n_symbols)
            for position, pass_idx, value in list(
                zip(block.positions, block.pass_indices, recv)
            )[:take]:
                out.add(int(position), int(pass_idx), value)
            remaining -= take
        return out


class SpinalEncoder:
    """Rateless spinal encoder for one :class:`SpinalParams` configuration."""

    def __init__(
        self,
        params: SpinalParams,
        puncturing: PuncturingSchedule | None = None,
    ) -> None:
        self.params = params
        self.puncturing = puncturing if puncturing is not None else NoPuncturing()
        self.hash_family = params.make_hash_family()
        self.spine_generator = SpineGenerator(self.hash_family)
        self.constellation = None if params.bit_mode else params.make_constellation()

    # -- stage 1: the spine ---------------------------------------------------
    def spine(self, message_bits: np.ndarray) -> np.ndarray:
        """Compute the spine of a message (one ``uint64`` per segment)."""
        return self.spine_generator.generate(message_bits)

    # -- stage 2: symbols from spine values -----------------------------------
    def values_from_spines(
        self, spine_values: np.ndarray | int, pass_index: int | np.ndarray
    ) -> np.ndarray:
        """What the encoder sends from given spine value(s) in a given pass.

        Returns complex constellation points in symbol mode, or 0/1 coded
        bits (``uint8``) in bit mode.  This is used both by the encoder
        proper and by the decoders when replaying candidate spines.
        """
        if self.params.bit_mode:
            bits = self.hash_family.symbol_value(spine_values, pass_index, 1)
            return bits.astype(np.uint8)
        word = self.hash_family.symbol_value(
            spine_values, pass_index, self.constellation.bits_per_symbol
        )
        return self.constellation.map_values(word)

    def encode_passes(self, message_bits: np.ndarray, n_passes: int) -> np.ndarray:
        """Encode ``n_passes`` full (un-punctured) passes.

        Returns an array of shape ``(n_passes, n_segments)``: row ``l`` holds
        the symbols (or coded bits) of pass ``l`` in spine order.  This is
        the layout of Figure 1 in the paper and is convenient for analysis;
        the rateless session uses :meth:`symbol_stream` instead.
        """
        if n_passes <= 0:
            raise ValueError(f"n_passes must be positive, got {n_passes}")
        spine = self.spine(message_bits)
        dtype = np.uint8 if self.params.bit_mode else np.complex128
        out = np.empty((n_passes, spine.size), dtype=dtype)
        for pass_index in range(n_passes):
            out[pass_index] = self.values_from_spines(spine, pass_index)
        return out

    def symbol_stream(self, message_bits: np.ndarray) -> Iterator[SubpassBlock]:
        """Yield subpass blocks indefinitely, following the puncturing schedule.

        The stream is infinite (the code is rateless); the consumer stops
        iterating when the receiver has decoded or the sender gives up.
        """
        spine = self.spine(message_bits)
        n_segments = spine.size
        times_sent = np.zeros(n_segments, dtype=np.int64)
        subpass_index = 0
        while True:
            positions = self.puncturing.subpass_positions(subpass_index, n_segments)
            if positions.size:
                pass_indices = times_sent[positions].copy()
                values = self.values_from_spines(spine[positions], pass_indices)
                times_sent[positions] += 1
                yield SubpassBlock(
                    subpass_index=subpass_index,
                    positions=positions,
                    pass_indices=pass_indices,
                    values=values,
                )
            subpass_index += 1

    # -- decoder support --------------------------------------------------------
    def branch_cost_columns(
        self,
        candidate_spines: np.ndarray,
        pass_indices: np.ndarray,
        received: np.ndarray,
    ) -> np.ndarray:
        """Per-observation cost matrix for candidate spine values.

        Returns a C-contiguous ``float64`` matrix of shape
        ``(n_candidates, n_observations)``: entry ``(i, j)`` is the cost of
        candidate ``i`` against the ``j``-th observation (a received value
        salted with ``pass_indices[j]``) — squared Euclidean distance in
        symbol mode, 0/1 Hamming mismatch in bit mode.

        Each entry depends only on ``(spine value, pass index, received
        value)``, never on the shape of the call, so the matrix can be
        assembled column-by-column (or row-by-row) across decode attempts and
        still be bit-identical to a single batched evaluation — the property
        the incremental decoder's caching relies on.
        """
        spines = np.asarray(candidate_spines, dtype=np.uint64).reshape(-1)
        pass_indices = np.asarray(pass_indices, dtype=np.int64)
        if self.params.bit_mode:
            bits = self.hash_family.symbol_value(
                spines[:, None], pass_indices[None, :], 1
            )
            mismatches = bits != received[None, :].astype(np.uint64)
            return np.ascontiguousarray(mismatches, dtype=np.float64)
        words = self.hash_family.symbol_value(
            spines[:, None], pass_indices[None, :], self.constellation.bits_per_symbol
        )
        candidates = self.constellation.map_values(words)
        diff = candidates - received[None, :].astype(np.complex128)
        return diff.real**2 + diff.imag**2

    def branch_costs(
        self,
        candidate_spines: np.ndarray,
        position: int,
        observations: ReceivedObservations,
    ) -> np.ndarray:
        """Replay the encoder over candidate spine values and score them.

        For every candidate spine value at tree level ``position`` this
        computes the summed per-pass cost against every observation received
        for that position: squared Euclidean distance in symbol mode
        (the ML metric for AWGN, Eq. (4)), Hamming distance in bit mode
        (the ML metric for the BSC).
        """
        candidate_spines = np.asarray(candidate_spines, dtype=np.uint64)
        pass_indices, received = observations.for_position(position)
        if pass_indices.size == 0:
            return np.zeros(candidate_spines.shape, dtype=np.float64)
        # One 2-D vectorised evaluation: rows are candidates, columns are the
        # observations (passes) available at this position.
        matrix = self.branch_cost_columns(
            candidate_spines.reshape(-1), pass_indices, received
        )
        return matrix.sum(axis=1).reshape(candidate_spines.shape)

    def total_cost(
        self, message_bits: np.ndarray, observations: ReceivedObservations
    ) -> float:
        """Full path cost of a specific message against all observations.

        Equals the decoder's tree-path cost for that message; used in tests
        to verify that the decoders return true minimum-cost paths.
        """
        spine = self.spine(message_bits)
        total = 0.0
        for position in range(spine.size):
            total += float(
                self.branch_costs(spine[position : position + 1], position, observations)[0]
            )
        return total
