"""The random hash-function family at the heart of spinal codes.

Section 3.1 of the paper defines the code in terms of a hash function

    h : [0, 1) x {0, 1}^k  ->  [0, 1)

drawn from a family ``H`` indexed by a random seed shared by sender and
receiver, and assumed to behave like a uniform, pairwise-independent random
mapping.  The paper also notes that the conceptual "infinite precision"
output is realised in practice by *repeated hashing with different known
salts* whenever more output bits are needed (one batch of ``2c`` fresh bits
per pass).

This module provides exactly that machinery:

* spine values are 64-bit unsigned integers (the fixed-precision stand-in for
  a real number in [0, 1));
* :meth:`SaltedHashFamily.hash_spine` implements ``h(s, m)`` for whole numpy
  arrays of states and message segments at once (the decoder expands
  ``B * 2^k`` candidates per level, so vectorisation matters);
* :meth:`SaltedHashFamily.symbol_word` is the salted PRF that produces the
  64-bit word whose top bits feed the constellation mapper in pass ``l``.

The mixing function is a two-round splitmix64/xxhash-style finaliser keyed by
the family seed.  It is *not* cryptographic — the paper only requires good
statistical behaviour (uniformity and independence, equations (1)–(2)), which
the test-suite checks empirically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "SaltedHashFamily",
    "splitmix64",
    "popcount64",
    "avalanche_score",
    "hash_spine_keyed",
    "symbol_word_keyed",
]

# splitmix64 constants (Steele, Lea & Flood; public domain reference values).
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
# Additional odd constants used to key the spine / symbol / salt domains so
# the three uses of the mixer never collide on identical inputs.
_SPINE_DOMAIN = np.uint64(0xA24BAED4963EE407)
_SYMBOL_DOMAIN = np.uint64(0x9FB21C651E98DF25)
_PASS_STRIDE = np.uint64(0xD6E8FEB86659FD93)


def _mix(z: np.ndarray) -> np.ndarray:
    """One splitmix64 finalisation round (vectorised, wrap-around arithmetic)."""
    z = (z ^ (z >> np.uint64(30))) * _MIX1
    z = (z ^ (z >> np.uint64(27))) * _MIX2
    return z ^ (z >> np.uint64(31))


def splitmix64(value: np.ndarray | int) -> np.ndarray | int:
    """The splitmix64 state-to-output function, usable on scalars or arrays.

    Exposed primarily for tests and for deriving auxiliary constants; the
    encoder/decoder go through :class:`SaltedHashFamily`.
    """
    scalar = np.isscalar(value)
    z = np.asarray(value, dtype=np.uint64)
    with np.errstate(over="ignore"):
        z = z + _GOLDEN
        z = _mix(z)
    return int(z) if scalar else z


def hash_spine_keyed(
    states: np.ndarray, segments: np.ndarray, key1: np.ndarray | np.uint64
) -> np.ndarray:
    """The raw ``h(s, m)`` kernel with an explicit family key.

    ``states``, ``segments`` and ``key1`` broadcast against each other, so a
    batch decoder can expand the stacked beams of *many* sessions — each
    with its own hash family — in a single call by passing a per-element (or
    per-row) key array.  :meth:`SaltedHashFamily.hash_spine` delegates here,
    which guarantees the batched and single-session spellings are the same
    arithmetic, element for element.
    """
    s = np.asarray(states, dtype=np.uint64)
    m = np.asarray(segments, dtype=np.uint64)
    with np.errstate(over="ignore"):
        z = _mix(s ^ key1)
        z = _mix(z ^ (m * _GOLDEN) ^ _SPINE_DOMAIN)
        # A second absorption of the state guards against the (remote)
        # possibility of two (s, m) pairs colliding after one round.
        z = _mix(z ^ (s * _MIX1))
    return z


def symbol_word_keyed(
    states: np.ndarray, pass_index: np.ndarray, key2: np.ndarray | np.uint64
) -> np.ndarray:
    """The raw salted symbol PRF with an explicit family key.

    Broadcasting counterpart of :meth:`SaltedHashFamily.symbol_word` (which
    delegates here); see :func:`hash_spine_keyed` for why the key is a
    parameter.
    """
    s = np.asarray(states, dtype=np.uint64)
    p = np.asarray(pass_index, dtype=np.uint64)
    with np.errstate(over="ignore"):
        z = _mix(s ^ key2 ^ (p * _PASS_STRIDE))
        z = _mix(z ^ (s * _MIX2) ^ _SYMBOL_DOMAIN)
    return z


@dataclass(frozen=True)
class SaltedHashFamily:
    """A keyed hash family ``H`` shared by the encoder and decoder.

    Parameters
    ----------
    seed:
        The random index selecting ``h`` from the family.  Sender and
        receiver must use the same seed (in a deployment it would be derived
        from e.g. the packet header); everything else is deterministic.
    k:
        Message segment size in bits.  Stored so that segment values can be
        validated before they are hashed.
    """

    seed: int
    k: int

    def __post_init__(self) -> None:
        if not 1 <= self.k <= 32:
            raise ValueError(f"segment size k must be in [1, 32], got {self.k}")
        if not 0 <= self.seed < 2**64:
            raise ValueError(f"seed must fit in 64 bits, got {self.seed}")

    # -- keys -------------------------------------------------------------
    @property
    def _key1(self) -> np.uint64:
        return np.uint64(splitmix64(np.uint64(self.seed) ^ _SPINE_DOMAIN))

    @property
    def _key2(self) -> np.uint64:
        return np.uint64(splitmix64(np.uint64(self.seed) ^ _SYMBOL_DOMAIN))

    @property
    def initial_state(self) -> np.uint64:
        """The agreed-upon initial spine value ``s_0`` (Section 3.1)."""
        return np.uint64(0)

    # -- spine hash h(s, m) ------------------------------------------------
    def hash_spine(self, states: np.ndarray | int, segments: np.ndarray | int) -> np.ndarray:
        """Apply ``h(s, m)`` element-wise.

        ``states`` and ``segments`` broadcast against each other, so a
        decoder can expand every candidate state against every possible
        ``k``-bit segment in one call::

            children = family.hash_spine(states[:, None], all_segments[None, :])

        Returns a ``uint64`` array of new spine values.
        """
        m = np.asarray(segments, dtype=np.uint64)
        if m.size and int(m.max()) >= (1 << self.k):
            raise ValueError(
                f"segment value {int(m.max())} does not fit in k={self.k} bits"
            )
        return hash_spine_keyed(states, m, self._key1)

    def hash_spine_scalar(self, state: int, segment: int) -> int:
        """Scalar convenience wrapper around :meth:`hash_spine`."""
        return int(self.hash_spine(np.uint64(state), np.uint64(segment)))

    # -- salted symbol PRF -------------------------------------------------
    def symbol_word(self, states: np.ndarray | int, pass_index: int | np.ndarray) -> np.ndarray:
        """Return the 64-bit pseudo-random word for pass ``pass_index``.

        The paper treats each spine value as an infinite bit string and takes
        bits ``2c(l-1)+1 .. 2cl`` in pass ``l``.  With repeated salted
        hashing, pass ``l`` instead reads the top bits of
        ``PRF(s, l)`` — a fresh, independent word per pass, which is the
        practical realisation the paper describes.  ``pass_index`` is
        0-based here (pass ``l`` in the paper is ``pass_index = l - 1``).
        """
        if np.any(np.asarray(pass_index) < 0):
            raise ValueError("pass_index must be non-negative")
        return symbol_word_keyed(states, pass_index, self._key2)

    def symbol_value(
        self,
        states: np.ndarray | int,
        pass_index: int | np.ndarray,
        n_bits: int,
    ) -> np.ndarray:
        """Top ``n_bits`` bits of the pass word, as an unsigned integer array.

        This is the integer whose binary expansion is ``b'_1 ... b'_{n_bits}``
        in the paper's notation; the constellation mapper consumes it
        directly (``n_bits = 2c``), and the BSC encoder uses ``n_bits = 1``
        to obtain the single coded bit ``b'_1``.
        """
        if not 1 <= n_bits <= 64:
            raise ValueError(f"n_bits must be in [1, 64], got {n_bits}")
        word = self.symbol_word(states, pass_index)
        return word >> np.uint64(64 - n_bits)


def avalanche_score(family: SaltedHashFamily, n_samples: int, rng: np.random.Generator) -> float:
    """Measure the avalanche property of the spine hash.

    For ``n_samples`` random (state, segment) pairs, flip one random bit of
    the segment and count how many of the 64 output bits change.  A value
    close to 0.5 indicates the large codeword divergence the paper's Section
    4 ("the moment two messages differ in 1 bit, their output coded
    sequences have a large difference") relies on.

    Returns the mean fraction of output bits flipped.
    """
    if n_samples <= 0:
        raise ValueError("n_samples must be positive")
    states = rng.integers(0, 2**63, size=n_samples, dtype=np.uint64)
    segments = rng.integers(0, 2**family.k, size=n_samples, dtype=np.uint64)
    flip_positions = rng.integers(0, family.k, size=n_samples)
    flipped = segments ^ (np.uint64(1) << flip_positions.astype(np.uint64))
    base = family.hash_spine(states, segments)
    perturbed = family.hash_spine(states, flipped)
    changed_bits = popcount64(base ^ perturbed)
    return float(changed_bits.mean() / 64.0)


def popcount64(values: np.ndarray) -> np.ndarray:
    """Per-element population count of a ``uint64`` array.

    Uses :func:`numpy.bitwise_count` where available (numpy >= 2.0) and an
    ``unpackbits``-over-bytes fallback otherwise; both are vectorised, unlike
    the per-element Python ``bin(x).count("1")`` loop they replace, which
    dominated the runtime of hash-quality sweeps over millions of samples.
    """
    values = np.ascontiguousarray(values, dtype=np.uint64)
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(values).astype(np.int64)
    as_bytes = values.view(np.uint8).reshape(values.size, 8)
    return np.unpackbits(as_bytes, axis=1).sum(axis=1).astype(np.int64).reshape(values.shape)
