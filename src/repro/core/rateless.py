"""The rateless transmission loop: sender, channel, and receiver together.

This module implements the protocol sketched in Sections 1 and 3 of the
paper: the sender streams coded symbols (pass by pass, possibly punctured);
the receiver attempts to decode after each subpass and, as soon as it
succeeds, tells the sender to stop.  The achieved *rate* of a trial is the
number of message bits divided by the number of channel uses needed — the
quantity plotted on the y-axis of Figure 2.

Because the receiver decodes after every subpass, the decoder choice
matters enormously for sweep cost: a from-scratch
:class:`~repro.core.decoder_bubble.BubbleDecoder` makes total decoder work
quadratic in the number of subpasses, while the stateful
:class:`~repro.core.decoder_incremental.IncrementalBubbleDecoder` resumes
each attempt from cached beam state with bit-identical results.  The
receiver additionally skips attempts that cannot possibly succeed yet (see
:class:`RatelessReceiver`).

Two termination rules are provided:

* ``"genie"`` — the receiver is told when its decode equals the true
  message.  This is what the paper's evaluation uses ("we assume that the
  receiver informs the sender as soon as it is able to fully decode the
  data; this allows us to isolate the evaluation of the performance of
  spinal codes").
* ``"crc"`` — realistic self-contained termination using the CRC carried by
  the framing layer; the CRC and padding count as overhead against the rate.

Two search strategies find the stopping point:

* ``"sequential"`` — attempt a decode after every subpass, exactly as a
  receiver would on-line.
* ``"bisect"`` — transmit (and record) up to the maximum budget first, then
  binary-search the smallest prefix of the symbol stream after which the
  termination rule passes.  This is an experiment-runner optimisation that
  touches far fewer decode attempts at low SNR; the monotonicity assumption
  it relies on (more symbols never hurt) is checked empirically in the test
  suite and any non-monotonicity is resolved conservatively (towards more
  symbols) by a final sequential refinement step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.channels.base import Channel
from repro.core.decoder_bubble import BubbleDecoder, DecodeResult
from repro.core.encoder import ReceivedObservations, SpinalEncoder, SubpassBlock
from repro.core.framing import Framer
from repro.phy.session import CodecSession, CodecTransmission
from repro.phy.spinal import SpinalCode
from repro.utils.deprecation import warn_once

__all__ = ["RatelessSession", "RatelessReceiver", "PacketTransmission", "TrialResult"]


@dataclass(frozen=True)
class TrialResult:
    """Outcome of transmitting a single message ratelessly.

    Attributes
    ----------
    success:
        Whether the termination rule fired with a correct payload before the
        symbol budget ran out.  (With CRC termination a false positive is
        possible; ``payload_correct`` records the ground truth.)
    payload_correct:
        Whether the decoded payload equals the transmitted payload.
    symbols_sent:
        Channel uses consumed (the denominator of the achieved rate).
    payload_bits:
        Useful message bits delivered (the numerator of the achieved rate).
    decode_attempts:
        Number of decoder invocations performed by the receiver.
    candidates_explored:
        Total tree nodes evaluated across all decode attempts (decoder work).
    decoded_payload:
        The payload bits produced by the final decode attempt.
    """

    success: bool
    payload_correct: bool
    symbols_sent: int
    payload_bits: int
    decode_attempts: int
    candidates_explored: int
    decoded_payload: np.ndarray

    @property
    def rate(self) -> float:
        """Achieved rate in payload bits per channel use."""
        if self.symbols_sent == 0:
            raise ValueError("no symbols were sent; rate is undefined")
        return self.payload_bits / self.symbols_sent


class RatelessReceiver:
    """Receiver state for one rateless trial: observations plus termination.

    The receiver declines to run the decoder while the observed symbols carry
    fewer coded bits than the message's unknown (payload + CRC) bits — below
    that threshold a *reliable* decode is information-theoretically
    impossible, so attempting one only burns tree expansions (the
    no-observation spine positions force the decoder into its widest
    unpruned beams).  Note this is a deliberate behavioural change, not a
    pure optimisation: below the threshold the termination rule could still
    fire by luck (a genie match or CRC pass on an under-determined guess),
    and such above-capacity flukes are now suppressed rather than credited
    as ultra-high-rate trials.  Skipped attempts do not count towards
    ``decode_attempts``.
    """

    def __init__(
        self,
        decoder: BubbleDecoder,
        framer: Framer,
        termination: str = "genie",
        true_framed_bits: np.ndarray | None = None,
    ) -> None:
        if termination not in ("genie", "crc"):
            raise ValueError(f"unknown termination rule {termination!r}")
        if termination == "genie" and true_framed_bits is None:
            raise ValueError("genie termination requires the true framed bits")
        self.decoder = decoder
        self.framer = framer
        self.termination = termination
        self.true_framed_bits = (
            None if true_framed_bits is None else np.asarray(true_framed_bits, dtype=np.uint8)
        )
        self.observations = ReceivedObservations(framer.n_segments)
        self.decode_attempts = 0
        self.candidates_explored = 0
        self.last_result: DecodeResult | None = None
        bits_per_symbol = decoder.encoder.params.coded_bits_per_symbol
        unknown_bits = framer.payload_bits + framer.crc_bits
        #: Minimum channel uses before a decode attempt can possibly succeed.
        self.min_decode_symbols = -(-unknown_bits // bits_per_symbol)

    def receive(self, block: SubpassBlock, received_values: np.ndarray) -> None:
        """Record the received values of one subpass."""
        self.observations.add_block(block, received_values)

    def try_decode(self) -> bool:
        """Run one decode attempt; return True if the termination rule fires.

        Returns False without invoking the decoder while fewer coded bits
        than the unknown message bits have been observed (see the class
        docstring for the semantics of this threshold).
        """
        if self.observations.total_symbols < self.min_decode_symbols:
            return False
        return self.decode_now()

    def decode_now(self) -> bool:
        """Run the decoder unconditionally (bypassing the symbol threshold)."""
        result = self.decoder.decode(self.framer.framed_bits, self.observations)
        self.decode_attempts += 1
        self.candidates_explored += result.candidates_explored
        self.last_result = result
        if self.termination == "genie":
            return bool(np.array_equal(result.message_bits, self.true_framed_bits))
        return self.framer.check(result.message_bits)

    def decoded_payload(self) -> np.ndarray:
        if self.last_result is None:
            raise ValueError("no decode attempt has been made yet")
        return self.framer.extract_payload(self.last_result.message_bits)


class PacketTransmission(CodecTransmission):
    """A pausable, resumable rateless transmission of one framed payload.

    Since the ``repro.phy`` redesign this is a thin spinal-flavoured shim
    over the code-agnostic :class:`~repro.phy.session.CodecTransmission`:
    the session loop, decode gating, budget accounting and pause/resume
    semantics all live there, and this class merely binds them to the
    spinal adapter built from a :class:`RatelessSession` — bit-identically
    to the historical implementation (same encoder stream, same observation
    store, same decoder invocations, same noise draws).

    The link-transport simulator interleaves many packets over one forward
    channel: a sliding-window sender transmits a subpass of one packet, then
    may switch to another in-flight packet before the first has decoded.
    Sending and delivering are deliberately *separate* steps:
    :meth:`send_next_block` spends channel uses (sender + channel), while
    :meth:`deliver` feeds the received values to this packet's receiver and
    attempts a decode.  A transport protocol may send a block and then
    *discard* it at the receiver (go-back-N drops out-of-order frames), in
    which case the symbols still count against the sender but never reach
    the decoder.
    """

    def __init__(
        self,
        session: "RatelessSession",
        payload: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        super().__init__(
            session.codec_session(), np.asarray(payload, dtype=np.uint8), rng
        )

    @property
    def framed(self) -> np.ndarray:
        """The framed message bits this packet's encoder streams."""
        return self.session.code.framer.frame(self.payload)


class RatelessSession:
    """Simulates complete rateless transmissions of framed payloads.

    Parameters
    ----------
    encoder:
        The spinal encoder (its parameters determine segment size, symbol
        mode and puncturing schedule).
    decoder_factory:
        Callable building a fresh decoder bound to the encoder, e.g.
        ``lambda enc: IncrementalBubbleDecoder(enc, beam_width=16)`` (the
        stateful engine that reuses beam state across the session's decode
        attempts) or ``lambda enc: BubbleDecoder(enc, beam_width=16)`` (the
        from-scratch reference; bit-identical results, more work).  A
        factory rather than an instance so each trial gets a private
        decoder state and sweeps over decoder parameters stay explicit.
    channel:
        The channel model symbols/bits are transmitted through.
    framer:
        Framing configuration (payload length, CRC, tail segments).
    termination:
        ``"genie"`` (paper's methodology) or ``"crc"``.
    max_symbols:
        Sender give-up budget in channel uses; a trial that exhausts it is
        recorded as a failure with ``symbols_sent = max_symbols``.
    search:
        ``"sequential"`` or ``"bisect"`` (see module docstring).
    count_overhead:
        If True the achieved rate counts only payload bits (CRC, padding and
        tail bits are overhead); if False the full framed length is credited,
        matching the paper's Figure 2 which plots raw message bits.
    """

    def __init__(
        self,
        encoder: SpinalEncoder,
        decoder_factory: Callable[[SpinalEncoder], BubbleDecoder],
        channel: Channel,
        framer: Framer,
        termination: str = "genie",
        max_symbols: int = 4096,
        search: str = "sequential",
        count_overhead: bool = False,
    ) -> None:
        if max_symbols <= 0:
            raise ValueError(f"max_symbols must be positive, got {max_symbols}")
        if termination not in ("genie", "crc"):
            raise ValueError(f"unknown termination rule {termination!r}")
        if search not in ("sequential", "bisect"):
            raise ValueError(f"unknown search strategy {search!r}")
        expected_domain = "bit" if encoder.params.bit_mode else "symbol"
        if channel.domain != expected_domain:
            raise ValueError(
                f"channel domain {channel.domain!r} does not match encoder mode "
                f"({expected_domain!r})"
            )
        if framer.k != encoder.params.k:
            raise ValueError("framer and encoder disagree on the segment size k")
        self.encoder = encoder
        self.decoder_factory = decoder_factory
        self.channel = channel
        self.framer = framer
        self.termination = termination
        self.max_symbols = max_symbols
        self.search = search
        self.count_overhead = count_overhead

    # ----------------------------------------------------------------------
    def _credited_bits(self) -> int:
        return self.framer.framed_bits if not self.count_overhead else self.framer.payload_bits

    @property
    def payload_bits(self) -> int:
        """Message bits per packet (the link/MAC layers' goodput numerator)."""
        return self.framer.payload_bits

    def as_code(self) -> SpinalCode:
        """This session's code, as a :class:`~repro.phy.protocol.RatelessCode`."""
        return SpinalCode(self.encoder, self.decoder_factory, self.framer)

    def codec_session(self) -> CodecSession:
        """The code-agnostic session equivalent to this one.

        Built fresh per call (construction is trivial) so later mutation of
        this session's fields is always reflected.  The historical
        ``"crc"`` termination maps to the protocol's ``"self"`` rule.
        """
        return CodecSession(
            self.as_code(),
            self.channel,
            termination="genie" if self.termination == "genie" else "self",
            max_symbols=self.max_symbols,
            credited_bits=self._credited_bits(),
        )

    def run(self, payload: np.ndarray, rng: np.random.Generator) -> TrialResult:
        """Transmit one payload until decoded or the symbol budget is spent.

        Since the ``repro.phy`` redesign the sequential search is a
        bit-identical shim over :meth:`CodecSession.run
        <repro.phy.session.CodecSession.run>`; new code should prefer
        ``session.codec_session().run(payload, rng)`` (or build a
        :class:`~repro.phy.session.CodecSession` directly).
        """
        warn_once(
            "RatelessSession.run",
            "RatelessSession.run is a compatibility shim over the repro.phy codec "
            "API; prefer session.codec_session().run(payload, rng)",
        )
        return self._run(payload, rng)

    def _run(self, payload: np.ndarray, rng: np.random.Generator) -> TrialResult:
        """The non-deprecated implementation behind :meth:`run`."""
        payload = np.asarray(payload, dtype=np.uint8)
        framed = self.framer.frame(payload)
        self.channel.reset()
        if self.search == "sequential":
            return self._run_sequential(payload, framed, rng)
        return self._run_bisect(payload, framed, rng)

    def open_transmission(
        self, payload: np.ndarray, rng: np.random.Generator
    ) -> PacketTransmission:
        """Start a pausable per-packet transmission (used by the transport).

        Unlike :meth:`run`, this does *not* reset the channel: the caller
        owns the channel lifecycle because many transmissions may share one
        channel concurrently (the link transport resets it once per
        simulation).
        """
        return PacketTransmission(self, np.asarray(payload, dtype=np.uint8), rng)

    # -- sequential: the on-line receiver ------------------------------------
    def _run_sequential(
        self, payload: np.ndarray, framed: np.ndarray, rng: np.random.Generator
    ) -> TrialResult:
        transmission = PacketTransmission(self, payload, rng)
        while True:
            block, received = transmission.send_next_block()
            if transmission.deliver(block, received):
                return self._transmission_result(transmission, success=True)
            if transmission.exhausted:
                # The budget ran out; if the symbol threshold never allowed
                # an attempt, decode once so the trial still reports a best
                # guess.
                transmission.best_effort_decode()
                return self._transmission_result(transmission, success=False)

    def _transmission_result(
        self, transmission: PacketTransmission, success: bool
    ) -> TrialResult:
        decoded_payload = transmission.decoded_payload()
        return TrialResult(
            success=success,
            payload_correct=bool(np.array_equal(decoded_payload, transmission.payload)),
            symbols_sent=transmission.symbols_sent,
            payload_bits=self._credited_bits(),
            decode_attempts=transmission.decode_attempts,
            candidates_explored=transmission.work,
            decoded_payload=decoded_payload,
        )

    # -- bisect: lazy transmission plus galloping + binary search --------------
    def _run_bisect(
        self, payload: np.ndarray, framed: np.ndarray, rng: np.random.Generator
    ) -> TrialResult:
        blocks: list[SubpassBlock] = []
        received: list[np.ndarray] = []
        boundaries: list[int] = []
        stream = self.encoder.symbol_stream(framed)

        def ensure_symbols(target: int) -> None:
            """Transmit further subpasses until ``target`` symbols are on record."""
            while (not boundaries or boundaries[-1] < target) and (
                not boundaries or boundaries[-1] < self.max_symbols
            ):
                block = next(stream)
                out = self.channel.transmit(block.values, rng)
                blocks.append(block)
                received.append(out)
                boundaries.append((boundaries[-1] if boundaries else 0) + block.n_symbols)

        decoder = self.decoder_factory(self.encoder)
        shared = RatelessReceiver(
            decoder, self.framer, self.termination, true_framed_bits=framed
        )

        def attempt(boundary_index: int, force: bool = False) -> bool:
            if not force and boundaries[boundary_index] < shared.min_decode_symbols:
                return False
            observations = ReceivedObservations(self.framer.n_segments)
            observations = observations.truncated(
                boundaries[boundary_index], blocks, received
            )
            result = decoder.decode(self.framer.framed_bits, observations)
            shared.decode_attempts += 1
            shared.candidates_explored += result.candidates_explored
            shared.last_result = result
            if self.termination == "genie":
                return bool(np.array_equal(result.message_bits, framed))
            return self.framer.check(result.message_bits)

        # Galloping phase: start from roughly one pass worth of symbols and
        # double until a decode succeeds (or the budget runs out).  This keeps
        # the expensive many-observation decode attempts confined to a factor
        # of two around the true stopping point.
        target = self.framer.n_segments
        first_success: int | None = None
        last_failure = -1
        while True:
            ensure_symbols(min(target, self.max_symbols))
            index = len(boundaries) - 1
            if attempt(index):
                first_success = index
                break
            last_failure = index
            if boundaries[-1] >= self.max_symbols:
                if shared.last_result is None:
                    attempt(len(boundaries) - 1, force=True)
                return self._result(shared, payload, boundaries[-1], success=False)
            target = min(2 * boundaries[-1], self.max_symbols)

        # Binary search between the last known failure and the first success.
        lo, hi = last_failure + 1, first_success
        while lo < hi:
            mid = (lo + hi) // 2
            if attempt(mid):
                hi = mid
            else:
                lo = mid + 1
        # Guard against non-monotone flukes: the reported boundary must decode.
        if not attempt(lo):
            while lo < first_success and not attempt(lo):
                lo += 1
            attempt(lo)
        return self._result(shared, payload, boundaries[lo], success=True)

    # ----------------------------------------------------------------------
    def _result(
        self,
        receiver: RatelessReceiver,
        payload: np.ndarray,
        symbols_sent: int,
        success: bool,
    ) -> TrialResult:
        # Both search strategies guarantee at least one decode before
        # reporting; decoded_payload() raises loudly if that ever regresses
        # (the bisect receiver's own observation store stays empty, so a
        # silent fallback decode here would use the wrong data).
        decoded_payload = receiver.decoded_payload()
        return TrialResult(
            success=success,
            payload_correct=bool(np.array_equal(decoded_payload, payload)),
            symbols_sent=symbols_sent,
            payload_bits=self._credited_bits(),
            decode_attempts=receiver.decode_attempts,
            candidates_explored=receiver.candidates_explored,
            decoded_payload=decoded_payload,
        )
