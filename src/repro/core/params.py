"""Parameter bundle describing one spinal code.

The paper's code has a small number of parameters: the segment size ``k``
(bits hashed per spine step), the constellation density ``c`` (bits per I/Q
dimension), the hash-family seed shared by sender and receiver, and the
choice of constellation mapping.  Figure 2 uses ``k = 8``, ``c = 10`` with
the linear map; the decoder adds the beam width ``B`` which is *not* part of
the code itself (any receiver beam width can decode any spinal code), so it
lives on the decoder, not here.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.constellation import Constellation, make_constellation
from repro.core.hashing import SaltedHashFamily

__all__ = ["SpinalParams"]


@dataclass(frozen=True)
class SpinalParams:
    """Immutable description of a spinal code.

    Attributes
    ----------
    k:
        Message segment size in bits (the paper expects a small constant,
        ``<= 8`` in practice; decoder cost grows as ``2^k``).
    c:
        Bits per constellation dimension; each transmitted symbol encodes
        ``2c`` pseudo-random bits.  Ignored when ``bit_mode`` is true.
    seed:
        Hash-family index shared by encoder and decoder.
    constellation:
        One of ``"linear"`` (Eq. (3)), ``"offset-linear"``,
        ``"truncated-gaussian"``.
    average_power:
        Average transmitted energy per complex symbol.  Kept at 1.0 so that
        SNR is simply the reciprocal of the channel noise energy.
    bit_mode:
        When true the encoder emits one coded *bit* per spine value per pass
        (the paper's binary-channel variant, evaluated over a BSC) instead of
        an I/Q symbol.
    """

    k: int = 8
    c: int = 10
    seed: int = 0x5EEDC0DE
    constellation: str = "linear"
    average_power: float = 1.0
    bit_mode: bool = False

    def __post_init__(self) -> None:
        if not 1 <= self.k <= 16:
            raise ValueError(f"k must be in [1, 16], got {self.k}")
        if not self.bit_mode and not 2 <= self.c <= 16:
            raise ValueError(f"c must be in [2, 16], got {self.c}")
        if self.average_power <= 0:
            raise ValueError(f"average_power must be positive, got {self.average_power}")

    # -- derived quantities --------------------------------------------------
    @property
    def coded_bits_per_symbol(self) -> int:
        """Pseudo-random bits consumed per channel use (2c, or 1 in bit mode)."""
        return 1 if self.bit_mode else 2 * self.c

    def n_segments(self, n_message_bits: int) -> int:
        """Number of spine values for a message of ``n_message_bits`` bits."""
        if n_message_bits <= 0:
            raise ValueError(f"message length must be positive, got {n_message_bits}")
        if n_message_bits % self.k != 0:
            raise ValueError(
                f"message length {n_message_bits} is not a multiple of k={self.k}; "
                "use repro.core.framing.Framer to pad"
            )
        return n_message_bits // self.k

    def max_rate_per_pass(self) -> float:
        """Maximum achievable rate without puncturing, in bits per channel use.

        Decoding after a single un-punctured pass conveys ``k`` bits per
        symbol (Section 3.1); puncturing can exceed this.
        """
        return float(self.k)

    # -- factories -------------------------------------------------------------
    def make_hash_family(self) -> SaltedHashFamily:
        """Instantiate the shared hash family ``h`` for these parameters."""
        return SaltedHashFamily(seed=self.seed, k=self.k)

    def make_constellation(self) -> Constellation:
        """Instantiate the constellation mapping function ``f``."""
        return make_constellation(self.constellation, self.c, self.average_power)

    def with_(self, **changes) -> "SpinalParams":
        """Return a copy with the given fields replaced (sweep convenience)."""
        return replace(self, **changes)
