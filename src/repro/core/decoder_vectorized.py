"""Vectorized batch decoding engine: whole-beam array ops, batched sessions.

This module is the third generation of the practical decoder:

* :class:`~repro.core.decoder_bubble.BubbleDecoder` — the from-scratch
  reference (one vectorised expansion per level, restarts every attempt);
* :class:`~repro.core.decoder_incremental.IncrementalBubbleDecoder` — PR 1's
  stateful engine (resumes from cached beams, caches cost-matrix entries);
* :class:`VectorizedBubbleDecoder` (here) — same caching contract, but the
  per-attempt bookkeeping is restructured so an attempt touches only arrays
  that actually changed:

  - **grow-in-place cost buffers**: each level owns one C-contiguous
    ``(n_children, capacity)`` matrix; a new observation appends a column
    instead of reallocating and copying the whole matrix (the incremental
    engine pays a full copy per level per attempt);
  - **cached row sums**: a level whose expansion and observation set are
    unchanged reuses its summed branch costs, collapsing the level to one
    broadcast add plus one ``argpartition`` — O(beam) instead of
    O(beam x observations);
  - **O(1) change detection**: :meth:`ReceivedObservations.version_at`
    replaces per-attempt column comparisons for the common append-only case;
  - **lazy sort orders**: the sorted-state index used to re-match rows after
    beam drift is built only when a drift actually happens;
  - **vectorized backtracking**: the winning path is recovered with
    whole-beam gathers per level rather than a scalar parent walk.

The results contract is unchanged and exact: for any sequence of observation
sets, ``decode`` returns the same ``message_bits`` and ``path_cost`` (to the
last ulp, same tie-breaks) as a fresh :class:`BubbleDecoder`, which the
randomized differential suite in ``tests/test_decoder_vectorized.py`` locks
down.  ``candidates_explored`` keeps the incremental engine's semantics: the
cost work actually performed in this attempt, in units of one full tree-node
evaluation.

:class:`BatchDecoder` is the batch front: it decodes *many* concurrent
sessions (all users of a MAC cell, all hops of a relay chain, a worker's
whole trial batch) per call, stacking every session's beam into single hash
/ constellation / distance kernels so the per-session numpy dispatch
overhead is amortised across the batch.  Per-session results are bit-exact
with :class:`BubbleDecoder` run one session at a time.

An optional numba ``@njit`` tier (enable with ``use_njit=True`` or
``REPRO_NJIT=1``) fuses the hash-to-distance pipeline of the hot column
kernel; it is used only when numba imports, falls back to the pure-numpy
path silently otherwise, and is bit-exact where active (integer hashing is
exact arithmetic; the float pipeline performs the identical operation
sequence without contraction).
"""

from __future__ import annotations

import os

import numpy as np

from repro.core.decoder_bubble import BubbleDecoder, DecodeResult
from repro.core.decoder_incremental import IncrementalBubbleDecoder
from repro.core.encoder import ReceivedObservations, SpinalEncoder
from repro.core.hashing import hash_spine_keyed, symbol_word_keyed
from repro.obs.telemetry import current as current_telemetry

__all__ = [
    "VectorizedBubbleDecoder",
    "BatchDecoder",
    "DECODER_ENGINES",
    "make_decoder_factory",
    "njit_available",
]

NJIT_ENV = "REPRO_NJIT"


def njit_available() -> bool:
    """Whether the optional numba tier can be used in this interpreter."""
    try:
        import numba  # noqa: F401
    except Exception:
        return False
    return True


def _njit_requested(use_njit: bool | None) -> bool:
    if use_njit is not None:
        return bool(use_njit)
    return os.environ.get(NJIT_ENV, "").lower() in ("1", "true", "yes")


# ---------------------------------------------------------------------------
# Optional numba kernels.  Built lazily (and at most once per process); the
# pure-numpy path below is the default and the only path exercised when numba
# is not installed.
_NJIT_KERNELS: dict | None = None


def _build_njit_kernels() -> dict | None:
    global _NJIT_KERNELS
    if _NJIT_KERNELS is not None:
        return _NJIT_KERNELS or None
    if not njit_available():
        _NJIT_KERNELS = {}
        return None
    import numba

    from repro.core import hashing as _h

    GOLDEN = _h._GOLDEN
    MIX1 = _h._MIX1
    MIX2 = _h._MIX2
    SPINE_DOMAIN = _h._SPINE_DOMAIN
    SYMBOL_DOMAIN = _h._SYMBOL_DOMAIN
    PASS_STRIDE = _h._PASS_STRIDE
    u64 = np.uint64

    @numba.njit(inline="always")
    def _mix(z):
        z = (z ^ (z >> u64(30))) * MIX1
        z = (z ^ (z >> u64(27))) * MIX2
        return z ^ (z >> u64(31))

    @numba.njit
    def expand(states, width, key1):
        """hash_spine of every state against every k-bit segment, flat."""
        n = states.size
        out = np.empty(n * width, dtype=np.uint64)
        for i in range(n):
            s = states[i]
            a = _mix(s ^ key1)
            tail = s * MIX1
            for m in range(width):
                z = _mix(a ^ (u64(m) * GOLDEN) ^ SPINE_DOMAIN)
                out[i * width + m] = _mix(z ^ tail)
        return out

    @numba.njit
    def columns_symbol(
        flat_states, pass_indices, recv_re, recv_im, key2, levels, c_bits, shift, out, col0
    ):
        """Fused symbol-mode column kernel: hash -> constellation -> distance.

        Writes squared Euclidean distances into ``out[:, col0 + j]`` for each
        observation ``j`` — the same operation sequence as
        ``SpinalEncoder.branch_cost_columns`` (salted PRF, axis-level lookup,
        componentwise difference, square-and-add), element for element.
        """
        n = flat_states.size
        n_obs = pass_indices.size
        mask = u64((1 << c_bits) - 1)
        for i in range(n):
            s = flat_states[i]
            pre = s ^ key2
            tail = (s * MIX2) ^ SYMBOL_DOMAIN
            for j in range(n_obs):
                z = _mix(pre ^ (u64(pass_indices[j]) * PASS_STRIDE))
                w = _mix(z ^ tail) >> shift
                dre = levels[w >> u64(c_bits)] - recv_re[j]
                dim = levels[w & mask] - recv_im[j]
                out[i, col0 + j] = dre * dre + dim * dim

    _NJIT_KERNELS = {"expand": expand, "columns_symbol": columns_symbol}
    return _NJIT_KERNELS


# ---------------------------------------------------------------------------
class _LevelCache:
    """Persistent parent-keyed cost cache for one tree level.

    Instead of caching only the last attempt's expansion, the level keeps
    every parent block it has recently evaluated: block ``b`` holds the
    ``2^k`` children of ``parent_keys[b]`` as rows
    ``[b * width, (b + 1) * width)`` of the grow-in-place arrays.  An
    attempt then reduces to a parent *lookup* — hits reuse their block's
    child states, cost entries, and cached row sums in place, with no
    per-attempt copying no matter how the beam drifted; only genuinely new
    parents and genuinely new observation columns are ever computed.

    ``costs`` grows in both directions (rows when blocks append, columns
    when observations arrive).  Column growth copies every retained row, so
    :meth:`compact_grow` doubles as the eviction point: blocks whose
    ``last_used`` stamp is cold get dropped there, keeping both the copy and
    the resident matrix bounded no matter how long the transmission runs.
    ``sums`` caches the pairwise row sums of ``costs[:, :n_obs]``; a row's
    sum depends only on that row, so block reuse transfers sums for free.
    The last attempt's pruning outputs (``kept_idx`` .. ``segments``) are
    kept for resume and backtracking.
    """

    __slots__ = (
        "width", "n_blocks", "parent_keys", "col_filled", "last_used",
        "states", "costs",
        "sums", "n_obs", "obs_pass_indices", "obs_values", "obs_version",
        "_sorted_keys", "_sort_order",
        "kept_idx", "beam_states", "beam_costs", "parents", "segments",
    )

    #: Compaction keeps at most this many blocks (the hottest ones).
    KEEP_BLOCKS = 128
    #: Blocks idle for more than this many attempts are dropped on compaction.
    KEEP_ATTEMPTS = 8

    def __init__(self, width: int) -> None:
        self.width = width
        self.n_blocks = 0
        self.parent_keys = np.empty(0, dtype=np.uint64)
        self.col_filled = np.empty(0, dtype=np.int64)
        self.last_used = np.empty(0, dtype=np.int64)
        self.states = np.empty(0, dtype=np.uint64)
        self.costs = np.empty((0, 0), dtype=np.float64)
        self.sums = np.empty(0, dtype=np.float64)
        self.n_obs = 0
        self.obs_pass_indices = np.empty(0, dtype=np.int64)
        self.obs_values = np.empty(0, dtype=np.float64)
        self.obs_version = -1
        self._sorted_keys: np.ndarray | None = None
        self._sort_order: np.ndarray | None = None
        self.kept_idx: np.ndarray | None = None
        self.beam_states: np.ndarray | None = None
        self.beam_costs: np.ndarray | None = None
        self.parents: np.ndarray | None = None
        self.segments: np.ndarray | None = None

    @property
    def n_rows(self) -> int:
        return self.n_blocks * self.width

    def set_obs(
        self, pass_indices: np.ndarray, values: np.ndarray, version: int
    ) -> None:
        self.obs_pass_indices = pass_indices
        self.obs_values = values
        self.n_obs = pass_indices.size
        self.obs_version = version

    def lookup(self, parents: np.ndarray) -> np.ndarray:
        """Block index per parent state, ``-1`` where the parent is unknown."""
        if self.n_blocks == 0:
            # A cache with no blocks has nothing to probe; returning early
            # also guards the np.minimum clamp below, which would wrap to
            # index -1 on an empty sorted array.
            return np.full(parents.size, -1, dtype=np.int64)
        if self._sorted_keys is None:
            self._sort_order = np.argsort(self.parent_keys, kind="stable")
            self._sorted_keys = self.parent_keys[self._sort_order]
        idx = np.searchsorted(self._sorted_keys, parents)
        idx = np.minimum(idx, self._sorted_keys.size - 1)
        hit = self._sorted_keys[idx] == parents
        return np.where(hit, self._sort_order[idx], np.int64(-1))

    def needs_compaction(self, n_cols: int) -> bool:
        """True when column capacity must grow or the block set got cold-heavy."""
        return (
            n_cols > self.costs.shape[1] or self.n_blocks > 3 * self.KEEP_BLOCKS
        )

    def compact_grow(self, n_cols: int, now: int) -> None:
        """Grow column capacity, evicting cold blocks in the same copy.

        Reallocation copies every retained row, so it doubles as the
        eviction point: blocks that were not hit within the last
        ``KEEP_ATTEMPTS`` attempts are dropped (their parents simply
        recompute on the next miss), and at most ``KEEP_BLOCKS`` survive.
        That bounds the copy and the resident matrix no matter how long the
        transmission runs.  Cache contents never influence decode outputs —
        only how much work the next attempt reuses — so eviction choices are
        a pure performance policy.
        """
        n = self.n_blocks
        keep = np.nonzero(self.last_used[:n] >= now - self.KEEP_ATTEMPTS)[0]
        if keep.size > self.KEEP_BLOCKS:
            hottest = np.argsort(self.last_used[keep], kind="stable")
            keep = keep[np.sort(hottest[-self.KEEP_BLOCKS :])]
        width = self.width
        new_cap = max(n_cols, 2 * self.costs.shape[1], 16)
        n_copy = min(self.n_obs, self.costs.shape[1])
        rows = (
            keep[:, None] * width + np.arange(width, dtype=np.int64)
        ).reshape(-1)
        # Allocate with row headroom so the appends that follow a compaction
        # don't immediately trigger a full-copy regrowth.
        row_cap = max(2 * rows.size, 8 * width)
        states = np.empty(row_cap, dtype=np.uint64)
        states[: rows.size] = self.states[rows]
        self.states = states
        costs = np.empty((row_cap, new_cap), dtype=np.float64)
        costs[: rows.size, :n_copy] = self.costs[rows, :n_copy]
        self.costs = costs
        sums = np.empty(row_cap, dtype=np.float64)
        sums[: rows.size] = self.sums[rows]
        self.sums = sums
        self.parent_keys = np.ascontiguousarray(self.parent_keys[keep])
        self.col_filled = np.ascontiguousarray(self.col_filled[keep])
        self.last_used = np.ascontiguousarray(self.last_used[keep])
        self.n_blocks = keep.size
        self._sorted_keys = None
        self._sort_order = None

    def append_blocks(self, keys: np.ndarray, children: np.ndarray) -> int:
        """Append one block per key; return the first new block index."""
        b0 = self.n_blocks
        r0 = b0 * self.width
        r1 = r0 + children.size
        if r1 > self.states.size:
            new_cap = max(r1, 2 * self.states.size, 4 * self.width)
            states = np.empty(new_cap, dtype=np.uint64)
            states[:r0] = self.states[:r0]
            self.states = states
            costs = np.empty((new_cap, self.costs.shape[1]), dtype=np.float64)
            costs[:r0, : self.n_obs] = self.costs[:r0, : self.n_obs]
            self.costs = costs
            sums = np.empty(new_cap, dtype=np.float64)
            sums[:r0] = self.sums[:r0]
            self.sums = sums
        self.states[r0:r1] = children
        self.parent_keys = np.concatenate([self.parent_keys, keys])
        self.col_filled = np.concatenate(
            [self.col_filled, np.zeros(keys.size, dtype=np.int64)]
        )
        self.last_used = np.concatenate(
            [self.last_used, np.zeros(keys.size, dtype=np.int64)]
        )
        self.n_blocks = b0 + keys.size
        self._sorted_keys = None
        self._sort_order = None
        return b0


class VectorizedBubbleDecoder:
    """Whole-beam array-op decoder; stateful drop-in for :class:`BubbleDecoder`.

    Constructor signature and the :meth:`decode` contract match
    :class:`BubbleDecoder` exactly (plus ``use_njit`` for the optional numba
    tier); like :class:`IncrementalBubbleDecoder`, consecutive calls share
    per-level caches, so one instance serves one transmission — call
    :meth:`reset` (or decode a different message length) to start over.
    """

    def __init__(
        self,
        encoder: SpinalEncoder,
        beam_width: int = 16,
        max_unpruned_width: int | None = None,
        use_njit: bool | None = None,
    ) -> None:
        if beam_width < 1:
            raise ValueError(f"beam_width must be at least 1, got {beam_width}")
        self.encoder = encoder
        self.beam_width = beam_width
        k = encoder.params.k
        default_cap = beam_width * (1 << k)
        self.max_unpruned_width = (
            default_cap if max_unpruned_width is None else max_unpruned_width
        )
        if self.max_unpruned_width < beam_width:
            raise ValueError("max_unpruned_width must be at least beam_width")
        self._all_segments = np.arange(1 << k, dtype=np.uint64)
        self._width = 1 << k
        self._key1 = encoder.hash_family._key1
        self._key2 = encoder.hash_family._key2
        #: The numba tier is active only when requested *and* importable —
        #: a request with numba absent falls back to pure numpy silently.
        self.njit_active = False
        self._njit = None
        if _njit_requested(use_njit):
            kernels = _build_njit_kernels()
            if kernels is not None:
                self._njit = kernels
                self.njit_active = True
        if encoder.params.bit_mode:
            self._axis_levels = None
        else:
            self._axis_levels = np.ascontiguousarray(
                encoder.constellation.axis_levels(), dtype=np.float64
            )
        self.candidates_explored_total = 0
        self.decode_calls = 0
        self._tel = current_telemetry()
        self.reset()

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop all cached state (the cumulative work counters survive)."""
        self._levels: list[_LevelCache] = []
        self._n_segments: int | None = None
        self._last_result: DecodeResult | None = None
        self._last_store: ReceivedObservations | None = None

    # ------------------------------------------------------------------
    def _expand(self, states: np.ndarray) -> np.ndarray:
        if self.njit_active:
            return self._njit["expand"](
                np.ascontiguousarray(states, dtype=np.uint64), self._width, self._key1
            )
        children = hash_spine_keyed(
            states[:, None], self._all_segments[None, :], self._key1
        )
        return children.reshape(-1)

    def _fill_rows(
        self,
        cache: _LevelCache,
        rows: np.ndarray,
        pass_indices: np.ndarray,
        values: np.ndarray,
        col0: int,
    ) -> None:
        """Write branch-cost columns ``[col0, col0 + len(pass_indices))`` of
        the given (possibly scattered) cost-matrix rows, then refresh their
        cached row sums over all ``[0, col0 + len(pass_indices))`` columns."""
        # Consecutive rows (the common case: freshly appended blocks) go
        # through plain slice views — no fancy-index gather/scatter copies.
        # A strided row-prefix view sums bit-identically to a compacted
        # copy: each row's prefix is contiguous, and numpy's pairwise
        # reduction over axis=1 works row by row.
        r0, r1 = int(rows[0]), int(rows[-1]) + 1
        contiguous = r1 - r0 == rows.size
        states = cache.states[r0:r1] if contiguous else cache.states[rows]
        n_new = pass_indices.size
        n_obs = col0 + n_new
        if (
            self.njit_active
            and not self.encoder.params.bit_mode
            and np.iscomplexobj(values)
        ):
            params = self.encoder.params
            block = np.empty((rows.size, n_new), dtype=np.float64)
            self._njit["columns_symbol"](
                np.ascontiguousarray(states, dtype=np.uint64),
                np.ascontiguousarray(pass_indices, dtype=np.int64),
                np.ascontiguousarray(values.real, dtype=np.float64),
                np.ascontiguousarray(values.imag, dtype=np.float64),
                self._key2,
                self._axis_levels,
                params.c,
                np.uint64(64 - 2 * params.c),
                block,
                0,
            )
        else:
            block = self._numpy_columns(states, pass_indices, values)
        # When the fill starts at column 0 the freshly computed block *is*
        # the whole summed prefix, so sum it directly instead of re-reading
        # the rows back out of the big matrix (same per-row pairwise
        # reduction, so the floats are identical).
        if contiguous:
            cache.costs[r0:r1, col0:n_obs] = block
            if col0 == 0:
                cache.sums[r0:r1] = block.sum(axis=1)
            else:
                cache.sums[r0:r1] = cache.costs[r0:r1, :n_obs].sum(axis=1)
        else:
            cache.costs[rows, col0:n_obs] = block
            if col0 == 0:
                cache.sums[rows] = block.sum(axis=1)
            else:
                cache.sums[rows] = cache.costs[rows, :n_obs].sum(axis=1)

    def _numpy_columns(
        self, states: np.ndarray, pass_indices: np.ndarray, values: np.ndarray
    ) -> np.ndarray:
        """``SpinalEncoder.branch_cost_columns``, minus the per-call overhead.

        Performs the identical arithmetic (keyed symbol PRF, constellation
        map, squared distance / Hamming mismatch) but with the family key
        cached at construction and the constellation map replaced by an
        exact table lookup into the precomputed axis levels — the same
        float64 per index, so the entries are bit-identical.
        """
        params = self.encoder.params
        if params.bit_mode:
            bits = symbol_word_keyed(
                states[:, None], pass_indices[None, :], self._key2
            ) >> np.uint64(63)
            return np.ascontiguousarray(
                bits != values[None, :].astype(np.uint64), dtype=np.float64
            )
        word = symbol_word_keyed(
            states[:, None], pass_indices[None, :], self._key2
        ) >> np.uint64(64 - 2 * params.c)
        levels = self._axis_levels
        i_re = levels[(word >> np.uint64(params.c)).astype(np.int64)]
        i_im = levels[(word & np.uint64((1 << params.c) - 1)).astype(np.int64)]
        received = values[None, :].astype(np.complex128)
        d_re = i_re - received.real
        d_im = i_im - received.imag
        return d_re**2 + d_im**2

    @staticmethod
    def _column_overlap(
        cache: _LevelCache, pass_indices: np.ndarray, values: np.ndarray
    ) -> int:
        """Length of the shared observation prefix between cache and now."""
        m = min(cache.n_obs, pass_indices.size)
        if m == 0:
            return 0
        match = (pass_indices[:m] == cache.obs_pass_indices[:m]) & (
            values[:m] == cache.obs_values[:m]
        )
        if match.all():
            return m
        return int(np.argmin(match))

    def _level_overlap(
        self, cache: _LevelCache, observations: ReceivedObservations, position: int
    ) -> tuple[int, int]:
        """Return (shared column prefix, current column count) at a position.

        The fast path — same store object, same per-position version — needs
        no array work at all; otherwise the columns are compared.
        """
        version = observations.version_at(position)
        if (
            observations is self._last_store
            and cache.obs_version == version
        ):
            return cache.n_obs, cache.n_obs
        pass_indices, values = observations.for_position(position)
        common = self._column_overlap(cache, pass_indices, values)
        if common == cache.n_obs == pass_indices.size:
            # Identical columns reached through a different store (the
            # bisection strategy rebuilds truncated stores): re-stamp so the
            # next attempt takes the O(1) path.
            cache.obs_version = version
            cache.obs_pass_indices = pass_indices
            cache.obs_values = values
        return common, pass_indices.size

    def _resume_level(self, observations: ReceivedObservations, n_segments: int) -> int:
        """First tree level whose cached state the observations invalidate."""
        if len(self._levels) != n_segments:
            return 0
        for position in range(n_segments):
            cache = self._levels[position]
            common, n_now = self._level_overlap(cache, observations, position)
            if not (common == cache.n_obs == n_now):
                return position
        return n_segments

    # ------------------------------------------------------------------
    def decode(
        self, n_message_bits: int, observations: ReceivedObservations
    ) -> DecodeResult:
        """Decode, reusing whatever previous attempts already established.

        Semantics (message bits, path cost, beam trace) are identical to
        ``BubbleDecoder.decode`` on the same observations;
        ``candidates_explored`` counts only the cost work performed in *this*
        attempt (see :class:`IncrementalBubbleDecoder` for the unit).
        """
        params = self.encoder.params
        k = params.k
        n_segments = params.n_segments(n_message_bits)
        if observations.n_segments != n_segments:
            raise ValueError(
                f"observations were sized for {observations.n_segments} segments "
                f"but the message has {n_segments}"
            )
        if self._n_segments is not None and self._n_segments != n_segments:
            self.reset()
        self._n_segments = n_segments
        self.decode_calls += 1
        tel = self._tel
        t0 = tel.now_s() if tel.enabled else 0.0

        resume = self._resume_level(observations, n_segments)
        if resume == n_segments and self._last_result is not None:
            result = DecodeResult(
                message_bits=self._last_result.message_bits,
                path_cost=self._last_result.path_cost,
                candidates_explored=0,
                beam_trace=self._last_result.beam_trace,
            )
            self._last_result = result
            self._last_store = observations
            if tel.enabled:
                tel.counter("decoder.decodes")
                tel.counter("decoder.resume_shortcuts")
                tel.observe("decoder.decode_s", tel.now_s() - t0)
            return result

        if resume == 0:
            states = np.array(
                [self.encoder.hash_family.initial_state], dtype=np.uint64
            )
            costs = np.zeros(1, dtype=np.float64)
        else:
            states = self._levels[resume - 1].beam_states
            costs = self._levels[resume - 1].beam_costs

        width = self._width
        explored = 0
        cache_hits = 0
        cache_misses = 0
        evicted = 0
        for position in range(resume, n_segments):
            cache = self._levels[position] if position < len(self._levels) else None
            pass_indices, values = observations.for_position(position)
            n_obs = pass_indices.size
            version = observations.version_at(position)
            entries = 0
            hashed = 0

            if cache is not None and cache.n_obs:
                common = min(
                    self._column_overlap(cache, pass_indices, values), n_obs
                )
                if common < cache.n_obs:
                    # The shared observation prefix shrank or diverged (a
                    # bisection replay): every cached cost column beyond it
                    # is stale in every block, so restart the level rather
                    # than patch blocks column-wise.
                    cache = None
            if cache is None:
                cache = _LevelCache(width)
            if cache.needs_compaction(n_obs):
                blocks_before = cache.n_blocks
                cache.compact_grow(n_obs, self.decode_calls)
                evicted += blocks_before - cache.n_blocks

            blocks = cache.lookup(states)
            miss = blocks < 0
            if tel.enabled:
                n_miss = int(np.count_nonzero(miss))
                cache_misses += n_miss
                cache_hits += states.size - n_miss
            if miss.any():
                miss_parents = states[miss]
                children = self._expand(miss_parents)
                hashed += children.size
                b0 = cache.append_blocks(miss_parents, children)
                blocks[miss] = np.arange(b0, cache.n_blocks, dtype=np.int64)
            cache.last_used[blocks] = self.decode_calls
            cache.set_obs(pass_indices, values, version)

            if n_obs:
                # Lazily fill cost columns for exactly the blocks this beam
                # touches: newly appended blocks need all columns, retained
                # blocks only the observations that arrived since they were
                # last active — dormant blocks stay stale until re-hit.
                active = np.unique(blocks)
                stale = active[cache.col_filled[active] < n_obs]
                if stale.size:
                    offsets = np.arange(width, dtype=np.int64)
                    for f in np.unique(cache.col_filled[stale]):
                        f = int(f)
                        sel = stale[cache.col_filled[stale] == f]
                        rows = (sel[:, None] * width + offsets).reshape(-1)
                        self._fill_rows(
                            cache, rows, pass_indices[f:], values[f:], f
                        )
                        entries += rows.size * (n_obs - f)
                    cache.col_filled[stale] = n_obs

            # Work accounting: identical semantics to the incremental engine
            # — fresh matrix entries pro-rata per full node evaluation,
            # expansion hashing charged at observation-free levels.
            if n_obs:
                explored += -(-entries // n_obs)
            else:
                explored += hashed

            # Cumulative costs and pruning — the same expressions as
            # BubbleDecoder so ties and ulps agree.  Row sums depend only on
            # their own row (numpy's pairwise summation is per contiguous
            # row), so gathering cached per-block sums reproduces the exact
            # floats a fresh full-matrix sum would produce.
            n_rows = cache.n_rows
            if n_obs:
                branch_blocks = cache.sums[:n_rows].reshape(-1, width)[blocks]
            else:
                branch_blocks = np.zeros(
                    (states.size, width), dtype=np.float64
                )
            child_costs = costs[:, None] + branch_blocks
            flat_costs = child_costs.reshape(-1)
            if n_obs > 0:
                keep = min(self.beam_width, flat_costs.size)
            else:
                keep = min(self.max_unpruned_width, flat_costs.size)
            if keep < flat_costs.size:
                kept_idx = np.argpartition(flat_costs, keep - 1)[:keep]
            else:
                kept_idx = np.arange(flat_costs.size)

            kept_parents = kept_idx // width
            kept_segments = (kept_idx % width).astype(np.uint64)
            cache.kept_idx = kept_idx
            cache.beam_states = cache.states[:n_rows].reshape(-1, width)[
                blocks[kept_parents], kept_segments
            ]
            cache.beam_costs = flat_costs[kept_idx]
            cache.parents = kept_parents
            cache.segments = kept_segments
            if position < len(self._levels):
                self._levels[position] = cache
            else:
                self._levels.append(cache)
            states = cache.beam_states
            costs = cache.beam_costs

        # Vectorized backtracking: recover every survivor's segment path with
        # one gather per level, then select the best leaf's column.
        last = self._levels[n_segments - 1]
        nodes = np.arange(last.beam_costs.size)
        paths = np.empty((n_segments, nodes.size), dtype=np.uint64)
        for position in range(n_segments - 1, -1, -1):
            level = self._levels[position]
            paths[position] = level.segments[nodes]
            nodes = level.parents[nodes]
        best = int(np.argmin(last.beam_costs))
        segments = paths[:, best]

        message_bits = self.encoder.spine_generator.segments_to_bits(segments)
        self.candidates_explored_total += explored
        self._last_store = observations
        result = DecodeResult(
            message_bits=message_bits,
            path_cost=float(last.beam_costs[best]),
            candidates_explored=explored,
            beam_trace=tuple(int(level.kept_idx.size) for level in self._levels),
        )
        self._last_result = result
        if tel.enabled:
            tel.counter("decoder.decodes")
            tel.counter("decoder.levels_expanded", n_segments - resume)
            tel.counter("decoder.cache_hits", cache_hits)
            tel.counter("decoder.cache_misses", cache_misses)
            if evicted:
                tel.counter("decoder.cache_evictions", evicted)
            tel.observe("decoder.decode_s", tel.now_s() - t0)
        return result


# ---------------------------------------------------------------------------
#: Cap on elements per stacked kernel call.  Session chunks are sized so the
#: ``sessions x candidates x observations`` working set (8–16 bytes per
#: element across the hash/constellation/distance intermediates) stays
#: cache-resident; one giant stacked call spills L2 and runs slower than the
#: per-session spelling it replaces.
_MAX_STACK_ELEMENTS = 1 << 16


def _session_chunks(members: "list[int]", per_session: int, max_elements: int):
    """Split a same-shape session group into cache-sized chunks."""
    step = max(1, max_elements // max(per_session, 1))
    for start in range(0, len(members), step):
        yield members[start : start + step]


def _stack_rows(arrays: "list[np.ndarray]") -> np.ndarray:
    """``np.stack`` for same-shape 1-D rows, minus its shape introspection.

    The batch kernels stack tens of small per-session rows thousands of
    times per decode, where ``np.stack``'s per-call bookkeeping (shape
    set-building, per-array ``expand_dims``) costs more than the copies.
    A preallocated fill produces the identical array.
    """
    first = arrays[0]
    out = np.empty((len(arrays),) + first.shape, dtype=first.dtype)
    for j, row in enumerate(arrays):
        out[j] = row
    return out


class BatchDecoder:
    """Decode many concurrent spinal sessions as stacked whole-beam array ops.

    All sessions must share the code *shape* — segment size ``k``, mode and
    constellation parameters — but may (and in the relay/cell scenarios do)
    use independent hash-family seeds: the expansion and symbol hashes take
    per-element key arrays (:func:`~repro.core.hashing.hash_spine_keyed`),
    so one kernel call covers every session.  Ragged per-session observation
    sets are handled by stacking the candidate x observation products into
    one flat kernel call and splitting afterwards; only the cheap per-session
    reductions (row sums, pruning) loop over sessions, which keeps them
    bit-exact with a per-session :class:`BubbleDecoder`.

    Use :meth:`decode_all` with one observation store per session; results
    are returned in session order and are bit-identical (``message_bits``,
    ``path_cost``, ``beam_trace``, ``candidates_explored``) to running the
    from-scratch reference on each session separately.  :meth:`decode_subset`
    decodes any subset of the registered sessions per call — the serve
    engine's ragged/late-joining admission path, where the in-flight
    membership changes tick by tick.
    """

    def __init__(
        self,
        encoders: "list[SpinalEncoder] | tuple[SpinalEncoder, ...]",
        beam_width: int = 16,
        max_unpruned_width: int | None = None,
        max_stack_elements: int | None = None,
    ) -> None:
        if not encoders:
            raise ValueError("BatchDecoder needs at least one session encoder")
        if beam_width < 1:
            raise ValueError(f"beam_width must be at least 1, got {beam_width}")
        if max_stack_elements is not None and max_stack_elements < 1:
            raise ValueError(
                f"max_stack_elements must be at least 1, got {max_stack_elements}"
            )
        first = encoders[0].params
        for encoder in encoders:
            if encoder.params.with_(seed=first.seed) != first:
                raise ValueError(
                    "all batched sessions must share the code shape (k, mode, "
                    "constellation); only hash seeds may differ"
                )
        self.encoders = list(encoders)
        self.beam_width = beam_width
        k = first.k
        default_cap = beam_width * (1 << k)
        self.max_unpruned_width = (
            default_cap if max_unpruned_width is None else max_unpruned_width
        )
        if self.max_unpruned_width < beam_width:
            raise ValueError("max_unpruned_width must be at least beam_width")
        self._k = k
        self._width = 1 << k
        self._all_segments = np.arange(self._width, dtype=np.uint64)
        self._key1s = np.array(
            [e.hash_family._key1 for e in self.encoders], dtype=np.uint64
        )
        self._key2s = np.array(
            [e.hash_family._key2 for e in self.encoders], dtype=np.uint64
        )
        self._bit_mode = first.bit_mode
        self._constellation = None if first.bit_mode else encoders[0].constellation
        #: Cap on elements per stacked kernel call (see module constant).  A
        #: per-instance knob so callers — and the serve engine's determinism
        #: tests — can prove chunking never changes decode outputs.
        self.max_stack_elements = (
            _MAX_STACK_ELEMENTS if max_stack_elements is None else int(max_stack_elements)
        )
        self._tel = current_telemetry()

    @property
    def n_sessions(self) -> int:
        return len(self.encoders)

    # ------------------------------------------------------------------
    def _expand_all(
        self, states_list: list[np.ndarray], key1s: np.ndarray
    ) -> list[np.ndarray]:
        """Expand every session's beam with grouped broadcast hash calls.

        Sessions whose beams are the same width (the common lock-step case)
        stack into one ``(sessions, states, segments)`` broadcast of the
        keyed expansion hash — no materialised repeat/tile index products,
        so the memory traffic is just the output array.  The hash is
        elementwise, so each session's slice equals its single-session
        expansion bit for bit.  ``key1s`` is aligned with ``states_list``
        (one expansion key per decoded session, which for a subset decode is
        a gather of the registered keys).
        """
        flat_list: list[np.ndarray] = [None] * len(states_list)  # type: ignore[list-item]
        groups: dict[int, list[int]] = {}
        for session, states in enumerate(states_list):
            groups.setdefault(states.size, []).append(session)
        for members in groups.values():
            per_session = states_list[members[0]].size * self._width
            for chunk in _session_chunks(members, per_session, self.max_stack_elements):
                states = _stack_rows([states_list[s] for s in chunk])
                keys = key1s[np.asarray(chunk)][:, None, None]
                children = hash_spine_keyed(
                    states[:, :, None], self._all_segments[None, None, :], keys
                )
                for j, session in enumerate(chunk):
                    flat_list[session] = children[j].reshape(-1)
        return flat_list

    def _branch_all(
        self,
        flat_list: list[np.ndarray],
        obs_list: list[tuple[np.ndarray, np.ndarray]],
        key2s: np.ndarray,
    ) -> list[np.ndarray | None]:
        """Summed branch costs per session from grouped broadcast kernels.

        Sessions whose candidate and observation counts agree (the common
        lock-step case) stack into one ``(sessions, candidates,
        observations)`` broadcast evaluation — keyed symbol hash,
        constellation map and distance run once per group with no
        materialised index products.  Each session's slice of the 3-D
        result is a C-contiguous ``(candidates, observations)`` matrix, so
        its row sums match the per-session
        ``branch_cost_columns(...).sum(axis=1)`` bit for bit.
        """
        branches: list[np.ndarray | None] = [None] * len(flat_list)
        groups: dict[tuple[int, int], list[int]] = {}
        for session, (flat, (pass_indices, _values)) in enumerate(
            zip(flat_list, obs_list)
        ):
            # Sessions with no observations yet at this position (a late
            # joiner whose first block landed elsewhere, or a degenerate
            # member with an empty store) contribute no branch costs: they
            # are left at None here and get an explicit zero-cost branch in
            # the reduction loop, exactly like the single-session engines.
            if pass_indices.size:
                groups.setdefault((flat.size, pass_indices.size), []).append(session)
        for (n_cand, n_obs), members in groups.items():
            for chunk in _session_chunks(
                members, n_cand * n_obs, self.max_stack_elements
            ):
                self._branch_chunk(chunk, flat_list, obs_list, branches, key2s)
        return branches

    def _branch_chunk(
        self,
        members: list[int],
        flat_list: list[np.ndarray],
        obs_list: list[tuple[np.ndarray, np.ndarray]],
        branches: "list[np.ndarray | None]",
        key2s: np.ndarray,
    ) -> None:
        cands = _stack_rows([flat_list[s] for s in members])
        passes = _stack_rows([obs_list[s][0] for s in members])
        received = _stack_rows([obs_list[s][1] for s in members])
        keys = key2s[np.asarray(members)][:, None, None]
        words = symbol_word_keyed(cands[:, :, None], passes[:, None, :], keys)
        if self._bit_mode:
            bits = words >> np.uint64(63)
            entries = np.ascontiguousarray(
                bits != received[:, None, :].astype(np.uint64), dtype=np.float64
            )
        else:
            bits_per_symbol = self._constellation.bits_per_symbol
            words >>= np.uint64(64 - bits_per_symbol)
            points = self._constellation.map_values(words.reshape(-1)).reshape(
                words.shape
            )
            diff = points - received[:, None, :].astype(np.complex128)
            entries = diff.real**2 + diff.imag**2
        for j, session in enumerate(members):
            branches[session] = entries[j].sum(axis=1)

    # ------------------------------------------------------------------
    def decode_all(
        self,
        n_message_bits: int,
        observations_list: "list[ReceivedObservations]",
    ) -> list[DecodeResult]:
        """Decode one message per session; bit-exact with per-session decodes."""
        if len(observations_list) != len(self.encoders):
            raise ValueError(
                f"got {len(observations_list)} observation stores for "
                f"{len(self.encoders)} sessions"
            )
        return self.decode_subset(
            n_message_bits, observations_list, range(len(self.encoders))
        )

    def decode_subset(
        self,
        n_message_bits: int,
        observations_list: "list[ReceivedObservations]",
        sessions: "list[int] | range",
    ) -> list[DecodeResult]:
        """Decode a ragged subset of the registered sessions in one batch.

        ``sessions`` names registered encoder indices; ``observations_list``
        is aligned with it (one store per listed session).  This is the
        serve engine's admission path: sessions join and leave the in-flight
        set tick by tick, so each flush decodes whichever members have a
        fresh block — without rebuilding the batch for every membership
        change.  Results come back in ``sessions`` order and are bit-exact
        with per-session decodes, independent of the subset's composition
        and of :attr:`max_stack_elements` chunking.
        """
        sessions = [int(s) for s in sessions]
        if len(observations_list) != len(sessions):
            raise ValueError(
                f"got {len(observations_list)} observation stores for "
                f"{len(sessions)} subset sessions"
            )
        if len(set(sessions)) != len(sessions):
            raise ValueError("subset sessions must be distinct")
        for s in sessions:
            if not 0 <= s < len(self.encoders):
                raise IndexError(
                    f"session index {s} out of range for {len(self.encoders)} "
                    "registered sessions"
                )
        if not sessions:
            return []
        tel = self._tel
        t0 = tel.now_s() if tel.enabled else 0.0
        encoders = [self.encoders[s] for s in sessions]
        index = np.asarray(sessions, dtype=np.int64)
        key1s = self._key1s[index]
        key2s = self._key2s[index]
        n_segments = encoders[0].params.n_segments(n_message_bits)
        for observations in observations_list:
            if observations.n_segments != n_segments:
                raise ValueError(
                    f"observations were sized for {observations.n_segments} "
                    f"segments but the message has {n_segments}"
                )

        n_sessions = len(encoders)
        states_list = [
            np.array([e.hash_family.initial_state], dtype=np.uint64)
            for e in encoders
        ]
        costs_list = [np.zeros(1, dtype=np.float64) for _ in range(n_sessions)]
        parent_history: list[list[np.ndarray]] = [[] for _ in range(n_sessions)]
        segment_history: list[list[np.ndarray]] = [[] for _ in range(n_sessions)]
        beam_traces: list[list[int]] = [[] for _ in range(n_sessions)]
        explored = [0] * n_sessions

        width = self._width
        for position in range(n_segments):
            flat_list = self._expand_all(states_list, key1s)
            obs_list = [
                observations.for_position(position)
                for observations in observations_list
            ]
            branches = self._branch_all(flat_list, obs_list, key2s)
            # Batched pruning: sessions in lock-step (same candidate and
            # parent counts, same gating) stack into one argpartition /
            # gather over axis 1.  numpy partitions each row independently
            # with the same introselect a 1-D call uses, so per-session
            # results — indices, tie-breaks, costs to the last ulp — are
            # identical to the per-session spelling this replaces.
            groups: dict[tuple[int, int, bool], list[int]] = {}
            for session in range(n_sessions):
                groups.setdefault(
                    (
                        flat_list[session].size,
                        costs_list[session].size,
                        obs_list[session][0].size > 0,
                    ),
                    [],
                ).append(session)
            for (n_cand, n_parents, has_observations), members in groups.items():
                if has_observations:
                    keep = min(self.beam_width, n_cand)
                else:
                    keep = min(self.max_unpruned_width, n_cand)
                for chunk in _session_chunks(
                    members, n_cand, self.max_stack_elements
                ):
                    n_members = len(chunk)
                    flat_states = (
                        flat_list[chunk[0]][None, :]
                        if n_members == 1
                        else _stack_rows([flat_list[s] for s in chunk])
                    )
                    parent_costs = (
                        costs_list[chunk[0]][None, :]
                        if n_members == 1
                        else _stack_rows([costs_list[s] for s in chunk])
                    )
                    if has_observations:
                        branch = (
                            branches[chunk[0]][None, :]
                            if n_members == 1
                            else _stack_rows([branches[s] for s in chunk])
                        )
                    else:
                        branch = np.zeros((n_members, n_cand), dtype=np.float64)
                    flat_costs = (
                        parent_costs[:, :, None]
                        + branch.reshape(n_members, n_parents, width)
                    ).reshape(n_members, n_cand)
                    if keep < n_cand:
                        kept_idx = np.argpartition(flat_costs, keep - 1, axis=1)[
                            :, :keep
                        ]
                        new_costs = np.take_along_axis(flat_costs, kept_idx, axis=1)
                        new_states = np.take_along_axis(
                            flat_states, kept_idx, axis=1
                        )
                        kept_parents = kept_idx // width
                        kept_segments = (kept_idx % width).astype(np.uint64)
                        for j, session in enumerate(chunk):
                            explored[session] += n_cand
                            states_list[session] = new_states[j]
                            costs_list[session] = new_costs[j]
                            parent_history[session].append(kept_parents[j])
                            segment_history[session].append(kept_segments[j])
                            beam_traces[session].append(keep)
                    else:
                        # Nothing is pruned: the kept set is every candidate
                        # in order, so skip the gather copies entirely and
                        # share one parent/segment index row across the
                        # chunk (history rows are read-only).
                        all_idx = np.arange(n_cand)
                        kept_parents_row = all_idx // width
                        kept_segments_row = (all_idx % width).astype(np.uint64)
                        for j, session in enumerate(chunk):
                            explored[session] += n_cand
                            states_list[session] = flat_states[j]
                            costs_list[session] = flat_costs[j]
                            parent_history[session].append(kept_parents_row)
                            segment_history[session].append(kept_segments_row)
                            beam_traces[session].append(keep)

        results: list[DecodeResult] = []
        for session in range(n_sessions):
            costs = costs_list[session]
            nodes = np.arange(costs.size)
            paths = np.empty((n_segments, nodes.size), dtype=np.uint64)
            for position in range(n_segments - 1, -1, -1):
                paths[position] = segment_history[session][position][nodes]
                nodes = parent_history[session][position][nodes]
            best = int(np.argmin(costs))
            message_bits = encoders[session].spine_generator.segments_to_bits(
                paths[:, best]
            )
            results.append(
                DecodeResult(
                    message_bits=message_bits,
                    path_cost=float(costs[best]),
                    candidates_explored=explored[session],
                    beam_trace=tuple(beam_traces[session]),
                )
            )
        if tel.enabled:
            tel.counter("decoder.batch_decodes")
            tel.counter("decoder.batch_sessions", n_sessions)
            tel.observe("decoder.batch_decode_s", tel.now_s() - t0)
        return results


# ---------------------------------------------------------------------------
#: Decoding-engine registry behind the ``decoder=`` seam: every scenario
#: (Monte-Carlo runner, CLI, link transport, relay, cell, code families)
#: selects its engine by one of these names.
DECODER_ENGINES = {
    "bubble": BubbleDecoder,
    "incremental": IncrementalBubbleDecoder,
    "vectorized": VectorizedBubbleDecoder,
}


def make_decoder_factory(name: str, beam_width: int):
    """A ``decoder_factory`` (encoder -> decoder) for a registered engine."""
    try:
        cls = DECODER_ENGINES[name]
    except KeyError:
        raise ValueError(
            f"unknown decoder {name!r}; expected one of {sorted(DECODER_ENGINES)}"
        ) from None

    def factory(encoder: SpinalEncoder):
        return cls(encoder, beam_width=beam_width)

    return factory
