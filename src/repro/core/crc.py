"""Cyclic redundancy checks used for rateless termination.

Section 3.2 of the paper: "The sender continues to send successive passes
until the receiver determines that the message has been decoded correctly,
using a CRC at the end of each pass, for example."  The framing layer
(:mod:`repro.core.framing`) appends one of these CRCs to the payload so the
receiver can terminate without a genie.

The implementation is a straightforward bitwise CRC over bit arrays (the
library's internal representation), with standard generator polynomials.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Crc", "CRC8", "CRC16_CCITT", "CRC32"]


@dataclass(frozen=True)
class Crc:
    """A CRC defined by its width, polynomial, and initial register value.

    Parameters
    ----------
    width:
        Number of CRC bits appended to the message.
    polynomial:
        Generator polynomial with the leading (x^width) term omitted,
        e.g. ``0x07`` for CRC-8-ATM.
    initial:
        Initial shift-register contents.
    name:
        Human-readable identifier used in reports.
    """

    width: int
    polynomial: int
    initial: int = 0
    name: str = "crc"

    def __post_init__(self) -> None:
        if not 1 <= self.width <= 64:
            raise ValueError(f"CRC width must be in [1, 64], got {self.width}")
        if self.polynomial >= (1 << self.width):
            raise ValueError("polynomial has more bits than the CRC width")

    def compute(self, bits: np.ndarray) -> np.ndarray:
        """Return the CRC of ``bits`` as a bit array of length ``width``."""
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.ndim != 1:
            raise ValueError(f"CRC input must be 1-D, got shape {bits.shape}")
        register = self.initial
        top_bit = 1 << (self.width - 1)
        mask = (1 << self.width) - 1
        for bit in bits:
            register ^= int(bit) << (self.width - 1)
            if register & top_bit:
                register = ((register << 1) ^ self.polynomial) & mask
            else:
                register = (register << 1) & mask
        out = np.empty(self.width, dtype=np.uint8)
        for i in range(self.width):
            out[i] = (register >> (self.width - 1 - i)) & 1
        return out

    def append(self, bits: np.ndarray) -> np.ndarray:
        """Return ``bits`` with its CRC appended."""
        bits = np.asarray(bits, dtype=np.uint8)
        return np.concatenate([bits, self.compute(bits)])

    def check(self, bits_with_crc: np.ndarray) -> bool:
        """Validate a message produced by :meth:`append`."""
        bits_with_crc = np.asarray(bits_with_crc, dtype=np.uint8)
        if bits_with_crc.size < self.width:
            return False
        payload = bits_with_crc[: -self.width]
        crc = bits_with_crc[-self.width :]
        return bool(np.array_equal(self.compute(payload), crc))


CRC8 = Crc(width=8, polynomial=0x07, name="crc8")
CRC16_CCITT = Crc(width=16, polynomial=0x1021, initial=0xFFFF, name="crc16-ccitt")
CRC32 = Crc(width=32, polynomial=0x04C11DB7, initial=0xFFFFFFFF, name="crc32")
