"""Framing: padding, CRC, and known tail bits around the raw payload.

Two remarks in the paper motivate this layer:

* Section 3.2 — the receiver detects successful decoding "using a CRC at the
  end of each pass, for example"; the framer appends that CRC.
* Section 4 — "the erroneous bits are always in the last few bits, a property
  that we can use in practice by adding some known trailing bits to each
  coded message"; the framer can append ``tail_segments`` all-zero segments,
  which both protects the payload's final bits and (with tail-first
  puncturing) enables rates above ``k`` bits/symbol.

The framer also pads the payload so the framed length is a multiple of the
segment size ``k`` required by the encoder.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.crc import Crc

__all__ = ["Framer"]


@dataclass(frozen=True)
class Framer:
    """Deterministic framing of a fixed-length payload.

    Layout of a framed message (all lengths in bits)::

        payload (payload_bits) | CRC (crc.width, optional) | pad (0..k-1) | tail (tail_segments * k)

    The pad bits are zeros inserted so that payload+CRC+pad is a multiple of
    ``k``; the tail segments are additional all-zero segments known to the
    receiver.
    """

    payload_bits: int
    k: int
    crc: Crc | None = None
    tail_segments: int = 0

    def __post_init__(self) -> None:
        if self.payload_bits <= 0:
            raise ValueError(f"payload_bits must be positive, got {self.payload_bits}")
        if self.k <= 0:
            raise ValueError(f"k must be positive, got {self.k}")
        if self.tail_segments < 0:
            raise ValueError(f"tail_segments must be non-negative, got {self.tail_segments}")

    # -- derived lengths ----------------------------------------------------
    @property
    def crc_bits(self) -> int:
        return self.crc.width if self.crc is not None else 0

    @property
    def pad_bits(self) -> int:
        unpadded = self.payload_bits + self.crc_bits
        return (-unpadded) % self.k

    @property
    def framed_bits(self) -> int:
        """Total number of coded bits handed to the spinal encoder."""
        return self.payload_bits + self.crc_bits + self.pad_bits + self.tail_segments * self.k

    @property
    def n_segments(self) -> int:
        return self.framed_bits // self.k

    @property
    def overhead_bits(self) -> int:
        """Bits transmitted beyond the payload itself."""
        return self.framed_bits - self.payload_bits

    # -- framing ------------------------------------------------------------
    def frame(self, payload: np.ndarray) -> np.ndarray:
        """Build the framed bit vector for one payload."""
        payload = np.asarray(payload, dtype=np.uint8)
        if payload.ndim != 1 or payload.size != self.payload_bits:
            raise ValueError(
                f"expected a payload of {self.payload_bits} bits, got shape {payload.shape}"
            )
        parts = [payload]
        if self.crc is not None:
            parts.append(self.crc.compute(payload))
        padding = self.pad_bits + self.tail_segments * self.k
        if padding:
            parts.append(np.zeros(padding, dtype=np.uint8))
        return np.concatenate(parts)

    def extract_payload(self, framed: np.ndarray) -> np.ndarray:
        """Recover the payload bits from a (decoded) framed message."""
        framed = np.asarray(framed, dtype=np.uint8)
        if framed.size != self.framed_bits:
            raise ValueError(
                f"expected {self.framed_bits} framed bits, got {framed.size}"
            )
        return framed[: self.payload_bits]

    def check(self, framed: np.ndarray) -> bool:
        """Validate a decoded framed message.

        With a CRC configured this checks the CRC; it additionally verifies
        that the known pad and tail bits are zero (a cheap extra check that
        catches many near-miss decodes).  Without a CRC only the known bits
        are checked, which is weak — experiments without a CRC should use
        genie termination instead.
        """
        framed = np.asarray(framed, dtype=np.uint8)
        if framed.size != self.framed_bits:
            return False
        known = framed[self.payload_bits + self.crc_bits :]
        if np.any(known != 0):
            return False
        if self.crc is None:
            return True
        with_crc = framed[: self.payload_bits + self.crc_bits]
        return self.crc.check(with_crc)
