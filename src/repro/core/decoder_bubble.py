"""The practical "bubble" (beam / M-algorithm) decoder with graceful scale-down.

Section 3.2 of the paper: the ideal ML decoder explores a tree with ``2^k``
children per node and ``2^n`` leaves.  The practical decoder keeps, at every
level, only the ``B`` nodes with the smallest cumulative path cost:

    "When it receives the next symbol, it temporarily expands each node to
     B * 2^k possible nodes, calculates the cumulative path cost to each of
     these temporary nodes, and then maintains only the B lowest-cost ones."

Its complexity is linear in the message length and exponential only in ``k``
(a small constant), and the achieved rate approaches capacity as ``B`` grows
— the *graceful scale-down* property examined in experiment E5.

Implementation notes
--------------------
* The whole expansion at one level is a single vectorised numpy operation
  over ``B * 2^k`` candidates (hash, constellation map, distance).
* When a level has no observations yet (possible under aggressive
  puncturing), there is no signal to prune on; pruning to ``B`` would drop
  the true path almost surely.  In that situation the decoder keeps *all*
  children of the surviving nodes, up to ``max_unpruned_width`` (default
  ``B * 2^k``), deferring pruning to the next level that has symbols.
* Ties are broken arbitrarily (by candidate order), as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.encoder import ReceivedObservations, SpinalEncoder

__all__ = ["BubbleDecoder", "DecodeResult"]


@dataclass(frozen=True)
class DecodeResult:
    """Outcome of one decode attempt.

    Attributes
    ----------
    message_bits:
        The decoder's best estimate of the framed message bits.
    path_cost:
        Cumulative cost of the winning tree path (sum of squared Euclidean
        distances for AWGN, Hamming distance for BSC).
    candidates_explored:
        Total number of tree nodes whose cost was evaluated; the natural
        measure of decoder work (used by experiments E5/E6/E14).
    beam_trace:
        Number of nodes retained after pruning at each level.
    """

    message_bits: np.ndarray
    path_cost: float
    candidates_explored: int
    beam_trace: tuple[int, ...]

    @property
    def n_bits(self) -> int:
        return int(self.message_bits.size)


class BubbleDecoder:
    """Beam-search decoder replaying the spinal encoder over a pruned tree."""

    def __init__(
        self,
        encoder: SpinalEncoder,
        beam_width: int = 16,
        max_unpruned_width: int | None = None,
    ) -> None:
        if beam_width < 1:
            raise ValueError(f"beam_width must be at least 1, got {beam_width}")
        self.encoder = encoder
        self.beam_width = beam_width
        k = encoder.params.k
        default_cap = beam_width * (1 << k)
        self.max_unpruned_width = (
            default_cap if max_unpruned_width is None else max_unpruned_width
        )
        if self.max_unpruned_width < beam_width:
            raise ValueError("max_unpruned_width must be at least beam_width")

    # ----------------------------------------------------------------------
    def decode(
        self, n_message_bits: int, observations: ReceivedObservations
    ) -> DecodeResult:
        """Decode a message of ``n_message_bits`` bits from the observations.

        ``n_message_bits`` must be a multiple of the code's ``k`` and match
        ``observations.n_segments``; the rateless session guarantees both.
        """
        params = self.encoder.params
        k = params.k
        n_segments = params.n_segments(n_message_bits)
        if observations.n_segments != n_segments:
            raise ValueError(
                f"observations were sized for {observations.n_segments} segments "
                f"but the message has {n_segments}"
            )

        hash_family = self.encoder.hash_family
        all_segments = np.arange(1 << k, dtype=np.uint64)

        # Current beam.
        states = np.array([hash_family.initial_state], dtype=np.uint64)
        costs = np.zeros(1, dtype=np.float64)

        # Backtracking info per level.
        parent_history: list[np.ndarray] = []
        segment_history: list[np.ndarray] = []
        beam_trace: list[int] = []
        candidates_explored = 0

        for position in range(n_segments):
            # Expand every surviving node by every possible k-bit segment.
            child_states = hash_family.hash_spine(states[:, None], all_segments[None, :])
            child_costs = costs[:, None] + self.encoder.branch_costs(
                child_states.reshape(-1), position, observations
            ).reshape(child_states.shape)

            flat_states = child_states.reshape(-1)
            flat_costs = child_costs.reshape(-1)
            candidates_explored += flat_costs.size

            has_observations = observations.count_at(position) > 0
            if has_observations:
                keep = min(self.beam_width, flat_costs.size)
            else:
                keep = min(self.max_unpruned_width, flat_costs.size)

            if keep < flat_costs.size:
                kept_idx = np.argpartition(flat_costs, keep - 1)[:keep]
            else:
                kept_idx = np.arange(flat_costs.size)

            states = flat_states[kept_idx]
            costs = flat_costs[kept_idx]
            parent_history.append(kept_idx // (1 << k))
            segment_history.append((kept_idx % (1 << k)).astype(np.uint64))
            beam_trace.append(int(kept_idx.size))

        # Backtrack from the best leaf.
        best = int(np.argmin(costs))
        segments = np.empty(n_segments, dtype=np.uint64)
        node = best
        for position in range(n_segments - 1, -1, -1):
            segments[position] = segment_history[position][node]
            node = int(parent_history[position][node])

        message_bits = self.encoder.spine_generator.segments_to_bits(segments)
        return DecodeResult(
            message_bits=message_bits,
            path_cost=float(costs[best]),
            candidates_explored=candidates_explored,
            beam_trace=tuple(beam_trace),
        )
