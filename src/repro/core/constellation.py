"""Constellation mapping functions for spinal codes.

The encoder takes ``2c`` pseudo-random bits per spine value per pass and maps
them to a point on the I/Q plane with a deterministic mapping function ``f``
(Section 3.1).  The paper uses a simple *linear* map, Eq. (3): the first
``c`` bits select the I coordinate and the last ``c`` bits the Q coordinate,
each interpreted sign/magnitude and scaled into ``[-P*, P*]``.  Section 6
mentions a truncated-Gaussian map as promising future work; both are
implemented here, together with an offset-linear (uniform PAM) variant.

All mappers expose the same interface:

* ``bits_per_symbol`` — the number of input bits consumed per symbol (2c);
* ``map_values(v)`` — vectorised map from the integer formed by those bits
  (I bits first, MSB first) to a complex constellation point;
* ``average_energy`` — the exact mean of ``|x|^2`` under uniform input bits,
  used to define SNR consistently across mappers;
* ``enumerate_points()`` — all constellation points (for tests/plots).

Mappers are constructed with unit average energy by default so that an AWGN
channel with noise energy ``N0`` per complex symbol realises ``SNR = 1/N0``
regardless of which mapper is in use.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np
from scipy import special

__all__ = [
    "Constellation",
    "LinearConstellation",
    "OffsetLinearConstellation",
    "TruncatedGaussianConstellation",
    "make_constellation",
]


class Constellation(ABC):
    """Abstract base class for 2c-bit-to-I/Q mapping functions."""

    def __init__(self, c: int) -> None:
        if not 1 <= c <= 16:
            raise ValueError(f"bits per dimension c must be in [1, 16], got {c}")
        self.c = c

    # -- interface ---------------------------------------------------------
    @property
    def bits_per_symbol(self) -> int:
        """Number of pseudo-random bits consumed per transmitted symbol (2c)."""
        return 2 * self.c

    @abstractmethod
    def map_axis(self, values: np.ndarray) -> np.ndarray:
        """Map ``c``-bit unsigned integers to one real coordinate."""

    def map_values(self, values: np.ndarray | int) -> np.ndarray:
        """Map ``2c``-bit unsigned integers to complex constellation points.

        The first ``c`` bits (most significant) form the I coordinate and
        the last ``c`` bits the Q coordinate, as in the paper.
        """
        v = np.asarray(values, dtype=np.uint64)
        if v.size and int(v.max()) >= (1 << self.bits_per_symbol):
            raise ValueError(
                f"value {int(v.max())} does not fit in {self.bits_per_symbol} bits"
            )
        i_vals = (v >> np.uint64(self.c)).astype(np.int64)
        q_vals = (v & np.uint64((1 << self.c) - 1)).astype(np.int64)
        return self.map_axis(i_vals) + 1j * self.map_axis(q_vals)

    def enumerate_points(self) -> np.ndarray:
        """All ``2^(2c)`` constellation points (only sensible for small c)."""
        if self.bits_per_symbol > 20:
            raise ValueError(
                "refusing to enumerate more than 2^20 constellation points; "
                "use axis_levels() instead"
            )
        return self.map_values(np.arange(1 << self.bits_per_symbol, dtype=np.uint64))

    def axis_levels(self) -> np.ndarray:
        """The ``2^c`` real levels available on each axis."""
        return self.map_axis(np.arange(1 << self.c, dtype=np.int64))

    @property
    def average_energy(self) -> float:
        """Mean of ``|x|^2`` under i.i.d. uniform input bits."""
        levels = self.axis_levels()
        per_axis = float(np.mean(levels.astype(np.float64) ** 2))
        return 2.0 * per_axis

    @property
    def peak_energy(self) -> float:
        """Maximum of ``|x|^2`` over the constellation."""
        levels = np.abs(self.axis_levels().astype(np.float64))
        return 2.0 * float(levels.max() ** 2)


class LinearConstellation(Constellation):
    """The paper's linear constellation map, Eq. (3).

    A ``c``-bit value ``b_1 b_2 ... b_c`` maps to
    ``(-1)^{b_1} * (b_2...b_c) / (2^{c-1} - 1) * P*`` — a sign bit followed by
    a linearly spaced magnitude.  ``P*`` (``peak_amplitude``) is chosen so the
    constellation has the requested average energy (1.0 by default).
    """

    def __init__(self, c: int, average_power: float = 1.0) -> None:
        super().__init__(c)
        if average_power <= 0:
            raise ValueError(f"average_power must be positive, got {average_power}")
        if c < 2:
            raise ValueError("the sign/magnitude linear map needs c >= 2")
        # Mean squared magnitude of u/(2^{c-1}-1) for u uniform on
        # {0, ..., 2^{c-1}-1}: E[u^2] = (M-1)(2M-1)/6 with M = 2^{c-1}.
        m_levels = 1 << (c - 1)
        mean_u_sq = (m_levels - 1) * (2 * m_levels - 1) / 6.0
        unit_axis_energy = mean_u_sq / float(m_levels - 1) ** 2
        self.peak_amplitude = math.sqrt(average_power / (2.0 * unit_axis_energy))

    def map_axis(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.int64)
        sign_bit = values >> (self.c - 1)
        magnitude = values & ((1 << (self.c - 1)) - 1)
        scale = self.peak_amplitude / float((1 << (self.c - 1)) - 1)
        return np.where(sign_bit == 0, 1.0, -1.0) * magnitude.astype(np.float64) * scale


class OffsetLinearConstellation(Constellation):
    """Uniform PAM on each axis: ``u -> (u - (2^c - 1)/2) * delta``.

    This is the mapping used by the authors' later SIGCOMM implementation; it
    avoids the doubled zero level of the sign/magnitude map and therefore has
    marginally better high-SNR behaviour.  Included both as an alternative
    mapper and as an ablation target (experiment E11).
    """

    def __init__(self, c: int, average_power: float = 1.0) -> None:
        super().__init__(c)
        if average_power <= 0:
            raise ValueError(f"average_power must be positive, got {average_power}")
        n_levels = 1 << c
        # Variance of u - (n-1)/2 for u uniform on {0..n-1} is (n^2 - 1)/12.
        axis_var = (n_levels**2 - 1) / 12.0
        self.delta = math.sqrt(average_power / (2.0 * axis_var))

    def map_axis(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.int64).astype(np.float64)
        centre = ((1 << self.c) - 1) / 2.0
        return (values - centre) * self.delta


class TruncatedGaussianConstellation(Constellation):
    """Gaussian-shaped constellation (Section 6, future work).

    A ``c``-bit value ``u`` is mapped through the inverse CDF of a standard
    normal truncated at ``±beta`` standard deviations, evaluated at the mid-
    point ``(u + 0.5) / 2^c``.  This concentrates points near the origin,
    approximating the capacity-achieving Gaussian input distribution and
    recovering (in the limit of large ``c`` and ``beta``) the shaping gain the
    linear map gives up (about the ``½ log2(πe/6) ≈ 0.25`` bit of Theorem 1).
    """

    def __init__(self, c: int, average_power: float = 1.0, beta: float = 2.5) -> None:
        super().__init__(c)
        if average_power <= 0:
            raise ValueError(f"average_power must be positive, got {average_power}")
        if beta <= 0:
            raise ValueError(f"truncation beta must be positive, got {beta}")
        self.beta = beta
        n_levels = 1 << c
        u = (np.arange(n_levels, dtype=np.float64) + 0.5) / n_levels
        # Inverse CDF of a normal truncated to [-beta, beta].
        phi_lo = 0.5 * (1.0 + math.erf(-beta / math.sqrt(2.0)))
        phi_hi = 0.5 * (1.0 + math.erf(beta / math.sqrt(2.0)))
        probs = phi_lo + u * (phi_hi - phi_lo)
        raw_levels = math.sqrt(2.0) * special.erfinv(2.0 * probs - 1.0)
        axis_energy = float(np.mean(raw_levels**2))
        self._levels = raw_levels * math.sqrt(average_power / (2.0 * axis_energy))

    def map_axis(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.int64)
        if values.size and (values.min() < 0 or values.max() >= self._levels.size):
            raise ValueError("axis value out of range for this constellation")
        return self._levels[values]


_CONSTELLATION_KINDS = {
    "linear": LinearConstellation,
    "offset-linear": OffsetLinearConstellation,
    "truncated-gaussian": TruncatedGaussianConstellation,
}


def make_constellation(kind: str, c: int, average_power: float = 1.0, **kwargs) -> Constellation:
    """Factory used by :class:`repro.core.params.SpinalParams`.

    ``kind`` is one of ``"linear"`` (the paper's Eq. (3) map),
    ``"offset-linear"`` or ``"truncated-gaussian"``.
    """
    try:
        cls = _CONSTELLATION_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown constellation kind {kind!r}; expected one of "
            f"{sorted(_CONSTELLATION_KINDS)}"
        ) from None
    return cls(c, average_power=average_power, **kwargs)
