"""Spinal codes: the paper's primary contribution.

This package implements the full spinal-code pipeline of Perry, Balakrishnan
and Shah (HotNets 2011):

* :mod:`repro.core.hashing` — the random hash-function family ``h`` and the
  salted pseudo-random generator used to expand spine values into symbol bits.
* :mod:`repro.core.spine` — sequential spine generation ``s_t = h(s_{t-1}, M_t)``.
* :mod:`repro.core.constellation` — dense constellation mapping functions
  (the paper's linear map of Eq. (3), plus offset-linear and truncated
  Gaussian alternatives).
* :mod:`repro.core.encoder` — the rateless encoder producing symbols (AWGN
  mode) or coded bits (BSC mode), pass by pass.
* :mod:`repro.core.puncturing` — subpass schedules that raise the maximum
  rate above ``k`` bits/symbol.
* :mod:`repro.core.decoder_ml` / :mod:`repro.core.decoder_bubble` — the ideal
  maximum-likelihood decoder and the practical beam ("bubble") decoder with
  the graceful scale-down property.
* :mod:`repro.core.decoder_incremental` — the stateful incremental engine
  that reuses beam state across the rateless session's decode attempts
  (bit-identical results, a fraction of the work).
* :mod:`repro.core.decoder_vectorized` — the whole-beam array-op engine and
  the :class:`BatchDecoder` front for decoding many concurrent sessions as
  stacked kernels (bit-identical results again, with an optional numba tier).
* :mod:`repro.core.rateless` — the sender/receiver rateless session used by
  every experiment.
* :mod:`repro.core.crc` / :mod:`repro.core.framing` — termination checking.
"""

from repro.core.constellation import (
    LinearConstellation,
    OffsetLinearConstellation,
    TruncatedGaussianConstellation,
)
from repro.core.crc import Crc, CRC8, CRC16_CCITT, CRC32
from repro.core.decoder_bubble import BubbleDecoder, DecodeResult
from repro.core.decoder_incremental import IncrementalBubbleDecoder
from repro.core.decoder_ml import MLDecoder
from repro.core.decoder_stack import StackDecoder
from repro.core.decoder_vectorized import (
    BatchDecoder,
    DECODER_ENGINES,
    VectorizedBubbleDecoder,
    make_decoder_factory,
)
from repro.core.encoder import ReceivedObservations, SpinalEncoder
from repro.core.framing import Framer
from repro.core.hashing import SaltedHashFamily
from repro.core.params import SpinalParams
from repro.core.puncturing import NoPuncturing, StridedPuncturing
from repro.core.rateless import (
    PacketTransmission,
    RatelessReceiver,
    RatelessSession,
    TrialResult,
)
from repro.core.spine import SpineGenerator

__all__ = [
    "SaltedHashFamily",
    "SpineGenerator",
    "LinearConstellation",
    "OffsetLinearConstellation",
    "TruncatedGaussianConstellation",
    "SpinalParams",
    "SpinalEncoder",
    "ReceivedObservations",
    "NoPuncturing",
    "StridedPuncturing",
    "BubbleDecoder",
    "IncrementalBubbleDecoder",
    "VectorizedBubbleDecoder",
    "BatchDecoder",
    "DECODER_ENGINES",
    "make_decoder_factory",
    "MLDecoder",
    "StackDecoder",
    "DecodeResult",
    "PacketTransmission",
    "RatelessSession",
    "RatelessReceiver",
    "TrialResult",
    "Crc",
    "CRC8",
    "CRC16_CCITT",
    "CRC32",
    "Framer",
]
