"""Incremental bubble decoder: reuse beam state across rateless attempts.

The rateless receiver "attempts to decode after each subpass" (Section 3).
A fresh :class:`~repro.core.decoder_bubble.BubbleDecoder` restarts the beam
search from the root on every attempt, so the total decoder work over a
session grows quadratically with the number of subpasses received — the
dominant cost of every Figure-2-style sweep.

This module exploits two structural facts about the beam search:

1. **Prefix stability.**  The beam kept at tree level ``t`` is a
   deterministic function of the observations at positions ``0..t`` only.  A
   new subpass that touches positions ``>= p`` therefore leaves every beam at
   levels ``< p`` *exactly* as a from-scratch decode would recompute it, so
   the search can resume from level ``p`` with the cached beam at ``p - 1``.

2. **Entry-wise cost structure.**  The branch cost of a candidate spine
   value against one observation depends only on the triple
   ``(spine value, pass index, received value)`` — see
   :meth:`SpinalEncoder.branch_cost_columns`.  Caching the per-observation
   cost *matrix* of each level (rows: expanded children, columns:
   observations) makes repeated evaluations across attempts free: a new
   observation appends a column, a surviving candidate reuses its row, and
   the row sums are re-reduced over the full matrix so the floating-point
   summation order — hence every cost, every pruning decision and the final
   backtrack — is bit-identical to a from-scratch decode.

The equivalence is exact, not approximate: for any sequence of observation
sets, :meth:`IncrementalBubbleDecoder.decode` returns the same
``message_bits`` and ``path_cost`` (to the last ulp) as a fresh
:class:`BubbleDecoder` handed the same observations, which the regression
suite in ``tests/test_decoder_incremental.py`` locks down.  Only
``candidates_explored`` differs: it counts the cost work actually performed
in this attempt, in units of one full tree-node evaluation (a node scored
against every observation at its level, which is what the from-scratch
decoder pays per node).  Levels that were skipped or served entirely from
cache contribute zero; a level that only gained one new observation column
is charged ``1/n_obs`` of a node evaluation per node, rounded up.  This is
the measure of decoder work the ROADMAP's throughput goal cares about.

Observation sets may grow (the on-line sequential receiver), shrink, or be
arbitrary prefixes of each other (the bisection search strategy replays
truncated histories); the decoder diffs the per-position observation columns
against its cache and keeps whatever prefix still matches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.decoder_bubble import DecodeResult
from repro.core.encoder import ReceivedObservations, SpinalEncoder

__all__ = ["IncrementalBubbleDecoder"]


@dataclass
class _LevelCache:
    """Everything the last attempt computed at one tree level.

    Attributes
    ----------
    parent_states:
        The beam states at the previous level whose expansion produced
        ``flat_states`` (the cache is valid only while the parent beam is
        unchanged, order included).
    flat_states:
        All expanded children, in candidate order (parent-major, segment-minor).
    sorted_states / sort_order:
        ``flat_states`` sorted, plus the permutation, for row lookup when the
        parent beam has drifted but many children survive.
    obs_pass_indices / obs_values:
        Identity of each cost-matrix column: the pass index that salted the
        observation and the received value itself.
    cost_matrix:
        C-contiguous ``(len(flat_states), n_observations)`` float64 matrix of
        per-observation branch costs.
    kept_idx / beam_states / beam_costs / parents / segments:
        The pruning outcome: which candidates survived, their states and
        cumulative costs, and the backtracking history.
    """

    parent_states: np.ndarray
    flat_states: np.ndarray
    sorted_states: np.ndarray
    sort_order: np.ndarray
    obs_pass_indices: np.ndarray
    obs_values: np.ndarray
    cost_matrix: np.ndarray
    kept_idx: np.ndarray
    beam_states: np.ndarray
    beam_costs: np.ndarray
    parents: np.ndarray
    segments: np.ndarray


class IncrementalBubbleDecoder:
    """Stateful drop-in for :class:`BubbleDecoder` across rateless attempts.

    The constructor signature and the :meth:`decode` contract match
    :class:`BubbleDecoder` exactly; the difference is that consecutive calls
    share per-level caches, so a receiver that decodes after every subpass
    pays only for the part of the tree the new observations actually
    perturb.  One instance serves one transmission (one message); call
    :meth:`reset` — or just decode a message of a different length — to
    start over.
    """

    def __init__(
        self,
        encoder: SpinalEncoder,
        beam_width: int = 16,
        max_unpruned_width: int | None = None,
    ) -> None:
        if beam_width < 1:
            raise ValueError(f"beam_width must be at least 1, got {beam_width}")
        self.encoder = encoder
        self.beam_width = beam_width
        k = encoder.params.k
        default_cap = beam_width * (1 << k)
        self.max_unpruned_width = (
            default_cap if max_unpruned_width is None else max_unpruned_width
        )
        if self.max_unpruned_width < beam_width:
            raise ValueError("max_unpruned_width must be at least beam_width")
        self._all_segments = np.arange(1 << k, dtype=np.uint64)
        self.candidates_explored_total = 0
        self.decode_calls = 0
        self.reset()

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop all cached state (the cumulative work counters survive)."""
        self._levels: list[_LevelCache] = []
        self._n_segments: int | None = None
        self._last_result: DecodeResult | None = None

    # ------------------------------------------------------------------
    def _column_overlap(self, cache: _LevelCache, pass_indices: np.ndarray, values: np.ndarray) -> int:
        """Length of the shared observation prefix between cache and now."""
        m = min(cache.obs_pass_indices.size, pass_indices.size)
        if m == 0:
            return 0
        match = (pass_indices[:m] == cache.obs_pass_indices[:m]) & (
            values[:m] == cache.obs_values[:m]
        )
        if match.all():
            return m
        return int(np.argmin(match))

    def _resume_level(self, observations: ReceivedObservations, n_segments: int) -> int:
        """First tree level whose cached state the observations invalidate."""
        if len(self._levels) != n_segments:
            return 0
        for position in range(n_segments):
            cache = self._levels[position]
            pass_indices, values = observations.for_position(position)
            if pass_indices.size != cache.obs_pass_indices.size:
                return position
            if self._column_overlap(cache, pass_indices, values) != pass_indices.size:
                return position
        return n_segments

    # ------------------------------------------------------------------
    def decode(
        self, n_message_bits: int, observations: ReceivedObservations
    ) -> DecodeResult:
        """Decode, reusing whatever the previous attempt already established.

        Semantics (message bits, path cost, beam trace) are identical to
        ``BubbleDecoder.decode`` on the same observations;
        ``candidates_explored`` counts only the tree nodes whose costs were
        (re)computed in *this* attempt.
        """
        params = self.encoder.params
        k = params.k
        n_segments = params.n_segments(n_message_bits)
        if observations.n_segments != n_segments:
            raise ValueError(
                f"observations were sized for {observations.n_segments} segments "
                f"but the message has {n_segments}"
            )
        if self._n_segments is not None and self._n_segments != n_segments:
            self.reset()
        self._n_segments = n_segments
        self.decode_calls += 1

        resume = self._resume_level(observations, n_segments)
        if resume == n_segments and self._last_result is not None:
            # Nothing changed since the last attempt; a fresh decoder would
            # reproduce the cached result verbatim.
            result = DecodeResult(
                message_bits=self._last_result.message_bits,
                path_cost=self._last_result.path_cost,
                candidates_explored=0,
                beam_trace=self._last_result.beam_trace,
            )
            self._last_result = result
            return result

        hash_family = self.encoder.hash_family
        if resume == 0:
            states = np.array([hash_family.initial_state], dtype=np.uint64)
            costs = np.zeros(1, dtype=np.float64)
        else:
            states = self._levels[resume - 1].beam_states
            costs = self._levels[resume - 1].beam_costs

        explored = 0
        for position in range(resume, n_segments):
            cache = self._levels[position] if position < len(self._levels) else None
            pass_indices, values = observations.for_position(position)
            n_obs = pass_indices.size

            # 1. Expand the beam (or reuse the cached expansion wholesale).
            parent_match = cache is not None and np.array_equal(
                states, cache.parent_states
            )
            if parent_match:
                flat_states = cache.flat_states
                sorted_states, sort_order = cache.sorted_states, cache.sort_order
            else:
                children = hash_family.hash_spine(
                    states[:, None], self._all_segments[None, :]
                )
                flat_states = children.reshape(-1)
                sort_order = np.argsort(flat_states, kind="stable")
                sorted_states = flat_states[sort_order]
            n_flat = flat_states.size

            # 2. Assemble the per-observation cost matrix, reusing cached
            #    columns (shared observation prefix) and cached rows
            #    (children whose spine value already appeared last attempt).
            common = 0 if cache is None else self._column_overlap(cache, pass_indices, values)
            matrix = np.empty((n_flat, n_obs), dtype=np.float64)
            entries = 0
            if common:
                if parent_match:
                    matrix[:, :common] = cache.cost_matrix[:, :common]
                else:
                    if cache.sorted_states.size:
                        idx = np.searchsorted(cache.sorted_states, flat_states)
                        # searchsorted returns indices in [0, size]; clamp the
                        # one-past-the-end miss so the hit check below can
                        # index.  With an empty cache this expression would
                        # yield -1 and the lookup would fault (or, for a
                        # hypothetical non-empty idx, wrap to the last row),
                        # hence the emptiness guard: no rows can hit.
                        idx = np.minimum(idx, cache.sorted_states.size - 1)
                        hit = cache.sorted_states[idx] == flat_states
                        rows = cache.sort_order[idx]
                        matrix[hit, :common] = cache.cost_matrix[rows[hit], :common]
                    else:
                        hit = np.zeros(n_flat, dtype=bool)
                    miss = ~hit
                    n_miss = int(miss.sum())
                    if n_miss:
                        matrix[miss, :common] = self.encoder.branch_cost_columns(
                            flat_states[miss], pass_indices[:common], values[:common]
                        )
                        entries += n_miss * common
            if n_obs > common:
                matrix[:, common:] = self.encoder.branch_cost_columns(
                    flat_states, pass_indices[common:], values[common:]
                )
                entries += n_flat * (n_obs - common)
            # Work accounting, in units of one full node evaluation at this
            # level's current observation depth (what a from-scratch decoder
            # pays per node): cached matrix entries are free, fresh entries
            # are charged pro-rata and rounded up.  A level with no
            # observations is charged for its expansion hashing only when the
            # cached one could not be reused.
            if n_obs:
                explored += -(-entries // n_obs)
            elif not parent_match:
                explored += n_flat

            # 3. Cumulative costs and pruning — the same expressions as
            #    BubbleDecoder so ties and ulps agree.
            if n_obs:
                branch = matrix.sum(axis=1)
            else:
                branch = np.zeros(n_flat, dtype=np.float64)
            child_costs = costs[:, None] + branch.reshape(states.size, 1 << k)
            flat_costs = child_costs.reshape(-1)
            if n_obs > 0:
                keep = min(self.beam_width, flat_costs.size)
            else:
                keep = min(self.max_unpruned_width, flat_costs.size)
            if keep < flat_costs.size:
                kept_idx = np.argpartition(flat_costs, keep - 1)[:keep]
            else:
                kept_idx = np.arange(flat_costs.size)

            level = _LevelCache(
                parent_states=states,
                flat_states=flat_states,
                sorted_states=sorted_states,
                sort_order=sort_order,
                obs_pass_indices=pass_indices,
                obs_values=values,
                cost_matrix=matrix,
                kept_idx=kept_idx,
                beam_states=flat_states[kept_idx],
                beam_costs=flat_costs[kept_idx],
                parents=kept_idx // (1 << k),
                segments=(kept_idx % (1 << k)).astype(np.uint64),
            )
            if position < len(self._levels):
                self._levels[position] = level
            else:
                self._levels.append(level)
            states = level.beam_states
            costs = level.beam_costs

        # 4. Backtrack from the best leaf across *all* levels (cached + new).
        last = self._levels[n_segments - 1]
        best = int(np.argmin(last.beam_costs))
        segments = np.empty(n_segments, dtype=np.uint64)
        node = best
        for position in range(n_segments - 1, -1, -1):
            level = self._levels[position]
            segments[position] = level.segments[node]
            node = int(level.parents[node])

        message_bits = self.encoder.spine_generator.segments_to_bits(segments)
        self.candidates_explored_total += explored
        result = DecodeResult(
            message_bits=message_bits,
            path_cost=float(last.beam_costs[best]),
            candidates_explored=explored,
            beam_trace=tuple(int(level.kept_idx.size) for level in self._levels),
        )
        self._last_result = result
        return result
