"""The ideal maximum-likelihood decoder (exhaustive over all messages).

Equation (4) of the paper: the ML estimate is the message whose encoded
sequence is closest to the received sequence (Euclidean distance for AWGN,
Hamming distance for BSC).  The straightforward implementation enumerates
all ``2^n`` messages, which is only feasible for small ``n``; it exists in
this library for two reasons:

* correctness oracle — tests compare the bubble decoder against it and
  verify that, with a wide enough beam, the bubble decoder *is* the ML
  decoder;
* the theorem experiments (E3/E4) use it on short messages to study
  capacity gaps without beam-induced artefacts.

The enumeration is vectorised: all messages' spines are computed level by
level in one numpy pass, so decoding a 16-bit message costs a handful of
array operations over 65 536 rows rather than 65 536 Python iterations.
"""

from __future__ import annotations

import numpy as np

from repro.core.decoder_bubble import DecodeResult
from repro.core.encoder import ReceivedObservations, SpinalEncoder

__all__ = ["MLDecoder"]

_MAX_EXHAUSTIVE_BITS = 22


class MLDecoder:
    """Exhaustive maximum-likelihood decoder for short messages."""

    def __init__(self, encoder: SpinalEncoder, max_message_bits: int = _MAX_EXHAUSTIVE_BITS):
        if max_message_bits < 1:
            raise ValueError("max_message_bits must be positive")
        self.encoder = encoder
        self.max_message_bits = max_message_bits

    def decode(
        self, n_message_bits: int, observations: ReceivedObservations
    ) -> DecodeResult:
        """Return the exact ML estimate over all ``2^n`` candidate messages."""
        params = self.encoder.params
        if n_message_bits > self.max_message_bits:
            raise ValueError(
                f"exhaustive ML decoding of {n_message_bits} bits would enumerate "
                f"2^{n_message_bits} messages; the configured limit is "
                f"{self.max_message_bits} bits — use BubbleDecoder instead"
            )
        k = params.k
        n_segments = params.n_segments(n_message_bits)
        if observations.n_segments != n_segments:
            raise ValueError(
                f"observations were sized for {observations.n_segments} segments "
                f"but the message has {n_segments}"
            )

        n_messages = 1 << n_message_bits
        message_ids = np.arange(n_messages, dtype=np.uint64)

        # Segment t (0-based) of message id m consists of bits
        # [t*k, (t+1)*k) counted from the MSB of the n-bit message.
        hash_family = self.encoder.hash_family
        states = np.full(n_messages, hash_family.initial_state, dtype=np.uint64)
        costs = np.zeros(n_messages, dtype=np.float64)
        segment_mask = np.uint64((1 << k) - 1)
        candidates_explored = 0

        for position in range(n_segments):
            shift = np.uint64(n_message_bits - (position + 1) * k)
            segments = (message_ids >> shift) & segment_mask
            states = hash_family.hash_spine(states, segments)
            costs += self.encoder.branch_costs(states, position, observations)
            candidates_explored += n_messages

        best = int(np.argmin(costs))
        bits = np.array(
            [(best >> (n_message_bits - 1 - i)) & 1 for i in range(n_message_bits)],
            dtype=np.uint8,
        )
        return DecodeResult(
            message_bits=bits,
            path_cost=float(costs[best]),
            candidates_explored=candidates_explored,
            beam_trace=(n_messages,) * n_segments,
        )
