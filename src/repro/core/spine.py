"""Spine generation: the sequential hashed backbone of the code.

Section 3.1: the encoder divides the message into ``n/k`` segments
``M_1, ..., M_{n/k}`` and computes the *spine*

    s_0 = 0,   s_t = h(s_{t-1}, M_t).

Each spine value is subsequently expanded into symbols (one per pass); the
spine itself is computed once per message and is what makes encoding linear
in the message size.
"""

from __future__ import annotations

import numpy as np

from repro.core.hashing import SaltedHashFamily
from repro.utils.bitops import pack_segments, unpack_segments

__all__ = ["SpineGenerator"]


class SpineGenerator:
    """Computes spines from messages and exposes incremental extension.

    The decoder re-uses :meth:`extend` to "replay the encoder" over candidate
    message segments, which is the central trick that makes the tree decoder
    possible without inverting the hash function.
    """

    def __init__(self, hash_family: SaltedHashFamily) -> None:
        self.hash_family = hash_family

    @property
    def k(self) -> int:
        return self.hash_family.k

    def segment_values(self, message_bits: np.ndarray) -> np.ndarray:
        """Split a message into its ``k``-bit segment integers ``M_t``."""
        return pack_segments(message_bits, self.k)

    def segments_to_bits(self, segments: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`segment_values` (used when backtracking a decode)."""
        return unpack_segments(segments, self.k)

    def generate(self, message_bits: np.ndarray) -> np.ndarray:
        """Return the spine ``(s_1, ..., s_{n/k})`` for a message.

        The returned array has one ``uint64`` entry per segment; ``s_0`` is
        not included (it is :attr:`SaltedHashFamily.initial_state`).
        """
        segments = self.segment_values(message_bits)
        spine = np.empty(segments.size, dtype=np.uint64)
        state = self.hash_family.initial_state
        for t, segment in enumerate(segments):
            state = np.uint64(self.hash_family.hash_spine(state, segment))
            spine[t] = state
        return spine

    def extend(self, states: np.ndarray | int, segments: np.ndarray | int) -> np.ndarray:
        """Advance spine state(s) by one segment; broadcasts like ``h``.

        This is the one-step version used by the decoders: given candidate
        states at tree level ``t-1`` and candidate segments ``M_t``, it
        returns the candidate states at level ``t``.
        """
        return self.hash_family.hash_spine(states, segments)

    def generate_batch(self, messages_segments: np.ndarray) -> np.ndarray:
        """Compute spines for many messages at once.

        Parameters
        ----------
        messages_segments:
            Array of shape ``(n_messages, n_segments)`` of segment integers.

        Returns
        -------
        numpy.ndarray
            ``uint64`` array of the same shape holding every spine value of
            every message.  Used by the exhaustive ML decoder and by the
            distance-property experiments.
        """
        messages_segments = np.asarray(messages_segments, dtype=np.uint64)
        if messages_segments.ndim != 2:
            raise ValueError(
                f"expected (n_messages, n_segments) array, got shape "
                f"{messages_segments.shape}"
            )
        n_messages, n_segments = messages_segments.shape
        spines = np.empty_like(messages_segments)
        states = np.full(n_messages, self.hash_family.initial_state, dtype=np.uint64)
        for t in range(n_segments):
            states = self.hash_family.hash_spine(states, messages_segments[:, t])
            spines[:, t] = states
        return spines
