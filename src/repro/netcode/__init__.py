"""Network coding over rateless links: two-way relaying, broadcast, AF.

The paper's composability pitch — any link can "just keep sending symbols
until decoded" — extends beyond point-to-point links.  This package builds
the classic physical-layer network-coding constructions on top of the
code-agnostic :class:`~repro.phy.protocol.RatelessCode` protocol:

* :mod:`repro.netcode.twoway` — two-way relay exchanges where the relay
  XOR-combines the decoded payloads and broadcasts *one* rateless stream
  both endpoints un-XOR, with per-phase medium-use accounting against the
  4-phase one-way baseline;
* :mod:`repro.netcode.multicast` — the broadcast primitive (one stream,
  many receivers, medium charged once per symbol) and multicast trees;
* :mod:`repro.netcode.amplify` — amplify-and-forward composite channels
  (soft symbols forwarded without decoding, noise accumulating) including
  the analog-network-coding two-way variant.

Mesh topologies themselves (validated DAGs, the butterfly, XOR forwarding
under the shared event clock) live in :mod:`repro.link.topology`; the
``network-coding-gain`` registry experiment and ``repro mesh`` CLI sweep
both layers.
"""

from repro.netcode.amplify import (
    AmplifyForwardChannel,
    TwoWayAmplifyChannel,
    TwoWayAmplifyResult,
    run_two_way_af_exchange,
)
from repro.netcode.multicast import (
    MulticastResult,
    MulticastTreeConfig,
    MulticastTreeResult,
    broadcast_transmission,
    run_multicast_tree,
)
from repro.netcode.twoway import TwoWayConfig, TwoWayResult, run_two_way_exchange

__all__ = [
    "AmplifyForwardChannel",
    "MulticastResult",
    "MulticastTreeConfig",
    "MulticastTreeResult",
    "TwoWayAmplifyChannel",
    "TwoWayAmplifyResult",
    "TwoWayConfig",
    "TwoWayResult",
    "broadcast_transmission",
    "run_multicast_tree",
    "run_two_way_af_exchange",
    "run_two_way_exchange",
]
