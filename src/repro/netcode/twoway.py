"""Two-way relaying with XOR network coding over any rateless code family.

Endpoints A and B each want the other's payload, and can only reach each
other through a relay R.  The plain (one-way) scheme costs **four** phases
per exchange: A→R, R→B, B→R, R→A.  The network-coded scheme costs
**three**: both uplinks as before, then R XOR-combines the two decoded
payloads and *broadcasts one* rateless downlink stream; each endpoint
decodes the combination and un-XORs it with the payload it already knows
(its own).  The downlink cost drops from ``d_A + d_B`` symbol uses to
``max(d_A, d_B)`` — the headline "XOR halves the downlink" claim, which
this module *measures* per phase rather than assumes.

Rateless codes make the scheme clean at unequal SNRs: the relay does not
need to know either downlink's quality, it just streams until both
endpoints have decoded (the broadcast advantage accounting lives in
:func:`~repro.netcode.multicast.broadcast_transmission`).

Fairness discipline: both schemes share the *same* uplink runs (the uplink
phases are identical physics), and every leg of an exchange shares one code
*construction* seed — as a deployed system would use one code — with
per-leg demapper calibration and independence coming from each leg's
private noise stream.  The baseline unicasts and the XOR broadcast then
differ only in what is encoded and who listens, so the measured saving
isolates the network-coding gain from code-construction luck (an LT
neighbourhood draw that peels late would otherwise skew whichever leg it
landed on).  Every random stream derives from ``config.seed`` via labels,
so results are bit-identical in any process/worker layout.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.netcode.multicast import broadcast_transmission
from repro.obs.telemetry import current as current_telemetry
from repro.phy.families import channel_for_code, make_code
from repro.phy.session import CodecSession
from repro.utils.rng import derive_seed, spawn_rng

__all__ = ["TwoWayConfig", "TwoWayResult", "run_two_way_exchange"]


@dataclass(frozen=True)
class TwoWayConfig:
    """Operating point for a two-way relay exchange.

    ``snr_a_db`` governs both directions of the A↔R link and ``snr_b_db``
    the B↔R link (symmetric links, possibly asymmetric *ends* — the
    experiment's sweep axis).
    """

    family: str = "spinal"
    snr_a_db: float = 24.0
    snr_b_db: float = 24.0
    rounds: int = 4
    seed: int = 20111114
    smoke: bool = False
    max_symbols: int = 4096

    def with_(self, **changes) -> "TwoWayConfig":
        return replace(self, **changes)


@dataclass(frozen=True)
class TwoWayResult:
    """Per-round, per-phase medium-use accounting for both schemes.

    All arrays have one entry per round.  The uplink phases are shared
    between the schemes; the XOR scheme's third phase is ``broadcast``
    and the baseline's third and fourth are the two unicast downlinks.
    """

    config: TwoWayConfig
    uplink_a: np.ndarray
    uplink_b: np.ndarray
    broadcast: np.ndarray
    downlink_a: np.ndarray
    downlink_b: np.ndarray
    xor_delivered: np.ndarray
    baseline_delivered: np.ndarray

    @property
    def n_rounds(self) -> int:
        return int(self.uplink_a.size)

    @property
    def xor_total_uses(self) -> int:
        """Medium uses of the 3-phase XOR scheme, summed over rounds."""
        return int(self.uplink_a.sum() + self.uplink_b.sum() + self.broadcast.sum())

    @property
    def baseline_total_uses(self) -> int:
        """Medium uses of the 4-phase one-way scheme, summed over rounds."""
        return int(
            self.uplink_a.sum()
            + self.uplink_b.sum()
            + self.downlink_a.sum()
            + self.downlink_b.sum()
        )

    @property
    def medium_use_saving(self) -> float:
        """Fraction of the baseline's total medium uses the XOR scheme saves."""
        if self.baseline_total_uses == 0:
            return 0.0
        return 1.0 - self.xor_total_uses / self.baseline_total_uses

    @property
    def downlink_saving(self) -> float:
        """Fraction of the baseline's *downlink* uses the broadcast saves."""
        downlink = int(self.downlink_a.sum() + self.downlink_b.sum())
        if downlink == 0:
            return 0.0
        return 1.0 - int(self.broadcast.sum()) / downlink

    @property
    def xor_delivery_rate(self) -> float:
        return float(self.xor_delivered.mean()) if self.xor_delivered.size else 0.0

    @property
    def baseline_delivery_rate(self) -> float:
        return (
            float(self.baseline_delivered.mean()) if self.baseline_delivered.size else 0.0
        )


def _unicast_downlink(
    code, payload, snr_db: float, rng, max_symbols: int
) -> tuple[int, np.ndarray | None]:
    """One baseline downlink: symbols spent and the delivered payload (or None)."""
    outcome = broadcast_transmission(
        code,
        payload,
        [channel_for_code(code, snr_db)],
        [rng],
        max_symbols=max_symbols,
    )
    got = outcome.payloads[0] if outcome.decoded[0] else None
    return outcome.symbols_sent, (None if got is None else np.asarray(got, dtype=np.uint8))


def run_two_way_exchange(config: TwoWayConfig) -> TwoWayResult:
    """Run ``config.rounds`` two-way exchanges, measuring both schemes.

    Per round: fresh payloads for A and B; two uplink sessions (independent
    codes, the relay fully decodes); then (a) the XOR broadcast — one
    stream both endpoints decode and un-XOR with their own payload — and
    (b) the baseline's two unicast downlinks carrying the raw decoded
    payloads.  A failed uplink fails the round for both schemes (the relay
    has nothing trustworthy to forward); its phase uses still count.
    """
    tel = current_telemetry()
    seed = config.seed
    # One code construction for every leg (see the module docstring); the
    # snr_db argument only calibrates soft demappers, so per-leg instances
    # share all combinatorial structure (hash families, LT neighbourhoods).
    code_seed = derive_seed(seed, "netcode", "code")
    code_up_a = make_code(
        config.family, seed=code_seed, snr_db=config.snr_a_db, smoke=config.smoke
    )
    code_up_b = make_code(
        config.family, seed=code_seed, snr_db=config.snr_b_db, smoke=config.smoke
    )
    session_up_a = CodecSession(
        code_up_a,
        channel_for_code(code_up_a, config.snr_a_db),
        max_symbols=config.max_symbols,
    )
    session_up_b = CodecSession(
        code_up_b,
        channel_for_code(code_up_b, config.snr_b_db),
        max_symbols=config.max_symbols,
    )
    # The downlink code serves two listeners at possibly different SNRs;
    # its demapper is calibrated for the weaker one.
    code_down = make_code(
        config.family,
        seed=code_seed,
        snr_db=min(config.snr_a_db, config.snr_b_db),
        smoke=config.smoke,
    )
    payload_bits = session_up_a.payload_bits

    n = config.rounds
    uplink_a = np.zeros(n, dtype=np.int64)
    uplink_b = np.zeros(n, dtype=np.int64)
    broadcast = np.zeros(n, dtype=np.int64)
    downlink_a = np.zeros(n, dtype=np.int64)
    downlink_b = np.zeros(n, dtype=np.int64)
    xor_delivered = np.zeros(n, dtype=bool)
    baseline_delivered = np.zeros(n, dtype=bool)

    for rnd in range(n):
        with tel.span("netcode.exchange", round=rnd):
            payload_a = (
                spawn_rng(seed, "netcode", "payload-a", rnd)
                .integers(0, 2, size=payload_bits)
                .astype(np.uint8)
            )
            payload_b = (
                spawn_rng(seed, "netcode", "payload-b", rnd)
                .integers(0, 2, size=payload_bits)
                .astype(np.uint8)
            )
            up_a = session_up_a.run(payload_a, spawn_rng(seed, "netcode", "up-a", rnd))
            up_b = session_up_b.run(payload_b, spawn_rng(seed, "netcode", "up-b", rnd))
            uplink_a[rnd] = up_a.symbols_sent
            uplink_b[rnd] = up_b.symbols_sent
            if tel.enabled:
                tel.counter("netcode.phase_uses", int(up_a.symbols_sent), phase="uplink-a")
                tel.counter("netcode.phase_uses", int(up_b.symbols_sent), phase="uplink-b")
            a_hat = up_a.decoded_payload if up_a.success else None
            b_hat = up_b.decoded_payload if up_b.success else None
            if a_hat is None or b_hat is None:
                continue  # both schemes lose the round; uplink uses are charged

            # -- XOR scheme: one broadcast downlink ---------------------------
            combined = np.bitwise_xor(
                np.asarray(a_hat, dtype=np.uint8), np.asarray(b_hat, dtype=np.uint8)
            )
            if tel.enabled:
                tel.counter("netcode.xor_combines")
            bcast = broadcast_transmission(
                code_down,
                combined,
                [
                    channel_for_code(code_down, config.snr_a_db),
                    channel_for_code(code_down, config.snr_b_db),
                ],
                [
                    spawn_rng(seed, "netcode", "down-a", rnd),
                    spawn_rng(seed, "netcode", "down-b", rnd),
                ],
                max_symbols=config.max_symbols,
            )
            broadcast[rnd] = bcast.symbols_sent
            if tel.enabled:
                tel.counter(
                    "netcode.phase_uses", int(bcast.symbols_sent), phase="broadcast"
                )
            ok = bcast.all_decoded
            if ok:
                got_a, got_b = (np.asarray(p, dtype=np.uint8) for p in bcast.payloads)
                # Each endpoint un-XORs with the payload it already knows.
                ok = bool(
                    np.array_equal(np.bitwise_xor(got_a, payload_a), payload_b)
                    and np.array_equal(np.bitwise_xor(got_b, payload_b), payload_a)
                )
            xor_delivered[rnd] = ok

            # -- baseline: two unicast downlinks ------------------------------
            downlink_a[rnd], base_a = _unicast_downlink(
                code_down,
                b_hat,
                config.snr_a_db,
                spawn_rng(seed, "netcode", "base-down-a", rnd),
                config.max_symbols,
            )
            downlink_b[rnd], base_b = _unicast_downlink(
                code_down,
                a_hat,
                config.snr_b_db,
                spawn_rng(seed, "netcode", "base-down-b", rnd),
                config.max_symbols,
            )
            if tel.enabled:
                tel.counter("netcode.phase_uses", int(downlink_a[rnd]), phase="downlink-a")
                tel.counter("netcode.phase_uses", int(downlink_b[rnd]), phase="downlink-b")
            baseline_delivered[rnd] = bool(
                base_a is not None
                and base_b is not None
                and np.array_equal(base_a, payload_b)
                and np.array_equal(base_b, payload_a)
            )

    if tel.enabled:
        tel.counter("netcode.exchanges", n)
    return TwoWayResult(
        config=config,
        uplink_a=uplink_a,
        uplink_b=uplink_b,
        broadcast=broadcast,
        downlink_a=downlink_a,
        downlink_b=downlink_b,
        xor_delivered=xor_delivered,
        baseline_delivered=baseline_delivered,
    )
