"""Multicast over rateless codes: one stream, many receivers.

The wireless broadcast advantage is the reason network coding pays off: a
transmitted symbol costs the medium *once* no matter how many receivers
hear it.  Rateless codes compose perfectly with that — the sender simply
keeps streaming coded symbols until the *slowest* receiver has decoded, so
the medium cost of reaching ``N`` receivers is ``max`` (not ``sum``) of
their individual symbol requirements.  Fountain/LT codes were designed for
exactly this setting, but :func:`broadcast_transmission` is code-agnostic:
any registered :class:`~repro.phy.protocol.RatelessCode` family works.

Each receiver has its own channel (its own SNR) and its own private noise
generator, and applies the standard PR-1 decode gate
(``min_symbols_to_attempt``), so a broadcast receiver behaves exactly like
the same receiver on a unicast link — the only difference is the medium
accounting.  Receivers that have decoded stop listening; the stream ends
when all have decoded or the symbol budget is spent.

:func:`run_multicast_tree` composes broadcasts down a
:func:`~repro.link.topology.multicast_tree`: every interior node decodes
its parent's stream, then re-encodes (fresh seed) and broadcasts once to
all of its children, versus the baseline of one unicast session per child.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.link.topology import multicast_tree
from repro.obs.telemetry import current as current_telemetry
from repro.phy.families import channel_for_code, make_code
from repro.phy.protocol import RatelessCode
from repro.utils.rng import derive_seed, spawn_rng

__all__ = [
    "MulticastResult",
    "MulticastTreeConfig",
    "MulticastTreeResult",
    "broadcast_transmission",
    "run_multicast_tree",
]


@dataclass(frozen=True)
class MulticastResult:
    """Outcome of one rateless broadcast to ``n_receivers`` listeners.

    ``symbols_sent`` is the *medium* cost: every block is charged once,
    regardless of how many receivers were still listening.
    ``symbols_to_decode[i]`` is what receiver ``i`` had heard when it
    decoded (``-1`` if it never did).
    """

    n_receivers: int
    symbols_sent: int
    decoded: np.ndarray
    symbols_to_decode: np.ndarray
    decode_attempts: np.ndarray
    payloads: tuple

    @property
    def all_decoded(self) -> bool:
        return bool(self.decoded.all())

    @property
    def unicast_equivalent_symbols(self) -> int:
        """What the same deliveries would have cost as per-receiver unicasts.

        Lower-bound accounting: each receiver is charged exactly the symbols
        it actually needed from *this* stream (undecoded receivers charge
        the full broadcast length), so the broadcast-vs-unicast gap isolates
        the medium-sharing gain from code/noise variation.
        """
        per_receiver = np.where(
            self.decoded, self.symbols_to_decode, self.symbols_sent
        )
        return int(per_receiver.sum())


def broadcast_transmission(
    code: RatelessCode,
    payload: np.ndarray,
    channels,
    rngs,
    max_symbols: int = 4096,
    termination: str = "genie",
) -> MulticastResult:
    """Stream one rateless encoding until every receiver decodes (or budget).

    ``channels[i]`` and ``rngs[i]`` belong to receiver ``i``: every receiver
    hears every transmitted block through its own channel with its own
    private noise stream, so results are independent of receiver order.
    The sender is charged one medium use per transmitted symbol, once.
    """
    if len(channels) != len(rngs) or not channels:
        raise ValueError("need one channel and one rng per receiver (at least one)")
    if termination not in ("genie", "self"):
        raise ValueError(f"unknown termination rule {termination!r}")
    payload = np.asarray(payload, dtype=np.uint8)
    if payload.size != code.info.payload_bits:
        raise ValueError(
            f"expected a payload of {code.info.payload_bits} bits, got {payload.size}"
        )
    tel = current_telemetry()
    n = len(channels)
    source = code.new_encoder(payload)
    decoders = [code.new_decoder() for _ in range(n)]
    reference = code.reference(payload) if termination == "genie" else None
    min_attempt = code.min_symbols_to_attempt()

    symbols_sent = 0
    delivered = np.zeros(n, dtype=np.int64)
    decoded = np.zeros(n, dtype=bool)
    symbols_to_decode = np.full(n, -1, dtype=np.int64)
    attempts = np.zeros(n, dtype=np.int64)
    statuses = [None] * n

    while not decoded.all() and symbols_sent < max_symbols:
        block = source.next_block()
        symbols_sent += block.n_symbols
        if tel.enabled:
            tel.counter("netcode.broadcast_blocks")
            tel.counter("netcode.broadcast_symbols", int(block.n_symbols))
        for i in range(n):
            if decoded[i]:
                continue
            received = channels[i].transmit(block.values, rngs[i])
            attempt = (
                block.n_symbols > 0
                and delivered[i] + block.n_symbols >= min_attempt
            )
            status = decoders[i].absorb(block, received, attempt=attempt)
            delivered[i] += block.n_symbols
            if not attempt:
                continue
            attempts[i] += 1
            statuses[i] = status
            if termination == "genie":
                done = status.estimate is not None and bool(
                    np.array_equal(status.estimate, reference)
                )
            else:
                done = bool(status.verified)
            if done:
                decoded[i] = True
                symbols_to_decode[i] = delivered[i]
                if tel.enabled:
                    tel.observe("netcode.broadcast_symbols_to_decode", delivered[i])

    for i in range(n):
        if statuses[i] is None:
            statuses[i] = decoders[i].decode_now()
            attempts[i] += 1

    return MulticastResult(
        n_receivers=n,
        symbols_sent=symbols_sent,
        decoded=decoded,
        symbols_to_decode=symbols_to_decode,
        decode_attempts=attempts,
        payloads=tuple(s.payload for s in statuses),
    )


@dataclass(frozen=True)
class MulticastTreeConfig:
    """One rateless multicast down a ``branching``-ary tree of ``depth`` levels."""

    family: str = "lt"
    depth: int = 2
    branching: int = 2
    snr_db: float = 12.0
    rounds: int = 2
    seed: int = 20111114
    smoke: bool = False
    max_symbols: int = 4096


@dataclass(frozen=True)
class MulticastTreeResult:
    """Broadcast-vs-unicast medium accounting for a multicast tree."""

    config: MulticastTreeConfig
    n_leaves: int
    broadcast_symbols: np.ndarray
    unicast_symbols: np.ndarray
    rounds_delivered: np.ndarray

    @property
    def broadcast_total(self) -> int:
        return int(self.broadcast_symbols.sum())

    @property
    def unicast_total(self) -> int:
        return int(self.unicast_symbols.sum())

    @property
    def medium_use_saving(self) -> float:
        """Fraction of unicast medium uses the broadcast tree avoided."""
        if self.unicast_total == 0:
            return 0.0
        return 1.0 - self.broadcast_total / self.unicast_total

    @property
    def delivery_rate(self) -> float:
        return float(self.rounds_delivered.mean()) if self.rounds_delivered.size else 0.0


def run_multicast_tree(config: MulticastTreeConfig) -> MulticastTreeResult:
    """Push payloads from the root to every leaf, broadcast vs unicast.

    Interior nodes decode-and-forward: each broadcasts *one* stream to all
    of its children (fresh code seed per node), costing ``max`` of the
    children's symbol needs; the unicast baseline runs one independent
    session per child with the same code and channels, costing ``sum``.
    Everything derives from ``config.seed`` via labels, so results are
    identical in any process or worker layout.
    """
    topology = multicast_tree(config.depth, config.branching, config.snr_db)
    seed = config.seed
    tel = current_telemetry()
    broadcast_symbols = np.zeros(config.rounds, dtype=np.int64)
    unicast_symbols = np.zeros(config.rounds, dtype=np.int64)
    rounds_delivered = np.zeros(config.rounds, dtype=bool)

    codes = {
        node: make_code(
            config.family,
            seed=derive_seed(seed, "netcode", "tree-code", node),
            snr_db=config.snr_db,
            smoke=config.smoke,
        )
        for node in topology.nodes
        if topology.out_edges(node)
    }
    payload_bits = next(iter(codes.values())).info.payload_bits

    for rnd in range(config.rounds):
        with tel.span("netcode.multicast_round", round=rnd):
            root_payload = (
                spawn_rng(seed, "netcode", "tree-payload", rnd)
                .integers(0, 2, size=payload_bits)
                .astype(np.uint8)
            )
            # estimates[node] = what the node believes the payload is
            estimates = {"root": root_payload}
            baseline_estimates = {"root": root_payload}
            for node in topology.topological_order:
                out = topology.out_edges(node)
                if not out or node not in estimates:
                    continue
                code = codes[node]
                children = [topology.edges[e].dst for e in out]
                channels = [channel_for_code(code, topology.edges[e].snr_db) for e in out]
                rngs = [
                    spawn_rng(seed, "netcode", "tree-bcast", rnd, node, child)
                    for child in children
                ]
                outcome = broadcast_transmission(
                    code,
                    estimates[node],
                    channels,
                    rngs,
                    max_symbols=config.max_symbols,
                )
                broadcast_symbols[rnd] += outcome.symbols_sent
                for child, ok, got in zip(children, outcome.decoded, outcome.payloads):
                    if ok and got is not None:
                        estimates[child] = np.asarray(got, dtype=np.uint8)
                # Baseline: one unicast stream per child, same code, same SNRs.
                base_payload = baseline_estimates.get(node)
                if base_payload is not None:
                    for e, child in zip(out, children):
                        unicast = broadcast_transmission(
                            code,
                            base_payload,
                            [channel_for_code(code, topology.edges[e].snr_db)],
                            [spawn_rng(seed, "netcode", "tree-ucast", rnd, node, child)],
                            max_symbols=config.max_symbols,
                        )
                        unicast_symbols[rnd] += unicast.symbols_sent
                        if unicast.decoded[0] and unicast.payloads[0] is not None:
                            baseline_estimates[child] = np.asarray(
                                unicast.payloads[0], dtype=np.uint8
                            )
            rounds_delivered[rnd] = all(
                leaf in estimates
                and np.array_equal(estimates[leaf], root_payload)
                for leaf in topology.sinks
            )
    return MulticastTreeResult(
        config=config,
        n_leaves=len(topology.sinks),
        broadcast_symbols=broadcast_symbols,
        unicast_symbols=unicast_symbols,
        rounds_delivered=rounds_delivered,
    )
