"""Amplify-and-forward relaying: soft symbols forwarded without decoding.

The comparison point for decode-and-forward network coding: the relay never
decodes, it just rescales its noisy reception to its transmit power and
retransmits.  Noise therefore *accumulates* across hops — the effective
end-to-end SNR is strictly below the worse hop — but the relay needs no
codebook, adds no decode latency, and (in the two-way variant) performs
*analog* network coding for free: both endpoints transmit simultaneously,
the relay amplifies the superposition, and each endpoint subtracts its own
(known) contribution before decoding the other's signal.

Both channels compose with any *symbol-domain* rateless code: the code just
sees a worse AWGN channel and streams more symbols, which is exactly the
paper's pitch — no provisioning for the composed SNR is needed.  Bit-domain
families (LT over BSC) are rejected: there is no soft symbol to forward.

Accounting: each end-to-end symbol costs the medium ``uses_per_symbol = 2``
(uplink slot + downlink slot).  The two-way variant's two directions share
slots (superposed uplink, broadcast downlink), so one exchange costs
``2 * max(n_A, n_B)`` — the analog counterpart of the XOR scheme's
``max`` downlink accounting.

Modelling note: the two directions of :func:`run_two_way_af_exchange` draw
their relay noise independently.  Marginal per-direction statistics are
exact; the (second-order) cross-direction noise correlation through the
shared relay amplifier is not modelled.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.channels.base import SymbolChannel
from repro.netcode.twoway import TwoWayConfig
from repro.obs.telemetry import current as current_telemetry
from repro.phy.families import make_code
from repro.phy.session import CodecSession
from repro.utils.rng import derive_seed, spawn_rng
from repro.utils.units import db_to_linear, linear_to_db

__all__ = [
    "AmplifyForwardChannel",
    "TwoWayAmplifyChannel",
    "TwoWayAmplifyResult",
    "run_two_way_af_exchange",
]


class AmplifyForwardChannel(SymbolChannel):
    """One-way relay that rescales and retransmits its noisy reception.

    The relay receives ``y = x + n1`` (uplink noise energy ``N1``), scales
    by ``g = sqrt(P / (P + N1))`` so its transmit power is back at ``P``,
    and sends ``g*y``; the destination receives ``g*y + n2`` and normalises
    by ``g``, seeing ``x + n1 + n2/g`` — an AWGN channel with noise energy
    ``N1 + N2*(P + N1)/P``.  Every end-to-end symbol occupies the medium
    twice (one uplink slot, one downlink slot).
    """

    uses_per_symbol = 2

    def __init__(
        self,
        uplink_snr_db: float,
        downlink_snr_db: float,
        signal_power: float = 1.0,
    ) -> None:
        if signal_power <= 0:
            raise ValueError(f"signal_power must be positive, got {signal_power}")
        self.uplink_snr_db = float(uplink_snr_db)
        self.downlink_snr_db = float(downlink_snr_db)
        self.signal_power = float(signal_power)
        self.uplink_noise = self.signal_power / db_to_linear(uplink_snr_db)
        self.downlink_noise = self.signal_power / db_to_linear(downlink_snr_db)
        #: Power normalisation at the relay: amplify the (signal + uplink
        #: noise) mixture back to the transmit power budget.
        self.gain_squared = self.signal_power / (self.signal_power + self.uplink_noise)
        self.effective_noise = self.uplink_noise + self.downlink_noise / self.gain_squared

    @property
    def effective_snr_db(self) -> float:
        """The composed end-to-end SNR (strictly below both hop SNRs)."""
        return linear_to_db(self.signal_power / self.effective_noise)

    def transmit(self, values: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        values = np.asarray(values, dtype=np.complex128)
        received = values + _noise(self.uplink_noise, values.shape, rng)
        received = received + _noise(self.downlink_noise, values.shape, rng) / math.sqrt(
            self.gain_squared
        )
        return received

    def describe(self) -> str:
        return (
            f"AmplifyForward(up={self.uplink_snr_db:.1f} dB, "
            f"down={self.downlink_snr_db:.1f} dB, "
            f"eff={self.effective_snr_db:.1f} dB)"
        )


class TwoWayAmplifyChannel(SymbolChannel):
    """Analog network coding: superposed uplinks, one amplified broadcast.

    Both endpoints transmit simultaneously; the relay receives
    ``x_A + x_B + n_R`` (power ``2P + N_R``), scales it back to ``P`` with
    ``g = sqrt(P / (2P + N_R))`` and broadcasts.  An endpoint subtracts its
    own known transmission ``g*x_self``, then normalises by ``g``, seeing
    the *other* endpoint's signal through noise ``N_R + N_E*(2P + N_R)/P``.
    This channel models one direction of that exchange (the other endpoint's
    signal as seen after self-interference cancellation).
    """

    uses_per_symbol = 2

    def __init__(
        self,
        relay_snr_db: float,
        endpoint_snr_db: float,
        signal_power: float = 1.0,
    ) -> None:
        if signal_power <= 0:
            raise ValueError(f"signal_power must be positive, got {signal_power}")
        self.relay_snr_db = float(relay_snr_db)
        self.endpoint_snr_db = float(endpoint_snr_db)
        self.signal_power = float(signal_power)
        self.relay_noise = self.signal_power / db_to_linear(relay_snr_db)
        self.endpoint_noise = self.signal_power / db_to_linear(endpoint_snr_db)
        self.gain_squared = self.signal_power / (
            2.0 * self.signal_power + self.relay_noise
        )
        self.effective_noise = self.relay_noise + self.endpoint_noise / self.gain_squared

    @property
    def effective_snr_db(self) -> float:
        return linear_to_db(self.signal_power / self.effective_noise)

    def transmit(self, values: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        values = np.asarray(values, dtype=np.complex128)
        received = values + _noise(self.relay_noise, values.shape, rng)
        received = received + _noise(
            self.endpoint_noise, values.shape, rng
        ) / math.sqrt(self.gain_squared)
        return received

    def describe(self) -> str:
        return (
            f"TwoWayAmplify(relay={self.relay_snr_db:.1f} dB, "
            f"endpoint={self.endpoint_snr_db:.1f} dB, "
            f"eff={self.effective_snr_db:.1f} dB)"
        )


def _noise(energy: float, shape, rng: np.random.Generator) -> np.ndarray:
    sigma_per_dim = math.sqrt(energy / 2.0)
    return sigma_per_dim * (
        rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
    )


@dataclass(frozen=True)
class TwoWayAmplifyResult:
    """Per-round accounting for the analog-network-coding exchange.

    ``slot_uses[r] = 2 * max(n_A, n_B)``: the directions share superposed
    uplink slots and broadcast downlink slots, so the exchange is paced by
    the slower direction.
    """

    config: TwoWayConfig
    symbols_a: np.ndarray
    symbols_b: np.ndarray
    delivered: np.ndarray
    effective_snr_a_db: float
    effective_snr_b_db: float

    @property
    def slot_uses(self) -> np.ndarray:
        return 2 * np.maximum(self.symbols_a, self.symbols_b)

    @property
    def total_uses(self) -> int:
        return int(self.slot_uses.sum())

    @property
    def delivery_rate(self) -> float:
        return float(self.delivered.mean()) if self.delivered.size else 0.0


def run_two_way_af_exchange(config: TwoWayConfig) -> TwoWayAmplifyResult:
    """Exchange payloads through an amplify-and-forward relay (no decoding).

    Direction A→B runs A's code over a :class:`TwoWayAmplifyChannel` whose
    relay leg is A's link SNR and whose endpoint leg is B's, and vice
    versa.  ``symbols_a[r]`` is what B needed to decode A's payload in
    round ``r`` (the per-direction rateless adaptation to the composed
    channel); the medium cost is ``slot_uses``.
    """
    code_ab = make_code(
        config.family,
        seed=derive_seed(config.seed, "netcode", "af-ab"),
        snr_db=config.snr_a_db,
        smoke=config.smoke,
    )
    code_ba = make_code(
        config.family,
        seed=derive_seed(config.seed, "netcode", "af-ba"),
        snr_db=config.snr_b_db,
        smoke=config.smoke,
    )
    if code_ab.info.domain != "symbol":
        raise ValueError(
            f"amplify-and-forward needs a soft symbol channel; code family "
            f"{config.family!r} is {code_ab.info.domain}-domain"
        )
    tel = current_telemetry()
    channel_ab = TwoWayAmplifyChannel(config.snr_a_db, config.snr_b_db)
    channel_ba = TwoWayAmplifyChannel(config.snr_b_db, config.snr_a_db)
    session_ab = CodecSession(code_ab, channel_ab, max_symbols=config.max_symbols)
    session_ba = CodecSession(code_ba, channel_ba, max_symbols=config.max_symbols)
    payload_bits = code_ab.info.payload_bits

    n = config.rounds
    symbols_a = np.zeros(n, dtype=np.int64)
    symbols_b = np.zeros(n, dtype=np.int64)
    delivered = np.zeros(n, dtype=bool)
    for rnd in range(n):
        with tel.span("netcode.af_exchange", round=rnd):
            payload_a = (
                spawn_rng(config.seed, "netcode", "payload-a", rnd)
                .integers(0, 2, size=payload_bits)
                .astype(np.uint8)
            )
            payload_b = (
                spawn_rng(config.seed, "netcode", "payload-b", rnd)
                .integers(0, 2, size=payload_bits)
                .astype(np.uint8)
            )
            to_b = session_ab.run(
                payload_a, spawn_rng(config.seed, "netcode", "af-ab", rnd)
            )
            to_a = session_ba.run(
                payload_b, spawn_rng(config.seed, "netcode", "af-ba", rnd)
            )
            symbols_a[rnd] = to_b.symbols_sent
            symbols_b[rnd] = to_a.symbols_sent
            delivered[rnd] = bool(to_b.payload_correct and to_a.payload_correct)
            if tel.enabled:
                tel.counter(
                    "netcode.phase_uses",
                    2 * int(max(to_b.symbols_sent, to_a.symbols_sent)),
                    phase="af-slots",
                )
    return TwoWayAmplifyResult(
        config=config,
        symbols_a=symbols_a,
        symbols_b=symbols_b,
        delivered=delivered,
        effective_snr_a_db=channel_ba.effective_snr_db,
        effective_snr_b_db=channel_ab.effective_snr_db,
    )
