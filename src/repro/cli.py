"""Command-line interface for quick measurements without writing a script.

Installed (or run via ``python -m repro.cli``) it exposes the most common
operations:

* ``rate``      — measure the spinal rate at one or more AWGN SNRs;
* ``bsc``       — measure the bit-mode spinal rate at one or more crossover
  probabilities;
* ``figure2``   — regenerate a coarse Figure 2 (spinal + bounds, optional LDPC);
* ``ldpc``      — measure one fixed-rate LDPC configuration across SNRs;
* ``transport`` — simulate the sliding-window ARQ transport (go-back-N /
  selective-repeat, lossy delayed ACKs, multi-hop decode-and-forward relay)
  and report measured goodput over the protocol grid.

Every command prints a plain-text table (and optionally an ASCII chart), so
the CLI is usable over ssh on a machine with nothing but this package and
numpy/scipy installed.

The spinal commands accept ``--workers/-j N`` to fan Monte-Carlo trials out
over worker processes (per-trial seeding makes the results identical for any
worker count) and ``--decoder {incremental,bubble}`` to pick between the
stateful incremental decoding engine (default) and the from-scratch
reference decoder.
"""

from __future__ import annotations

import argparse
from fractions import Fraction

from repro.baselines.ldpc_system import FixedRateLdpcSystem, LdpcConfig
from repro.core.params import SpinalParams
from repro.experiments.figure2 import figure2_table
from repro.experiments.runner import (
    SpinalRunConfig,
    run_spinal_bsc_curve,
    run_spinal_curve,
)
from repro.experiments.transport_sweep import (
    TransportSweepConfig,
    run_transport_sweep,
    transport_sweep_table,
)
from repro.theory.capacity import awgn_capacity_db, bsc_capacity
from repro.utils.asciiplot import ascii_plot
from repro.utils.results import render_table
from repro.utils.rng import spawn_rng

__all__ = ["build_parser", "main"]


def _add_runner_arguments(parser: argparse.ArgumentParser) -> None:
    """Arguments shared by every command that drives the Monte-Carlo runner."""
    parser.add_argument(
        "--decoder",
        choices=("incremental", "bubble"),
        default="incremental",
        help="decoding engine: stateful incremental (fast) or from-scratch bubble",
    )
    parser.add_argument(
        "--workers",
        "-j",
        type=int,
        default=1,
        help="worker processes for the Monte-Carlo trials (results are "
        "identical for any worker count)",
    )


def _add_common_spinal_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--payload-bits", type=int, default=24, help="message size in bits")
    parser.add_argument("--k", type=int, default=8, help="segment size in bits")
    parser.add_argument("--c", type=int, default=10, help="bits per constellation dimension")
    parser.add_argument("--beam-width", "-B", type=int, default=16, help="decoder beam width")
    parser.add_argument("--trials", type=int, default=20, help="Monte-Carlo trials per point")
    parser.add_argument("--seed", type=int, default=20111114, help="base random seed")
    parser.add_argument(
        "--puncturing",
        choices=("none", "symbol", "strided", "tail-first"),
        default="tail-first",
        help="puncturing schedule",
    )
    _add_runner_arguments(parser)
    parser.add_argument("--plot", action="store_true", help="also print an ASCII chart")


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Rateless spinal codes (HotNets 2011) — measurement CLI",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    rate = subparsers.add_parser("rate", help="spinal rate over AWGN at given SNRs")
    rate.add_argument("snrs", type=float, nargs="+", help="SNR values in dB")
    _add_common_spinal_arguments(rate)

    bsc = subparsers.add_parser("bsc", help="bit-mode spinal rate over a BSC")
    bsc.add_argument("crossovers", type=float, nargs="+", help="crossover probabilities")
    _add_common_spinal_arguments(bsc)

    figure2 = subparsers.add_parser("figure2", help="regenerate a coarse Figure 2")
    figure2.add_argument("--snr-min", type=float, default=-10.0)
    figure2.add_argument("--snr-max", type=float, default=40.0)
    figure2.add_argument("--snr-step", type=float, default=5.0)
    figure2.add_argument("--trials", type=int, default=15)
    _add_runner_arguments(figure2)
    figure2.add_argument("--with-ldpc", action="store_true", help="include the LDPC baselines")
    figure2.add_argument("--ldpc-frames", type=int, default=20)
    figure2.add_argument("--plot", action="store_true")

    transport = subparsers.add_parser(
        "transport",
        help="measured goodput of the sliding-window ARQ transport over a relay chain",
    )
    transport.add_argument("--snr", type=float, default=8.0, help="first-hop SNR in dB")
    transport.add_argument(
        "--snr-step",
        type=float,
        default=-2.0,
        help="SNR change per additional hop in dB (default: each hop 2 dB worse)",
    )
    transport.add_argument(
        "--hops", type=int, nargs="+", default=[1, 2], help="relay hop counts to sweep"
    )
    transport.add_argument(
        "--protocol",
        choices=("go-back-n", "selective-repeat", "both"),
        default="both",
        help="ARQ protocol(s) to sweep",
    )
    transport.add_argument(
        "--window", type=int, nargs="+", default=[1, 2, 4], help="sender window sizes"
    )
    transport.add_argument(
        "--ack-delay",
        type=int,
        nargs="+",
        default=[0, 8, 32],
        help="feedback RTTs in symbol-times",
    )
    transport.add_argument(
        "--ack-loss", type=float, default=0.0, help="reverse-channel ACK loss probability"
    )
    transport.add_argument("--packets", type=int, default=8, help="packets per simulation")
    transport.add_argument("--payload-bits", type=int, default=24, help="payload bits per packet")
    transport.add_argument("--k", type=int, default=8, help="segment size in bits")
    transport.add_argument("--c", type=int, default=10, help="bits per constellation dimension")
    transport.add_argument("--beam-width", "-B", type=int, default=16, help="decoder beam width")
    transport.add_argument("--seed", type=int, default=20111114, help="base random seed")
    transport.add_argument(
        "--max-symbols",
        type=int,
        default=4096,
        help="per-packet abort budget in channel uses",
    )
    _add_runner_arguments(transport)
    transport.add_argument("--plot", action="store_true", help="also print an ASCII chart")

    ldpc = subparsers.add_parser("ldpc", help="achieved rate of one LDPC configuration")
    ldpc.add_argument("snrs", type=float, nargs="+", help="SNR values in dB")
    ldpc.add_argument("--rate", type=str, default="1/2", help="code rate (1/2, 2/3, 3/4, 5/6)")
    ldpc.add_argument(
        "--modulation",
        choices=("BPSK", "QAM-4", "QAM-16", "QAM-64"),
        default="QAM-16",
    )
    ldpc.add_argument("--frames", type=int, default=40)
    ldpc.add_argument("--iterations", type=int, default=40)
    ldpc.add_argument("--seed", type=int, default=20111114)

    return parser


def _spinal_config(args: argparse.Namespace, bit_mode: bool) -> SpinalRunConfig:
    params = SpinalParams(k=args.k, c=args.c if not bit_mode else 10, bit_mode=bit_mode)
    return SpinalRunConfig(
        payload_bits=args.payload_bits,
        params=params,
        beam_width=args.beam_width,
        puncturing=args.puncturing,
        n_trials=args.trials,
        seed=args.seed,
        decoder=args.decoder,
        n_workers=args.workers,
    )


def _command_rate(args: argparse.Namespace) -> str:
    config = _spinal_config(args, bit_mode=False)
    sweep = run_spinal_curve(config, args.snrs)
    rows = [
        (snr, awgn_capacity_db(snr), point.mean_rate, point.rate_std_error)
        for snr, point in zip(args.snrs, sweep.points)
    ]
    output = render_table(["SNR(dB)", "capacity", "rate (b/sym)", "stderr"], rows)
    if args.plot and len(args.snrs) >= 2:
        output += "\n\n" + ascii_plot(
            args.snrs,
            {"capacity": [r[1] for r in rows], "spinal": [r[2] for r in rows]},
            x_label="SNR (dB)",
            y_label="bits/symbol",
        )
    return output


def _command_bsc(args: argparse.Namespace) -> str:
    config = _spinal_config(args, bit_mode=True)
    sweep = run_spinal_bsc_curve(config, args.crossovers)
    rows = [
        (p, bsc_capacity(p), point.mean_rate, point.rate_std_error)
        for p, point in zip(args.crossovers, sweep.points)
    ]
    output = render_table(["p", "capacity", "rate (b/bit)", "stderr"], rows)
    if args.plot and len(args.crossovers) >= 2:
        output += "\n\n" + ascii_plot(
            args.crossovers,
            {"capacity": [r[1] for r in rows], "spinal": [r[2] for r in rows]},
            x_label="crossover probability",
            y_label="bits/channel bit",
        )
    return output


def _command_figure2(args: argparse.Namespace) -> str:
    snrs = []
    snr = args.snr_min
    while snr <= args.snr_max + 1e-9:
        snrs.append(round(snr, 6))
        snr += args.snr_step
    config = SpinalRunConfig(
        n_trials=args.trials, decoder=args.decoder, n_workers=args.workers
    )
    data = figure2_table(
        snr_values_db=snrs,
        spinal_config=config,
        include_ldpc=args.with_ldpc,
        ldpc_frames=args.ldpc_frames,
    )
    output = data.as_table()
    crossover = data.spinal_beats_fixed_block_until_db()
    if crossover is not None:
        output += f"\nspinal beats the n=24 fixed-block bound up to {crossover:.1f} dB"
    if args.plot:
        output += "\n\n" + ascii_plot(
            snrs,
            {
                "Shannon": data.shannon.mean_rates(),
                "spinal": data.spinal.mean_rates(),
            },
            x_label="SNR (dB)",
            y_label="bits/symbol",
        )
    return output


def _command_transport(args: argparse.Namespace) -> str:
    protocols = (
        ("go-back-n", "selective-repeat") if args.protocol == "both" else (args.protocol,)
    )
    config = TransportSweepConfig(
        payload_bits=args.payload_bits,
        params=SpinalParams(k=args.k, c=args.c),
        beam_width=args.beam_width,
        snr_db=args.snr,
        snr_step_db=args.snr_step,
        n_packets=args.packets,
        protocols=protocols,
        windows=tuple(args.window),
        ack_delays=tuple(args.ack_delay),
        hop_counts=tuple(args.hops),
        ack_loss=args.ack_loss,
        max_symbols=args.max_symbols,
        seed=args.seed,
        decoder=args.decoder,
        n_workers=args.workers,
    )
    rows = run_transport_sweep(config)
    output = transport_sweep_table(rows)
    if args.plot and len(config.windows) >= 2:
        # Goodput vs window size, one curve per protocol, at the first
        # (hops, ack delay) grid point — the sweep's headline trade-off.
        hops0, delay0 = config.hop_counts[0], config.ack_delays[0]
        curves = {}
        for protocol in protocols:
            curves[protocol] = [
                row.goodput
                for row in rows
                if row.hops == hops0 and row.protocol == protocol and row.ack_delay == delay0
            ]
        output += "\n\n" + ascii_plot(
            list(config.windows),
            curves,
            x_label=f"window size (hops={hops0}, ack delay={delay0})",
            y_label="goodput",
        )
    return output


def _command_ldpc(args: argparse.Namespace) -> str:
    config = LdpcConfig(Fraction(args.rate), args.modulation)
    system = FixedRateLdpcSystem(config, max_iterations=args.iterations)
    rows = []
    for snr in args.snrs:
        rng = spawn_rng(args.seed, "cli-ldpc", snr)
        fer = system.frame_error_rate(snr, args.frames, rng)
        rows.append((snr, system.nominal_rate, fer, system.nominal_rate * (1 - fer)))
    return render_table(
        ["SNR(dB)", "nominal rate", "FER", "achieved rate"], rows
    )


def main(argv: list[str] | None = None) -> str:
    """Entry point; returns the rendered output (also printed to stdout)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    commands = {
        "rate": _command_rate,
        "bsc": _command_bsc,
        "figure2": _command_figure2,
        "ldpc": _command_ldpc,
        "transport": _command_transport,
    }
    output = commands[args.command](args)
    print(output)
    return output


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    main()
