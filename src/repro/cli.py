"""Command-line interface over the unified experiment registry.

The registry commands work for *every* experiment in
``repro.experiments`` (see ``repro list``):

* ``list``   — enumerate registered experiments (``--markdown`` emits the
  README catalog table);
* ``run``    — run one experiment (or ``--all``) with declarative axis
  overrides (``--set axis=v1,v2``), process fan-out (``--workers/-j``), and
  persistence to a JSON results store (``--out``, default ``results/``);
  re-running a spec resumes from its cached cells, ``--smoke`` shrinks every
  experiment to a seconds-scale configuration;
* ``report`` — re-render the table (``--csv`` for machine-readable output,
  ``--plot`` for an ASCII chart) of a persisted run file without
  recomputing anything; failed cells render as footnoted rows either way.

The historical commands remain as thin back-compat aliases over the same
registry:

* ``rate``      — measure the spinal rate at one or more AWGN SNRs;
* ``bsc``       — measure the bit-mode spinal rate at one or more crossover
  probabilities;
* ``figure2``   — regenerate a coarse Figure 2 (spinal + bounds, optional LDPC);
* ``ldpc``      — measure one fixed-rate LDPC configuration across SNRs;
* ``transport`` — simulate the sliding-window ARQ transport and report
  measured goodput over the protocol grid.

``serve-soak`` drives the async session service (``repro.serve``): N
concurrent spinal sessions through one event loop with batched decoding and
bounded-admission backpressure, reporting throughput, latency percentiles
and queue metrics (``--json`` emits the machine-readable summary the CI
smoke job archives).

``city-soak`` drives the multi-cell network simulator (``repro.net``): a
grid of SINR-coupled cells with mobile users, hysteresis handoff and a
choice of fidelity tier (bit-exact PHY or the calibrated flow fast path),
optionally fanning seed-independent replicas across worker processes
(``--json`` emits the machine-readable summary the CI smoke job archives).

``mesh`` drives the network-coding subsystem (``repro.netcode`` and the DAG
layer of ``repro.link.topology``): a two-way XOR relay exchange, the
butterfly DAG, or a multicast tree, reporting coded-vs-plain medium uses
(``--json`` emits the machine-readable summary the CI smoke job archives).

``run``, ``serve-soak``, ``city-soak`` and ``mesh`` accept ``--telemetry
DIR``: the bit-transparent sink (``repro.obs``) is installed before the
simulation is constructed and a snapshot is exported to ``DIR`` afterwards
(JSONL event stream, Chrome ``trace_event`` timeline, Prometheus text
page).  Adding ``--telemetry-stream`` flushes each span to
``DIR/spans.part.jsonl`` the moment it closes — crash-salvageable, with a
byte-identical final export.  ``obs report`` renders a saved JSONL stream
as tables and ASCII histograms; ``obs check`` validates the three exporter
files in a directory.

Every command prints a plain-text table (and optionally an ASCII chart), so
the CLI is usable over ssh on a machine with nothing but this package and
numpy/scipy installed.  ``--workers/-j N`` fans Monte-Carlo work out over
worker processes with per-unit seeding, so results are identical for any
worker count.
"""

from __future__ import annotations

import argparse

from repro.experiments import registry
from repro.experiments.figure2 import figure2_table
from repro.experiments.registry import (
    render_run,
    render_run_csv,
    render_run_plot,
    run_experiment,
)
from repro.experiments.transport_sweep import (
    TransportSweepConfig,
    run_transport_sweep,
    transport_sweep_table,
)
from repro.core.params import SpinalParams
from repro.utils.asciiplot import ascii_plot
from repro.utils.results import render_table
from repro.utils.store import RunStore, read_run

__all__ = ["build_parser", "main"]


def _add_telemetry_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--telemetry",
        metavar="DIR",
        default=None,
        help="record counters/histograms/spans and export them to DIR "
        "(telemetry.jsonl, trace.json, metrics.prom); runs are "
        "bit-identical with or without this flag",
    )
    parser.add_argument(
        "--telemetry-stream",
        action="store_true",
        help="stream each span to DIR/spans.part.jsonl the moment it "
        "closes (requires --telemetry; crash-salvageable, and the final "
        "telemetry.jsonl is byte-identical to a buffered run)",
    )


def _add_runner_arguments(parser: argparse.ArgumentParser) -> None:
    """Arguments shared by every command that drives the Monte-Carlo runner."""
    parser.add_argument(
        "--decoder",
        choices=("incremental", "vectorized", "bubble"),
        default="incremental",
        help="decoding engine: stateful incremental, whole-beam vectorized, "
        "or from-scratch bubble (identical results, different speed)",
    )
    parser.add_argument(
        "--workers",
        "-j",
        type=int,
        default=1,
        help="worker processes for the Monte-Carlo trials (results are "
        "identical for any worker count)",
    )


def _add_common_spinal_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--payload-bits", type=int, default=24, help="message size in bits")
    parser.add_argument("--k", type=int, default=8, help="segment size in bits")
    parser.add_argument("--c", type=int, default=10, help="bits per constellation dimension")
    parser.add_argument("--beam-width", "-B", type=int, default=16, help="decoder beam width")
    parser.add_argument("--trials", type=int, default=20, help="Monte-Carlo trials per point")
    parser.add_argument("--seed", type=int, default=20111114, help="base random seed")
    parser.add_argument(
        "--puncturing",
        choices=("none", "symbol", "strided", "tail-first"),
        default="tail-first",
        help="puncturing schedule",
    )
    _add_runner_arguments(parser)
    parser.add_argument("--plot", action="store_true", help="also print an ASCII chart")


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Rateless spinal codes (HotNets 2011) — measurement CLI",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser(
        "list", help="enumerate the registered experiments"
    )
    list_parser.add_argument(
        "--markdown", action="store_true", help="emit the README catalog table"
    )

    run = subparsers.add_parser(
        "run", help="run a registered experiment with persisted, resumable results"
    )
    run.add_argument("name", nargs="?", help="experiment name (see `repro list`)")
    run.add_argument("--all", action="store_true", help="run every registered experiment")
    run.add_argument(
        "--set",
        dest="sets",
        action="append",
        default=[],
        metavar="NAME=V1[,V2...]",
        help="override an axis's values or a fixed parameter (repeatable)",
    )
    run.add_argument("--trials", type=int, default=None, help="trials per grid cell")
    run.add_argument("--seed", type=int, default=None, help="base random seed")
    run.add_argument(
        "--workers",
        "-j",
        type=int,
        default=1,
        help="worker processes (results are identical for any count)",
    )
    run.add_argument(
        "--out", default="results", help="results-store directory (default: results/)"
    )
    run.add_argument(
        "--no-save", action="store_true", help="do not persist (disables resume)"
    )
    run.add_argument(
        "--smoke",
        action="store_true",
        help="shrink to the experiment's seconds-scale smoke configuration",
    )
    run.add_argument("--plot", action="store_true", help="also print an ASCII chart")
    _add_telemetry_argument(run)

    report = subparsers.add_parser(
        "report", help="re-render a persisted run file without recomputation"
    )
    report.add_argument("run_file", help="path to a results-store JSON file")
    report.add_argument("--plot", action="store_true", help="also print an ASCII chart")
    report.add_argument(
        "--csv",
        action="store_true",
        help="emit CSV instead of the table (error cells become footnoted rows)",
    )

    rate = subparsers.add_parser("rate", help="spinal rate over AWGN at given SNRs")
    rate.add_argument("snrs", type=float, nargs="+", help="SNR values in dB")
    _add_common_spinal_arguments(rate)

    bsc = subparsers.add_parser("bsc", help="bit-mode spinal rate over a BSC")
    bsc.add_argument("crossovers", type=float, nargs="+", help="crossover probabilities")
    _add_common_spinal_arguments(bsc)

    figure2 = subparsers.add_parser("figure2", help="regenerate a coarse Figure 2")
    figure2.add_argument("--snr-min", type=float, default=-10.0)
    figure2.add_argument("--snr-max", type=float, default=40.0)
    figure2.add_argument("--snr-step", type=float, default=5.0)
    figure2.add_argument("--trials", type=int, default=15)
    _add_runner_arguments(figure2)
    figure2.add_argument("--with-ldpc", action="store_true", help="include the LDPC baselines")
    figure2.add_argument("--ldpc-frames", type=int, default=20)
    figure2.add_argument("--plot", action="store_true")

    transport = subparsers.add_parser(
        "transport",
        help="measured goodput of the sliding-window ARQ transport over a relay chain",
    )
    transport.add_argument("--snr", type=float, default=8.0, help="first-hop SNR in dB")
    transport.add_argument(
        "--snr-step",
        type=float,
        default=-2.0,
        help="SNR change per additional hop in dB (default: each hop 2 dB worse)",
    )
    transport.add_argument(
        "--hops", type=int, nargs="+", default=[1, 2], help="relay hop counts to sweep"
    )
    transport.add_argument(
        "--protocol",
        choices=("go-back-n", "selective-repeat", "both"),
        default="both",
        help="ARQ protocol(s) to sweep",
    )
    transport.add_argument(
        "--window", type=int, nargs="+", default=[1, 2, 4], help="sender window sizes"
    )
    transport.add_argument(
        "--ack-delay",
        type=int,
        nargs="+",
        default=[0, 8, 32],
        help="feedback RTTs in symbol-times",
    )
    transport.add_argument(
        "--ack-loss", type=float, default=0.0, help="reverse-channel ACK loss probability"
    )
    transport.add_argument("--packets", type=int, default=8, help="packets per simulation")
    transport.add_argument("--payload-bits", type=int, default=24, help="payload bits per packet")
    transport.add_argument("--k", type=int, default=8, help="segment size in bits")
    transport.add_argument("--c", type=int, default=10, help="bits per constellation dimension")
    transport.add_argument("--beam-width", "-B", type=int, default=16, help="decoder beam width")
    transport.add_argument("--seed", type=int, default=20111114, help="base random seed")
    transport.add_argument(
        "--max-symbols",
        type=int,
        default=4096,
        help="per-packet abort budget in channel uses",
    )
    _add_runner_arguments(transport)
    transport.add_argument("--plot", action="store_true", help="also print an ASCII chart")

    serve = subparsers.add_parser(
        "serve-soak",
        help="soak the async session service: N concurrent spinal sessions "
        "through the batched decode engine",
    )
    serve.add_argument("--sessions", type=int, default=256, help="total requests to serve")
    serve.add_argument(
        "--in-flight",
        type=int,
        default=64,
        help="backpressure bound: concurrent transmissions holding a symbol buffer",
    )
    serve.add_argument(
        "--arrival-spacing",
        type=int,
        default=0,
        help="request inter-arrival gap in symbol-times (0 = all at tick 0)",
    )
    serve.add_argument("--snr", type=float, default=8.0, help="AWGN SNR in dB")
    serve.add_argument("--payload-bits", type=int, default=16, help="message size in bits")
    serve.add_argument("--k", type=int, default=4, help="segment size in bits")
    serve.add_argument("--c", type=int, default=6, help="bits per constellation dimension")
    serve.add_argument("--beam-width", "-B", type=int, default=8, help="decoder beam width")
    serve.add_argument(
        "--max-symbols", type=int, default=512, help="per-session abort budget"
    )
    serve.add_argument("--seed", type=int, default=20111114, help="base random seed")
    serve.add_argument(
        "--no-batching",
        action="store_true",
        help="decode sessions one at a time (the sequential driver the soak "
        "benchmark compares against)",
    )
    serve.add_argument(
        "--json",
        action="store_true",
        help="emit the metrics summary as JSON (the CI artifact format)",
    )
    serve.add_argument(
        "--smoke",
        action="store_true",
        help="shrink to a seconds-scale soak (32 sessions, 16 in flight) "
        "for CI smoke jobs",
    )
    _add_telemetry_argument(serve)

    city = subparsers.add_parser(
        "city-soak",
        help="soak the city-scale network simulator: SINR-coupled cells, "
        "mobility, handoff, replicas across workers",
    )
    city.add_argument("--cells", type=int, default=4, help="base stations in the grid")
    city.add_argument("--users", type=int, default=16, help="mobile users in the city")
    city.add_argument(
        "--packets-per-user", type=int, default=2, help="backlogged packets per user"
    )
    city.add_argument(
        "--scheduler",
        type=str,
        default="round-robin",
        help="MAC discipline in every cell (round-robin, max-snr, proportional-fair)",
    )
    city.add_argument(
        "--code", type=str, default="spinal", help="code family for every uplink"
    )
    city.add_argument(
        "--tier",
        type=str,
        default="flow",
        choices=("exact", "flow"),
        help="fidelity tier: bit-exact PHY or calibrated flow fast path",
    )
    city.add_argument(
        "--max-symbols", type=int, default=512, help="per-packet abort budget"
    )
    city.add_argument(
        "--cell-radius", type=float, default=150.0, help="cell radius in meters"
    )
    city.add_argument(
        "--reference-snr",
        type=float,
        default=18.0,
        help="SNR in dB at the reference distance from a tower",
    )
    city.add_argument(
        "--epoch-symbols",
        type=int,
        default=128,
        help="mobility epoch length in symbol-times (0 = static users)",
    )
    city.add_argument(
        "--no-interference",
        action="store_true",
        help="ignore other-cell transmit activity (pure path-loss SNR)",
    )
    city.add_argument(
        "--replicas", type=int, default=1, help="seed-independent replicas of the city"
    )
    city.add_argument(
        "--workers", "-j", type=int, default=1, help="worker processes for replicas"
    )
    city.add_argument("--seed", type=int, default=20111114, help="base random seed")
    city.add_argument(
        "--json",
        action="store_true",
        help="emit the metrics summary as JSON (the CI artifact format)",
    )
    _add_telemetry_argument(city)

    mesh = subparsers.add_parser(
        "mesh",
        help="network coding over rateless links: two-way XOR relaying, the "
        "butterfly DAG, or a multicast tree, with medium-use accounting "
        "against the uncoded baseline",
    )
    mesh.add_argument(
        "--topology",
        choices=("two-way", "butterfly", "tree"),
        default="two-way",
        help="two-way relay exchange, butterfly DAG, or multicast tree",
    )
    mesh.add_argument(
        "--family", type=str, default="spinal", help="rateless code family"
    )
    mesh.add_argument("--snr", type=float, default=33.0, help="link SNR in dB")
    mesh.add_argument(
        "--snr-offset",
        type=float,
        default=0.0,
        help="SNR offset of the weak side (the B link, or the butterfly "
        "bottleneck edge) in dB",
    )
    mesh.add_argument(
        "--rounds", type=int, default=4, help="payload exchanges to simulate"
    )
    mesh.add_argument(
        "--depth", type=int, default=2, help="tree depth (topology=tree)"
    )
    mesh.add_argument(
        "--branching", type=int, default=2, help="children per node (topology=tree)"
    )
    mesh.add_argument(
        "--max-symbols", type=int, default=4096, help="per-stream abort budget"
    )
    mesh.add_argument("--seed", type=int, default=20111114, help="base random seed")
    mesh.add_argument(
        "--smoke", action="store_true", help="smoke-scale codes for CI jobs"
    )
    mesh.add_argument(
        "--with-af",
        action="store_true",
        help="also run the amplify-and-forward two-way baseline "
        "(two-way topology, symbol-domain families only)",
    )
    mesh.add_argument(
        "--json",
        action="store_true",
        help="emit the metrics summary as JSON (the CI artifact format)",
    )
    _add_telemetry_argument(mesh)

    obs = subparsers.add_parser(
        "obs", help="inspect and validate exported telemetry"
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    obs_report = obs_sub.add_parser(
        "report", help="render a telemetry.jsonl stream as tables and charts"
    )
    obs_report.add_argument("jsonl_file", help="path to a telemetry.jsonl export")
    obs_check = obs_sub.add_parser(
        "check", help="validate the exporter files in a telemetry directory"
    )
    obs_check.add_argument("directory", help="directory written by --telemetry")

    ldpc = subparsers.add_parser("ldpc", help="achieved rate of one LDPC configuration")
    ldpc.add_argument("snrs", type=float, nargs="+", help="SNR values in dB")
    ldpc.add_argument("--rate", type=str, default="1/2", help="code rate (1/2, 2/3, 3/4, 5/6)")
    ldpc.add_argument(
        "--modulation",
        choices=("BPSK", "QAM-4", "QAM-16", "QAM-64"),
        default="QAM-16",
    )
    ldpc.add_argument("--frames", type=int, default=40)
    ldpc.add_argument("--iterations", type=int, default=40)
    ldpc.add_argument("--seed", type=int, default=20111114)

    return parser


# -- telemetry ----------------------------------------------------------------


class _TelemetryScope:
    """Install the live sink for one command, export on success.

    Installation happens in ``__enter__`` — *before* the command constructs
    any engine/network/session, because instrumented classes capture the
    process-global sink once at construction time.  ``note()`` returns a
    one-line trailer naming the written files (empty when ``--telemetry``
    was not given), and ``__exit__`` always restores the previous sink so
    in-process callers (tests) never leak an enabled registry.

    With ``stream=True`` (``--telemetry-stream``) spans are written to
    ``DIR/spans.part.jsonl`` incrementally as they close instead of being
    buffered; the exported ``telemetry.jsonl`` is byte-identical either
    way, and the spill file is left behind as the crash-salvage artifact.
    """

    def __init__(self, directory: str | None, stream: bool = False) -> None:
        if stream and directory is None:
            raise ValueError("--telemetry-stream requires --telemetry DIR")
        self.directory = directory
        self.stream = stream
        self.telemetry = None
        self._previous = None
        self._paths: dict[str, str] = {}

    def __enter__(self) -> "_TelemetryScope":
        if self.directory is not None:
            from pathlib import Path

            from repro.obs.telemetry import Telemetry, set_current

            if self.stream:
                directory = Path(self.directory)
                directory.mkdir(parents=True, exist_ok=True)
                self.telemetry = Telemetry(span_spill=directory / "spans.part.jsonl")
            else:
                self.telemetry = Telemetry()
            self._previous = set_current(self.telemetry)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self.telemetry is not None:
            from repro.obs.exporters import write_all
            from repro.obs.telemetry import set_current

            set_current(self._previous)
            if exc_type is None:
                self._paths = write_all(self.telemetry, self.directory)
            self.telemetry.close()
        return False

    def note(self) -> str:
        if not self._paths:
            return ""
        return "\ntelemetry: " + " ".join(
            str(self._paths[kind]) for kind in ("jsonl", "trace", "prom")
        )


def _command_obs(args: argparse.Namespace) -> str:
    if args.obs_command == "report":
        from repro.obs.report import render_report

        return render_report(args.jsonl_file)
    from repro.obs.exporters import validate_directory

    problems = validate_directory(args.directory)
    if problems:
        raise SystemExit(
            "telemetry validation failed:\n" + "\n".join(f"  - {p}" for p in problems)
        )
    return f"ok: {args.directory} (telemetry.jsonl, trace.json, metrics.prom)"


# -- registry commands --------------------------------------------------------


def _parse_scalar(current, text: str):
    """Parse one override token using the current value as the type witness."""
    if text.lower() in ("none", "null"):
        return None
    if isinstance(current, bool):
        return text.lower() in ("1", "true", "yes")
    if isinstance(current, int):
        return int(text)
    if isinstance(current, float):
        return float(text)
    if current is None:
        for cast in (int, float):
            try:
                return cast(text)
            except ValueError:
                continue
        return text
    return text


def _parse_overrides(experiment: registry.Experiment, tokens: list[str]) -> dict:
    """Translate ``--set name=v1,v2`` tokens into engine overrides."""
    overrides: dict = {}
    spec = experiment.spec
    for token in tokens:
        name, separator, text = token.partition("=")
        if not separator:
            raise ValueError(f"--set expects NAME=VALUES, got {token!r}")
        if name in spec.axis_names:
            axis = spec.axis(name)
            overrides[name] = tuple(axis.parse(part) for part in text.split(","))
        elif name in spec.fixed:
            current = spec.fixed[name]
            if isinstance(current, (list, tuple)):
                witness = current[0] if current else None
                overrides[name] = tuple(
                    _parse_scalar(witness, part) for part in text.split(",")
                )
            else:
                overrides[name] = _parse_scalar(current, text)
        elif name in ("n_trials", "seed"):
            overrides[name] = int(text)
        else:
            raise ValueError(
                f"unknown parameter {name!r} for experiment {experiment.name!r}; "
                f"valid: {sorted(spec.known_names)}"
            )
    return overrides


def _command_list(args: argparse.Namespace) -> str:
    registry.load_all()
    return registry.catalog_markdown() if args.markdown else registry.catalog()


def _command_run(args: argparse.Namespace) -> str:
    registry.load_all()
    if args.all == bool(args.name):
        raise ValueError("run expects exactly one of <name> or --all")
    if args.all and args.sets:
        raise ValueError("--set cannot be combined with --all")
    chosen = registry.names() if args.all else [args.name]
    store = None if args.no_save else RunStore(args.out)
    pieces = []
    with _TelemetryScope(args.telemetry, stream=args.telemetry_stream) as scope:
        for name in chosen:
            experiment = registry.get(name)
            outcome = run_experiment(
                experiment,
                overrides=_parse_overrides(experiment, args.sets),
                n_workers=args.workers,
                n_trials=args.trials,
                seed=args.seed,
                store=store,
                smoke=args.smoke,
            )
            text = f"== {name}: {experiment.description}\n\n" + outcome.table()
            if args.plot:
                chart = render_run_plot(experiment, outcome.record)
                if chart:
                    text += "\n\n" + chart
            if outcome.path is not None:
                text += (
                    f"\n\nsaved: {outcome.path} "
                    f"({outcome.n_cells_computed} cells computed, "
                    f"{outcome.n_cells_cached} from cache)"
                )
            pieces.append(text)
    return "\n\n".join(pieces) + scope.note()


def _command_report(args: argparse.Namespace) -> str:
    registry.load_all()
    record = read_run(args.run_file)
    experiment = registry.get(record["experiment"])
    if args.csv:
        if args.plot:
            raise ValueError("--csv cannot be combined with --plot")
        return render_run_csv(experiment, record)
    header = (
        f"{record['experiment']}: {record.get('description', experiment.description)}\n"
        f"spec hash {record['spec_hash']} · seed {record['seed']} · "
        f"{record['n_trials']} trials/cell\n\n"
    )
    text = header + render_run(experiment, record)
    if args.plot:
        chart = render_run_plot(experiment, record)
        if chart:
            text += "\n\n" + chart
    return text


# -- back-compat aliases ------------------------------------------------------


def _spinal_overrides_from_args(args: argparse.Namespace, bit_mode: bool) -> dict:
    overrides = {
        "payload_bits": args.payload_bits,
        "k": args.k,
        "beam_width": args.beam_width,
        "puncturing": args.puncturing,
        "decoder": args.decoder,
    }
    if not bit_mode:
        overrides["c"] = args.c
    return overrides


def _command_rate(args: argparse.Namespace) -> str:
    outcome = run_experiment(
        registry.get("rate"),
        overrides={
            **_spinal_overrides_from_args(args, bit_mode=False),
            "snr_db": tuple(float(s) for s in args.snrs),
        },
        n_trials=args.trials,
        seed=args.seed,
        n_workers=args.workers,
    )
    rows = [
        (params["snr_db"], agg["capacity"], agg["rate"], agg["rate_stderr"])
        for _key, params, cell in outcome.successful_cells()
        for agg in (cell["aggregate"],)
    ]
    output = render_table(["SNR(dB)", "capacity", "rate (b/sym)", "stderr"], rows)
    if args.plot and len(args.snrs) >= 2:
        output += "\n\n" + ascii_plot(
            args.snrs,
            {"capacity": [r[1] for r in rows], "spinal": [r[2] for r in rows]},
            x_label="SNR (dB)",
            y_label="bits/symbol",
        )
    return output


def _command_bsc(args: argparse.Namespace) -> str:
    outcome = run_experiment(
        registry.get("bsc"),
        overrides={
            **_spinal_overrides_from_args(args, bit_mode=True),
            "p": tuple(float(p) for p in args.crossovers),
        },
        n_trials=args.trials,
        seed=args.seed,
        n_workers=args.workers,
    )
    rows = [
        (params["p"], agg["capacity"], agg["rate"], agg["rate_stderr"])
        for _key, params, cell in outcome.successful_cells()
        for agg in (cell["aggregate"],)
    ]
    output = render_table(["p", "capacity", "rate (b/bit)", "stderr"], rows)
    if args.plot and len(args.crossovers) >= 2:
        output += "\n\n" + ascii_plot(
            args.crossovers,
            {"capacity": [r[1] for r in rows], "spinal": [r[2] for r in rows]},
            x_label="crossover probability",
            y_label="bits/channel bit",
        )
    return output


def _command_figure2(args: argparse.Namespace) -> str:
    from repro.experiments.runner import SpinalRunConfig

    snrs = []
    snr = args.snr_min
    while snr <= args.snr_max + 1e-9:
        snrs.append(round(snr, 6))
        snr += args.snr_step
    config = SpinalRunConfig(
        n_trials=args.trials, decoder=args.decoder, n_workers=args.workers
    )
    data = figure2_table(
        snr_values_db=snrs,
        spinal_config=config,
        include_ldpc=args.with_ldpc,
        ldpc_frames=args.ldpc_frames,
    )
    output = data.as_table()
    crossover = data.spinal_beats_fixed_block_until_db()
    if crossover is not None:
        output += f"\nspinal beats the n=24 fixed-block bound up to {crossover:.1f} dB"
    if args.plot:
        output += "\n\n" + ascii_plot(
            snrs,
            {
                "Shannon": data.shannon.mean_rates(),
                "spinal": data.spinal.mean_rates(),
            },
            x_label="SNR (dB)",
            y_label="bits/symbol",
        )
    return output


def _command_transport(args: argparse.Namespace) -> str:
    protocols = (
        ("go-back-n", "selective-repeat") if args.protocol == "both" else (args.protocol,)
    )
    config = TransportSweepConfig(
        payload_bits=args.payload_bits,
        params=SpinalParams(k=args.k, c=args.c),
        beam_width=args.beam_width,
        snr_db=args.snr,
        snr_step_db=args.snr_step,
        n_packets=args.packets,
        protocols=protocols,
        windows=tuple(args.window),
        ack_delays=tuple(args.ack_delay),
        hop_counts=tuple(args.hops),
        ack_loss=args.ack_loss,
        max_symbols=args.max_symbols,
        seed=args.seed,
        decoder=args.decoder,
        n_workers=args.workers,
    )
    rows = run_transport_sweep(config)
    output = transport_sweep_table(rows)
    if args.plot and len(config.windows) >= 2:
        # Goodput vs window size, one curve per protocol, at the first
        # (hops, ack delay) grid point — the sweep's headline trade-off.
        hops0, delay0 = config.hop_counts[0], config.ack_delays[0]
        curves = {}
        for protocol in protocols:
            curves[protocol] = [
                row.goodput
                for row in rows
                if row.hops == hops0 and row.protocol == protocol and row.ack_delay == delay0
            ]
        output += "\n\n" + ascii_plot(
            list(config.windows),
            curves,
            x_label=f"window size (hops={hops0}, ack delay={delay0})",
            y_label="goodput",
        )
    return output


def _command_serve_soak(args: argparse.Namespace) -> str:
    import json
    import time

    from repro.serve import SoakConfig, SoakEngine

    n_sessions, max_in_flight = args.sessions, args.in_flight
    if args.smoke:
        n_sessions, max_in_flight = 32, 16
    config = SoakConfig(
        n_sessions=n_sessions,
        max_in_flight=max_in_flight,
        arrival_spacing=args.arrival_spacing,
        snr_db=args.snr,
        seed=args.seed,
        payload_bits=args.payload_bits,
        k=args.k,
        c=args.c,
        beam_width=args.beam_width,
        max_symbols=args.max_symbols,
        batching=not args.no_batching,
    )
    with _TelemetryScope(args.telemetry, stream=args.telemetry_stream) as scope:
        engine = SoakEngine(config)
        start = time.perf_counter()
        result = engine.run()
        elapsed = time.perf_counter() - start
    summary = result.summary(elapsed_s=elapsed)
    if args.json:
        return json.dumps(summary, indent=2, sort_keys=True)
    rows = [(key, summary[key]) for key in summary]
    return render_table(["metric", "value"], rows) + scope.note()


def _command_city_soak(args: argparse.Namespace) -> str:
    import json
    import time

    from repro.net import NetworkConfig, simulate_network_replicas

    config = NetworkConfig(
        n_cells=args.cells,
        n_users=args.users,
        packets_per_user=args.packets_per_user,
        scheduler=args.scheduler,
        code=args.code,
        tier=args.tier,
        seed=args.seed,
        max_symbols=args.max_symbols,
        cell_radius=args.cell_radius,
        reference_snr_db=args.reference_snr,
        epoch_symbols=args.epoch_symbols,
        interference=not args.no_interference,
    )
    with _TelemetryScope(args.telemetry, stream=args.telemetry_stream) as scope:
        start = time.perf_counter()
        replicas = simulate_network_replicas(
            config, args.replicas, n_workers=args.workers
        )
        elapsed = time.perf_counter() - start
    numeric = [
        key
        for key in replicas[0]
        if isinstance(replicas[0][key], (int, float)) and not isinstance(replicas[0][key], bool)
    ]
    aggregate: dict = {
        "scheduler": config.scheduler,
        "code": config.code,
        "tier": config.tier,
        "n_replicas": len(replicas),
        "elapsed_s": elapsed,
        "users_per_second": len(replicas) * config.n_users / elapsed if elapsed else 0.0,
    }
    for key in numeric:
        aggregate[f"mean_{key}"] = sum(replica[key] for replica in replicas) / len(replicas)
    if args.json:
        return json.dumps(
            {"aggregate": aggregate, "replicas": replicas}, indent=2, sort_keys=True
        )
    rows = [(key, aggregate[key]) for key in aggregate]
    return render_table(["metric", "value"], rows) + scope.note()


def _command_mesh(args: argparse.Namespace) -> str:
    import json

    with _TelemetryScope(args.telemetry, stream=args.telemetry_stream) as scope:
        if args.topology == "tree":
            from repro.netcode import MulticastTreeConfig, run_multicast_tree

            result = run_multicast_tree(
                MulticastTreeConfig(
                    family=args.family,
                    depth=args.depth,
                    branching=args.branching,
                    snr_db=args.snr,
                    rounds=args.rounds,
                    seed=args.seed,
                    smoke=args.smoke,
                    max_symbols=args.max_symbols,
                )
            )
            summary = {
                "topology": "tree",
                "family": args.family,
                "snr_db": args.snr,
                "depth": args.depth,
                "branching": args.branching,
                "n_leaves": result.n_leaves,
                "rounds": args.rounds,
                "coded_uses": result.broadcast_total,
                "plain_uses": result.unicast_total,
                "saving": result.medium_use_saving,
                "delivered_coded": result.delivery_rate,
            }
        elif args.topology == "butterfly":
            from repro.experiments.network_coding_gain import _butterfly_point

            summary = {
                "topology": "butterfly",
                "family": args.family,
                "snr_db": args.snr,
                "snr_offset_db": args.snr_offset,
                "rounds": args.rounds,
                **_butterfly_point(
                    {
                        "family": args.family,
                        "snr_db": args.snr,
                        "snr_offset_db": args.snr_offset,
                        "rounds": args.rounds,
                        "seed": args.seed,
                        "smoke_codes": args.smoke,
                        "max_symbols": args.max_symbols,
                    }
                ),
            }
        else:
            from repro.netcode import TwoWayConfig, run_two_way_exchange

            config = TwoWayConfig(
                family=args.family,
                snr_a_db=args.snr,
                snr_b_db=args.snr + args.snr_offset,
                rounds=args.rounds,
                seed=args.seed,
                smoke=args.smoke,
                max_symbols=args.max_symbols,
            )
            result = run_two_way_exchange(config)
            summary = {
                "topology": "two-way",
                "family": args.family,
                "snr_a_db": config.snr_a_db,
                "snr_b_db": config.snr_b_db,
                "rounds": args.rounds,
                "coded_uses": result.xor_total_uses,
                "plain_uses": result.baseline_total_uses,
                "saving": result.medium_use_saving,
                "downlink_saving": result.downlink_saving,
                "delivered_coded": result.xor_delivery_rate,
                "delivered_plain": result.baseline_delivery_rate,
            }
            if args.with_af:
                from repro.netcode import run_two_way_af_exchange

                af = run_two_way_af_exchange(config)
                summary.update(
                    {
                        "af_uses": af.total_uses,
                        "af_effective_snr_a_db": af.effective_snr_a_db,
                        "af_effective_snr_b_db": af.effective_snr_b_db,
                        "af_delivered": af.delivery_rate,
                    }
                )
    if args.json:
        return json.dumps(summary, indent=2, sort_keys=True)
    rows = [(key, summary[key]) for key in summary]
    return render_table(["metric", "value"], rows) + scope.note()


def _command_ldpc(args: argparse.Namespace) -> str:
    outcome = run_experiment(
        registry.get("ldpc-rate"),
        overrides={
            "snr_db": tuple(float(s) for s in args.snrs),
            "rate": args.rate,
            "modulation": args.modulation,
            "frames": args.frames,
            "iterations": args.iterations,
        },
        seed=args.seed,
    )
    rows = [
        (params["snr_db"], agg["nominal_rate"], agg["fer"], agg["achieved_rate"])
        for _key, params, cell in outcome.successful_cells()
        for agg in (cell["aggregate"],)
    ]
    return render_table(
        ["SNR(dB)", "nominal rate", "FER", "achieved rate"], rows
    )


def main(argv: list[str] | None = None) -> str:
    """Entry point; returns the rendered output (also printed to stdout)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    commands = {
        "list": _command_list,
        "run": _command_run,
        "report": _command_report,
        "rate": _command_rate,
        "bsc": _command_bsc,
        "figure2": _command_figure2,
        "ldpc": _command_ldpc,
        "transport": _command_transport,
        "serve-soak": _command_serve_soak,
        "city-soak": _command_city_soak,
        "mesh": _command_mesh,
        "obs": _command_obs,
    }
    output = commands[args.command](args)
    print(output)
    return output


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    main()
