"""Abstract modulation interface.

A modulation maps groups of ``bits_per_symbol`` coded bits to complex
constellation points with unit average energy, and (for soft-input decoding)
computes per-bit log-likelihood ratios from noisy received symbols.

LLR convention: ``llr = log P(bit = 0 | y) - log P(bit = 1 | y)``, so a
positive LLR favours bit 0.  This is the convention consumed by
:mod:`repro.ldpc.decoder`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["Modulation"]


class Modulation(ABC):
    """Bits-to-symbols mapping with unit average symbol energy."""

    #: Number of coded bits carried by each complex symbol.
    bits_per_symbol: int
    #: Human-readable name used in experiment reports ("QAM-16", ...).
    name: str

    @abstractmethod
    def constellation_points(self) -> np.ndarray:
        """All ``2^bits_per_symbol`` points, indexed by their bit label value.

        Entry ``i`` is the symbol transmitted for the bit group whose MSB-first
        integer value is ``i``.
        """

    @abstractmethod
    def bit_labels(self) -> np.ndarray:
        """Bit labels of :meth:`constellation_points`.

        Array of shape ``(2^bits_per_symbol, bits_per_symbol)`` where row ``i``
        is the bit pattern (MSB first) mapped to point ``i``.  For the
        modulations in this package this is simply the binary expansion of
        ``i``, but the indirection keeps the demapper generic.
        """

    # -- modulate ------------------------------------------------------------
    def modulate(self, bits: np.ndarray) -> np.ndarray:
        """Map coded bits (length divisible by ``bits_per_symbol``) to symbols."""
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.ndim != 1:
            raise ValueError(f"expected a 1-D bit array, got shape {bits.shape}")
        if bits.size % self.bits_per_symbol != 0:
            raise ValueError(
                f"bit count {bits.size} is not a multiple of bits_per_symbol="
                f"{self.bits_per_symbol}"
            )
        groups = bits.reshape(-1, self.bits_per_symbol)
        weights = 1 << np.arange(self.bits_per_symbol - 1, -1, -1)
        indices = (groups * weights).sum(axis=1)
        return self.constellation_points()[indices]

    # -- demodulate -----------------------------------------------------------
    def demodulate_llr(
        self, received: np.ndarray, noise_energy: float, max_log: bool = False
    ) -> np.ndarray:
        """Per-bit LLRs for received symbols over AWGN with the given noise energy.

        ``noise_energy`` is the total complex-noise energy per symbol (``N0``);
        the per-dimension variance is ``N0 / 2``.  Set ``max_log`` to use the
        max-log approximation (faster, slightly weaker).
        """
        from repro.modulation.demod import awgn_bit_llrs

        return awgn_bit_llrs(
            received,
            self.constellation_points(),
            self.bit_labels(),
            noise_energy,
            max_log=max_log,
        )

    def demodulate_hard(self, received: np.ndarray) -> np.ndarray:
        """Minimum-distance hard decisions, returned as a flat bit array."""
        received = np.asarray(received, dtype=np.complex128).reshape(-1)
        points = self.constellation_points()
        distances = np.abs(received[:, None] - points[None, :]) ** 2
        best = np.argmin(distances, axis=1)
        return self.bit_labels()[best].reshape(-1).astype(np.uint8)

    # -- misc -----------------------------------------------------------------
    @property
    def average_energy(self) -> float:
        return float(np.mean(np.abs(self.constellation_points()) ** 2))

    def describe(self) -> str:
        return self.name
