"""Phase-shift keying modulations (BPSK and QPSK/QAM-4)."""

from __future__ import annotations

import math

import numpy as np

from repro.modulation.base import Modulation

__all__ = ["BPSK", "QPSK"]


class BPSK(Modulation):
    """Binary phase-shift keying: bit 0 -> +1, bit 1 -> -1 (real axis only)."""

    bits_per_symbol = 1
    name = "BPSK"

    def constellation_points(self) -> np.ndarray:
        return np.array([1.0 + 0.0j, -1.0 + 0.0j])

    def bit_labels(self) -> np.ndarray:
        return np.array([[0], [1]], dtype=np.uint8)


class QPSK(Modulation):
    """Quadrature PSK (identical to Gray-mapped QAM-4), unit average energy.

    The first bit selects the I sign and the second the Q sign, so each bit
    sees an independent BPSK channel of half the symbol energy.
    """

    bits_per_symbol = 2
    name = "QAM-4"

    def constellation_points(self) -> np.ndarray:
        amp = 1.0 / math.sqrt(2.0)
        points = np.empty(4, dtype=np.complex128)
        for value in range(4):
            i_bit = (value >> 1) & 1
            q_bit = value & 1
            points[value] = amp * ((1 - 2 * i_bit) + 1j * (1 - 2 * q_bit))
        return points

    def bit_labels(self) -> np.ndarray:
        return np.array([[(v >> 1) & 1, v & 1] for v in range(4)], dtype=np.uint8)
