"""Square Gray-mapped QAM constellations (QAM-4/16/64).

Each axis carries ``bits_per_symbol / 2`` bits mapped through a Gray code to
a uniform PAM alphabet; the constellation is normalised to unit average
energy.  The first half of a symbol's bits selects the I level (MSB first)
and the second half the Q level, matching standard 802.11 bit-to-symbol
interleaving closely enough for the baseline comparisons in Figure 2.
"""

from __future__ import annotations

import math

import numpy as np

from repro.modulation.base import Modulation
from repro.modulation.psk import BPSK, QPSK

__all__ = ["QAM", "QAM4", "QAM16", "QAM64", "make_modulation"]


def _gray_to_binary(value: int) -> int:
    """Convert a Gray-coded integer to its binary index."""
    result = value
    shift = 1
    while (value >> shift) > 0:
        result ^= value >> shift
        shift += 1
    return result


def _pam_levels(bits_per_axis: int) -> np.ndarray:
    """Gray-mapped PAM levels for one axis, indexed by the axis bit value."""
    n_levels = 1 << bits_per_axis
    # Level positions -(n-1), -(n-3), ..., (n-1).
    positions = 2 * np.arange(n_levels) - (n_levels - 1)
    levels = np.empty(n_levels, dtype=np.float64)
    for value in range(n_levels):
        # The bit value is interpreted as a Gray code of the level index so
        # that adjacent levels differ in exactly one bit.
        index = _gray_to_binary(value)
        levels[value] = positions[index]
    return levels


class QAM(Modulation):
    """Square Gray-mapped QAM with ``2**bits_per_symbol`` points."""

    def __init__(self, bits_per_symbol: int) -> None:
        if bits_per_symbol % 2 != 0 or bits_per_symbol < 2:
            raise ValueError(
                f"square QAM needs an even number of bits per symbol >= 2, got "
                f"{bits_per_symbol}"
            )
        self.bits_per_symbol = bits_per_symbol
        self.name = f"QAM-{1 << bits_per_symbol}"
        bits_per_axis = bits_per_symbol // 2
        axis_levels = _pam_levels(bits_per_axis)
        n_points = 1 << bits_per_symbol
        points = np.empty(n_points, dtype=np.complex128)
        labels = np.empty((n_points, bits_per_symbol), dtype=np.uint8)
        axis_mask = (1 << bits_per_axis) - 1
        for value in range(n_points):
            i_value = (value >> bits_per_axis) & axis_mask
            q_value = value & axis_mask
            points[value] = axis_levels[i_value] + 1j * axis_levels[q_value]
            labels[value] = [(value >> (bits_per_symbol - 1 - b)) & 1 for b in range(bits_per_symbol)]
        energy = float(np.mean(np.abs(points) ** 2))
        self._points = points / math.sqrt(energy)
        self._labels = labels

    def constellation_points(self) -> np.ndarray:
        return self._points

    def bit_labels(self) -> np.ndarray:
        return self._labels


def QAM4() -> QAM:
    """Gray-mapped QAM-4 (equivalent to QPSK)."""
    return QAM(2)


def QAM16() -> QAM:
    """Gray-mapped QAM-16."""
    return QAM(4)


def QAM64() -> QAM:
    """Gray-mapped QAM-64."""
    return QAM(6)


_MODULATIONS = {
    "BPSK": BPSK,
    "QPSK": QPSK,
    "QAM-4": QAM4,
    "QAM-16": QAM16,
    "QAM-64": QAM64,
}


def make_modulation(name: str) -> Modulation:
    """Factory for the modulations used by the Figure 2 LDPC baselines."""
    try:
        return _MODULATIONS[name]()
    except KeyError:
        raise ValueError(
            f"unknown modulation {name!r}; expected one of {sorted(_MODULATIONS)}"
        ) from None
