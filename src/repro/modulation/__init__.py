"""Conventional fixed modulations and soft demappers.

These are the symbol sets used by the fixed-rate LDPC baselines in Figure 2
(BPSK, QAM-4, QAM-16 and QAM-64), together with exact and max-log LLR
demappers feeding soft information to the belief-propagation decoder — the
paper decodes its LDPC baselines "with a powerful decoder (40-iteration
belief propagation decoder using soft information)".

They are also what a spinal code in *bit mode* would ride on top of when the
PHY cannot be modified (Section 1's "commodity PHY" deployment); the
``bsc_commodity_phy`` example wires that up.
"""

from repro.modulation.base import Modulation
from repro.modulation.demod import awgn_bit_llrs, hard_decisions_from_llrs
from repro.modulation.psk import BPSK, QPSK
from repro.modulation.qam import QAM, QAM4, QAM16, QAM64, make_modulation

__all__ = [
    "Modulation",
    "BPSK",
    "QPSK",
    "QAM",
    "QAM4",
    "QAM16",
    "QAM64",
    "make_modulation",
    "awgn_bit_llrs",
    "hard_decisions_from_llrs",
]
