"""Soft demapping: per-bit log-likelihood ratios from noisy symbols.

The LDPC baselines of Figure 2 are decoded "using soft information", so the
demapper matters: a hard-decision demapper would cost the baselines a couple
of dB and unfairly flatter the spinal code.  The exact demapper marginalises
over the full constellation; the max-log variant replaces the log-sum-exp
with a max and is the usual hardware-friendly approximation.
"""

from __future__ import annotations

import numpy as np
from scipy.special import logsumexp

__all__ = ["awgn_bit_llrs", "hard_decisions_from_llrs"]


def awgn_bit_llrs(
    received: np.ndarray,
    points: np.ndarray,
    bit_labels: np.ndarray,
    noise_energy: float,
    max_log: bool = False,
) -> np.ndarray:
    """Compute per-bit LLRs for AWGN observations of a given constellation.

    Parameters
    ----------
    received:
        Received complex symbols, any shape (flattened internally).
    points:
        Constellation points, shape ``(M,)``.
    bit_labels:
        Bit labels of each point, shape ``(M, bits_per_symbol)``.
    noise_energy:
        Total complex noise energy per symbol (``N0``).
    max_log:
        Use the max-log approximation instead of exact marginalisation.

    Returns
    -------
    numpy.ndarray
        LLR array of shape ``(n_symbols * bits_per_symbol,)`` in transmission
        order, with the convention ``llr > 0`` favours bit 0.
    """
    if noise_energy <= 0:
        raise ValueError(f"noise_energy must be positive, got {noise_energy}")
    received = np.asarray(received, dtype=np.complex128).reshape(-1)
    points = np.asarray(points, dtype=np.complex128).reshape(-1)
    bit_labels = np.asarray(bit_labels, dtype=np.uint8)
    if bit_labels.shape[0] != points.size:
        raise ValueError("bit_labels and points disagree on the constellation size")
    bits_per_symbol = bit_labels.shape[1]

    # Log-likelihood of each constellation point for each received symbol.
    # Noise per dimension has variance N0/2, so |y - s|^2 is scaled by 1/N0.
    log_likelihood = -(np.abs(received[:, None] - points[None, :]) ** 2) / noise_energy

    llrs = np.empty((received.size, bits_per_symbol), dtype=np.float64)
    for bit_index in range(bits_per_symbol):
        mask0 = bit_labels[:, bit_index] == 0
        mask1 = ~mask0
        if max_log:
            term0 = log_likelihood[:, mask0].max(axis=1)
            term1 = log_likelihood[:, mask1].max(axis=1)
        else:
            term0 = logsumexp(log_likelihood[:, mask0], axis=1)
            term1 = logsumexp(log_likelihood[:, mask1], axis=1)
        llrs[:, bit_index] = term0 - term1
    return llrs.reshape(-1)


def hard_decisions_from_llrs(llrs: np.ndarray) -> np.ndarray:
    """Threshold LLRs into bits (``llr > 0`` means bit 0)."""
    llrs = np.asarray(llrs, dtype=np.float64)
    return (llrs < 0).astype(np.uint8)
