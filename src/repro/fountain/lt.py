"""LT (Luby Transform) codes: encoder, peeling decoder, degree distribution.

LT codes are the canonical rateless *erasure* codes the paper's related-work
section contrasts spinal codes with.  An LT encoder emits an endless stream
of output symbols, each the XOR of a random subset of the ``K`` input blocks;
a receiver that collects slightly more than ``K`` un-erased symbols can
recover the input with high probability via the peeling (belief-propagation
on erasures) decoder.

The implementation works on bit blocks represented as numpy ``uint8`` arrays
and follows the standard robust-soliton construction.  Seeds are carried in
each output symbol so encoder and decoder agree on neighbourhoods without a
side channel (as in real fountain-code deployments).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import spawn_rng

__all__ = [
    "robust_soliton_distribution",
    "lt_neighbours",
    "LTSymbol",
    "LTEncoder",
    "LTDecoder",
]


def robust_soliton_distribution(
    n_blocks: int, c: float = 0.1, delta: float = 0.5
) -> np.ndarray:
    """The robust-soliton degree distribution over degrees ``1..n_blocks``.

    Parameters follow Luby's construction: the ideal soliton distribution is
    augmented by a spike at degree ``n_blocks / R`` (with
    ``R = c * ln(n_blocks/delta) * sqrt(n_blocks)``) and renormalised.

    Returns an array ``p`` of length ``n_blocks`` with ``p[d-1]`` the
    probability of degree ``d``.
    """
    if n_blocks < 1:
        raise ValueError(f"n_blocks must be positive, got {n_blocks}")
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    if c <= 0:
        raise ValueError(f"c must be positive, got {c}")

    ideal = np.zeros(n_blocks)
    ideal[0] = 1.0 / n_blocks
    for degree in range(2, n_blocks + 1):
        ideal[degree - 1] = 1.0 / (degree * (degree - 1))

    ripple = c * np.log(n_blocks / delta) * np.sqrt(n_blocks)
    spike_degree = max(1, min(n_blocks, int(round(n_blocks / max(ripple, 1.0)))))
    tau = np.zeros(n_blocks)
    for degree in range(1, spike_degree):
        tau[degree - 1] = ripple / (degree * n_blocks)
    tau[spike_degree - 1] = ripple * np.log(ripple / delta) / n_blocks if ripple > delta else 0.0

    combined = ideal + np.maximum(tau, 0.0)
    return combined / combined.sum()


def lt_neighbours(
    code_seed: int,
    symbol_seed: int,
    n_blocks: int,
    degree_distribution: np.ndarray,
) -> tuple[int, ...]:
    """Derive a symbol's neighbour set from its seed (sender/receiver shared).

    Factored out of :class:`LTEncoder` so a receiver that knows only the
    code configuration — not the data — derives the same neighbourhoods
    (this is how real fountain deployments work: the symbol seed travels in
    the symbol header, the degree distribution is part of the code spec).
    """
    rng = spawn_rng(code_seed, "lt-symbol", symbol_seed)
    degree = int(rng.choice(n_blocks, p=degree_distribution)) + 1
    neighbours = rng.choice(n_blocks, size=degree, replace=False)
    return tuple(int(n) for n in np.sort(neighbours))


@dataclass(frozen=True)
class LTSymbol:
    """One LT output symbol: the XOR of ``neighbours`` input blocks."""

    seed: int
    neighbours: tuple[int, ...]
    value: np.ndarray

    @property
    def degree(self) -> int:
        return len(self.neighbours)


class LTEncoder:
    """Rateless LT encoder over ``n_blocks`` equal-sized bit blocks."""

    def __init__(
        self,
        data_bits: np.ndarray,
        block_bits: int,
        seed: int = 0,
        c: float = 0.1,
        delta: float = 0.5,
    ) -> None:
        data_bits = np.asarray(data_bits, dtype=np.uint8)
        if data_bits.ndim != 1 or data_bits.size == 0:
            raise ValueError("data_bits must be a non-empty 1-D bit array")
        if block_bits <= 0:
            raise ValueError(f"block_bits must be positive, got {block_bits}")
        if data_bits.size % block_bits != 0:
            raise ValueError(
                f"data length {data_bits.size} is not a multiple of block_bits={block_bits}"
            )
        self.block_bits = block_bits
        self.blocks = data_bits.reshape(-1, block_bits)
        self.n_blocks = self.blocks.shape[0]
        self.seed = seed
        self.degree_distribution = robust_soliton_distribution(self.n_blocks, c=c, delta=delta)

    def neighbours_for_seed(self, symbol_seed: int) -> tuple[int, ...]:
        """Deterministically derive a symbol's neighbour set from its seed."""
        return lt_neighbours(self.seed, symbol_seed, self.n_blocks, self.degree_distribution)

    def symbol(self, symbol_seed: int) -> LTSymbol:
        """Generate the output symbol identified by ``symbol_seed``."""
        neighbours = self.neighbours_for_seed(symbol_seed)
        value = np.zeros(self.block_bits, dtype=np.uint8)
        for block_index in neighbours:
            value ^= self.blocks[block_index]
        return LTSymbol(seed=symbol_seed, neighbours=neighbours, value=value)

    def stream(self, start_seed: int = 0):
        """Yield an endless stream of output symbols (the rateless property)."""
        symbol_seed = start_seed
        while True:
            yield self.symbol(symbol_seed)
            symbol_seed += 1


class LTDecoder:
    """Peeling decoder: resolves degree-1 symbols and substitutes them back."""

    def __init__(self, n_blocks: int, block_bits: int) -> None:
        if n_blocks <= 0 or block_bits <= 0:
            raise ValueError("n_blocks and block_bits must be positive")
        self.n_blocks = n_blocks
        self.block_bits = block_bits
        self.recovered: dict[int, np.ndarray] = {}
        self._pending: list[tuple[set[int], np.ndarray]] = []
        self.symbols_consumed = 0

    @property
    def is_complete(self) -> bool:
        """True once every input block has been recovered."""
        return len(self.recovered) == self.n_blocks

    def add_symbol(self, symbol: LTSymbol) -> None:
        """Consume one received (un-erased) output symbol and peel.

        Once decoding is complete every further symbol is redundant by
        definition: absorbing one (a duplicate, or a symbol fully reduced by
        the recovered blocks) is a strict no-op — it neither counts towards
        ``symbols_consumed`` nor mutates the pending/recovered state — so a
        receiver that keeps draining a stream after success cannot disturb
        the decoded data.
        """
        if symbol.value.shape != (self.block_bits,):
            raise ValueError(
                f"symbol has {symbol.value.shape} bits, expected ({self.block_bits},)"
            )
        if self.is_complete:
            return
        self.symbols_consumed += 1
        remaining = set(symbol.neighbours)
        value = symbol.value.copy()
        for block_index in list(remaining):
            if block_index in self.recovered:
                value ^= self.recovered[block_index]
                remaining.discard(block_index)
        if not remaining:
            return
        self._pending.append((remaining, value))
        self._peel()

    def _peel(self) -> None:
        progress = True
        while progress:
            progress = False
            still_pending: list[tuple[set[int], np.ndarray]] = []
            for remaining, value in self._pending:
                unresolved = {b for b in remaining if b not in self.recovered}
                reduced = value.copy()
                for block_index in remaining - unresolved:
                    reduced ^= self.recovered[block_index]
                if len(unresolved) == 0:
                    progress = True
                    continue
                if len(unresolved) == 1:
                    block_index = next(iter(unresolved))
                    self.recovered[block_index] = reduced
                    progress = True
                    continue
                still_pending.append((unresolved, reduced))
            self._pending = still_pending

    def data_bits(self) -> np.ndarray:
        """Return the recovered data (raises if decoding is incomplete)."""
        if not self.is_complete:
            missing = self.n_blocks - len(self.recovered)
            raise ValueError(f"decoding incomplete: {missing} blocks still unknown")
        return np.concatenate([self.recovered[i] for i in range(self.n_blocks)])
