"""Fountain (LT) codes over the binary erasure channel.

The related-work section of the paper positions spinal codes against the
earlier generation of rateless codes — LT codes (Luby) and Raptor codes
(Shokrollahi) — which achieve capacity on the *erasure* channel but have no
comparable guarantee on AWGN/BSC.  This package provides a compact but
complete LT code implementation (robust-soliton degree distribution, encoder,
peeling decoder) so the examples can make that contrast concrete: LT codes
on a BEC behave beautifully, but fed from a noisy bit channel without an
inner code they collapse, while the spinal code natively rides the noise.
"""

from repro.fountain.lt import LTDecoder, LTEncoder, LTSymbol, robust_soliton_distribution

__all__ = ["LTEncoder", "LTDecoder", "LTSymbol", "robust_soliton_distribution"]
