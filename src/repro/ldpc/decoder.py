"""Belief-propagation decoding of LDPC codes.

The paper's baseline decoder is a "40-iteration belief propagation decoder
using soft information"; this module implements it twice:

* ``algorithm="sum-product"`` — the exact tanh-rule sum-product algorithm;
* ``algorithm="min-sum"`` — normalised min-sum (scaling factor 0.8125), the
  standard hardware-friendly approximation, within ~0.1 dB of sum-product
  for these codes and noticeably faster in numpy.

Decoding is *batched*: a whole block of received codewords is decoded at
once, with per-frame early stopping when all parity checks are satisfied.
Message passing is fully vectorised over the edge list of the code.

Input LLRs follow the library convention (positive favours bit 0), produced
by :func:`repro.modulation.demod.awgn_bit_llrs`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.ldpc.encoder import LDPCCode

__all__ = ["BeliefPropagationDecoder", "DecoderStats"]

#: Normalisation factor for min-sum decoding (standard engineering choice).
_MIN_SUM_SCALE = 0.8125
#: LLR magnitudes are clipped to this value to keep tanh/atanh stable.
_LLR_CLIP = 30.0


@dataclass(frozen=True)
class DecoderStats:
    """Aggregate statistics of one batch decode."""

    iterations_used: np.ndarray
    converged: np.ndarray

    @property
    def mean_iterations(self) -> float:
        return float(self.iterations_used.mean())

    @property
    def convergence_fraction(self) -> float:
        return float(self.converged.mean())


class BeliefPropagationDecoder:
    """Iterative message-passing decoder over a code's Tanner graph."""

    def __init__(
        self,
        code: LDPCCode,
        max_iterations: int = 40,
        algorithm: str = "sum-product",
    ) -> None:
        if max_iterations < 1:
            raise ValueError(f"max_iterations must be at least 1, got {max_iterations}")
        if algorithm not in ("sum-product", "min-sum"):
            raise ValueError(f"unknown algorithm {algorithm!r}")
        self.code = code
        self.max_iterations = max_iterations
        self.algorithm = algorithm
        # Edge bookkeeping (edges sorted by check index in LDPCCode).
        self._edge_check = code.edge_check
        self._edge_variable = code.edge_variable
        self._check_ptr = code.check_ptr
        self._n_edges = code.n_edges
        # Sparse edge-to-variable incidence matrix: summing the check-to-
        # variable messages into per-variable totals is a single sparse
        # matrix product per iteration.
        self._edge_to_variable = sparse.csr_matrix(
            (
                np.ones(self._n_edges),
                (np.arange(self._n_edges), self._edge_variable),
            ),
            shape=(self._n_edges, code.n),
        )

    # ------------------------------------------------------------------
    def decode(
        self, llrs: np.ndarray
    ) -> tuple[np.ndarray, DecoderStats]:
        """Decode one codeword or a batch.

        Parameters
        ----------
        llrs:
            Channel LLRs, shape ``(n,)`` for a single codeword or
            ``(batch, n)`` for a batch.

        Returns
        -------
        (hard_bits, stats):
            ``hard_bits`` has the same leading shape as the input and
            contains the decoder's codeword estimate(s); ``stats`` records
            per-frame iteration counts and convergence flags.
        """
        llrs = np.asarray(llrs, dtype=np.float64)
        single = llrs.ndim == 1
        if single:
            llrs = llrs[None, :]
        if llrs.shape[1] != self.code.n:
            raise ValueError(
                f"expected LLR rows of length {self.code.n}, got {llrs.shape[1]}"
            )
        batch = llrs.shape[0]
        channel = np.clip(llrs, -_LLR_CLIP, _LLR_CLIP)

        # Messages live on edges: shape (batch, n_edges).
        var_to_check = channel[:, self._edge_variable].copy()
        check_to_var = np.zeros_like(var_to_check)
        posterior = channel.copy()

        iterations_used = np.full(batch, self.max_iterations, dtype=np.int64)
        converged = np.zeros(batch, dtype=bool)
        active = np.arange(batch)

        for iteration in range(1, self.max_iterations + 1):
            if active.size == 0:
                break
            check_to_var[active] = self._check_update(var_to_check[active])

            # Variable update: total belief minus the incoming edge message.
            totals = check_to_var[active] @ self._edge_to_variable
            posterior[active] = channel[active] + totals
            var_to_check[active] = np.clip(
                posterior[active][:, self._edge_variable] - check_to_var[active],
                -_LLR_CLIP,
                _LLR_CLIP,
            )

            # Early stop for frames whose hard decision satisfies every check.
            hard = (posterior[active] < 0).astype(np.uint8)
            syndromes = self.code.syndrome(hard)
            newly_done = ~np.any(syndromes, axis=1)
            done_indices = active[newly_done]
            iterations_used[done_indices] = iteration
            converged[done_indices] = True
            active = active[~newly_done]

        hard_bits = (posterior < 0).astype(np.uint8)
        stats = DecoderStats(iterations_used=iterations_used, converged=converged)
        if single:
            return hard_bits[0], stats
        return hard_bits, stats

    # ------------------------------------------------------------------
    def _check_update(self, var_to_check: np.ndarray) -> np.ndarray:
        if self.algorithm == "min-sum":
            return self._check_update_min_sum(var_to_check)
        return self._check_update_sum_product(var_to_check)

    def _check_update_sum_product(self, var_to_check: np.ndarray) -> np.ndarray:
        """Exact tanh-rule update, vectorised per check via reduceat."""
        tanh_half = np.tanh(var_to_check / 2.0)
        # Keep the magnitudes away from 0 and 1 so the division and atanh
        # below stay finite.
        tanh_half = np.clip(tanh_half, -1.0 + 1e-12, 1.0 - 1e-12)
        tanh_half = np.where(np.abs(tanh_half) < 1e-12, 1e-12, tanh_half)

        log_abs = np.log(np.abs(tanh_half))
        signs = np.sign(tanh_half)

        group_log = np.add.reduceat(log_abs, self._check_ptr[:-1], axis=1)
        group_neg = np.add.reduceat((signs < 0).astype(np.int64), self._check_ptr[:-1], axis=1)

        per_edge_log = group_log[:, self._edge_check] - log_abs
        per_edge_sign = np.where(
            (group_neg[:, self._edge_check] - (signs < 0)) % 2 == 0, 1.0, -1.0
        )
        product = per_edge_sign * np.exp(per_edge_log)
        product = np.clip(product, -1.0 + 1e-12, 1.0 - 1e-12)
        return 2.0 * np.arctanh(product)

    def _check_update_min_sum(self, var_to_check: np.ndarray) -> np.ndarray:
        """Normalised min-sum update (magnitude = min over the other edges)."""
        magnitudes = np.abs(var_to_check)
        signs = var_to_check < 0

        group_min = np.minimum.reduceat(magnitudes, self._check_ptr[:-1], axis=1)
        expanded_min = group_min[:, self._edge_check]
        is_min = magnitudes <= expanded_min

        # Second minimum per group, computed with every minimal edge masked
        # out; if the minimum occurs more than once the "excluding myself"
        # minimum of a minimal edge is still the group minimum.
        min_count = np.add.reduceat(
            is_min.astype(np.int64), self._check_ptr[:-1], axis=1
        )
        masked = np.where(is_min, np.inf, magnitudes)
        group_second = np.minimum.reduceat(masked, self._check_ptr[:-1], axis=1)
        group_second = np.where(min_count > 1, group_min, group_second)
        group_second = np.minimum(group_second, _LLR_CLIP)

        out_magnitude = np.where(
            is_min, group_second[:, self._edge_check], expanded_min
        )

        group_neg = np.add.reduceat(signs.astype(np.int64), self._check_ptr[:-1], axis=1)
        per_edge_sign = np.where(
            (group_neg[:, self._edge_check] - signs) % 2 == 0, 1.0, -1.0
        )
        return _MIN_SUM_SCALE * per_edge_sign * out_magnitude
