"""Systematic LDPC encoding.

An LDPC code is defined by its sparse parity-check matrix ``H = [H_info | H_par]``
(``(n-k) x n``).  A systematic codeword ``x = [s | p]`` must satisfy
``H x = 0``, i.e. ``H_par p = H_info s`` over GF(2).  The constructions in
this package always make ``H_par`` invertible (dual-diagonal plus a weight-3
column), so encoding is a pre-computed GF(2) matrix application.

The same class carries the decoder-facing views of ``H`` (edge lists sorted
by check and by variable) so that the belief-propagation decoder does not
recompute them per codeword.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.ldpc.matrices import QCMatrix, gf2_inverse

__all__ = ["LDPCCode"]


class LDPCCode:
    """A binary LDPC code with systematic encoding support."""

    def __init__(self, parity_check: sparse.spmatrix, name: str = "ldpc") -> None:
        h = sparse.csr_matrix(parity_check, dtype=np.uint8)
        if h.ndim != 2:
            raise ValueError("parity-check matrix must be 2-D")
        self.parity_check = h
        self.name = name
        self.n = int(h.shape[1])
        self.n_checks = int(h.shape[0])
        self.k = self.n - self.n_checks

        h_info = h[:, : self.k].toarray()
        h_par = h[:, self.k :].toarray()
        try:
            h_par_inv = gf2_inverse(h_par)
        except ValueError as exc:
            raise ValueError(
                "the parity part of H is singular over GF(2); this code cannot "
                "be encoded systematically — regenerate the construction with "
                "another seed"
            ) from exc
        # p = (H_par^-1 H_info) s over GF(2); precompute the k x (n-k) map.
        self._encode_matrix = (h_par_inv.astype(np.int64) @ h_info.astype(np.int64) % 2).astype(
            np.uint8
        )

        # Edge bookkeeping for belief propagation, sorted by check row.
        coo = h.tocoo()
        order = np.lexsort((coo.col, coo.row))
        self.edge_check = coo.row[order].astype(np.int64)
        self.edge_variable = coo.col[order].astype(np.int64)
        self.n_edges = int(self.edge_check.size)
        # Row pointer boundaries for grouping edges by check.
        self.check_ptr = np.searchsorted(self.edge_check, np.arange(self.n_checks + 1))

    # -- constructors ------------------------------------------------------
    @classmethod
    def from_qc_matrix(cls, qc_matrix: QCMatrix, name: str = "qc-ldpc") -> "LDPCCode":
        return cls(qc_matrix.expand(), name=name)

    # -- properties ----------------------------------------------------------
    @property
    def rate(self) -> float:
        """Design code rate k/n."""
        return self.k / self.n

    def describe(self) -> str:
        return f"{self.name} (n={self.n}, k={self.k}, rate={self.rate:.3f})"

    # -- encoding ------------------------------------------------------------
    def encode(self, message_bits: np.ndarray) -> np.ndarray:
        """Encode ``k`` message bits into an ``n``-bit systematic codeword."""
        message_bits = np.asarray(message_bits, dtype=np.uint8)
        if message_bits.shape != (self.k,):
            raise ValueError(
                f"expected {self.k} message bits, got shape {message_bits.shape}"
            )
        parity = (self._encode_matrix.astype(np.int64) @ message_bits.astype(np.int64) % 2).astype(
            np.uint8
        )
        return np.concatenate([message_bits, parity])

    def encode_batch(self, messages: np.ndarray) -> np.ndarray:
        """Encode a batch of messages, shape ``(batch, k)`` -> ``(batch, n)``."""
        messages = np.asarray(messages, dtype=np.uint8)
        if messages.ndim != 2 or messages.shape[1] != self.k:
            raise ValueError(f"expected shape (batch, {self.k}), got {messages.shape}")
        parity = (messages.astype(np.int64) @ self._encode_matrix.T.astype(np.int64) % 2).astype(
            np.uint8
        )
        return np.concatenate([messages, parity], axis=1)

    # -- checks ----------------------------------------------------------------
    def syndrome(self, codeword: np.ndarray) -> np.ndarray:
        """Compute ``H x`` over GF(2) (all zero for a valid codeword)."""
        codeword = np.asarray(codeword, dtype=np.uint8)
        if codeword.shape[-1] != self.n:
            raise ValueError(f"expected codewords of length {self.n}")
        product = self.parity_check.astype(np.int64) @ codeword.astype(np.int64).T
        return (product % 2).astype(np.uint8).T

    def is_codeword(self, codeword: np.ndarray) -> bool:
        return not np.any(self.syndrome(codeword))

    def extract_message(self, codeword: np.ndarray) -> np.ndarray:
        """Systematic message bits of a codeword (the first ``k`` positions)."""
        codeword = np.asarray(codeword, dtype=np.uint8)
        return codeword[..., : self.k]
