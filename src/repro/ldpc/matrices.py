"""Quasi-cyclic parity-check matrices and GF(2) linear algebra.

A QC-LDPC code is described by a small *base matrix* whose entries are either
``-1`` (an all-zero ``Z x Z`` block) or a shift ``0 <= s < Z`` (the identity
matrix cyclically right-shifted by ``s``).  Expanding the base matrix with
lifting factor ``Z`` yields the binary parity-check matrix ``H``.

The GF(2) helpers (rank, inverse, solve) are used by the encoder to derive a
systematic encoding from ``H`` without needing a generator-matrix table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

__all__ = [
    "QCMatrix",
    "expand_base_matrix",
    "gf2_rank",
    "gf2_inverse",
    "gf2_solve",
    "gf2_matmul_vec",
    "has_four_cycle",
]


@dataclass(frozen=True)
class QCMatrix:
    """A quasi-cyclic matrix: integer base matrix plus lifting factor.

    Attributes
    ----------
    base:
        2-D integer array; ``-1`` marks a zero block, any other value is the
        cyclic shift of an identity block.
    lifting:
        Block size ``Z``.
    """

    base: np.ndarray
    lifting: int

    def __post_init__(self) -> None:
        base = np.asarray(self.base, dtype=np.int64)
        if base.ndim != 2:
            raise ValueError(f"base matrix must be 2-D, got shape {base.shape}")
        if self.lifting <= 0:
            raise ValueError(f"lifting factor must be positive, got {self.lifting}")
        if np.any(base >= self.lifting):
            raise ValueError("shift values must be smaller than the lifting factor")
        if np.any(base < -1):
            raise ValueError("base entries must be -1 (zero block) or a shift >= 0")
        object.__setattr__(self, "base", base)

    @property
    def block_shape(self) -> tuple[int, int]:
        return tuple(self.base.shape)

    @property
    def shape(self) -> tuple[int, int]:
        rows, cols = self.base.shape
        return rows * self.lifting, cols * self.lifting

    def expand(self) -> sparse.csr_matrix:
        """Expand to the full binary matrix as a scipy CSR sparse matrix."""
        return expand_base_matrix(self.base, self.lifting)

    def column_weights(self) -> np.ndarray:
        """Number of non-zero blocks per base column."""
        return (self.base >= 0).sum(axis=0)

    def row_weights(self) -> np.ndarray:
        """Number of non-zero blocks per base row."""
        return (self.base >= 0).sum(axis=1)


def expand_base_matrix(base: np.ndarray, lifting: int) -> sparse.csr_matrix:
    """Expand a shift base matrix into its binary parity-check matrix."""
    base = np.asarray(base, dtype=np.int64)
    n_block_rows, n_block_cols = base.shape
    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    block_indices = np.arange(lifting)
    for br in range(n_block_rows):
        for bc in range(n_block_cols):
            shift = base[br, bc]
            if shift < 0:
                continue
            # Row i of a right-shifted identity has its one at column (i + shift) mod Z.
            rows.append(br * lifting + block_indices)
            cols.append(bc * lifting + (block_indices + shift) % lifting)
    if not rows:
        raise ValueError("base matrix has no non-zero blocks")
    row_idx = np.concatenate(rows)
    col_idx = np.concatenate(cols)
    data = np.ones(row_idx.size, dtype=np.uint8)
    shape = (n_block_rows * lifting, n_block_cols * lifting)
    return sparse.csr_matrix((data, (row_idx, col_idx)), shape=shape)


def has_four_cycle(base: np.ndarray, lifting: int) -> bool:
    """Check whether the expanded graph contains any length-4 cycle.

    Two columns sharing two base rows ``r1, r2`` create a 4-cycle iff the
    shift differences match modulo ``Z``:
    ``s[r1, c1] - s[r2, c1] == s[r1, c2] - s[r2, c2] (mod Z)``.
    """
    base = np.asarray(base, dtype=np.int64)
    n_rows, n_cols = base.shape
    for c1 in range(n_cols):
        for c2 in range(c1 + 1, n_cols):
            shared = np.where((base[:, c1] >= 0) & (base[:, c2] >= 0))[0]
            if shared.size < 2:
                continue
            for i in range(shared.size):
                for j in range(i + 1, shared.size):
                    r1, r2 = shared[i], shared[j]
                    delta1 = (base[r1, c1] - base[r2, c1]) % lifting
                    delta2 = (base[r1, c2] - base[r2, c2]) % lifting
                    if delta1 == delta2:
                        return True
    return False


# -- GF(2) linear algebra -----------------------------------------------------


def gf2_rank(matrix: np.ndarray) -> int:
    """Rank of a dense binary matrix over GF(2)."""
    m = np.array(matrix, dtype=np.uint8) % 2
    n_rows, n_cols = m.shape
    rank = 0
    pivot_row = 0
    for col in range(n_cols):
        pivot = None
        for row in range(pivot_row, n_rows):
            if m[row, col]:
                pivot = row
                break
        if pivot is None:
            continue
        m[[pivot_row, pivot]] = m[[pivot, pivot_row]]
        eliminate = (m[:, col] == 1) & (np.arange(n_rows) != pivot_row)
        m[eliminate] ^= m[pivot_row]
        pivot_row += 1
        rank += 1
        if pivot_row == n_rows:
            break
    return rank


def gf2_inverse(matrix: np.ndarray) -> np.ndarray:
    """Inverse of a square binary matrix over GF(2).

    Raises
    ------
    ValueError
        If the matrix is singular over GF(2).
    """
    m = np.array(matrix, dtype=np.uint8) % 2
    n_rows, n_cols = m.shape
    if n_rows != n_cols:
        raise ValueError(f"matrix must be square, got {m.shape}")
    augmented = np.concatenate([m, np.eye(n_rows, dtype=np.uint8)], axis=1)
    for col in range(n_rows):
        pivot = None
        for row in range(col, n_rows):
            if augmented[row, col]:
                pivot = row
                break
        if pivot is None:
            raise ValueError("matrix is singular over GF(2)")
        augmented[[col, pivot]] = augmented[[pivot, col]]
        eliminate = (augmented[:, col] == 1) & (np.arange(n_rows) != col)
        augmented[eliminate] ^= augmented[col]
    return augmented[:, n_rows:]


def gf2_solve(matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``A x = b`` over GF(2) for square invertible ``A``."""
    inverse = gf2_inverse(matrix)
    return gf2_matmul_vec(inverse, rhs)


def gf2_matmul_vec(matrix: np.ndarray, vector: np.ndarray) -> np.ndarray:
    """Binary matrix-vector product over GF(2)."""
    matrix = np.asarray(matrix, dtype=np.uint8)
    vector = np.asarray(vector, dtype=np.uint8)
    return (matrix.astype(np.int64) @ vector.astype(np.int64) % 2).astype(np.uint8)
