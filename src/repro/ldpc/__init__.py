"""LDPC substrate: the fixed-rate baseline codes of Figure 2.

The paper compares spinal codes against "LDPC codes from the high-throughput
mode of 802.11n with 648-bit codewords, decoded with a powerful decoder
(40-iteration belief propagation decoder using soft information)".

This package provides everything needed to reproduce that baseline without
access to the 802.11n standard tables:

* :mod:`repro.ldpc.matrices` — quasi-cyclic parity-check matrices, GF(2)
  linear algebra, and cycle-avoidance checks;
* :mod:`repro.ldpc.construction` — an 802.11n-*like* QC-LDPC construction
  (same block length 648, lifting factor Z = 27, code rates 1/2, 2/3, 3/4 and
  5/6, dual-diagonal parity structure); the substitution is documented in
  DESIGN.md;
* :mod:`repro.ldpc.encoder` — systematic encoding;
* :mod:`repro.ldpc.decoder` — batch belief-propagation decoding (exact
  sum-product and normalised min-sum), 40 iterations by default.
"""

from repro.ldpc.construction import WIFI_LIKE_RATES, make_wifi_like_code
from repro.ldpc.decoder import BeliefPropagationDecoder, DecoderStats
from repro.ldpc.encoder import LDPCCode
from repro.ldpc.matrices import QCMatrix, gf2_inverse, gf2_matmul_vec, gf2_rank

__all__ = [
    "QCMatrix",
    "gf2_rank",
    "gf2_inverse",
    "gf2_matmul_vec",
    "make_wifi_like_code",
    "WIFI_LIKE_RATES",
    "LDPCCode",
    "BeliefPropagationDecoder",
    "DecoderStats",
]
