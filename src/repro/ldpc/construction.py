"""802.11n-like QC-LDPC code construction.

The paper's LDPC baseline uses the 802.11n high-throughput codes with
648-bit codewords at rates 1/2, 2/3, 3/4 and 5/6.  The exact standard shift
tables are proprietary-ish boilerplate; reproducing their *behaviour* under
40-iteration belief propagation only needs codes with the same macroscopic
structure, which this module constructs:

* base matrix of 24 block columns, lifting factor Z = 27 (24 * 27 = 648);
* the parity part uses the standard's dual-diagonal ("zig-zag") structure
  plus one weight-3 column, which keeps encoding linear-time and guarantees
  the parity sub-matrix is invertible over GF(2);
* the information part is pseudo-randomly populated with column weights
  drawn from a degree profile similar to the standard's (mostly weight 3
  with a few heavier columns), rejecting shift choices that would create
  4-cycles.

The construction is deterministic given ``seed`` so that experiments are
reproducible; the resulting waterfalls sit within a fraction of a dB of the
published 802.11n curves, which is all that Figure 2's comparison needs.
See DESIGN.md ("Substitutions") for the rationale.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from repro.ldpc.encoder import LDPCCode
from repro.ldpc.matrices import QCMatrix, has_four_cycle
from repro.utils.rng import spawn_rng

__all__ = ["WIFI_LIKE_RATES", "build_base_matrix", "make_wifi_like_code"]

#: Code rates available in the 802.11n high-throughput LDPC mode.
WIFI_LIKE_RATES: tuple[Fraction, ...] = (
    Fraction(1, 2),
    Fraction(2, 3),
    Fraction(3, 4),
    Fraction(5, 6),
)

#: Standard 802.11n block geometry: 24 block columns of Z = 27 -> n = 648.
_BASE_COLUMNS = 24
_DEFAULT_LIFTING = 27

#: Fraction of information columns given extra weight (the 802.11n degree
#: profiles mix weight-3 columns with a minority of heavier ones).
_HEAVY_COLUMN_FRACTION = 0.25


def _rate_to_fraction(rate: float | Fraction) -> Fraction:
    fraction = Fraction(rate).limit_denominator(12)
    if fraction not in WIFI_LIKE_RATES:
        raise ValueError(
            f"rate {rate!r} is not one of the 802.11n rates {tuple(str(r) for r in WIFI_LIKE_RATES)}"
        )
    return fraction


def _register_column(
    used_deltas: dict[tuple[int, int], set[int]],
    rows: np.ndarray,
    shifts: np.ndarray,
    lifting: int,
) -> bool:
    """Try to register a column's (row, shift) pairs without creating 4-cycles.

    Two columns sharing base rows ``r1 < r2`` create a 4-cycle iff their
    shift differences ``(shift[r1] - shift[r2]) mod Z`` coincide, so every
    row pair keeps the set of differences already in use.  Returns False
    (registering nothing) if the candidate column collides.
    """
    deltas: list[tuple[tuple[int, int], int]] = []
    for i in range(rows.size):
        for j in range(i + 1, rows.size):
            r1, r2 = int(rows[i]), int(rows[j])
            key = (min(r1, r2), max(r1, r2))
            delta = int(shifts[i] - shifts[j]) % lifting if r1 < r2 else int(
                shifts[j] - shifts[i]
            ) % lifting
            if delta in used_deltas.setdefault(key, set()):
                return False
            deltas.append((key, delta))
    for key, delta in deltas:
        used_deltas[key].add(delta)
    return True


def build_base_matrix(
    rate: float | Fraction,
    lifting: int = _DEFAULT_LIFTING,
    seed: int = 2011,
    max_attempts: int = 400,
) -> QCMatrix:
    """Construct a wifi-like QC-LDPC base matrix for one of the 802.11n rates.

    Shifts are placed greedily, column by column, rejecting any placement
    that would close a 4-cycle with previously placed columns; the expanded
    graph therefore has girth at least 6 (verified by
    :func:`repro.ldpc.matrices.has_four_cycle` before returning).
    """
    fraction = _rate_to_fraction(rate)
    n_parity_blocks = int(_BASE_COLUMNS * (1 - fraction))
    n_info_blocks = _BASE_COLUMNS - n_parity_blocks
    if n_parity_blocks < 2:
        raise ValueError(f"rate {fraction} leaves fewer than two parity blocks")

    rng = spawn_rng(seed, "ldpc-base", str(fraction), lifting)
    base = -np.ones((n_parity_blocks, _BASE_COLUMNS), dtype=np.int64)
    used_deltas: dict[tuple[int, int], set[int]] = {}

    # Parity part first: one weight-3 column followed by the dual diagonal.
    # The middle row of the weight-3 column must not be adjacent to the last
    # row, otherwise its two shift-0 entries would form a 4-cycle with the
    # dual-diagonal column covering that same adjacent row pair.
    special = n_info_blocks
    middle_row = n_parity_blocks // 2
    if middle_row == n_parity_blocks - 2:
        middle_row = 1
    special_rows = np.array(
        sorted({0, middle_row, n_parity_blocks - 1}), dtype=np.int64
    )
    special_shifts = np.array([1] + [0] * (special_rows.size - 1), dtype=np.int64)
    base[special_rows, special] = special_shifts
    if not _register_column(used_deltas, special_rows, special_shifts, lifting):
        raise RuntimeError("parity structure unexpectedly created a 4-cycle")
    for j in range(1, n_parity_blocks):
        col = n_info_blocks + j
        rows = np.array([j - 1, j], dtype=np.int64)
        shifts = np.zeros(2, dtype=np.int64)
        base[rows, col] = shifts
        if not _register_column(used_deltas, rows, shifts, lifting):
            raise RuntimeError("parity structure unexpectedly created a 4-cycle")

    # Information part: column weights mostly 3, a few heavier columns
    # (capped by the number of parity rows available).
    n_heavy = max(1, int(round(_HEAVY_COLUMN_FRACTION * n_info_blocks)))
    for col in range(n_info_blocks):
        heavy_weight = min(n_parity_blocks, 3 + int(rng.integers(1, 4)))
        weight = heavy_weight if col < n_heavy else min(3, n_parity_blocks)
        placed = False
        for _ in range(max_attempts):
            rows = np.sort(rng.choice(n_parity_blocks, size=weight, replace=False))
            shifts = rng.integers(0, lifting, size=weight)
            if _register_column(used_deltas, rows, shifts, lifting):
                base[rows, col] = shifts
                placed = True
                break
        if not placed:
            raise RuntimeError(
                f"could not place information column {col} without a 4-cycle for "
                f"rate {fraction} (Z={lifting}); increase the lifting factor"
            )

    qc_matrix = QCMatrix(base=base, lifting=lifting)
    if has_four_cycle(base, lifting):
        raise RuntimeError("construction invariant violated: 4-cycle present")
    return qc_matrix


def make_wifi_like_code(
    rate: float | Fraction,
    codeword_bits: int = 648,
    seed: int = 2011,
) -> LDPCCode:
    """Build the 648-bit wifi-like LDPC code at one of the 802.11n rates.

    ``codeword_bits`` must be a multiple of 24; the standard value 648 gives
    the lifting factor 27 used throughout the paper's evaluation.
    """
    if codeword_bits % _BASE_COLUMNS != 0:
        raise ValueError(
            f"codeword length must be a multiple of {_BASE_COLUMNS}, got {codeword_bits}"
        )
    lifting = codeword_bits // _BASE_COLUMNS
    fraction = _rate_to_fraction(rate)
    qc_matrix = build_base_matrix(fraction, lifting=lifting, seed=seed)
    return LDPCCode.from_qc_matrix(qc_matrix, name=f"wifi-like rate {fraction} n={codeword_bits}")
