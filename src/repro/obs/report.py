"""Terminal renderer for a ``telemetry.jsonl`` event stream.

``repro obs report <file>`` turns an exported snapshot back into the
human-readable views the exporters flattened away: a counters/gauges table,
per-histogram summaries with an :func:`~repro.utils.asciiplot.ascii_plot`
bucket chart (the same renderer the experiment reports use), and a span
roll-up (call count, total and mean wall-clock per span name).
"""

from __future__ import annotations

import json
from collections import defaultdict
from pathlib import Path

from repro.utils.asciiplot import ascii_plot

__all__ = ["load_jsonl", "render_report"]


def load_jsonl(path: str | Path) -> dict[str, list[dict]]:
    """Parse a ``telemetry.jsonl`` file into records grouped by kind."""
    groups: dict[str, list[dict]] = defaultdict(list)
    for line in Path(path).read_text().splitlines():
        record = json.loads(line)
        groups[record["kind"]].append(record)
    return dict(groups)


def _label_suffix(labels: dict) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"


def _histogram_chart(record: dict) -> str:
    """ASCII bucket chart for one histogram (text fallback when degenerate).

    ``ascii_plot`` needs at least two x points; histograms whose mass sits
    in a single bucket are summarised textually instead.
    """
    occupied = [b for b in record["buckets"] if b["count"]]
    if len(occupied) < 2:
        return ""
    bounds = [float(b["le"]) for b in occupied if b["le"] != "inf"]
    counts = [float(b["count"]) for b in occupied if b["le"] != "inf"]
    if len(bounds) < 2:
        return ""
    return ascii_plot(
        bounds,
        {"count": counts},
        x_label="bucket upper bound",
        y_label="observations",
        connect=True,
    )


def render_report(path: str | Path) -> str:
    """Render the full report for one ``telemetry.jsonl`` file."""
    groups = load_jsonl(path)
    out: list[str] = []

    scalars = groups.get("counter", []) + groups.get("gauge", [])
    if scalars:
        out.append("== counters / gauges ==")
        width = max(
            len(r["name"] + _label_suffix(r["labels"])) for r in scalars
        )
        for record in scalars:
            label = record["name"] + _label_suffix(record["labels"])
            value = record["value"]
            rendered = f"{value:g}" if isinstance(value, float) else str(value)
            out.append(f"  {label:<{width}}  {rendered:>12}")

    for record in groups.get("histogram", []):
        label = record["name"] + _label_suffix(record["labels"])
        out.append("")
        out.append(f"== histogram {label} ==")
        if record["count"]:
            mean = record["sum"] / record["count"]
            out.append(
                f"  count {record['count']}  sum {record['sum']:g}  "
                f"mean {mean:g}  min {record['min']:g}  max {record['max']:g}"
            )
        else:
            out.append("  (no observations)")
        chart = _histogram_chart(record)
        if chart:
            out.append(chart)
        else:
            for bucket in record["buckets"]:
                if bucket["count"]:
                    out.append(f"  le {bucket['le']:>8}: {bucket['count']}")

    spans = groups.get("span", [])
    if spans:
        rollup: dict[str, list[float]] = defaultdict(list)
        for span in spans:
            rollup[span["name"]].append(span["dur_us"])
        out.append("")
        out.append("== spans (wall-clock roll-up) ==")
        width = max(len(name) for name in rollup)
        for name in sorted(rollup):
            durations = rollup[name]
            total = sum(durations)
            out.append(
                f"  {name:<{width}}  n={len(durations):<6d} "
                f"total {total / 1e3:10.3f} ms  "
                f"mean {total / len(durations):10.1f} us"
            )

    if not out:
        return "(telemetry file contains no records)"
    return "\n".join(out)
