"""Observability: bit-transparent telemetry, exporters, and report rendering.

Enable with :func:`set_current` *before* constructing the simulation objects
to observe (the CLI's ``--telemetry <dir>`` flag does this), run as usual,
then :func:`write_all` the snapshot::

    from repro.obs import Telemetry, set_current, write_all

    set_current(Telemetry())
    result = run_soak(config)           # byte-identical to the untraced run
    write_all(current(), "obs-out")     # telemetry.jsonl / trace.json / metrics.prom

The enabled path never perturbs an rng draw, event ordering, or numeric
result — ``tests/test_obs.py`` pins byte-identical delivery logs and
experiment stores for telemetry on vs off.
"""

from repro.obs.exporters import (
    JSONL_SCHEMA,
    export_chrome_trace,
    export_jsonl,
    export_prometheus,
    span_line,
    validate_chrome_trace,
    validate_directory,
    validate_jsonl,
    validate_prometheus,
    write_all,
)
from repro.obs.report import load_jsonl, render_report
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    current,
    default_buckets,
    set_current,
)

__all__ = [
    "JSONL_SCHEMA",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "Telemetry",
    "current",
    "default_buckets",
    "export_chrome_trace",
    "export_jsonl",
    "export_prometheus",
    "load_jsonl",
    "render_report",
    "set_current",
    "span_line",
    "validate_chrome_trace",
    "validate_directory",
    "validate_jsonl",
    "validate_prometheus",
    "write_all",
]
