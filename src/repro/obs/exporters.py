"""Exporters and schema checks for a :class:`~repro.obs.telemetry.Telemetry` snapshot.

Three formats, one snapshot:

* **JSONL** (``telemetry.jsonl``) — one self-describing JSON object per
  line (``kind`` in ``meta`` / ``counter`` / ``gauge`` / ``histogram`` /
  ``span``), the machine-readable event stream ``repro obs report`` renders.
* **Chrome trace** (``trace.json``) — the ``trace_event`` format: every
  span becomes a complete (``"ph": "X"``) event with microsecond wall-clock
  ``ts``/``dur`` and the symbol-time endpoints in ``args``.  Open it at
  ``chrome://tracing`` or https://ui.perfetto.dev.
* **Prometheus text** (``metrics.prom``) — a scrape-style snapshot:
  counters and gauges verbatim, histograms as cumulative ``_bucket{le=}``
  series plus ``_sum`` / ``_count``, names sanitised ``.`` → ``_``.

All three are byte-deterministic given a fixed ``wall_clock`` source on the
``Telemetry`` (entries are emitted in sorted key order; spans in record
order).  The ``validate_*`` functions are the schema checks behind
``repro obs check`` and the CI ``obs-smoke`` job: each returns a list of
human-readable problems, empty when the file conforms.
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path

__all__ = [
    "JSONL_SCHEMA",
    "span_line",
    "export_jsonl",
    "export_chrome_trace",
    "export_prometheus",
    "write_all",
    "validate_jsonl",
    "validate_chrome_trace",
    "validate_prometheus",
    "validate_directory",
]

#: Schema tag stamped on the JSONL header line; bump on layout changes.
JSONL_SCHEMA = "repro.obs/1"

#: Required keys per JSONL record kind (the validator's contract).
_REQUIRED_KEYS = {
    "meta": {"kind", "schema"},
    "counter": {"kind", "name", "labels", "value"},
    "gauge": {"kind", "name", "labels", "value"},
    "histogram": {"kind", "name", "labels", "buckets", "count", "sum"},
    "span": {"kind", "name", "labels", "ts_us", "dur_us", "t_sym", "t_sym_end"},
}


def _dump(obj: dict) -> str:
    # allow_nan covers the +inf histogram top edge: encode it explicitly.
    return json.dumps(_finitize(obj), sort_keys=True, separators=(",", ":"))


def _finitize(obj):
    """Replace non-finite floats with JSON-safe strings (``"inf"``)."""
    if isinstance(obj, float) and not math.isfinite(obj):
        return "inf" if obj > 0 else "-inf"
    if isinstance(obj, dict):
        return {key: _finitize(value) for key, value in obj.items()}
    if isinstance(obj, list):
        return [_finitize(value) for value in obj]
    return obj


def span_line(span: dict) -> str:
    """The canonical JSONL line for one span record (no trailing newline).

    Single source of truth shared by the buffered exporter and the
    streaming span spill (:class:`~repro.obs.telemetry.Telemetry` with
    ``span_spill=``), which is what makes the two modes byte-identical.
    """
    return _dump({"kind": "span", **span})


def export_jsonl(telemetry, path: str | Path) -> Path:
    """Write the snapshot as one JSON object per line; return the path.

    If ``telemetry`` streams spans to a spill file
    (``telemetry.span_spill_path``), the aggregate lines are emitted from
    memory and the spill is appended verbatim — every spill line is exactly
    :func:`span_line` output, so the result is byte-identical to a buffered
    run's export.
    """
    spill = getattr(telemetry, "span_spill_path", None)
    snapshot = telemetry.aggregates() if spill is not None else telemetry.snapshot()
    lines = [_dump({"kind": "meta", "schema": JSONL_SCHEMA})]
    for kind in ("counter", "gauge", "histogram"):
        for entry in snapshot[kind + "s"]:
            lines.append(_dump({"kind": kind, **entry}))
    path = Path(path)
    if spill is not None:
        telemetry.flush_spans()
        path.write_text("\n".join(lines) + "\n" + Path(spill).read_text())
    else:
        lines.extend(span_line(span) for span in snapshot["spans"])
        path.write_text("\n".join(lines) + "\n")
    return path


def export_chrome_trace(telemetry, path: str | Path) -> Path:
    """Write spans as a Chrome ``trace_event`` timeline; return the path."""
    events = [
        {
            "name": span["name"],
            "cat": span["name"].split(".", 1)[0],
            "ph": "X",
            "ts": span["ts_us"],
            "dur": span["dur_us"],
            "pid": 0,
            "tid": 0,
            "args": {
                **span["labels"],
                "t_sym": span["t_sym"],
                "t_sym_end": span["t_sym_end"],
            },
        }
        for span in telemetry.snapshot()["spans"]
    ]
    path = Path(path)
    path.write_text(
        json.dumps(
            {"traceEvents": events, "displayTimeUnit": "ms"},
            sort_keys=True,
            separators=(",", ":"),
        )
        + "\n"
    )
    return path


def _prom_name(name: str) -> str:
    return re.sub(r"[^a-zA-Z0-9_:]", "_", name)


def _prom_labels(labels: dict, extra: dict | None = None) -> str:
    items = dict(labels)
    if extra:
        items.update(extra)
    if not items:
        return ""
    body = ",".join(f'{_prom_name(k)}="{v}"' for k, v in sorted(items.items()))
    return "{" + body + "}"


def _prom_value(value: float) -> str:
    if isinstance(value, float) and math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value)


def export_prometheus(telemetry, path: str | Path) -> Path:
    """Write a Prometheus-style text snapshot; return the path."""
    snapshot = telemetry.snapshot()
    out: list[str] = []
    typed: set[str] = set()

    def type_line(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            out.append(f"# TYPE {name} {kind}")

    for entry in snapshot["counters"]:
        name = _prom_name(entry["name"])
        type_line(name, "counter")
        out.append(f"{name}{_prom_labels(entry['labels'])} {_prom_value(entry['value'])}")
    for entry in snapshot["gauges"]:
        name = _prom_name(entry["name"])
        type_line(name, "gauge")
        out.append(f"{name}{_prom_labels(entry['labels'])} {_prom_value(entry['value'])}")
    for entry in snapshot["histograms"]:
        name = _prom_name(entry["name"])
        type_line(name, "histogram")
        cumulative = 0
        for bucket in entry["buckets"]:
            cumulative += bucket["count"]
            le = _prom_value(float(bucket["le"]))
            labels = _prom_labels(entry["labels"], {"le": le})
            out.append(f"{name}_bucket{labels} {cumulative}")
        out.append(f"{name}_sum{_prom_labels(entry['labels'])} {_prom_value(entry['sum'])}")
        out.append(f"{name}_count{_prom_labels(entry['labels'])} {entry['count']}")
    path = Path(path)
    path.write_text("\n".join(out) + "\n")
    return path


def write_all(telemetry, directory: str | Path) -> dict[str, Path]:
    """Export every format into ``directory`` (created if missing).

    Returns ``{"jsonl": ..., "trace": ..., "prom": ...}`` — the layout the
    CLI's ``--telemetry <dir>`` flag produces and ``repro obs check``
    validates.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    return {
        "jsonl": export_jsonl(telemetry, directory / "telemetry.jsonl"),
        "trace": export_chrome_trace(telemetry, directory / "trace.json"),
        "prom": export_prometheus(telemetry, directory / "metrics.prom"),
    }


# -- schema checks -----------------------------------------------------------
def validate_jsonl(path: str | Path) -> list[str]:
    """Schema-check a ``telemetry.jsonl`` file; return problems (empty = ok)."""
    problems: list[str] = []
    lines = Path(path).read_text().splitlines()
    if not lines:
        return ["file is empty"]
    for i, line in enumerate(lines, start=1):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"line {i}: not JSON ({exc})")
            continue
        kind = record.get("kind")
        required = _REQUIRED_KEYS.get(kind)
        if required is None:
            problems.append(f"line {i}: unknown kind {kind!r}")
        elif not required.issubset(record):
            missing = sorted(required - set(record))
            problems.append(f"line {i}: {kind} record missing keys {missing}")
    first = json.loads(lines[0]) if not problems else {}
    if not problems and (
        first.get("kind") != "meta" or first.get("schema") != JSONL_SCHEMA
    ):
        problems.append(f"line 1: expected meta header with schema {JSONL_SCHEMA!r}")
    return problems


def validate_chrome_trace(path: str | Path) -> list[str]:
    """Schema-check a ``trace.json`` file; return problems (empty = ok)."""
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        return [f"not JSON ({exc})"]
    if not isinstance(data, dict) or "traceEvents" not in data:
        return ["missing traceEvents array"]
    problems = []
    for i, event in enumerate(data["traceEvents"]):
        missing = sorted({"name", "ph", "ts", "dur", "pid", "tid"} - set(event))
        if missing:
            problems.append(f"event {i}: missing keys {missing}")
        elif event["ph"] != "X":
            problems.append(f"event {i}: expected complete event ph='X', got {event['ph']!r}")
    return problems


_PROM_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? ((-|\+)?(Inf|[0-9eE+.-]+))$"
)


def validate_prometheus(path: str | Path) -> list[str]:
    """Schema-check a ``metrics.prom`` file; return problems (empty = ok)."""
    problems = []
    for i, line in enumerate(Path(path).read_text().splitlines(), start=1):
        if not line or line.startswith("# TYPE "):
            continue
        if line.startswith("#"):
            continue  # other comments are legal exposition-format lines
        if not _PROM_LINE.match(line):
            problems.append(f"line {i}: not a valid sample line: {line!r}")
    return problems


def validate_directory(directory: str | Path) -> list[str]:
    """Validate the full ``--telemetry`` output layout in ``directory``."""
    directory = Path(directory)
    checks = {
        "telemetry.jsonl": validate_jsonl,
        "trace.json": validate_chrome_trace,
        "metrics.prom": validate_prometheus,
    }
    problems = []
    for filename, check in checks.items():
        target = directory / filename
        if not target.exists():
            problems.append(f"{filename}: missing")
            continue
        problems.extend(f"{filename}: {p}" for p in check(target))
    return problems
